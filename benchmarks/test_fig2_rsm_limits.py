"""Figure 2 — why RSM-based replication cannot scale.

Fig 2a: parallel tasks as a function of cluster size for f ∈ {0, 1, 2}
(analytic, ⌊n/(2f+1)⌋).  Fig 2b: measured processing throughput of
RSM-style replicated execution (our RCP baseline; f=0 is ZFT) on the
Anomaly Detection workload — "RSM-based processing on 32 nodes with f=1
achieves similar throughput to only 8 nodes without fault tolerance".
"""

import pytest

from repro.api import DeploymentSpec, run
from repro.bench import (
    print_figure,
    print_table,
    rsm_parallel_tasks,
)

N_TASKS = 160
SEED = 2


def _baseline(system: str, n: int, f: int = 1):
    """One fig2b point through the declarative spec path (the seed goes
    to the workload, where the per-run task stream is derived)."""
    return run(
        DeploymentSpec(
            workload="anomaly",
            workload_params={
                "profile": "fig5b",
                "n_tasks": N_TASKS,
                "seed": SEED,
            },
            n=n,
            system=system,
            f=f,
            deadline=3000.0,
        )
    )


class TestFig2aParallelTasks:
    def test_fig2a_parallel_tasks(self, run_once):
        def compute():
            rows = []
            for n in (1, 25, 50, 75, 100, 125):
                rows.append(
                    (n,)
                    + tuple(rsm_parallel_tasks(n, f) for f in (0, 1, 2))
                )
            return rows

        rows = run_once(compute)
        print_table(
            "Fig 2a: parallel tasks under RSM replication",
            ["n", "f=0", "f=1", "f=2"],
            rows,
        )
        by_n = {r[0]: r for r in rows}
        # f=0 scales linearly; f=1 divides by 3; f=2 by 5
        assert by_n[125][1] == 125
        assert by_n[125][2] == 41
        assert by_n[125][3] == 25

    def test_fig2a_monotone_degradation(self):
        for n in (10, 50, 100):
            assert (
                rsm_parallel_tasks(n, 0)
                > rsm_parallel_tasks(n, 1)
                > rsm_parallel_tasks(n, 2)
            )


class TestFig2bRcpThroughput:
    @pytest.fixture(scope="class")
    def sweep(self, scenario_cache):
        def build():
            out = {}
            for n in (4, 8, 16, 32):
                out[("zft", n)] = _baseline("zft", n)
                if n >= 3:
                    out[("rcp1", n)] = _baseline("rcp", n, f=1)
                if n >= 5:
                    out[("rcp2", n)] = _baseline("rcp", n, f=2)
            return out

        return scenario_cache("fig2b", build)

    def test_fig2b_rcp_throughput(self, run_once, sweep):
        results = run_once(lambda: sweep)
        print_figure(
            "Fig 2b: RSM throughput, Anomaly Detection (f=0 is ZFT)",
            [results[k] for k in sorted(results)],
        )
        # replication tax: at every n, more fault tolerance = less throughput
        for n in (8, 16, 32):
            assert (
                results[("zft", n)].throughput
                > results[("rcp1", n)].throughput
            )
            assert (
                results[("rcp1", n)].throughput
                > results[("rcp2", n)].throughput * 0.95
            )

    def test_fig2b_headline_claim(self, sweep):
        """RSM f=1 at 32 nodes ≈ ZFT at ~8 nodes (within 2x band)."""
        rcp32 = sweep[("rcp1", 32)].throughput
        zft8 = sweep[("zft", 8)].throughput
        assert 0.4 <= rcp32 / zft8 <= 2.5

    def test_fig2b_rcp_scales_sublinearly(self, sweep):
        """Going 4→32 nodes (8x) must buy RCP clearly less than 8x."""
        gain = sweep[("rcp1", 32)].throughput / sweep[("rcp1", 4)].throughput
        assert gain < 6.0
