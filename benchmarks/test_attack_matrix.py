"""Attack matrix — every built-in adversary campaign against the MM
anomaly deployment (n=8), sanitized.

The acceptance bar is the paper's safety claim: under *every* modelled
attack — coordinated executor corruption, mass equivocation, silent
minorities, negligent verifier quorums, grey slowdowns with remission,
adaptive turncoats, successive-leader coups — the substrate sanitizer
and conservation audit must report **zero violations**.  Liveness may
degrade (the coup campaign is over-budget by construction); safety may
not.  Recovery metrics come from each campaign's recovery report.
"""

import pytest

from repro import api
from repro.adversary.library import (
    coup,
    fig7a,
    mass_equivocation,
    negligent_cluster,
    silent_minority,
    slow_then_recover,
    turncoat,
)
from repro.bench import print_table

FAIL_AT = 5.0
DURATION = 40.0

#: campaign name → factory retimed so the attack lands mid-stream
CAMPAIGNS = {
    "fig7a": lambda: fig7a(at=FAIL_AT),
    "mass-equivocation": lambda: mass_equivocation(at=FAIL_AT),
    "silent-minority": lambda: silent_minority(at=FAIL_AT),
    "negligent-cluster": lambda: negligent_cluster(at=FAIL_AT),
    "slow-then-recover": lambda: slow_then_recover(at=FAIL_AT, until=20.0),
    "turncoat": lambda: turncoat(),  # adaptive: picks its own moment
    "coup": lambda: coup(at=FAIL_AT),
}


def _run(campaign):
    return api.run(
        api.DeploymentSpec(
            workload="anomaly",
            workload_params=(
                ("n_tasks", 240),
                ("profile", "MM"),
                ("rate", 8.0),
            ),
            n=8,
            seed=0,
            duration=DURATION,
            config=(("suspect_timeout", 2.0),),
            faults=campaign,
            sanitize=True,
            label=campaign.name,
        )
    )


@pytest.fixture(scope="module")
def matrix(scenario_cache):
    return scenario_cache(
        "attack-matrix",
        lambda: {
            name: _run(factory()) for name, factory in CAMPAIGNS.items()
        },
    )


class TestAttackMatrix:
    def test_attack_matrix(self, run_once, matrix):
        results = run_once(lambda: matrix)

        def fmt(value, unit=""):
            return "-" if value is None else f"{value:.1f}{unit}"

        rows = []
        for name, r in results.items():
            report = r.extra["recovery_report"]
            rows.append(
                (
                    name,
                    str(report.records_accepted),
                    fmt(report.detection_latency, "s"),
                    fmt(report.reassignment_latency, "s"),
                    fmt(report.time_to_recover, "s"),
                    "SAFE" if report.safe else "VIOLATED",
                )
            )
        print_table(
            "Attack matrix: built-in campaigns vs MM n=8 (sanitized)",
            ["campaign", "records", "detect", "reassign", "recover", "safety"],
            rows,
        )
        for name, r in results.items():
            report = r.extra["recovery_report"]
            # the safety claim, campaign by campaign
            assert r.sanitizer_violations == 0, name
            assert report.safe is True, name
            # the deployment kept accepting output under attack
            assert report.records_accepted > 0, name

    @pytest.mark.parametrize("name", ["fig7a", "mass-equivocation"])
    def test_detection_within_budget(self, matrix, name):
        """Campaigns whose output misbehaves: verifiers accuse within a
        small multiple of the suspect timeout."""
        report = matrix[name].extra["recovery_report"]
        assert report.injected_at is not None
        assert report.detections > 0, name
        assert report.detection_latency < 10.0, name

    @pytest.mark.parametrize("name", ["silent-minority", "slow-then-recover"])
    def test_reassignment_within_budget(self, matrix, name):
        """Omission-style campaigns surface as timeouts, not verifier
        accusations: speculative reassignment must kick in promptly."""
        report = matrix[name].extra["recovery_report"]
        assert report.injected_at is not None
        assert report.reassignments > 0, name
        assert report.reassignment_latency < 5.0, name

    def test_turncoat_trigger_fired(self, matrix):
        """The adaptive campaign actually betrayed mid-run."""
        report = matrix["turncoat"].extra["recovery_report"]
        assert report.injected_at is not None
        assert report.actions_applied >= 1

    def test_silent_minority_recovers(self, matrix):
        """Speculative reassignment restores goodput after silence."""
        report = matrix["silent-minority"].extra["recovery_report"]
        assert report.reassignments > 0
        assert report.recovered
        assert report.time_to_recover < 20.0
