"""Figure 6 + Sec 7.2 — bottleneck analysis and dynamic role-switching.

6a-c: scalability of the LH / HL / MM anomaly workloads; Sec 7.2's
profiling claims (HL is CPU-bound with high executor utilization; LH/MM
push far more bytes to OP than HL).  6d: dynamic role-switching vs
static sub-cluster counts.  6e: throughput-latency as the task
submission rate sweeps from light to overload.
"""

import pytest

from repro.bench import (
    anomaly_bench,
    print_figure,
    print_series,
    print_table,
    run_osiris,
    run_zft,
)
from repro.core import OsirisConfig

NS = (4, 8, 16, 32)
SEED = 1
DEADLINE = 3000.0


def _pair_sweep(cache, key, workload_factory):
    def build():
        out = {}
        for n in NS:
            out[("zft", n)] = run_zft(workload_factory(), n=n, deadline=DEADLINE)
            out[("osiris", n)] = run_osiris(
                workload_factory(), n=n, seed=SEED, deadline=DEADLINE
            )
        return out

    return cache(key, build)


def _assert_gap_narrows(res):
    gap4 = res[("zft", 4)].throughput / max(res[("osiris", 4)].throughput, 1e-9)
    gap32 = res[("zft", 32)].throughput / max(
        res[("osiris", 32)].throughput, 1e-9
    )
    assert gap32 <= gap4 * 1.15, (gap4, gap32)


class TestFig6aLh:
    @pytest.fixture(scope="class")
    def res(self, scenario_cache):
        return _pair_sweep(
            scenario_cache, "fig6a",
            lambda: anomaly_bench("LH", n_tasks=240, seed=SEED),
        )

    def test_fig6a_lh(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 6a: LH (3-hop paths — low CPU, high output)",
            [results[k] for k in sorted(results)],
        )
        _assert_gap_narrows(results)


class TestFig6bHl:
    @pytest.fixture(scope="class")
    def res(self, scenario_cache):
        return _pair_sweep(
            scenario_cache, "fig6b",
            lambda: anomaly_bench("HL", n_tasks=240, seed=SEED),
        )

    def test_fig6b_hl(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 6b: HL (6-cliques — high CPU, low output)",
            [results[k] for k in sorted(results)],
        )
        _assert_gap_narrows(results)


class TestFig6cMm:
    @pytest.fixture(scope="class")
    def res(self, scenario_cache):
        return _pair_sweep(
            scenario_cache, "fig6c",
            lambda: anomaly_bench("MM", n_tasks=240, seed=SEED),
        )

    def test_fig6c_mm(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 6c: MM (dense size-6 — medium CPU & output)",
            [results[k] for k in sorted(results)],
        )
        _assert_gap_narrows(results)


class TestSec72Profiles:
    """Sec 7.2: per-workload CPU vs network profiles at n=32."""

    @pytest.fixture(scope="class")
    def profiles(self, scenario_cache, request):
        def build():
            out = {}
            for wl in ("LH", "HL", "MM"):
                out[wl] = {
                    "zft": run_zft(
                        anomaly_bench(wl, n_tasks=240, seed=SEED),
                        n=32,
                        deadline=DEADLINE,
                    ),
                    "osiris": run_osiris(
                        anomaly_bench(wl, n_tasks=240, seed=SEED),
                        n=32,
                        seed=SEED,
                        deadline=DEADLINE,
                    ),
                }
            return out

        return scenario_cache("sec72", build)

    def test_sec72_profiles(self, run_once, profiles):
        prof = run_once(lambda: profiles)
        rows = [
            (
                wl,
                f"{prof[wl]['osiris'].executor_utilization * 100:.0f}%",
                f"{prof[wl]['osiris'].op_bandwidth / 1e6:.1f} MB/s",
                f"{prof[wl]['zft'].op_bandwidth / 1e6:.1f} MB/s",
            )
            for wl in ("LH", "MM", "HL")
        ]
        print_table(
            "Sec 7.2 profiling at n=32",
            ["workload", "Osiris exec CPU", "Osiris OP-link", "ZFT OP-link"],
            rows,
        )
        # the bottleneck structure: high-output workloads move an order
        # of magnitude more bytes to OP than HL, in both systems
        for system in ("osiris", "zft"):
            assert (
                prof["LH"][system].op_bandwidth
                > 5 * prof["HL"][system].op_bandwidth
            )
            assert (
                prof["MM"][system].op_bandwidth
                > 5 * prof["HL"][system].op_bandwidth
            )
        # HL keeps executors busier than the output-bound workloads
        assert (
            prof["HL"]["osiris"].executor_utilization
            >= prof["LH"]["osiris"].executor_utilization * 0.8
        )


class TestFig6dRoleSwitching:
    """Dynamic role-switching vs static sub-cluster counts (n=14).

    The workload has a verification-light first phase and a
    verification-heavy second phase, so no static k is right throughout —
    the regime where the paper's dynamic policy earns its +11% mean /
    +31% peak.  Our whole-cluster lending at n=14 moves capacity in 21%
    steps, so we assert *adaptivity* (switches in both directions,
    throughput inside the static envelope) rather than strict dominance;
    see EXPERIMENTS.md for the measured deltas.
    """

    N = 14
    TASKS = 400

    def _workload(self):
        from repro.apps.synthetic import SyntheticApp, make_compute_task
        from repro.bench import BenchWorkload

        app = SyntheticApp(
            records_per_task=12,
            compute_cost=120e-3,
            record_bytes=2048,
            verify_cost_ratio=0.4,
        )
        tasks = []
        half = self.TASKS // 2
        for i in range(half):  # phase A: cheap verification
            tasks.append((i / 2000.0, make_compute_task(i, n=2)))
        for i in range(half, self.TASKS):  # phase B: heavy verification
            tasks.append((10.0 + (i - half) / 2000.0, make_compute_task(i, n=40)))
        return BenchWorkload(app=app, tasks=tasks, n_compute_tasks=self.TASKS)

    def _run(self, k, dynamic):
        config = OsirisConfig(
            chunk_bytes=1_000_000,
            suspect_timeout=60.0,
            cores_per_node=1,
            role_switching=dynamic,
            role_switch_interval=0.5,
            switch_patience=2,
            switch_cooldown=3,
        )
        return run_osiris(
            self._workload(), n=self.N, k=k, seed=SEED,
            deadline=DEADLINE, config=config,
        )

    @pytest.fixture(scope="class")
    def res(self, scenario_cache):
        def build():
            out = {}
            for k in (1, 2, 3, 4):
                out[f"static k={k}"] = self._run(k, dynamic=False)
            out["dynamic"] = self._run(4, dynamic=True)
            return out

        return scenario_cache("fig6d", build)

    def test_fig6d_role_switching(self, run_once, res):
        results = run_once(lambda: res)
        rows = [
            (name, f"{r.throughput:.0f} rec/s", f"{r.peak_throughput:.0f} peak")
            for name, r in results.items()
        ]
        print_table(
            "Fig 6d: static k vs dynamic role-switching",
            ["configuration", "mean throughput", "peak"],
            rows,
        )
        cluster = results["dynamic"].extra["cluster"]
        series = cluster.metrics.throughput_series()
        print_series("Fig 6d: dynamic throughput trace", series, "rec/s")
        statics = [
            r.throughput for name, r in results.items() if name != "dynamic"
        ]
        dyn = results["dynamic"].throughput
        # within the static envelope, clearly above the worst static
        assert dyn >= 0.75 * max(statics), (dyn, max(statics))
        assert dyn > min(statics)
        # adaptivity: the policy lent clusters out AND recalled them
        switches = cluster.metrics.role_switches
        assert any(to_exec for _, _, to_exec in switches)
        assert any(not to_exec for _, _, to_exec in switches)


class TestFig6eThroughputLatency:
    """Throughput-latency as offered load sweeps 3 decades (n=32)."""

    RATES = (5.0, 20.0, 80.0)

    @pytest.fixture(scope="class")
    def res(self, scenario_cache):
        def build():
            out = {}
            for wl in ("LH", "HL", "MM"):
                for rate in self.RATES:
                    # same task set at every rate: only arrival intensity
                    # changes, like the paper's 100→100K tasks/sec sweep
                    bench = anomaly_bench(wl, n_tasks=300, rate=rate, seed=SEED)
                    out[(wl, rate)] = run_osiris(
                        bench, n=32, seed=SEED, deadline=DEADLINE
                    )
            return out

        return scenario_cache("fig6e", build)

    def test_fig6e_throughput_latency(self, run_once, res):
        results = run_once(lambda: res)
        rows = [
            (
                wl,
                f"{rate}/s",
                f"{r.throughput:.0f} rec/s",
                f"{r.mean_latency:.2f} s",
            )
            for (wl, rate), r in sorted(results.items())
        ]
        print_table(
            "Fig 6e: throughput vs latency under increasing load (n=32)",
            ["workload", "offered rate", "throughput", "mean latency"],
            rows,
        )
        for wl in ("LH", "HL", "MM"):
            lat = [results[(wl, r)].mean_latency for r in self.RATES]
            thr = [results[(wl, r)].throughput for r in self.RATES]
            # latency grows with load...
            assert lat[-1] >= lat[0]
            # ...and throughput does not collapse
            assert thr[-1] >= thr[0] * 0.8
