"""Figure 6 + Sec 7.2 — bottleneck analysis and dynamic role-switching.

6a-c: scalability of the LH / HL / MM anomaly workloads; Sec 7.2's
profiling claims (HL is CPU-bound with high executor utilization; LH/MM
push far more bytes to OP than HL).  6d: dynamic role-switching vs
static sub-cluster counts.  6e: throughput-latency as the task
submission rate sweeps from light to overload.
"""

import pytest

from repro.bench import print_figure, print_series, print_table
from repro.exp import Point, SweepSpec
from repro.exp.spec import kv

NS = (4, 8, 16, 32)
SEED = 1
DEADLINE = 3000.0


def _pair_grid(name, profile, n_tasks=240):
    """ZFT vs OsirisBFT across NS for one anomaly profile."""
    return SweepSpec.grid(
        name,
        "anomaly",
        {"profile": profile, "n_tasks": n_tasks, "seed": SEED},
        sizes=NS,
        systems=("zft", "osiris"),
        seed=SEED,
        deadline=DEADLINE,
    )


def _assert_gap_narrows(res):
    gap4 = res[("zft", 4)].throughput / max(res[("osiris", 4)].throughput, 1e-9)
    gap32 = res[("zft", 32)].throughput / max(
        res[("osiris", 32)].throughput, 1e-9
    )
    assert gap32 <= gap4 * 1.15, (gap4, gap32)


class TestFig6aLh:
    SPEC = _pair_grid("fig6a", "LH")

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        return run_spec(self.SPEC).by()

    def test_fig6a_lh(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 6a: LH (3-hop paths — low CPU, high output)",
            [results[k] for k in sorted(results)],
        )
        _assert_gap_narrows(results)


class TestFig6bHl:
    SPEC = _pair_grid("fig6b", "HL")

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        return run_spec(self.SPEC).by()

    def test_fig6b_hl(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 6b: HL (6-cliques — high CPU, low output)",
            [results[k] for k in sorted(results)],
        )
        _assert_gap_narrows(results)


class TestFig6cMm:
    SPEC = _pair_grid("fig6c", "MM")

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        return run_spec(self.SPEC).by()

    def test_fig6c_mm(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 6c: MM (dense size-6 — medium CPU & output)",
            [results[k] for k in sorted(results)],
        )
        _assert_gap_narrows(results)


class TestSec72Profiles:
    """Sec 7.2: per-workload CPU vs network profiles at n=32."""

    SPEC = SweepSpec.of(
        "sec72",
        [
            Point(
                system=system,
                workload="anomaly",
                workload_params=kv(
                    {"profile": wl, "n_tasks": 240, "seed": SEED}
                ),
                n=32,
                seed=SEED,
                deadline=DEADLINE,
                label=f"{wl}-{system}",
            )
            for wl in ("LH", "HL", "MM")
            for system in ("zft", "osiris")
        ],
    )

    @pytest.fixture(scope="class")
    def profiles(self, run_spec):
        flat = run_spec(self.SPEC).by(
            lambda p: (dict(p.workload_params)["profile"], p.system)
        )
        return {
            wl: {"zft": flat[(wl, "zft")], "osiris": flat[(wl, "osiris")]}
            for wl in ("LH", "HL", "MM")
        }

    def test_sec72_profiles(self, run_once, profiles):
        prof = run_once(lambda: profiles)
        rows = [
            (
                wl,
                f"{prof[wl]['osiris'].executor_utilization * 100:.0f}%",
                f"{prof[wl]['osiris'].op_bandwidth / 1e6:.1f} MB/s",
                f"{prof[wl]['zft'].op_bandwidth / 1e6:.1f} MB/s",
            )
            for wl in ("LH", "MM", "HL")
        ]
        print_table(
            "Sec 7.2 profiling at n=32",
            ["workload", "Osiris exec CPU", "Osiris OP-link", "ZFT OP-link"],
            rows,
        )
        # the bottleneck structure: high-output workloads move an order
        # of magnitude more bytes to OP than HL, in both systems
        for system in ("osiris", "zft"):
            assert (
                prof["LH"][system].op_bandwidth
                > 5 * prof["HL"][system].op_bandwidth
            )
            assert (
                prof["MM"][system].op_bandwidth
                > 5 * prof["HL"][system].op_bandwidth
            )
        # HL keeps executors busier than the output-bound workloads
        assert (
            prof["HL"]["osiris"].executor_utilization
            >= prof["LH"]["osiris"].executor_utilization * 0.8
        )


def _fig6d_point(label, k, dynamic):
    return Point(
        system="osiris",
        workload="two_phase",
        workload_params=kv(
            {"n_tasks": 400, "records_light": 2, "records_heavy": 40}
        ),
        n=14,
        k=k,
        seed=SEED,
        deadline=DEADLINE,
        config=kv(
            {
                "role_switching": dynamic,
                "role_switch_interval": 0.5,
                "switch_patience": 2,
                "switch_cooldown": 3,
            }
        ),
        label=label,
    )


class TestFig6dRoleSwitching:
    """Dynamic role-switching vs static sub-cluster counts (n=14).

    The workload has a verification-light first phase and a
    verification-heavy second phase, so no static k is right throughout —
    the regime where the paper's dynamic policy earns its +11% mean /
    +31% peak.  Our whole-cluster lending at n=14 moves capacity in 21%
    steps, so we assert *adaptivity* (switches in both directions,
    throughput inside the static envelope) rather than strict dominance;
    see EXPERIMENTS.md for the measured deltas.
    """

    N = 14
    TASKS = 400

    SPEC = SweepSpec.of(
        "fig6d",
        [
            _fig6d_point(f"static k={k}", k, dynamic=False)
            for k in (1, 2, 3, 4)
        ] + [_fig6d_point("dynamic", 4, dynamic=True)],
    )

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        # live: the dynamic point's cluster is inspected for the
        # role-switch timeline below
        return run_spec(self.SPEC, live=True).by(lambda p: p.label)

    def test_fig6d_role_switching(self, run_once, res):
        results = run_once(lambda: res)
        rows = [
            (name, f"{r.throughput:.0f} rec/s", f"{r.peak_throughput:.0f} peak")
            for name, r in results.items()
        ]
        print_table(
            "Fig 6d: static k vs dynamic role-switching",
            ["configuration", "mean throughput", "peak"],
            rows,
        )
        cluster = results["dynamic"].extra["cluster"]
        series = cluster.metrics.throughput_series()
        print_series("Fig 6d: dynamic throughput trace", series, "rec/s")
        statics = [
            r.throughput for name, r in results.items() if name != "dynamic"
        ]
        dyn = results["dynamic"].throughput
        # within the static envelope, clearly above the worst static
        assert dyn >= 0.75 * max(statics), (dyn, max(statics))
        assert dyn > min(statics)
        # adaptivity: the policy lent clusters out AND recalled them
        switches = cluster.metrics.role_switches
        assert any(to_exec for _, _, to_exec in switches)
        assert any(not to_exec for _, _, to_exec in switches)


class TestFig6eThroughputLatency:
    """Throughput-latency as offered load sweeps 3 decades (n=32)."""

    RATES = (5.0, 20.0, 80.0)

    # same task set at every rate: only arrival intensity changes, like
    # the paper's 100→100K tasks/sec sweep
    SPEC = SweepSpec.of(
        "fig6e",
        [
            Point(
                system="osiris",
                workload="anomaly",
                workload_params=kv(
                    {
                        "profile": wl,
                        "n_tasks": 300,
                        "rate": rate,
                        "seed": SEED,
                    }
                ),
                n=32,
                seed=SEED,
                deadline=DEADLINE,
                label=f"{wl}@{rate}",
            )
            for wl in ("LH", "HL", "MM")
            for rate in (5.0, 20.0, 80.0)
        ],
    )

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        return run_spec(self.SPEC).by(
            lambda p: (
                dict(p.workload_params)["profile"],
                dict(p.workload_params)["rate"],
            )
        )

    def test_fig6e_throughput_latency(self, run_once, res):
        results = run_once(lambda: res)
        rows = [
            (
                wl,
                f"{rate}/s",
                f"{r.throughput:.0f} rec/s",
                f"{r.mean_latency:.2f} s",
            )
            for (wl, rate), r in sorted(results.items())
        ]
        print_table(
            "Fig 6e: throughput vs latency under increasing load (n=32)",
            ["workload", "offered rate", "throughput", "mean latency"],
            rows,
        )
        for wl in ("LH", "HL", "MM"):
            lat = [results[(wl, r)].mean_latency for r in self.RATES]
            thr = [results[(wl, r)].throughput for r in self.RATES]
            # latency grows with load...
            assert lat[-1] >= lat[0]
            # ...and throughput does not collapse
            assert thr[-1] >= thr[0] * 0.8
