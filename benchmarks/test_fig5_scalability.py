"""Figure 5 — throughput scalability of OsirisBFT vs ZFT and RCP.

5a: write-only state-update throughput (OsirisBFT store measured on the
DES; Kauri and Basil from calibrated cost models — see DESIGN.md).
5b-d: output-record throughput for the three applications across
cluster sizes.  The claims reproduced in *shape*:

* OsirisBFT scales nearly as well as ZFT, and the ZFT gap narrows as n
  grows (paper: 4× at n=4 → 1.4-1.6× at n=32);
* OsirisBFT beats RCP at n=32 (paper: 1.9-2.3×).
"""

import pytest

from repro.bench import (
    basil_updates_per_sec,
    kauri_updates_per_sec,
    print_figure,
    print_table,
    update_only_bench,
)
from repro.core import OsirisConfig, build_osiris_cluster
from repro.exp import SweepSpec

NS = (4, 8, 16, 32)
SEED = 1
DEADLINE = 3000.0


def _grid(name, workload, params):
    """Declare the standard fig5 sweep: all three systems across NS."""
    return SweepSpec.grid(
        name, workload, params, sizes=NS, seed=SEED, deadline=DEADLINE
    )


def _assert_fig5_shape(results, rcp_factor=1.0, ns=NS):
    """The paper's two headline shapes, with tolerant bands."""
    hi, lo = ns[-1], ns[0]
    gap_small = results[("zft", lo)].throughput / max(
        results[("osiris", lo)].throughput, 1e-9
    )
    gap_big = results[("zft", hi)].throughput / max(
        results[("osiris", hi)].throughput, 1e-9
    )
    # (i) scaling out narrows the ZFT gap
    assert gap_big <= gap_small * 1.15, (gap_small, gap_big)
    # (ii) OsirisBFT at n=32 beats RCP by at least rcp_factor
    assert (
        results[("osiris", hi)].throughput
        >= rcp_factor * results[("rcp", hi)].throughput
    )
    # (iii) OsirisBFT itself scales: n=32 >> n=4
    assert (
        results[("osiris", hi)].throughput
        > 1.5 * results[("osiris", ns[0])].throughput
    )


class TestFig5aStateUpdates:
    N_UPDATES = 4000

    def _osiris_store_rate(self, n):
        wl = update_only_bench(self.N_UPDATES)
        cluster = build_osiris_cluster(
            wl.app,
            workload=wl.stream,
            n_workers=n,
            seed=SEED,
            config=OsirisConfig(cores_per_node=1),
        )
        cluster.start()
        deadline = 300.0
        while cluster.sim.now < deadline:
            cluster.run(until=cluster.sim.now + 0.5)
            if all(
                w.store.applied_ts >= self.N_UPDATES
                for w in cluster.executors + cluster.all_verifiers
            ):
                break
            if cluster.sim.drained():
                break
        return self.N_UPDATES / max(cluster.sim.now, 1e-9)

    @pytest.fixture(scope="class")
    def rates(self, scenario_cache):
        return scenario_cache(
            "fig5a",
            lambda: {n: self._osiris_store_rate(n) for n in NS},
        )

    def test_fig5a_state_updates(self, run_once, rates):
        osiris = run_once(lambda: rates)
        rows = [
            (
                n,
                f"{osiris[n]:.0f}",
                f"{kauri_updates_per_sec(n):.0f}",
                f"{basil_updates_per_sec(n):.0f}",
            )
            for n in NS
        ]
        print_table(
            "Fig 5a: state updates/sec (write-only)",
            ["n", "OsirisBFT store", "Kauri (model)", "Basil (model)"],
            rows,
        )
        # the paper's ordering: the plain replicated store wins
        for n in NS:
            assert osiris[n] > kauri_updates_per_sec(n)
            assert kauri_updates_per_sec(n) > basil_updates_per_sec(n)


class TestFig5bAnomaly:
    SPEC = _grid(
        "fig5b", "anomaly", {"profile": "fig5b", "n_tasks": 240, "seed": SEED}
    )

    @pytest.fixture(scope="class")
    def results(self, run_spec):
        return run_spec(self.SPEC).by()

    def test_fig5b_anomaly(self, run_once, results):
        res = run_once(lambda: results)
        print_figure(
            "Fig 5b: Anomaly Detection (6-clique minus 2 edges)",
            [res[k] for k in sorted(res)],
        )
        _assert_fig5_shape(res, rcp_factor=1.0)


class TestFig5cPlanning:
    SPEC = _grid("fig5c", "planning", {"n_tasks": 214, "seed": SEED})

    @pytest.fixture(scope="class")
    def results(self, run_spec):
        return run_spec(self.SPEC).by()

    def test_fig5c_planning(self, run_once, results):
        res = run_once(lambda: results)
        print_figure("Fig 5c: Motion Planning", [res[k] for k in sorted(res)])
        _assert_fig5_shape(res, rcp_factor=1.0)


class TestFig5dVideo:
    SPEC = _grid("fig5d", "video", {"n_compute": 120, "seed": SEED})

    @pytest.fixture(scope="class")
    def results(self, run_spec):
        return run_spec(self.SPEC).by()

    def test_fig5d_video(self, run_once, results):
        res = run_once(lambda: results)
        print_figure("Fig 5d: Video Analysis", [res[k] for k in sorted(res)])
        _assert_fig5_shape(res, rcp_factor=1.0)
