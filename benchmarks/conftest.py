"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark runs its scenario **once** (``benchmark.pedantic`` with a
single round — a scenario is a deterministic simulation, so repetition
only measures host noise), prints the paper-style rows, and attaches the
measured values to ``benchmark.extra_info`` for machine consumption.
Results are cached per scenario key so multiple benchmarks can assert
against one expensive sweep.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_CACHE: dict = {}


@pytest.fixture(scope="session")
def scenario_cache():
    """Session-wide memo: key → ScenarioResult (or any computed value)."""

    def get(key, thunk):
        if key not in _CACHE:
            _CACHE[key] = thunk()
        return _CACHE[key]

    return get


@pytest.fixture(scope="session")
def run_spec():
    """Execute a SweepSpec once per session, through the result cache.

    The canonical way a benchmark declares its scenarios: build a
    :class:`repro.exp.SweepSpec`, hand it here, and get the
    :class:`repro.exp.SweepOutcome` back (memoized by spec name).
    ``REPRO_BENCH_JOBS=N`` fans points out over a process pool —
    results are bit-identical to serial.  ``REPRO_BENCH_NO_CACHE=1``
    bypasses the content-addressed disk cache.  ``live=True`` runs
    serially, uncached, keeping live cluster handles in result extras
    (for benchmarks that inspect cluster internals).
    """
    from repro.exp import ResultCache, run_sweep

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = (
        None if os.environ.get("REPRO_BENCH_NO_CACHE") else ResultCache()
    )

    def run(spec, live=False):
        key = ("sweep", spec.name, live)
        if key not in _CACHE:
            _CACHE[key] = run_sweep(
                spec,
                jobs=1 if live else jobs,
                cache=None if live else cache,
                live=live,
            )
        return _CACHE[key]

    return run


@pytest.fixture
def run_once(benchmark):
    """Run a thunk exactly once under pytest-benchmark timing."""

    def run(thunk):
        return benchmark.pedantic(thunk, rounds=1, iterations=1)

    return run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every reproduced paper figure after capture has ended, so
    `pytest benchmarks/ --benchmark-only | tee` keeps them."""
    from repro.bench.reporting import get_buffer

    lines = get_buffer()
    if not lines:
        return
    terminalreporter.write_sep("=", "reproduced paper figures")
    for line in lines:
        terminalreporter.write_line(line)
