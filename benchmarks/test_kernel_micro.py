"""Kernel microbenchmarks — substrate hot-path throughput.

Exercises the three hot paths the batched-dispatch refactor targets, at
sizes small enough for CI: event churn through the kernel heap/lane,
multicast fan-out through the flyweight send path, and byte-meter ingest
through the lazy vectorized fold.  The standalone CLI
(``python -m repro.bench kernel``) runs the same benchmarks at full size
and writes ``BENCH_kernel.json``.
"""

from repro.bench.microbench import (
    bench_event_churn,
    bench_meter_ingest,
    bench_multicast_fanout,
)
from repro.bench.reporting import print_table


def _report(benchmark, res):
    benchmark.extra_info.update(res.to_dict())
    print_table(
        f"Kernel microbench — {res.name}",
        ["ops", "wall (s)", "ops/s"],
        [(res.ops, f"{res.wall_seconds:.4f}", f"{res.ops_per_sec:,.0f}")],
    )


class TestKernelMicro:
    def test_event_churn(self, run_once, benchmark):
        res = run_once(lambda: bench_event_churn(events=50_000))
        _report(benchmark, res)
        # 72 chains fire every round; only canceled victims don't fire
        assert res.ops >= (50_000 // 72) * 72
        assert res.wall_seconds > 0

    def test_multicast_fanout(self, run_once, benchmark):
        res = run_once(lambda: bench_multicast_fanout(n_nodes=16, rounds=400))
        _report(benchmark, res)
        assert res.ops == 400 * 15  # every fan-out delivery counted
        assert res.wall_seconds > 0

    def test_meter_ingest(self, run_once, benchmark):
        res = run_once(lambda: bench_meter_ingest(samples=200_000))
        _report(benchmark, res)
        assert res.ops == 200_000
        assert res.wall_seconds > 0
