"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual mechanisms
the paper argues for: the non-equivocating multicast (2f+1 vs 3f+1
sub-clusters), chunked streaming verification, and speculative
reassignment.  Each ablation is a two-point sweep spec differing in one
config knob.
"""


import pytest

from repro.bench import print_table
from repro.exp import Point, SweepSpec
from repro.exp.spec import kv

SEED = 1
N = 16
DEADLINE = 3000.0


def _wl_params(records=10, cost=200e-3, record_bytes=65536, verify_ratio=0.05):
    return kv(
        {
            "n_tasks": 200,
            "records_per_task": records,
            "compute_cost": cost,
            "record_bytes": record_bytes,
            "verify_cost_ratio": verify_ratio,
        }
    )


def _config(**overrides):
    defaults = dict(role_switching=False)
    defaults.update(overrides)
    return kv(defaults)


class TestSubclusterSizeAblation:
    # executor-bound workload: the primitive's extra executors are the
    # binding resource
    _WP = _wl_params(records=6, cost=400e-3, record_bytes=2048)

    SPEC = SweepSpec.of(
        "abl-subcluster",
        [
            Point(
                system="osiris", workload="synthetic", workload_params=_WP,
                n=N, seed=SEED, deadline=DEADLINE,
                config=_config(non_equivocation=True), label="with-neq",
            ),
            Point(
                system="osiris", workload="synthetic", workload_params=_WP,
                n=N, seed=SEED, deadline=DEADLINE,
                config=_config(non_equivocation=False), label="without-neq",
            ),
        ],
    )

    def test_subcluster_size_ablation(self, run_once, run_spec):
        """2f+1 sub-clusters (with non-equivocation) vs 3f+1 (without):
        the primitive buys strictly more executors for the same n."""
        res = run_once(lambda: run_spec(self.SPEC).by(lambda p: p.label))
        with_neq, without = res["with-neq"], res["without-neq"]
        print_table(
            "Ablation: non-equivocating multicast (n=16, f=1)",
            ["configuration", "sub-cluster size", "records/sec"],
            [
                ("2f+1 (with primitive)", 3, f"{with_neq.throughput:.0f}"),
                ("3f+1 (without)", 4, f"{without.throughput:.0f}"),
            ],
        )
        assert with_neq.throughput > without.throughput


class TestChunkingAblation:
    # unsaturated steady stream: the win is verification overlapping
    # execution within each task, so per-task latency (not capacity) is
    # the metric — exactly the paper's "verifiers proceed in parallel
    # instead of waiting for the entire sequence of records"
    _WP = kv(
        {
            "n_tasks": 60,
            "records_per_task": 64,
            "compute_cost": 400e-3,
            "record_bytes": 65536,
            "rate": 4.0,
            "verify_cost_ratio": 0.3,
        }
    )

    SPEC = SweepSpec.of(
        "abl-chunking",
        [
            Point(
                system="osiris", workload="synthetic", workload_params=_WP,
                n=N, seed=SEED, deadline=DEADLINE, bandwidth=1e9,
                config=_config(chunk_bytes=256 * 1024, op_timeout=2.0),
                label="streamed",
            ),
            Point(
                system="osiris", workload="synthetic", workload_params=_WP,
                n=N, seed=SEED, deadline=DEADLINE, bandwidth=1e9,
                config=_config(chunk_bytes=10**9, op_timeout=2.0),
                label="monolithic",
            ),
        ],
    )

    def test_chunking_ablation(self, run_once, run_spec):
        """Streaming chunks overlap verification with execution; one
        giant chunk per task serializes them and inflates latency."""
        res = run_once(lambda: run_spec(self.SPEC).by(lambda p: p.label))
        streamed, monolithic = res["streamed"], res["monolithic"]
        print_table(
            "Ablation: chunked streaming verification",
            ["configuration", "mean latency", "records/sec"],
            [
                (
                    "256 KiB chunks",
                    f"{streamed.mean_latency:.3f} s",
                    f"{streamed.throughput:.0f}",
                ),
                (
                    "single chunk per task",
                    f"{monolithic.mean_latency:.3f} s",
                    f"{monolithic.throughput:.0f}",
                ),
            ],
        )
        assert streamed.mean_latency < monolithic.mean_latency


class TestReassignmentAblation:
    _WP = _wl_params(cost=100e-3)
    _FAULTS = (("e0", "silent", ()),)

    SPEC = SweepSpec.of(
        "abl-reassign",
        [
            Point(
                system="osiris", workload="synthetic", workload_params=_WP,
                n=10, k=2, seed=SEED, deadline=DEADLINE,
                config=_config(suspect_timeout=0.5),
                executor_faults=_FAULTS, label="with-spec",
            ),
            Point(
                system="osiris", workload="synthetic", workload_params=_WP,
                n=10, k=2, seed=SEED, deadline=DEADLINE,
                config=_config(suspect_timeout=200.0),
                executor_faults=_FAULTS, label="without",
            ),
        ],
    )

    def test_reassignment_ablation(self, run_once, run_spec):
        """Speculative reassignment bounds the damage of a silent
        executor; without it (huge timeout) tasks stall until fallback."""
        res = run_once(lambda: run_spec(self.SPEC).by(lambda p: p.label))
        with_spec, without = res["with-spec"], res["without"]
        print_table(
            "Ablation: speculative reassignment under a silent executor",
            ["configuration", "p99 latency", "reassignments"],
            [
                (
                    "timeout 0.5s",
                    f"{with_spec.p99_latency:.1f} s",
                    with_spec.extra["reassignments"],
                ),
                (
                    "timeout 200s (disabled)",
                    f"{without.p99_latency:.1f} s",
                    without.extra["reassignments"],
                ),
            ],
        )
        assert with_spec.extra["reassignments"] >= 1
        assert with_spec.p99_latency < without.p99_latency


class TestAssignmentSchemeAblation:
    SPEC = SweepSpec.of(
        "abl-assign",
        [
            Point(
                system="osiris", workload="synthetic",
                workload_params=_wl_params(
                    records=4, cost=20e-3, record_bytes=1024
                ),
                n=N, seed=SEED, deadline=DEADLINE,
                config=_config(), label="assign",
            )
        ],
    )

    @pytest.fixture(scope="class")
    def measured(self, run_spec):
        # live: counts chunk-borne-signature activations on the cluster
        result = run_spec(self.SPEC, live=True).results[0]
        cluster = result.extra["cluster"]
        early = sum(
            1
            for v in cluster.all_verifiers
            for st in v._tasks.values()
            if st.assignment is not None and len(st.sigs) == 0
        )
        total = sum(len(v._tasks) for v in cluster.all_verifiers)
        return result, early, total

    def test_assignment_scheme_ablation(self, run_once, measured):
        """Coordination-free assignment: chunks carry the f+1 coordinator
        signatures, so a verifier can authenticate output that arrives
        before its own assignment copies.  We measure how often that path
        fired — with a two-phase scheme each such chunk would have waited
        a full extra round trip."""
        result, early, total = run_once(lambda: measured)
        print_table(
            "Ablation: coordination-free task assignment",
            ["metric", "value"],
            [
                ("verifier task activations", total),
                ("activated via chunk-borne signatures", early),
                ("throughput", f"{result.throughput:.0f} rec/s"),
            ],
        )
        assert result.tasks_completed == 200
