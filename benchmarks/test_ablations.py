"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual mechanisms
the paper argues for: the non-equivocating multicast (2f+1 vs 3f+1
sub-clusters), chunked streaming verification, and speculative
reassignment.
"""


from repro.bench import print_table, run_osiris, synthetic_bench
from repro.core import OsirisConfig
from repro.core.faults import SilentFault

SEED = 1
N = 16
DEADLINE = 3000.0


def _wl(records=10, cost=200e-3, record_bytes=65536, verify_ratio=0.05):
    return synthetic_bench(
        200,
        records_per_task=records,
        compute_cost=cost,
        record_bytes=record_bytes,
        verify_cost_ratio=verify_ratio,
    )


def _config(**overrides):
    defaults = dict(
        chunk_bytes=1_000_000,
        suspect_timeout=60.0,
        cores_per_node=1,
        role_switching=False,
    )
    defaults.update(overrides)
    return OsirisConfig(**defaults)


class TestSubclusterSizeAblation:
    def test_subcluster_size_ablation(self, run_once, scenario_cache):
        """2f+1 sub-clusters (with non-equivocation) vs 3f+1 (without):
        the primitive buys strictly more executors for the same n."""

        def build():
            # executor-bound workload: the primitive's extra executors
            # are the binding resource
            wl = lambda: _wl(records=6, cost=400e-3, record_bytes=2048)
            with_neq = run_osiris(
                wl(), n=N, seed=SEED, deadline=DEADLINE,
                config=_config(non_equivocation=True),
            )
            without = run_osiris(
                wl(), n=N, seed=SEED, deadline=DEADLINE,
                config=_config(non_equivocation=False),
            )
            return with_neq, without

        with_neq, without = run_once(
            lambda: scenario_cache("abl-subcluster", build)
        )
        print_table(
            "Ablation: non-equivocating multicast (n=16, f=1)",
            ["configuration", "sub-cluster size", "records/sec"],
            [
                ("2f+1 (with primitive)", 3, f"{with_neq.throughput:.0f}"),
                ("3f+1 (without)", 4, f"{without.throughput:.0f}"),
            ],
        )
        assert with_neq.throughput > without.throughput


class TestChunkingAblation:
    def test_chunking_ablation(self, run_once, scenario_cache):
        """Streaming chunks overlap verification with execution; one
        giant chunk per task serializes them and inflates latency."""

        def build():
            # unsaturated steady stream: the win is verification
            # overlapping execution within each task, so per-task latency
            # (not capacity) is the metric — exactly the paper's
            # "verifiers proceed in parallel instead of waiting for the
            # entire sequence of records"
            def wl():
                return synthetic_bench(
                    60,
                    records_per_task=64,
                    compute_cost=400e-3,
                    record_bytes=65536,
                    rate=4.0,
                    verify_cost_ratio=0.3,
                )

            streamed = run_osiris(
                wl(), n=N, seed=SEED, deadline=DEADLINE,
                config=_config(chunk_bytes=256 * 1024, op_timeout=2.0),
                bandwidth=1e9,
            )
            monolithic = run_osiris(
                wl(), n=N, seed=SEED, deadline=DEADLINE,
                config=_config(chunk_bytes=10**9, op_timeout=2.0),
                bandwidth=1e9,
            )
            return streamed, monolithic

        streamed, monolithic = run_once(
            lambda: scenario_cache("abl-chunking", build)
        )
        print_table(
            "Ablation: chunked streaming verification",
            ["configuration", "mean latency", "records/sec"],
            [
                (
                    "256 KiB chunks",
                    f"{streamed.mean_latency:.3f} s",
                    f"{streamed.throughput:.0f}",
                ),
                (
                    "single chunk per task",
                    f"{monolithic.mean_latency:.3f} s",
                    f"{monolithic.throughput:.0f}",
                ),
            ],
        )
        assert streamed.mean_latency < monolithic.mean_latency


class TestReassignmentAblation:
    def test_reassignment_ablation(self, run_once, scenario_cache):
        """Speculative reassignment bounds the damage of a silent
        executor; without it (huge timeout) tasks stall until fallback."""

        def build():
            faults = {"e0": SilentFault()}
            with_spec = run_osiris(
                _wl(cost=100e-3), n=10, k=2, seed=SEED, deadline=DEADLINE,
                config=_config(suspect_timeout=0.5),
                executor_faults=faults,
            )
            without = run_osiris(
                _wl(cost=100e-3), n=10, k=2, seed=SEED, deadline=DEADLINE,
                config=_config(suspect_timeout=200.0),
                executor_faults=faults,
            )
            return with_spec, without

        with_spec, without = run_once(
            lambda: scenario_cache("abl-reassign", build)
        )
        print_table(
            "Ablation: speculative reassignment under a silent executor",
            ["configuration", "p99 latency", "reassignments"],
            [
                (
                    "timeout 0.5s",
                    f"{with_spec.p99_latency:.1f} s",
                    with_spec.extra["reassignments"],
                ),
                (
                    "timeout 200s (disabled)",
                    f"{without.p99_latency:.1f} s",
                    without.extra["reassignments"],
                ),
            ],
        )
        assert with_spec.extra["reassignments"] >= 1
        assert with_spec.p99_latency < without.p99_latency


class TestAssignmentSchemeAblation:
    def test_assignment_scheme_ablation(self, run_once, scenario_cache):
        """Coordination-free assignment: chunks carry the f+1 coordinator
        signatures, so a verifier can authenticate output that arrives
        before its own assignment copies.  We measure how often that path
        fired — with a two-phase scheme each such chunk would have waited
        a full extra round trip."""

        def build():
            result = run_osiris(
                _wl(records=4, cost=20e-3, record_bytes=1024),
                n=N,
                seed=SEED,
                deadline=DEADLINE,
                config=_config(),
            )
            cluster = result.extra["cluster"]
            early = sum(
                1
                for v in cluster.all_verifiers
                for st in v._tasks.values()
                if st.assignment is not None and len(st.sigs) == 0
            )
            total = sum(len(v._tasks) for v in cluster.all_verifiers)
            return result, early, total

        result, early, total = run_once(
            lambda: scenario_cache("abl-assign", build)
        )
        print_table(
            "Ablation: coordination-free task assignment",
            ["metric", "value"],
            [
                ("verifier task activations", total),
                ("activated via chunk-borne signatures", early),
                ("throughput", f"{result.throughput:.0f} rec/s"),
            ],
        )
        assert result.tasks_completed == 200
