"""Table 1 — replication / scalability / fault-tolerance comparison.

The table itself is analytic; this bench prints it for f ∈ {1, 2} and
then *validates the model against the implementation*: measured
execution counts must match the claimed computation replication, and
measured communication fan-out must match the claimed communication
replication.
"""


from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.baselines import build_rcp_cluster, build_zft_cluster
from repro.bench import osiris_parallel_tasks, print_table, table1
from repro.core import OsirisConfig, build_osiris_cluster


class TestTable1:
    def test_table1_rows(self, run_once):
        rows = run_once(lambda: table1(f=1))
        print_table(
            "Table 1 (f=1)",
            ["system", "comp repl", "comp scalability", "comm repl", "faults"],
            [
                (
                    r.system,
                    r.computation_replication,
                    r.computation_scalability,
                    r.communication_replication,
                    r.faults_tolerated,
                )
                for r in rows
            ],
        )
        print_table(
            "Table 1 (f=2)",
            ["system", "comp repl", "comp scalability", "comm repl", "faults"],
            [
                (
                    r.system,
                    r.computation_replication,
                    r.computation_scalability,
                    r.communication_replication,
                    r.faults_tolerated,
                )
                for r in table1(f=2)
            ],
        )
        assert [r.system for r in rows] == ["ZFT", "RCP", "OsirisBFT"]

    def _run_all(self, n_tasks=30):
        app = SyntheticApp(records_per_task=4, compute_cost=5e-3)
        tasks = lambda: iter(
            [(i * 0.002, make_compute_task(i)) for i in range(n_tasks)]
        )
        zft = build_zft_cluster(app, workload=tasks(), n_workers=9, seed=3)
        zft.start()
        zft.run(until=30.0)
        rcp = build_rcp_cluster(app, workload=tasks(), n_workers=9, f=1, seed=3)
        rcp.start()
        rcp.run(until=30.0)
        osiris = build_osiris_cluster(
            app,
            workload=tasks(),
            n_workers=9,
            k=2,
            seed=3,
            config=OsirisConfig(role_switching=False, chunk_bytes=4096),
        )
        osiris.start()
        osiris.run(until=30.0)
        return zft, rcp, osiris, n_tasks

    def test_computation_replication_column_is_real(self):
        """ZFT and OsirisBFT execute each task once; RCP executes it
        2f+1 times — measured, not assumed."""
        zft, rcp, osiris, n = self._run_all()
        assert sum(w.tasks_executed for w in zft.workers) == n
        assert sum(w.tasks_executed for w in rcp.workers) == n * 3
        executed = sum(e.engine.tasks_executed for e in osiris.executors)
        executed += sum(v.engine.tasks_executed for v in osiris.all_verifiers)
        assert executed == n

    def test_communication_replication_column_is_real(self):
        """Each OsirisBFT record chunk reaches 2f+1 verifiers."""
        zft, rcp, osiris, n = self._run_all()
        total_chunk_verifications = sum(
            v.chunks_verified for v in osiris.all_verifiers
        )
        # every task = 1 chunk here; each verified by exactly 2f+1 members
        assert total_chunk_verifications == n * 3

    def test_parallel_task_model(self):
        assert osiris_parallel_tasks(32, 1, k=5) == 17
        assert osiris_parallel_tasks(32, 1, k=1) == 29
        assert osiris_parallel_tasks(9, 1, k=2) == 3
        # without non-equivocation, sub-clusters grow to 3f+1
        assert osiris_parallel_tasks(32, 1, k=5, non_equivocation=False) == 12
