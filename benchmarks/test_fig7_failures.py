"""Figure 7 — performance under Byzantine faults.

7a: simultaneous failure of every executor at t=45s of a streaming run;
the paper observes fast detection, throughput staying above zero thanks
to previously role-switched verifiers, and recovery to roughly half the
pre-failure level.  The verifier-leader variant (Sec 7.4 text) recovers
to the *same* level since executors stay correct.  7b: throughput as
the verifier fault-tolerance level f grows (OsirisBFT f=1..4 vs RCP
f=1..2 on n=32).
"""

import pytest

from repro.bench import print_figure, print_series, print_table, synthetic_bench
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import CorruptRecordFault, NegligentLeaderFault
from repro.exp import Point, SweepSpec
from repro.exp.spec import kv

SEED = 1
FAIL_AT = 45.0
DURATION = 120.0


def _streaming_workload(rate=12.0, duration=DURATION - 20.0):
    return synthetic_bench(
        int(rate * duration),
        records_per_task=10,
        compute_cost=250e-3,
        record_bytes=4096,
        rate=rate,
        verify_cost_ratio=0.15,
    )


def _config(**overrides):
    defaults = dict(
        chunk_bytes=1_000_000,
        suspect_timeout=2.0,
        cores_per_node=1,
        role_switching=True,
        role_switch_interval=0.5,
        switch_patience=2,
        switch_cooldown=3,
    )
    defaults.update(overrides)
    return OsirisConfig(**defaults)


def _run_with_faults(executor_faults=None, verifier_faults=None, n=14, k=3):
    wl = _streaming_workload()
    cluster = build_osiris_cluster(
        wl.app,
        workload=wl.stream,
        n_workers=n,
        k=k,
        seed=SEED,
        config=_config(),
        bandwidth=60e6,
        executor_faults=executor_faults or {},
        verifier_faults=verifier_faults or {},
    )
    cluster.start()
    cluster.run(until=DURATION)
    return cluster


class TestFig7aExecutorFailures:
    @pytest.fixture(scope="class")
    def cluster(self, scenario_cache):
        return scenario_cache(
            "fig7a",
            lambda: _run_with_faults(
                executor_faults={
                    f"e{i}": CorruptRecordFault(activate_at=FAIL_AT)
                    for i in range(5)
                }
            ),
        )

    def test_fig7a_executor_failures(self, run_once, cluster):
        c = run_once(lambda: cluster)
        m = c.metrics
        print_series(
            "Fig 7a: throughput trace, all executors fail at t=45s",
            m.throughput_series(),
            "rec/s",
        )
        before = m.throughput(20.0, FAIL_AT)
        dip = m.throughput(FAIL_AT, FAIL_AT + 10.0)
        after = m.throughput(FAIL_AT + 15.0, DURATION - 10.0)
        print_table(
            "Fig 7a summary",
            ["window", "records/sec"],
            [
                ("before failure", f"{before:.0f}"),
                ("during detection", f"{dip:.0f}"),
                ("after recovery", f"{after:.0f}"),
            ],
        )
        # failures detected quickly, all executors blacklisted
        assert len(m.faults_detected) >= 5
        assert all(
            f"e{i}" in c.coordinators[0].blacklist for i in range(5)
        )
        # throughput does not drop to zero (role-switched verifiers) and
        # recovers to a meaningful fraction of the pre-failure level
        assert after > 0.25 * before, (before, after)
        # no corrupt record was ever accepted
        assert m.records_accepted == m.tasks_completed * 10

    def test_fig7a_detection_is_fast(self, cluster):
        m = cluster.metrics
        first_detection = min(t for t, _, _ in m.faults_detected)
        assert FAIL_AT <= first_detection <= FAIL_AT + 10.0


class TestFig7VerifierFailures:
    def test_fig7_verifier_failures(self, run_once, scenario_cache):
        """Negligent sub-cluster leaders: elections replace them and
        throughput recovers fully (executors were never wrong)."""

        def build():
            return _run_with_faults(
                verifier_faults={
                    # leaders of the two worker sub-clusters turn
                    # negligent mid-run
                    "v3": NegligentLeaderFault(activate_at=FAIL_AT),
                    "v6": NegligentLeaderFault(activate_at=FAIL_AT),
                }
            )

        c = run_once(lambda: scenario_cache("fig7v", build))
        m = c.metrics
        before = m.throughput(20.0, FAIL_AT)
        after = m.throughput(FAIL_AT + 20.0, DURATION - 10.0)
        print_table(
            "Sec 7.4 verifier-leader failures",
            ["window", "records/sec"],
            [
                ("before", f"{before:.0f}"),
                ("after recovery", f"{after:.0f}"),
                ("elections", str(len(m.leader_elections))),
            ],
        )
        assert len(m.leader_elections) >= 1
        # recovery to the same level (tolerant band): executors correct
        assert after >= 0.6 * before
        # no executor was blacklisted for a verifier's fault
        assert not any(
            pid.startswith("e") for pid in c.coordinators[0].blacklist
        )


_FIG7B_WP = kv(
    {
        "n_tasks": 240,
        "records_per_task": 10,
        "compute_cost": 300e-3,
        "record_bytes": 4096,
        "verify_cost_ratio": 0.05,
    }
)


class TestFig7bFaultScalability:
    N = 32

    SPEC = SweepSpec.of(
        "fig7b",
        [
            Point(
                system="osiris", workload="synthetic", workload_params=_FIG7B_WP,
                n=32, f=f, seed=SEED, deadline=3000.0, label=f"osiris-f{f}",
            )
            for f in (1, 2, 3, 4)
        ] + [
            Point(
                system="rcp", workload="synthetic", workload_params=_FIG7B_WP,
                n=32, f=f, seed=SEED, deadline=3000.0, label=f"rcp-f{f}",
            )
            for f in (1, 2)
        ],
    )

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        return run_spec(self.SPEC).by(lambda p: (p.system, p.f))

    def test_fig7b_fault_scalability(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 7b: throughput vs verifier fault level f (n=32)",
            [results[k] for k in sorted(results)],
        )
        # OsirisBFT degrades gracefully in f…
        assert (
            results[("osiris", 4)].throughput
            > 0.3 * results[("osiris", 1)].throughput
        )
        # …and a heavily-hardened OsirisBFT still beats RCP at f=2
        # (paper: f=6 vs f=2 gives 2.7×; our sizes allow f=4 at n=32)
        assert (
            results[("osiris", 4)].throughput
            > results[("rcp", 2)].throughput
        )
        # RCP pays brutally for f: f=2 halves its parallel groups
        assert (
            results[("rcp", 2)].throughput
            < results[("rcp", 1)].throughput * 1.05
        )
