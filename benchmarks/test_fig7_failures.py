"""Figure 7 — performance under Byzantine faults.

7a: simultaneous failure of every executor at t=45s of a streaming run;
the paper observes fast detection, throughput staying above zero thanks
to previously role-switched verifiers, and recovery to roughly half the
pre-failure level.  The verifier-leader variant (Sec 7.4 text) recovers
to the *same* level since executors stay correct.  7b: throughput as
the verifier fault-tolerance level f grows (OsirisBFT f=1..4 vs RCP
f=1..2 on n=32).

7a and the verifier variant are expressed as adversary *campaigns* run
through :mod:`repro.api`: the fault schedule is declarative data, the
robustness numbers (detection latency, goodput dip, recovery) come from
the campaign's recovery report, and the sanitizer pins the safety
verdict.
"""

import pytest

from repro import api
from repro.adversary import Action, Campaign, FaultSpec, Phase
from repro.adversary.library import fig7a
from repro.bench import print_figure, print_series, print_table
from repro.exp import Point, SweepSpec
from repro.exp.spec import kv

SEED = 1
FAIL_AT = 45.0
DURATION = 120.0

_STREAM_WP = kv(
    {
        "n_tasks": int(12.0 * (DURATION - 20.0)),
        "records_per_task": 10,
        "compute_cost": 250e-3,
        "record_bytes": 4096,
        "rate": 12.0,
        "verify_cost_ratio": 0.15,
    }
)

_FAILURE_CONFIG = kv(
    {
        "chunk_bytes": 1_000_000,
        "suspect_timeout": 2.0,
        "cores_per_node": 1,
        "role_switching": True,
        "role_switch_interval": 0.5,
        "switch_patience": 2,
        "switch_cooldown": 3,
    }
)


def _spec(campaign, label):
    return api.DeploymentSpec(
        workload="synthetic",
        workload_params=_STREAM_WP,
        n=14,
        k=3,
        seed=SEED,
        duration=DURATION,
        bandwidth=60e6,
        config=_FAILURE_CONFIG,
        faults=campaign,
        sanitize=True,
        label=label,
    )


class TestFig7aExecutorFailures:
    @pytest.fixture(scope="class")
    def result(self, scenario_cache):
        return scenario_cache(
            "fig7a", lambda: api.run(_spec(fig7a(at=FAIL_AT), "fig7a"))
        )

    def test_fig7a_executor_failures(self, run_once, result):
        r = run_once(lambda: result)
        c = r.extra["cluster"]
        m = c.metrics
        report = r.extra["recovery_report"]
        print_series(
            "Fig 7a: throughput trace, all executors fail at t=45s",
            m.throughput_series(),
            "rec/s",
        )
        before = m.throughput(20.0, FAIL_AT)
        dip = m.throughput(FAIL_AT, FAIL_AT + 10.0)
        after = m.throughput(FAIL_AT + 15.0, DURATION - 10.0)
        print_table(
            "Fig 7a summary",
            ["window", "value"],
            [
                ("before failure (rec/s)", f"{before:.0f}"),
                ("during detection (rec/s)", f"{dip:.0f}"),
                ("after recovery (rec/s)", f"{after:.0f}"),
                ("detection latency (s)", f"{report.detection_latency:.2f}"),
                ("goodput dip depth", f"{report.dip_depth:.2f}"),
                ("safety verdict", "SAFE" if report.safe else "VIOLATED"),
            ],
        )
        # the campaign fired exactly when declared, on every executor
        assert report.injected_at == FAIL_AT
        assert report.actions_applied == len(c.executors)
        # failures detected quickly, all executors blacklisted
        assert report.detections >= 5
        assert report.detection_latency < 10.0
        assert all(
            e.pid in c.coordinators[0].blacklist for e in c.executors
        )
        # throughput does not drop to zero (role-switched verifiers) and
        # recovers to a meaningful fraction of the pre-failure level
        assert after > 0.25 * before, (before, after)
        # no corrupt record was ever accepted: sanitizer-verified
        assert report.safe is True
        assert m.records_accepted == m.tasks_completed * 10

    def test_fig7a_detection_is_fast(self, result):
        m = result.extra["cluster"].metrics
        first_detection = min(t for t, _, _ in m.faults_detected)
        assert FAIL_AT <= first_detection <= FAIL_AT + 10.0


class TestFig7VerifierFailures:
    CAMPAIGN = Campaign(
        name="fig7-verifier-leaders",
        note="worker sub-cluster leaders turn negligent at t=45s",
        phases=(
            Phase(
                at=FAIL_AT,
                name="negligence",
                actions=tuple(
                    Action(
                        op="set",
                        select=pid,
                        fault=FaultSpec(
                            role="verifier", kind="negligent-leader"
                        ),
                    )
                    # leaders of the two worker sub-clusters (cluster 0
                    # is the coordinator cluster)
                    for pid in ("v3", "v6")
                ),
            ),
        ),
    )

    def test_fig7_verifier_failures(self, run_once, scenario_cache):
        """Negligent sub-cluster leaders: elections replace them and
        throughput recovers fully (executors were never wrong)."""
        r = run_once(
            lambda: scenario_cache(
                "fig7v",
                lambda: api.run(_spec(self.CAMPAIGN, "fig7v")),
            )
        )
        c = r.extra["cluster"]
        m = c.metrics
        report = r.extra["recovery_report"]
        before = m.throughput(20.0, FAIL_AT)
        after = m.throughput(FAIL_AT + 20.0, DURATION - 10.0)
        print_table(
            "Sec 7.4 verifier-leader failures",
            ["window", "value"],
            [
                ("before (rec/s)", f"{before:.0f}"),
                ("after recovery (rec/s)", f"{after:.0f}"),
                ("elections", str(len(m.leader_elections))),
                ("safety verdict", "SAFE" if report.safe else "VIOLATED"),
            ],
        )
        assert report.injected_at == FAIL_AT
        assert len(m.leader_elections) >= 1
        # recovery to the same level (tolerant band): executors correct
        assert after >= 0.6 * before
        # no executor was blacklisted for a verifier's fault
        assert not any(
            pid.startswith("e") for pid in c.coordinators[0].blacklist
        )
        assert report.safe is True


_FIG7B_WP = kv(
    {
        "n_tasks": 240,
        "records_per_task": 10,
        "compute_cost": 300e-3,
        "record_bytes": 4096,
        "verify_cost_ratio": 0.05,
    }
)


class TestFig7bFaultScalability:
    N = 32

    SPEC = SweepSpec.of(
        "fig7b",
        [
            Point(
                system="osiris", workload="synthetic", workload_params=_FIG7B_WP,
                n=32, f=f, seed=SEED, deadline=3000.0, label=f"osiris-f{f}",
            )
            for f in (1, 2, 3, 4)
        ] + [
            Point(
                system="rcp", workload="synthetic", workload_params=_FIG7B_WP,
                n=32, f=f, seed=SEED, deadline=3000.0, label=f"rcp-f{f}",
            )
            for f in (1, 2)
        ],
    )

    @pytest.fixture(scope="class")
    def res(self, run_spec):
        return run_spec(self.SPEC).by(lambda p: (p.system, p.f))

    def test_fig7b_fault_scalability(self, run_once, res):
        results = run_once(lambda: res)
        print_figure(
            "Fig 7b: throughput vs verifier fault level f (n=32)",
            [results[k] for k in sorted(results)],
        )
        # OsirisBFT degrades gracefully in f…
        assert (
            results[("osiris", 4)].throughput
            > 0.3 * results[("osiris", 1)].throughput
        )
        # …and a heavily-hardened OsirisBFT still beats RCP at f=2
        # (paper: f=6 vs f=2 gives 2.7×; our sizes allow f=4 at n=32)
        assert (
            results[("osiris", 4)].throughput
            > results[("rcp", 2)].throughput
        )
        # RCP pays brutally for f: f=2 halves its parallel groups
        assert (
            results[("rcp", 2)].throughput
            < results[("rcp", 1)].throughput * 1.05
        )
