"""Tests for the ZFT and RCP baselines and the store cost models."""

import pytest

from repro.apps.synthetic import SyntheticApp, make_compute_task, make_update_task
from repro.baselines import (
    basil_updates_per_sec,
    build_rcp_cluster,
    build_zft_cluster,
    kauri_updates_per_sec,
    rcp_parallel_tasks,
)
from repro.errors import BenchmarkError, ProtocolError


def app():
    return SyntheticApp(records_per_task=5, compute_cost=5e-3)


def compute_tasks(n, period=0.005):
    return [(i * period, make_compute_task(i)) for i in range(n)]


def mixed_tasks(n):
    out, t = [], 0.0
    for i in range(n):
        out.append((t, make_update_task(i)))
        t += 0.005
        out.append((t, make_compute_task(i)))
        t += 0.005
    return out


class TestZft:
    def test_all_tasks_complete(self):
        c = build_zft_cluster(app(), workload=iter(compute_tasks(30)), n_workers=8)
        c.start()
        c.run(until=10.0)
        assert c.metrics.tasks_completed == 30
        assert c.metrics.records_accepted == 150

    def test_no_replication(self):
        c = build_zft_cluster(app(), workload=iter(compute_tasks(30)), n_workers=8)
        c.start()
        c.run(until=10.0)
        assert sum(w.tasks_executed for w in c.workers) == 30

    def test_all_workers_participate(self):
        c = build_zft_cluster(app(), workload=iter(compute_tasks(32)), n_workers=8)
        c.start()
        c.run(until=10.0)
        assert all(w.tasks_executed > 0 for w in c.workers)

    def test_single_node_deployment(self):
        c = build_zft_cluster(app(), workload=iter(compute_tasks(5)), n_workers=1)
        c.start()
        c.run(until=10.0)
        assert c.metrics.tasks_completed == 5

    def test_state_updates_reach_all_workers(self):
        c = build_zft_cluster(app(), workload=iter(mixed_tasks(10)), n_workers=4)
        c.start()
        c.run(until=10.0)
        assert all(w.store.applied_ts == 10 for w in c.workers)

    def test_invalid_worker_count(self):
        with pytest.raises(ProtocolError):
            build_zft_cluster(app(), n_workers=0)

    def test_latency_lower_than_osiris(self):
        """ZFT has no verification in the critical path: its latency
        should be below an equivalent OsirisBFT run."""
        from repro.core import build_osiris_cluster
        from tests.core.helpers import fast_config

        z = build_zft_cluster(app(), workload=iter(compute_tasks(20)), n_workers=10)
        z.start()
        z.run(until=10.0)
        o = build_osiris_cluster(
            app(),
            workload=iter(compute_tasks(20)),
            n_workers=10,
            k=2,
            config=fast_config(),
        )
        o.start()
        o.run(until=10.0)
        assert z.metrics.mean_latency() < o.metrics.mean_latency()


class TestRcp:
    def test_all_tasks_complete(self):
        c = build_rcp_cluster(app(), workload=iter(compute_tasks(30)), n_workers=9)
        c.start()
        c.run(until=10.0)
        assert c.metrics.tasks_completed == 30
        assert c.metrics.records_accepted == 150

    def test_computation_replicated_2f_plus_1_times(self):
        c = build_rcp_cluster(
            app(), workload=iter(compute_tasks(30)), n_workers=9, f=1
        )
        c.start()
        c.run(until=10.0)
        assert sum(w.tasks_executed for w in c.workers) == 30 * 3

    def test_f2_replication_factor(self):
        c = build_rcp_cluster(
            app(), workload=iter(compute_tasks(10)), n_workers=10, f=2
        )
        c.start()
        c.run(until=10.0)
        assert c.metrics.tasks_completed == 10
        assert sum(w.tasks_executed for w in c.workers) == 10 * 5

    def test_leftover_workers_idle(self):
        c = build_rcp_cluster(app(), n_workers=11, f=1)
        assert c.idle_workers == 2
        assert len(c.workers) == 9

    def test_too_few_workers_rejected(self):
        with pytest.raises(ProtocolError):
            build_rcp_cluster(app(), n_workers=2, f=1)

    def test_state_updates_reach_all_members(self):
        c = build_rcp_cluster(app(), workload=iter(mixed_tasks(8)), n_workers=9)
        c.start()
        c.run(until=10.0)
        assert all(w.store.applied_ts == 8 for w in c.workers)

    def test_one_crashed_replica_tolerated(self):
        c = build_rcp_cluster(app(), workload=iter(compute_tasks(12)), n_workers=9)
        c.workers[4].crash()  # member of cluster 1
        c.start()
        c.run(until=10.0)
        assert c.metrics.tasks_completed == 12

    def test_parallel_task_formula(self):
        assert rcp_parallel_tasks(32, 1) == 10
        assert rcp_parallel_tasks(32, 2) == 6
        assert rcp_parallel_tasks(100, 0) == 100


class TestOsirisBeatsRcp:
    def test_osiris_higher_throughput_same_cluster(self):
        """The headline: same hardware, same workload, OsirisBFT finishes
        the backlog sooner because it never replicates computation."""
        from repro.core import build_osiris_cluster
        from tests.core.helpers import fast_config

        heavy = SyntheticApp(records_per_task=5, compute_cost=50e-3)
        n, tasks = 12, compute_tasks(60, period=0.001)
        r = build_rcp_cluster(heavy, workload=iter(list(tasks)), n_workers=n)
        r.start()
        r.run(until=60.0)
        o = build_osiris_cluster(
            heavy,
            workload=iter(list(tasks)),
            n_workers=n,
            k=2,
            config=fast_config(role_switching=False),
        )
        o.start()
        o.run(until=60.0)
        assert o.metrics.tasks_completed == r.metrics.tasks_completed == 60
        assert o.metrics.mean_latency() < r.metrics.mean_latency()


class TestStoreModels:
    def test_kauri_grows_with_n(self):
        assert kauri_updates_per_sec(32) > kauri_updates_per_sec(4)

    def test_basil_declines_with_n(self):
        assert basil_updates_per_sec(32) < basil_updates_per_sec(4)

    def test_kauri_above_basil(self):
        for n in (4, 8, 16, 32):
            assert kauri_updates_per_sec(n) > basil_updates_per_sec(n)

    def test_paper_range(self):
        for n in (4, 8, 16, 32):
            assert 1_000 <= basil_updates_per_sec(n) <= 10_000
            assert 1_000 <= kauri_updates_per_sec(n) <= 10_000

    def test_invalid_n(self):
        with pytest.raises(BenchmarkError):
            kauri_updates_per_sec(0)
        with pytest.raises(BenchmarkError):
            basil_updates_per_sec(0)
