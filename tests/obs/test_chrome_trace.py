"""Chrome ``trace_event`` exporter tests: structural validity of the
emitted JSON, span nesting per track, and a Fig 7a-style recovery run
whose fault-injection and recovery events must appear on the timeline."""

import json

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import CorruptRecordFault
from repro.obs import ChromeTraceSink, CollectorSink, FaultDetected

from .helpers import traced_cluster

VALID_PHASES = {"M", "X", "b", "e", "i"}


def chrome_run(tmp_path, **kwargs):
    path = str(tmp_path / "trace.json")
    sink = ChromeTraceSink(path)
    cluster = traced_cluster(sinks=[sink], **kwargs)
    sink.close()
    with open(path) as fh:
        return json.load(fh), cluster


class TestTraceFormat:
    def test_document_shape(self, tmp_path):
        doc, _ = chrome_run(tmp_path)
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) > 0

    def test_every_event_well_formed(self, tmp_path):
        doc, _ = chrome_run(tmp_path)
        for ev in doc["traceEvents"]:
            assert ev["ph"] in VALID_PHASES
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert "name" in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float))
                assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_metadata_names_processes_and_threads(self, tmp_path):
        doc, _ = chrome_run(tmp_path)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        # every simulated role group that did CPU work is named, plus the
        # synthetic links/cluster groups
        assert "links" in process_names
        assert "cluster" in process_names
        assert any(p.startswith("e") for p in process_names)
        assert "transfers" in thread_names

    def test_async_pairs_balanced(self, tmp_path):
        doc, _ = chrome_run(tmp_path)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) > 0
        assert {e["id"] for e in begins} == {e["id"] for e in ends}
        by_id = {e["id"]: e for e in begins}
        for end in ends:
            assert end["ts"] >= by_id[end["id"]]["ts"]

    def test_cpu_spans_nest_per_track(self, tmp_path):
        """X slices on one (pid, tid) track must not overlap: the exporter
        gives each simulated core its own track, and a core runs one task
        at a time."""
        doc, _ = chrome_run(tmp_path)
        tracks = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        assert tracks, "expected at least one CPU track"
        for spans in tracks.values():
            spans.sort(key=lambda e: e["ts"])
            for prev, cur in zip(spans, spans[1:]):
                assert cur["ts"] >= prev["ts"] + prev["dur"] - 1e-6

    def test_instant_markers_carry_scope(self, tmp_path):
        doc, _ = chrome_run(tmp_path)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants
        for ev in instants:
            assert ev["s"] == "t"

    def test_write_idempotent(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path)
        traced_cluster(sinks=[sink])
        sink.write()
        sink.close()  # second write must be a no-op, not a duplicate
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) > 0


class TestRecoveryTimeline:
    """Fig 7a shape: executors start corrupting records mid-run; the
    timeline must show the fault injections and the recovery machinery."""

    def run_recovery(self, tmp_path):
        app = SyntheticApp(records_per_task=4, compute_cost=20e-3)
        n_tasks = 60
        workload = [(i / 12.0, make_compute_task(i)) for i in range(n_tasks)]
        config = OsirisConfig(
            f=1,
            chunk_bytes=4096,
            suspect_timeout=2.0,
            cores_per_node=1,
            role_switching=True,
            role_switch_interval=0.5,
            switch_patience=2,
            switch_cooldown=3,
        )
        activate = 1.5
        cluster = build_osiris_cluster(
            app,
            workload=iter(workload),
            n_workers=14,
            k=3,
            seed=7,
            config=config,
            executor_faults={
                f"e{i}": CorruptRecordFault(activate_at=activate)
                for i in range(5)
            },
        )
        path = str(tmp_path / "recovery.json")
        chrome = ChromeTraceSink(path)
        collector = CollectorSink()
        cluster.bus.attach(chrome)
        cluster.bus.attach(collector)
        cluster.start()
        cluster.run(until=120.0)
        chrome.close()
        with open(path) as fh:
            return json.load(fh), collector, cluster, activate

    def test_fault_and_recovery_events_on_timeline(self, tmp_path):
        doc, collector, cluster, activate = self.run_recovery(tmp_path)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        names = {e["name"] for e in instants}
        assert any(n.startswith("fault-detected") for n in names)
        assert any(
            n.startswith(("task-reassigned", "task-fallback", "role-switch"))
            for n in names
        )
        # injected faults fire only after activation, and so must the
        # detections plotted on the timeline
        detections = [e for e in collector.of(FaultDetected)]
        assert detections
        assert min(e.time for e in detections) >= activate
        # the run still makes progress: recovery is visible, not just the
        # failure
        assert cluster.metrics.tasks_completed == 60
        assert cluster.metrics.faults_detected  # hub saw the same faults
