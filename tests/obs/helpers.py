"""Shared helpers for observability tests: build a small deployment with
sinks attached *before* the workload starts."""

from __future__ import annotations

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, build_osiris_cluster


def traced_cluster(
    sinks=(),
    n_tasks=8,
    n_workers=8,
    k=1,
    seed=3,
    until=30.0,
    config=None,
    **kwargs,
):
    """Build a cluster, attach ``sinks``, stream a compute workload."""
    app = SyntheticApp(records_per_task=4, compute_cost=5e-3)
    workload = [(i * 0.01, make_compute_task(i)) for i in range(n_tasks)]
    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=n_workers,
        k=k,
        seed=seed,
        config=config
        or OsirisConfig(suspect_timeout=60.0, chunk_bytes=4096),
        **kwargs,
    )
    for sink in sinks:
        cluster.bus.attach(sink)
    cluster.start()
    cluster.run(until=until)
    return cluster
