"""Determinism contract of the bus: tracing is read-only with respect to
the simulation.  Same-seed runs yield byte-identical JSONL traces, and a
fully-instrumented run measures exactly what an uninstrumented one does."""

import hashlib
import io
import json
import pathlib

from repro.obs import (
    CATEGORY_CPU,
    CATEGORY_KERNEL,
    CATEGORY_NET,
    CollectorSink,
    JsonlTraceSink,
)

from .helpers import traced_cluster


def jsonl_run(seed=3):
    buf = io.StringIO()
    sink = JsonlTraceSink(buf)
    cluster = traced_cluster(sinks=[sink], seed=seed)
    return buf.getvalue(), sink, cluster


class TestByteIdenticalTraces:
    def test_same_seed_runs_produce_identical_jsonl(self):
        text_a, sink_a, _ = jsonl_run(seed=3)
        text_b, sink_b, _ = jsonl_run(seed=3)
        assert sink_a.event_count == sink_b.event_count > 0
        assert text_a.encode() == text_b.encode()

    def test_different_seeds_differ(self):
        # sanity: the equality above is not vacuous
        text_a, _, _ = jsonl_run(seed=3)
        text_b, _, _ = jsonl_run(seed=4)
        assert text_a != text_b

    def test_trace_is_nonempty_and_line_structured(self):
        text, sink, _ = jsonl_run()
        lines = text.splitlines()
        assert len(lines) == sink.event_count
        import json

        kinds = {json.loads(line)["kind"] for line in lines}
        assert "task-submitted" in kinds
        assert "cpu-span" in kinds
        assert "link-transfer" in kinds
        assert "consensus-commit" in kinds


class TestGoldenTrace:
    """Cross-session determinism: the fig5 MM n=8 trace is pinned to a
    committed fingerprint, so any refactor that silently perturbs event
    order, float formatting, or scheduling shows up as a digest change
    — not just as a same-process equality that both runs could share."""

    FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "fig5_mm_n8.json"

    def test_fig5_mm_n8_trace_matches_committed_fingerprint(self):
        from repro import api
        from repro.bench import anomaly_bench

        expected = json.loads(self.FIXTURE.read_text())
        buf = io.StringIO()
        api.run(
            api.DeploymentSpec(
                workload=anomaly_bench("MM", n_tasks=expected["n_tasks"],
                                       seed=expected["seed"]),
                n=8,
                seed=expected["seed"],
                sinks=[JsonlTraceSink(buf)],
            )
        )
        text = buf.getvalue()
        assert len(text.splitlines()) == expected["lines"]
        assert (
            hashlib.sha256(text.encode()).hexdigest() == expected["sha256"]
        ), (
            "same-seed trace diverged from the committed golden "
            "fingerprint — a refactor changed observable behaviour"
        )


class TestInstrumentationNeutrality:
    def metrics_fingerprint(self, cluster):
        m = cluster.metrics
        return (
            m.records_accepted,
            m.tasks_completed,
            tuple(m.completion_times),
            tuple(m.task_latencies),
            tuple(sorted(m._record_bins.items())),
            tuple(m.faults_detected),
            tuple(m.reassignments),
        )

    def test_sinks_do_not_perturb_measurements(self):
        bare = traced_cluster(sinks=[])
        full = traced_cluster(
            sinks=[
                CollectorSink(),
                CollectorSink(frozenset({CATEGORY_CPU, CATEGORY_NET})),
                JsonlTraceSink(io.StringIO()),
            ]
        )
        assert bare.metrics.tasks_completed > 0
        assert self.metrics_fingerprint(bare) == self.metrics_fingerprint(full)

    def test_sim_state_identical_with_and_without_sinks(self):
        bare = traced_cluster(sinks=[])
        full = traced_cluster(sinks=[CollectorSink()])
        assert bare.sim.now == full.sim.now
        # KernelEventFired events are themselves not simulator events, so
        # the fired count must agree exactly
        assert bare.sim.events_fired == full.sim.events_fired

    def test_kernel_events_match_collector_count(self):
        collector = CollectorSink(frozenset({CATEGORY_KERNEL}))
        cluster = traced_cluster(sinks=[collector])
        assert len(collector.events) == cluster.sim.events_fired
