"""Unit tests for the event bus: attach/detach semantics, category
filtering, the ``wants`` fast-path guard, and event serialization."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    CATEGORY_CPU,
    CATEGORY_FAULT,
    CATEGORY_TASK,
    CollectorSink,
    EventBus,
    FaultDetected,
    Sink,
    TaskSubmitted,
)


def submitted(t=1.0, task_id="t0"):
    return TaskSubmitted(time=t, pid="ip0", task_id=task_id)


def fault(t=2.0):
    return FaultDetected(time=t, pid="v0", reason="corrupt", culprit="e0")


class ClosableSink(CollectorSink):
    def __init__(self, categories=None):
        super().__init__(categories)
        self.closed = False

    def close(self):
        self.closed = True


class TestAttachDetach:
    def test_attach_returns_sink(self):
        bus = EventBus()
        sink = CollectorSink()
        assert bus.attach(sink) is sink
        assert bus.sinks == (sink,)

    def test_double_attach_rejected(self):
        bus = EventBus()
        sink = CollectorSink()
        bus.attach(sink)
        with pytest.raises(ObservabilityError):
            bus.attach(sink)

    def test_detach_unattached_rejected(self):
        bus = EventBus()
        with pytest.raises(ObservabilityError):
            bus.detach(CollectorSink())

    def test_detach_stops_delivery(self):
        bus = EventBus()
        sink = CollectorSink()
        bus.attach(sink)
        bus.emit(submitted())
        bus.detach(sink)
        bus.emit(submitted())
        assert len(sink.events) == 1

    def test_close_detaches_and_closes_all(self):
        bus = EventBus()
        a, b = ClosableSink(), ClosableSink()
        bus.attach(a)
        bus.attach(b)
        bus.close()
        assert a.closed and b.closed
        assert bus.sinks == ()
        assert not bus.wants(CATEGORY_TASK)

    def test_emission_follows_attach_order(self):
        bus = EventBus()
        order = []

        class Tagged(Sink):
            def __init__(self, tag):
                self.tag = tag

            def handle(self, event):
                order.append(self.tag)

        bus.attach(Tagged("first"))
        bus.attach(Tagged("second"))
        bus.emit(submitted())
        assert order == ["first", "second"]


class TestCategoryFiltering:
    def test_no_sinks_wants_nothing(self):
        bus = EventBus()
        assert not bus.wants(CATEGORY_TASK)
        assert not bus.wants(CATEGORY_CPU)

    def test_none_categories_subscribes_all(self):
        bus = EventBus()
        bus.attach(CollectorSink())
        assert bus.wants(CATEGORY_TASK)
        assert bus.wants(CATEGORY_CPU)

    def test_scoped_sink_scopes_wants(self):
        bus = EventBus()
        bus.attach(CollectorSink(frozenset({CATEGORY_TASK})))
        assert bus.wants(CATEGORY_TASK)
        assert not bus.wants(CATEGORY_CPU)

    def test_emit_filters_per_sink(self):
        bus = EventBus()
        tasks = CollectorSink(frozenset({CATEGORY_TASK}))
        faults = CollectorSink(frozenset({CATEGORY_FAULT}))
        everything = CollectorSink()
        for s in (tasks, faults, everything):
            bus.attach(s)
        bus.emit(submitted())
        bus.emit(fault())
        assert [e.kind for e in tasks.events] == ["task-submitted"]
        assert [e.kind for e in faults.events] == ["fault-detected"]
        assert len(everything.events) == 2

    def test_wants_updates_on_detach(self):
        bus = EventBus()
        sink = CollectorSink(frozenset({CATEGORY_TASK}))
        bus.attach(sink)
        assert bus.wants(CATEGORY_TASK)
        bus.detach(sink)
        assert not bus.wants(CATEGORY_TASK)

    def test_collector_of_filters_by_type(self):
        bus = EventBus()
        sink = CollectorSink()
        bus.attach(sink)
        bus.emit(submitted())
        bus.emit(fault())
        assert [type(e) for e in sink.of(TaskSubmitted)] == [TaskSubmitted]


class TestEventModel:
    def test_as_dict_carries_kind_and_category(self):
        d = submitted(t=1.5, task_id="t9").as_dict()
        assert d == {
            "kind": "task-submitted",
            "cat": "task",
            "time": 1.5,
            "pid": "ip0",
            "task_id": "t9",
        }

    def test_events_are_immutable(self):
        event = submitted()
        with pytest.raises(AttributeError):
            event.time = 99.0

    def test_base_sink_handle_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Sink().handle(submitted())
