"""Dispatch-table coverage: every protocol message class is routable.

The handler tables are precomputed at construction (no per-delivery
``getattr``), which makes an unregistered handler a silent drop.  This
test pins the contract: for every message class in
:mod:`repro.core.messages` and :mod:`repro.consensus.messages`, at least
one role in a standard deployment has a registered handler.
"""

import inspect

import repro.consensus.messages as consensus_messages
import repro.core.messages as core_messages
from repro.apps.synthetic import SyntheticApp
from repro.core import build_osiris_cluster
from repro.net.message import Message
from repro.sim.process import SimProcess


def message_classes(module):
    return [
        name
        for name in module.__all__
        if inspect.isclass(getattr(module, name))
        and issubclass(getattr(module, name), Message)
    ]


def deployment_handler_names():
    cluster = build_osiris_cluster(
        SyntheticApp(), workload=None, n_workers=8, k=2, seed=0
    )
    covered = set()
    for host in cluster.hosts.values():
        covered.update(host.core.handlers())
    return covered


class TestHandlerCoverage:
    def test_every_protocol_message_has_a_handler(self):
        covered = deployment_handler_names()
        missing = [
            name
            for module in (core_messages, consensus_messages)
            for name in message_classes(module)
            if name not in covered
        ]
        assert missing == [], f"messages no deployed role can handle: {missing}"

    def test_simprocess_table_matches_on_methods(self):
        """The precomputed SimProcess table equals the on_* scan."""

        class P(SimProcess):
            def on_Foo(self, msg):
                pass

            def on_Bar(self, msg):
                pass

        from repro.sim import Simulator

        p = P(Simulator(seed=0), "p0", cores=1)
        assert set(p._handlers) >= {"Foo", "Bar"}

    def test_unknown_message_counted_not_raised(self):
        from repro.sim import Simulator

        p = SimProcess(Simulator(seed=0), "p0", cores=1)
        p.deliver(object())
        assert p.unhandled_messages == 1
