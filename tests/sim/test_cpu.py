"""Tests for the multi-core CPU model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import CpuBank, Simulator


class TestSingleCore:
    def test_jobs_serialize_on_one_core(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        bank.submit(2.0, lambda: done.append(sim.now))
        bank.submit(3.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0, 5.0]

    def test_job_submitted_later_starts_after_now(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        sim.schedule(10.0, lambda: bank.submit(1.0, lambda: done.append(sim.now)))
        sim.run()
        assert done == [11.0]

    def test_zero_cost_job_completes_immediately(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        bank.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_cost_rejected(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        with pytest.raises(SimulationError):
            bank.submit(-1.0, lambda: None)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            CpuBank(Simulator(), cores=0)


class TestMultiCore:
    def test_parallel_jobs_overlap_across_cores(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        done = []
        bank.submit(2.0, lambda: done.append(("a", sim.now)))
        bank.submit(2.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_third_job_waits_for_earliest_core(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        done = []
        bank.submit(2.0, lambda: done.append(sim.now))
        bank.submit(5.0, lambda: done.append(sim.now))
        bank.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        # third job runs on the core that frees at t=2
        assert done == [2.0, 3.0, 5.0]

    @given(
        costs=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        cores=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, costs, cores):
        """Makespan of greedy list scheduling obeys classic bounds."""
        sim = Simulator()
        bank = CpuBank(sim, cores=cores)
        for c in costs:
            bank.submit(c, lambda: None)
        sim.run()
        makespan = sim.now
        lower = max(max(costs), sum(costs) / cores)
        assert makespan >= lower - 1e-9
        assert makespan <= sum(costs) + 1e-9


class TestAccounting:
    def test_busy_seconds_accumulates(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        bank.submit(2.0, lambda: None)
        bank.submit(3.0, lambda: None)
        sim.run()
        assert bank.busy_seconds == pytest.approx(5.0)
        assert bank.jobs_done == 2

    def test_utilization(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        bank.submit(2.0, lambda: None)
        bank.submit(2.0, lambda: None)
        sim.run(until=4.0)
        assert bank.utilization(0.0, 4.0) == pytest.approx(0.5)

    def test_utilization_empty_window_rejected(self):
        bank = CpuBank(Simulator(), cores=1)
        with pytest.raises(SimulationError):
            bank.utilization(1.0, 1.0)

    def test_backlog_seconds(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        bank.submit(5.0, lambda: None)
        bank.submit(5.0, lambda: None)
        assert bank.backlog_seconds() == pytest.approx(10.0)

    def test_cancelled_completion_does_not_fire(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        handle = bank.submit(1.0, done.append, "x")
        handle.cancel()
        sim.run()
        assert done == []

    def test_earliest_free_reflects_queue(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        bank.submit(4.0, lambda: None)
        assert bank.earliest_free() == pytest.approx(4.0)
