"""Tests for the multi-core CPU model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.obs.events import CATEGORY_CPU, CpuCancel
from repro.obs.sinks import CollectorSink
from repro.sim import CpuBank, Simulator


class TestSingleCore:
    def test_jobs_serialize_on_one_core(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        bank.submit(2.0, lambda: done.append(sim.now))
        bank.submit(3.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0, 5.0]

    def test_job_submitted_later_starts_after_now(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        sim.schedule(10.0, lambda: bank.submit(1.0, lambda: done.append(sim.now)))
        sim.run()
        assert done == [11.0]

    def test_zero_cost_job_completes_immediately(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        bank.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_cost_rejected(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        with pytest.raises(SimulationError):
            bank.submit(-1.0, lambda: None)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            CpuBank(Simulator(), cores=0)


class TestMultiCore:
    def test_parallel_jobs_overlap_across_cores(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        done = []
        bank.submit(2.0, lambda: done.append(("a", sim.now)))
        bank.submit(2.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_third_job_waits_for_earliest_core(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        done = []
        bank.submit(2.0, lambda: done.append(sim.now))
        bank.submit(5.0, lambda: done.append(sim.now))
        bank.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        # third job runs on the core that frees at t=2
        assert done == [2.0, 3.0, 5.0]

    @given(
        costs=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        cores=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, costs, cores):
        """Makespan of greedy list scheduling obeys classic bounds."""
        sim = Simulator()
        bank = CpuBank(sim, cores=cores)
        for c in costs:
            bank.submit(c, lambda: None)
        sim.run()
        makespan = sim.now
        lower = max(max(costs), sum(costs) / cores)
        assert makespan >= lower - 1e-9
        assert makespan <= sum(costs) + 1e-9


class TestAccounting:
    def test_busy_seconds_accumulates(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        bank.submit(2.0, lambda: None)
        bank.submit(3.0, lambda: None)
        sim.run()
        assert bank.busy_seconds == pytest.approx(5.0)
        assert bank.jobs_done == 2

    def test_utilization(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        bank.submit(2.0, lambda: None)
        bank.submit(2.0, lambda: None)
        sim.run(until=4.0)
        assert bank.utilization(0.0, 4.0) == pytest.approx(0.5)

    def test_utilization_empty_window_rejected(self):
        bank = CpuBank(Simulator(), cores=1)
        with pytest.raises(SimulationError):
            bank.utilization(1.0, 1.0)

    def test_backlog_seconds(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        bank.submit(5.0, lambda: None)
        bank.submit(5.0, lambda: None)
        assert bank.backlog_seconds() == pytest.approx(10.0)

    def test_cancelled_completion_does_not_fire(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        handle = bank.submit(1.0, done.append, "x")
        handle.cancel()
        sim.run()
        assert done == []

    def test_earliest_free_reflects_queue(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        bank.submit(4.0, lambda: None)
        assert bank.earliest_free() == pytest.approx(4.0)


class TestCancellation:
    """Cancelling a submitted job must roll back its unrun occupancy.

    Regression for the leak where ``free_at`` and ``busy_seconds`` stayed
    charged for the full cost of a cancelled job, so a task reassigned
    away from an executor (the Fig 7 speculative-reassignment path) kept
    blocking the core and inflating utilization.
    """

    def test_cancel_queued_job_frees_the_core(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        bank.submit(1.0, lambda: None)  # runs [0, 1)
        h2 = bank.submit(1.0, lambda: done.append(("j2", sim.now)))  # queued [1, 2)
        h2.cancel()
        bank.submit(1.0, lambda: done.append(("j3", sim.now)))
        sim.run()
        # j3 reuses the slot the cancelled j2 held; without rollback it
        # would have completed at 3.0
        assert done == [("j3", 2.0)]
        assert bank.busy_seconds == pytest.approx(2.0)

    def test_cancel_before_start_reclaims_full_cost(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        bank.submit(1.0, lambda: None)
        handle = bank.submit(5.0, lambda: None)
        handle.cancel()
        sim.run()
        assert bank.busy_seconds == pytest.approx(1.0)
        assert bank.cancelled_seconds == pytest.approx(5.0)
        assert bank.cancelled_busy_seconds == pytest.approx(0.0)

    def test_cancel_mid_flight_keeps_consumed_prefix(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        handle = bank.submit(1.0, lambda: done.append(sim.now))
        sim.schedule(0.4, handle.cancel)
        sim.run()
        assert done == []
        # 0.4s of work actually happened on the core before cancellation
        assert bank.busy_seconds == pytest.approx(0.4)
        assert bank.cancelled_busy_seconds == pytest.approx(0.4)
        assert bank.cancelled_seconds == pytest.approx(0.6)
        # the core is free again at the cancel point
        assert bank.earliest_free() == pytest.approx(0.4)

    def test_reassigned_task_does_not_block_successor(self):
        """Fig 7 shape: a long task is reassigned away mid-flight; the
        executor's next task must start immediately, not after the
        phantom completion of the cancelled one."""
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        handle = bank.submit(10.0, lambda: done.append(("old", sim.now)))

        def reassign():
            handle.cancel()
            bank.submit(2.0, lambda: done.append(("new", sim.now)))

        sim.schedule(0.5, reassign)
        sim.run()
        assert done == [("new", 2.5)]
        assert bank.busy_seconds == pytest.approx(0.5 + 2.0)

    def test_cancel_mid_queue_leaves_successors_in_place(self):
        """Cancelling a job that is *not* the tail of its core's queue
        cannot rewind ``free_at`` (later completions are already
        scheduled), but still un-charges the unrun cost."""
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        done = []
        bank.submit(1.0, lambda: None)  # [0, 1)
        h2 = bank.submit(1.0, lambda: done.append(("j2", sim.now)))  # [1, 2)
        bank.submit(1.0, lambda: done.append(("j3", sim.now)))  # [2, 3)
        h2.cancel()
        sim.run()
        assert done == [("j3", 3.0)]
        assert bank.busy_seconds == pytest.approx(2.0)

    def test_cancel_after_completion_is_noop(self):
        sim = Simulator()
        bank = CpuBank(sim, cores=1)
        handle = bank.submit(1.0, lambda: None)
        sim.run()
        before = (bank.busy_seconds, bank.cancelled_seconds, bank.jobs_cancelled)
        handle.cancel()
        handle.cancel()
        assert (
            bank.busy_seconds,
            bank.cancelled_seconds,
            bank.jobs_cancelled,
        ) == before

    def test_conservation_identity_after_drain(self):
        """busy == completed + consumed-by-cancelled once the bank drains —
        the invariant the repro.check sanitizer audits."""
        sim = Simulator()
        bank = CpuBank(sim, cores=2)
        handles = [bank.submit(float(i + 1), lambda: None) for i in range(4)]
        sim.schedule(1.5, handles[2].cancel)
        sim.schedule(0.2, handles[3].cancel)
        sim.run()
        assert bank.busy_seconds == pytest.approx(
            bank.completed_seconds + bank.cancelled_busy_seconds
        )
        assert bank.jobs_completed + bank.jobs_cancelled == bank.jobs_done

    def test_cancel_emits_cpu_cancel_event(self):
        sim = Simulator()
        collector = CollectorSink(categories=frozenset({CATEGORY_CPU}))
        sim.bus.attach(collector)
        bank = CpuBank(sim, cores=1, owner="e0", name="app")
        handle = bank.submit(2.0, lambda: None)
        sim.schedule(0.5, handle.cancel)
        sim.run()
        cancels = collector.of(CpuCancel)
        assert len(cancels) == 1
        ev = cancels[0]
        assert ev.pid == "e0"
        assert ev.bank == "app"
        assert ev.time == pytest.approx(0.5)
        assert ev.end == pytest.approx(2.0)
        assert ev.reclaimed == pytest.approx(1.5)
