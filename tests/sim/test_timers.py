"""Timer lifecycle on SimProcess: re-arming, cancellation after fire,
and crash interactions — the edge cases the named-timer table must get
right for reassignment/negligent-leader timeouts to be trustworthy."""

from repro.sim import Simulator
from repro.sim.process import SimProcess


def make_proc(pid="p0"):
    sim = Simulator(seed=1)
    return sim, SimProcess(sim, pid, cores=1)


class TestArming:
    def test_timer_fires_with_args(self):
        sim, p = make_proc()
        fired = []
        p.set_timer("t", 0.5, fired.append, "x")
        sim.run(until=1.0)
        assert fired == ["x"]

    def test_rearming_replaces_deadline(self):
        sim, p = make_proc()
        fired = []
        p.set_timer("t", 0.2, fired.append, "early")
        p.set_timer("t", 0.8, fired.append, "late")
        sim.run(until=0.5)
        assert fired == []  # the first deadline was cancelled
        sim.run(until=1.0)
        assert fired == ["late"]

    def test_distinct_names_are_independent(self):
        sim, p = make_proc()
        fired = []
        p.set_timer("a", 0.2, fired.append, "a")
        p.set_timer("b", 0.4, fired.append, "b")
        p.cancel_timer("a")
        sim.run(until=1.0)
        assert fired == ["b"]


class TestCancellation:
    def test_cancel_unarmed_timer_is_noop(self):
        sim, p = make_proc()
        p.cancel_timer("never-armed")  # must not raise

    def test_cancel_after_fire_is_noop(self):
        sim, p = make_proc()
        fired = []
        p.set_timer("t", 0.1, fired.append, 1)
        sim.run(until=1.0)
        assert fired == [1]
        p.cancel_timer("t")  # stale cancel of an already-fired timer

    def test_fired_timer_removes_itself_from_table(self):
        sim, p = make_proc()
        p.set_timer("t", 0.1, lambda: None)
        assert p.timer_armed("t")
        sim.run(until=1.0)
        assert not p.timer_armed("t")
        assert "t" not in p._timers  # no dead handle accumulates

    def test_rearm_from_within_fire_callback_sticks(self):
        """A periodic timer re-arming itself must not be clobbered by the
        just-fired handle's self-removal."""
        sim, p = make_proc()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 3:
                p.set_timer("t", 0.1, tick)

        p.set_timer("t", 0.1, tick)
        sim.run(until=1.0)
        assert len(ticks) == 3
        assert not p.timer_armed("t")


class TestCrash:
    def test_crash_cancels_pending_timers(self):
        sim, p = make_proc()
        fired = []
        p.set_timer("t", 0.5, fired.append, 1)
        p.crash()
        assert p._timers == {}
        sim.run(until=1.0)
        assert fired == []

    def test_crashed_process_refuses_new_timers(self):
        sim, p = make_proc()
        p.crash()
        fired = []
        assert p.set_timer("t", 0.1, fired.append, 1) is None
        assert not p.timer_armed("t")
        sim.run(until=1.0)
        assert fired == []

    def test_crash_between_arm_and_fire_suppresses_callback(self):
        sim, p = make_proc()
        fired = []
        p.set_timer("t", 0.5, fired.append, 1)
        sim.schedule(0.2, p.crash)
        sim.run(until=1.0)
        assert fired == []

    def test_crashed_delivery_dropped(self):
        sim, p = make_proc()
        p.crash()
        p.deliver(object())
        assert p.unhandled_messages == 0  # dropped before dispatch
