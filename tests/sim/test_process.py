"""Tests for the SimProcess base class: dispatch, timers, crash semantics."""

from dataclasses import dataclass

from repro.net.message import Message
from repro.sim import Simulator, SimProcess


@dataclass
class Ping(Message):
    value: int = 0


@dataclass
class Unknown(Message):
    pass


class Echo(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid, cores=2)
        self.seen = []

    def on_Ping(self, msg):
        self.seen.append(msg.value)


class TestDispatch:
    def test_message_routed_to_typed_handler(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        p.deliver(Ping(value=7))
        assert p.seen == [7]

    def test_unknown_message_counted_and_dropped(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        p.deliver(Unknown())
        assert p.seen == []
        assert p.unhandled_messages == 1

    def test_crashed_process_ignores_messages(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        p.crash()
        p.deliver(Ping(value=1))
        assert p.seen == []


class TestTimers:
    def test_timer_fires_after_delay(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        fired = []
        p.set_timer("t", 2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_rearming_timer_cancels_previous(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        fired = []
        p.set_timer("t", 1.0, fired.append, "first")
        p.set_timer("t", 2.0, fired.append, "second")
        sim.run()
        assert fired == ["second"]

    def test_cancel_timer(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        fired = []
        p.set_timer("t", 1.0, fired.append, "x")
        p.cancel_timer("t")
        sim.run()
        assert fired == []

    def test_cancel_unknown_timer_is_noop(self):
        p = Echo(Simulator(), "p0")
        p.cancel_timer("never-set")

    def test_timer_armed(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        assert not p.timer_armed("t")
        p.set_timer("t", 1.0, lambda: None)
        assert p.timer_armed("t")
        sim.run()
        assert not p.timer_armed("t")

    def test_independent_timer_names(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        fired = []
        p.set_timer("a", 1.0, fired.append, "a")
        p.set_timer("b", 2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]


class TestCrash:
    def test_crash_cancels_timers(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        fired = []
        p.set_timer("t", 1.0, fired.append, "x")
        p.crash()
        sim.run()
        assert fired == []

    def test_crash_suppresses_pending_job_completion(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        done = []
        p.run_job(5.0, done.append, "job")
        sim.schedule(1.0, p.crash)
        sim.run()
        assert done == []

    def test_job_completes_when_not_crashed(self):
        sim = Simulator()
        p = Echo(sim, "p0")
        done = []
        p.run_job(1.0, done.append, "job")
        sim.run()
        assert done == ["job"]
