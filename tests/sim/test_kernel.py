"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_nested_scheduling_from_handler(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(2.0, outer)
        sim.run()
        assert fired == [("outer", 2.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert not handle.alive

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        sim.run()
        handle.cancel()
        assert fired == [1]

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_now_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_on_empty_queue(self):
        sim = Simulator()
        assert sim.step() is False

    def test_drained(self):
        sim = Simulator()
        assert sim.drained()
        sim.schedule(1.0, lambda: None)
        assert not sim.drained()
        sim.run()
        assert sim.drained()


class TestRng:
    def test_rng_streams_are_deterministic(self):
        a = Simulator(seed=42).rng("net").random(5)
        b = Simulator(seed=42).rng("net").random(5)
        assert (a == b).all()

    def test_rng_streams_differ_by_name(self):
        sim = Simulator(seed=42)
        a = sim.rng("net").random(5)
        b = sim.rng("cpu").random(5)
        assert not (a == b).all()

    def test_rng_streams_differ_by_seed(self):
        a = Simulator(seed=1).rng("net").random(5)
        b = Simulator(seed=2).rng("net").random(5)
        assert not (a == b).all()

    def test_rng_same_instance_on_repeat_lookup(self):
        sim = Simulator()
        assert sim.rng("x") is sim.rng("x")


class TestDeterminism:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_schedules_produce_identical_traces(self, delays):
        def trace(seed):
            sim = Simulator(seed=seed)
            out = []
            for i, d in enumerate(delays):
                sim.schedule(d, lambda i=i: out.append((sim.now, i)))
            sim.run()
            return out

        assert trace(7) == trace(7)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_event_times_are_nondecreasing(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
