"""Batched dispatch vs single-step reference semantics.

:meth:`Simulator.run` drains maximal same-timestamp runs into a scratch
batch; :meth:`Simulator.step` keeps the original one-event-at-a-time
semantics.  These tests pin the contract that the two are observably
identical: same fire order, same ``now`` trajectory, same
``events_fired``, for arbitrary interleavings of schedule / post /
cancel — including cancellations and same-time re-scheduling performed
*from inside* a batch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

# Times drawn from a small grid (with repeats weighting the draw) so
# same-timestamp batches are the common case, not the exception.
_TIMES = st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 5.0])
_KINDS = st.sampled_from(["sched", "post"])
# (delta, kind) spawned from inside a callback; delta 0.0 exercises
# same-timestamp scheduling *during* a batch.
_SPAWNS = st.lists(
    st.tuples(st.sampled_from([0.0, 0.0, 1.0, 2.5]), _KINDS), max_size=3
)
_CANCELS = st.lists(st.integers(min_value=0, max_value=19), max_size=2)
_PROGRAM = st.lists(
    st.tuples(_TIMES, _KINDS, _SPAWNS, _CANCELS), max_size=20
)


def _run_program(sim, program, driver):
    """Execute ``program`` on ``sim`` under ``driver``; return the log.

    Each program entry is ``(time, kind, spawns, cancels)``: an event at
    an absolute time, cancellable ("sched") or not ("post"), which at
    fire time first cancels the listed top-level events (no-op if
    already fired) and then schedules the listed spawns relative to now.
    """
    log = []
    handles = {}

    def fire(key, spawns, cancels):
        log.append((sim.now, key))
        for c in cancels:
            h = handles.get(c)
            if h is not None:
                h.cancel()
        for j, (delta, kind) in enumerate(spawns):
            child = (key, j)
            if kind == "post":
                sim.post_at(sim.now + delta, fire, child, (), ())
            else:
                handles[child] = sim.schedule(delta, fire, child, (), ())

    for i, (t, kind, spawns, cancels) in enumerate(program):
        if kind == "post":
            sim.post_at(t, fire, i, spawns, cancels)
        else:
            handles[i] = sim.schedule_at(t, fire, i, spawns, cancels)
    driver(sim)
    return log, sim.now, sim.events_fired, sim.pending_events


def _stepper(sim):
    while sim.step():
        pass


class TestBatchedRunMatchesStep:
    @given(program=_PROGRAM)
    @settings(max_examples=200, deadline=None)
    def test_same_fire_order_now_and_counts(self, program):
        batched = _run_program(Simulator(), program, Simulator.run)
        stepped = _run_program(Simulator(), program, _stepper)
        assert batched == stepped
        assert batched[3] == 0  # both drained

    @given(program=_PROGRAM, cap=st.integers(min_value=1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_max_events_then_resume_matches(self, program, cap):
        sim = Simulator()
        log, *_ = _run_program(
            sim, program, lambda s: s.run(max_events=cap)
        )
        assert sim.events_fired <= cap
        sim.run()  # resume to the end
        reference, _, fired, _ = _run_program(
            Simulator(), program, Simulator.run
        )
        assert log == reference
        assert sim.events_fired == fired


class TestBatchEdgeCases:
    def test_same_timestamp_fifo_across_lane_and_heap(self):
        # First schedule keeps the lane non-empty, the earlier time then
        # falls through to the heap; a further same-time schedule lands
        # in the lane again.  Global fire order must follow (time, seq).
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, fired.append, "lane-0")
        sim.schedule_at(3.0, fired.append, "heap-1")
        sim.schedule_at(5.0, fired.append, "lane-2")
        sim.schedule_at(3.0, fired.append, "lane-3")  # < lane tail -> heap
        sim.run()
        assert fired == ["heap-1", "lane-3", "lane-0", "lane-2"]

    def test_cancel_inside_batch_suppresses_later_same_time_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(
            1.0, lambda: (fired.append("killer"), victim.cancel())
        )
        victim = sim.schedule_at(1.0, fired.append, "victim")
        sim.schedule_at(1.0, fired.append, "bystander")
        sim.run()
        # victim was drained into the batch before the killer fired, but
        # liveness is re-checked at fire time
        assert fired == ["killer", "bystander"]
        assert sim.pending_events == 0

    def test_same_time_spawn_during_batch_fires_after_drained_run(self):
        sim = Simulator()
        fired = []

        def spawner():
            fired.append("spawner")
            sim.schedule(0.0, fired.append, "child")

        sim.schedule_at(1.0, spawner)
        sim.schedule_at(1.0, fired.append, "sibling")
        sim.run()
        # the child carries a higher seq than anything drained, so it
        # fires after the batch — identical to single-step order
        assert fired == ["spawner", "sibling", "child"]

    def test_max_events_splits_batch_and_resumes_in_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule_at(1.0, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]
        assert sim.pending_events == 2
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_exception_mid_batch_requeues_unfired_tail(self):
        sim = Simulator()
        fired = []

        def boom():
            raise RuntimeError("boom")

        sim.schedule_at(1.0, fired.append, "a")
        sim.schedule_at(1.0, boom)
        sim.schedule_at(1.0, fired.append, "b")
        with pytest.raises(RuntimeError):
            sim.run()
        assert fired == ["a"]
        assert sim.now == 1.0
        sim.run()  # the requeued tail fires in original order
        assert fired == ["a", "b"]
        assert sim.pending_events == 0

    def test_pending_events_is_exact_through_cancel_and_fire(self):
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(10)]
        sim.post_at(3.0, lambda: None)
        assert sim.pending_events == 11
        for h in handles[:4]:
            h.cancel()
            h.cancel()  # idempotent: second cancel must not double-count
        assert sim.pending_events == 7
        sim.run()
        assert sim.pending_events == 0
        assert sim.drained()
        assert sim.events_fired == 7

    def test_batch_hooks_run_between_batches(self):
        sim = Simulator()
        calls = []
        sim.add_batch_hook(lambda: calls.append(sim.now))
        for i in range(200):  # > _MAINTENANCE_STRIDE distinct timestamps
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert calls  # invoked at least once, amortized by stride
        assert sim.pending_events == 0
