"""Tests for the benchmark harness: analytics, workloads, runners."""

import pytest

from repro import api
from repro.bench import (
    BenchWorkload,
    anomaly_bench,
    osiris_parallel_tasks,
    planning_bench,
    rsm_parallel_tasks,
    synthetic_bench,
    table1,
    update_only_bench,
    video_bench,
)
from repro.errors import BenchmarkError


class TestAnalytic:
    def test_rsm_parallel_tasks_paper_values(self):
        assert rsm_parallel_tasks(32, 1) == 10
        assert rsm_parallel_tasks(125, 2) == 25
        assert rsm_parallel_tasks(100, 0) == 100

    def test_rsm_without_non_equivocation(self):
        assert rsm_parallel_tasks(32, 1, non_equivocation=False) == 8

    def test_invalid_inputs(self):
        with pytest.raises(BenchmarkError):
            rsm_parallel_tasks(-1, 1)

    def test_osiris_parallel_tasks(self):
        assert osiris_parallel_tasks(32, 1, k=5) == 17
        assert osiris_parallel_tasks(3, 1, k=1) == 0

    def test_table1_systems(self):
        assert [r.system for r in table1()] == ["ZFT", "RCP", "OsirisBFT"]
        assert "2f+1 = 5" in table1(f=2)[1].computation_replication


class TestWorkloadFactories:
    def test_anomaly_bench_shapes(self):
        wl = anomaly_bench("MM", n_tasks=10, seed=1)
        assert isinstance(wl, BenchWorkload)
        assert wl.n_compute_tasks == 10
        assert len(wl.tasks) == 10

    def test_anomaly_bench_unknown_rejected(self):
        with pytest.raises(BenchmarkError):
            anomaly_bench("XL", n_tasks=10)

    def test_anomaly_bench_deterministic(self):
        a = anomaly_bench("HL", n_tasks=5, seed=2)
        b = anomaly_bench("HL", n_tasks=5, seed=2)
        assert [t.task_id for _, t in a.tasks] == [
            t.task_id for _, t in b.tasks
        ]
        assert [t.update_payload for _, t in a.tasks] == [
            t.update_payload for _, t in b.tasks
        ]

    def test_planning_bench_cycles_suite(self):
        wl = planning_bench(n_tasks=10, seed=1)
        indices = [t.compute_payload["instance"] for _, t in wl.tasks]
        assert indices == list(range(10))

    def test_video_bench_interleaves(self):
        wl = video_bench(n_compute=3, seed=1)
        kinds = [t.opcode.has_compute for _, t in wl.tasks]
        assert sum(kinds) == 3
        assert wl.n_compute_tasks == 3

    def test_synthetic_bench(self):
        wl = synthetic_bench(5, records_per_task=7)
        assert wl.n_compute_tasks == 5

    def test_update_only_bench(self):
        wl = update_only_bench(20)
        assert wl.n_compute_tasks == 0
        assert all(t.opcode.has_update for _, t in wl.tasks)


class TestScenarioRunners:
    def _wl(self):
        return synthetic_bench(
            20, records_per_task=4, compute_cost=20e-3, rate=500
        )

    def test_run_zft(self):
        res = api.run(api.DeploymentSpec(workload=self._wl(), n=6, system="zft"))
        assert res.system == "ZFT"
        assert res.tasks_completed == 20
        assert res.records == 80
        assert res.throughput > 0
        assert res.makespan > 0

    def test_run_osiris(self):
        res = api.run(api.DeploymentSpec(workload=self._wl(), n=8, seed=1))
        assert res.system == "OsirisBFT"
        assert res.tasks_completed == 20
        assert res.records == 80
        assert "cluster" in res.extra

    def test_run_rcp(self):
        res = api.run(api.DeploymentSpec(workload=self._wl(), n=9, system="rcp"))
        assert res.system == "RCP"
        assert res.tasks_completed == 20

    def test_deadline_miss_raises(self):
        wl = synthetic_bench(10, compute_cost=50.0, rate=1000)
        with pytest.raises(BenchmarkError):
            api.run(
                api.DeploymentSpec(
                    workload=wl, n=2, system="zft", deadline=1.0
                )
            )

    def test_result_row_renders(self):
        res = api.run(api.DeploymentSpec(workload=self._wl(), n=4, system="zft"))
        row = res.row()
        assert "ZFT" in row and "rec/s" in row

    def test_runs_are_deterministic(self):
        a = api.run(api.DeploymentSpec(workload=self._wl(), n=8, seed=5))
        b = api.run(api.DeploymentSpec(workload=self._wl(), n=8, seed=5))
        assert a.throughput == b.throughput
        assert a.mean_latency == b.mean_latency
