"""Open-loop traffic generation: arrival processes, lazy sources,
tenant tagging, and O(1)-memory streaming for million-task workloads."""

import itertools
import math

import pytest

from repro.bench.workloads import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstSource,
    OpenLoopSource,
    TenantTaggedSource,
    WORKLOADS,
    open_loop_bench,
    synthetic_bench,
)
from repro.core.tasks import Opcode, Task
from repro.errors import BenchmarkError


def make_task(i: int, tenant: str = "") -> Task:
    return Task(task_id=f"t{i}", opcode=Opcode.COMPUTE, tenant=tenant)


def take_times(proc: ArrivalProcess, k: int) -> list[float]:
    return list(itertools.islice(proc.times(), k))


class TestArrivalProcess:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_deterministic_per_seed(self, kind):
        a = ArrivalProcess(kind=kind, rate=100.0, seed=7)
        b = ArrivalProcess(kind=kind, rate=100.0, seed=7)
        assert take_times(a, 500) == take_times(b, 500)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_seed_changes_stream(self, kind):
        a = ArrivalProcess(kind=kind, rate=100.0, seed=1)
        b = ArrivalProcess(kind=kind, rate=100.0, seed=2)
        assert take_times(a, 50) != take_times(b, 50)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_times_nondecreasing(self, kind):
        ts = take_times(ArrivalProcess(kind=kind, rate=50.0, seed=3), 400)
        assert all(t1 <= t2 for t1, t2 in zip(ts, ts[1:]))

    def test_poisson_long_run_rate(self):
        ts = take_times(ArrivalProcess(kind="poisson", rate=200.0, seed=0), 4000)
        rate = len(ts) / ts[-1]
        assert rate == pytest.approx(200.0, rel=0.1)

    def test_burst_idle_shape(self):
        proc = ArrivalProcess(kind="burst_idle", rate=100.0, burst_size=5, seed=0)
        ts = take_times(proc, 25)
        # arrivals come in runs of burst_size identical instants
        for i in range(0, 25, 5):
            assert len(set(ts[i : i + 5])) == 1

    def test_diurnal_long_run_rate(self):
        proc = ArrivalProcess(
            kind="diurnal", rate=100.0, period=10.0, amplitude=0.8, seed=1
        )
        ts = take_times(proc, 4000)
        # thinning preserves the mean intensity over whole periods
        horizon = math.floor(ts[-1] / 10.0) * 10.0
        n = sum(1 for t in ts if t < horizon)
        assert n / horizon == pytest.approx(100.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            ArrivalProcess(kind="bogus", rate=10.0)
        with pytest.raises(BenchmarkError):
            ArrivalProcess(kind="poisson", rate=0.0)
        with pytest.raises(BenchmarkError):
            ArrivalProcess(kind="diurnal", rate=1.0, amplitude=1.5)
        with pytest.raises(BenchmarkError):
            ArrivalProcess(kind="burst_idle", rate=1.0, burst_size=0)


class CountingSource(BurstSource):
    """A BurstSource that counts how many tasks were ever materialized."""

    def __init__(self, n: int):
        self.pulled = 0

        def make():
            for i in range(n):
                self.pulled += 1
                yield (0.0, make_task(i))

        super().__init__(make)


class TestSources:
    def test_open_loop_replaces_submit_times(self):
        base = CountingSource(10)
        src = OpenLoopSource(
            base, ArrivalProcess(kind="poisson", rate=100.0, seed=4)
        )
        pairs = list(src)
        assert len(pairs) == 10
        times = [t for t, _ in pairs]
        assert times == sorted(times)
        assert len(set(times)) > 1  # no longer the burst's constant time

    def test_open_loop_reiteration_is_identical(self):
        src = OpenLoopSource(
            CountingSource(8),
            ArrivalProcess(kind="diurnal", rate=50.0, seed=9),
        )
        first = [(t, task.task_id) for t, task in src]
        second = [(t, task.task_id) for t, task in src]
        assert first == second

    def test_tenant_tagging_round_robin(self):
        src = TenantTaggedSource(CountingSource(7), tenants=3)
        tenants = [task.tenant for _, task in src]
        assert tenants == ["t0", "t1", "t2", "t0", "t1", "t2", "t0"]

    def test_tenant_tagging_preserves_existing_tags(self):
        def make():
            yield (0.0, make_task(0, tenant="gold"))
            yield (0.0, make_task(1))

        src = TenantTaggedSource(BurstSource(make), tenants=2)
        tagged = [task.tenant for _, task in src]
        assert tagged[0] == "gold"  # pre-tagged tasks keep their tenant
        assert tagged[1] == "t1"

    def test_million_task_source_is_lazy(self):
        """Satellite regression: a 1M-task synthetic source must be
        consumable in O(1) memory — nothing may materialize the list."""
        wl = synthetic_bench(1_000_000, records_per_task=1)
        stream = wl.stream
        head = list(itertools.islice(stream, 1000))
        assert len(head) == 1000
        # the materialization cache must not have been populated by
        # streaming access
        assert wl._tasks is None
        counting = CountingSource(1_000_000)
        src = OpenLoopSource(
            counting, ArrivalProcess(kind="poisson", rate=1e6, seed=0)
        )
        consumed = 0
        for _ in itertools.islice(iter(src), 5000):
            consumed += 1
        assert consumed == 5000
        # laziness bound: the wrapper pulls exactly one task ahead
        assert counting.pulled <= 5001


class TestOpenLoopBench:
    def test_factory_registered(self):
        assert "open_loop" in WORKLOADS

    def test_same_seed_same_stream(self):
        a = open_loop_bench(20, rate=100.0, seed=5)
        b = open_loop_bench(20, rate=100.0, seed=5)
        assert [(t, x.task_id) for t, x in a.stream] == [
            (t, x.task_id) for t, x in b.stream
        ]

    @pytest.mark.parametrize(
        "base,extra",
        [
            ("synthetic", {}),
            ("anomaly", {"profile": "MM"}),
            ("planning", {}),
        ],
    )
    def test_wraps_named_bases(self, base, extra):
        wl = open_loop_bench(6, rate=50.0, base=base, **extra)
        pairs = list(wl.stream)
        assert len(pairs) >= 6
        assert wl.n_compute_tasks == 6

    def test_rejects_recursive_base(self):
        with pytest.raises(BenchmarkError):
            open_loop_bench(4, base="open_loop")

    def test_tasks_property_caches(self):
        wl = open_loop_bench(12, rate=100.0)
        assert wl.tasks is wl.tasks
        assert len(wl.tasks) == 12
