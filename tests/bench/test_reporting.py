"""Tests for benchmark reporting utilities."""


from repro.bench import print_figure, print_series, print_table, ratio
from repro.bench.reporting import get_buffer
from repro.bench.scenarios import ScenarioResult


def make_result(**overrides):
    defaults = dict(
        system="OsirisBFT",
        n=8,
        f=1,
        throughput=1234.0,
        records=100,
        tasks_completed=10,
        makespan=5.0,
        mean_latency=0.25,
        p99_latency=0.9,
        op_bandwidth=1.5e9,
        executor_utilization=0.8,
        peak_throughput=2000.0,
    )
    defaults.update(overrides)
    return ScenarioResult(**defaults)


class TestBuffer:
    def test_emitted_lines_are_buffered(self):
        start = len(get_buffer())
        print_table("T1", ["a"], [["x"]])
        assert len(get_buffer()) > start
        assert any("T1" in line for line in get_buffer()[start:])

    def test_print_figure_renders_rows(self, capsys):
        print_figure("F1", [make_result()])
        out = capsys.readouterr().out
        assert "F1" in out
        assert "OsirisBFT" in out
        assert "rec/s" in out

    def test_print_series_downsamples(self, capsys):
        series = [(float(i), float(i)) for i in range(200)]
        print_series("S1", series, unit="x", max_rows=10)
        out = capsys.readouterr().out
        assert out.count("t=") <= 25

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")


class TestScenarioRow:
    def test_row_contains_key_metrics(self):
        row = make_result().row()
        assert "n=8" in row and "f=1" in row
        assert "1234" in row
        assert "GB/s" in row
