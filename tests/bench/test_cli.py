"""Tests for the interactive figure CLI."""

import pytest

from repro.bench.cli import FIGURES, main


class TestCli:
    def test_fig2a_prints_table(self, capsys):
        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2a" in out
        assert "125" in out

    def test_table1_with_f(self, capsys):
        assert main(["table1", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "2f+1 = 5" in out

    def test_fig5a_models(self, capsys):
        assert main(["fig5a", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Kauri" in out and "Basil" in out

    def test_small_sweep_runs(self, capsys):
        assert main(["fig6c", "--sizes", "4", "--tasks", "20"]) == 0
        out = capsys.readouterr().out
        assert "OsirisBFT" in out and "ZFT" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_registered_figure_has_runner(self):
        for name, fn in FIGURES.items():
            assert callable(fn), name
