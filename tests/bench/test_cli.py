"""Tests for the interactive figure CLI."""

import json

import pytest

from repro.bench.cli import ANALYTIC, FIGURES, SWEEPS, TRACE_SCENARIOS, main


class TestCli:
    def test_fig2a_prints_table(self, capsys):
        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2a" in out
        assert "125" in out

    def test_table1_with_f(self, capsys):
        assert main(["table1", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "2f+1 = 5" in out

    def test_fig5a_models(self, capsys):
        assert main(["fig5a", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Kauri" in out and "Basil" in out

    def test_small_sweep_runs(self, capsys):
        assert main(["fig6c", "--sizes", "4", "--tasks", "20", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "OsirisBFT" in out and "ZFT" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_registered_figure_has_runner(self):
        assert set(FIGURES) == set(ANALYTIC) | set(SWEEPS)
        for name, fn in ANALYTIC.items():
            assert callable(fn), name
        for name, (title, build) in SWEEPS.items():
            assert title and callable(build), name


class _Args:
    """Minimal argparse stand-in for spec builders."""

    def __init__(self, figure, sizes=(4, 8), tasks=20, seed=1):
        self.figure = figure
        self.sizes = list(sizes)
        self.tasks = tasks
        self.seed = seed


class TestSweepSpecs:
    def test_grid_figures_sweep_systems_per_size(self):
        for fig in ("fig5b", "fig6a", "fig6b", "fig6c", "fig5c", "fig5d"):
            _, build = SWEEPS[fig]
            spec = build(_Args(fig))
            assert [(p.system, p.n) for p in spec.points] == [
                ("zft", 4), ("osiris", 4), ("rcp", 4),
                ("zft", 8), ("osiris", 8), ("rcp", 8),
            ], fig

    def test_grid_skips_rcp_on_tiny_clusters(self):
        _, build = SWEEPS["fig5b"]
        spec = build(_Args("fig5b", sizes=(2,)))
        assert [p.system for p in spec.points] == ["zft", "osiris"]

    def test_anomaly_profile_reaches_workload_params(self):
        for fig, profile in (
            ("fig5b", "fig5b"), ("fig6a", "LH"),
            ("fig6b", "HL"), ("fig6c", "MM"),
        ):
            _, build = SWEEPS[fig]
            spec = build(_Args(fig, tasks=33, seed=7))
            for p in spec.points:
                params = dict(p.workload_params)
                assert p.workload == "anomaly"
                assert params["profile"] == profile
                assert params["n_tasks"] == 33
                assert params["seed"] == 7

    def test_fig7b_is_fault_level_sweep(self):
        _, build = SWEEPS["fig7b"]
        spec = build(_Args("fig7b"))
        assert [(p.system, p.f) for p in spec.points] == [
            ("osiris", 1), ("osiris", 2), ("osiris", 3), ("osiris", 4),
            ("rcp", 1), ("rcp", 2),
        ]
        assert all(p.n == 32 for p in spec.points)

    def test_jobs_flag_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["fig5b", "--jobs", "0"])


class TestJsonArtifact:
    def test_json_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sweep.json"
        assert main(
            [
                "fig5b", "--sizes", "4", "--tasks", "8",
                "--no-cache", "--json", str(path),
            ]
        ) == 0
        doc = json.loads(path.read_text())
        assert doc["spec"]["name"] == "fig5b"
        assert doc["jobs"] == 1
        assert doc["cache"] == {"hits": 0, "misses": 3}
        assert len(doc["points"]) == 3
        for entry in doc["points"]:
            assert entry["result"]["tasks_completed"] == 8
            assert entry["cached"] is False
            assert entry["wall_seconds"] > 0
        assert "artifact" in capsys.readouterr().out

    def test_second_run_hits_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_EXP_CACHE_DIR", str(tmp_path / "cache"))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        argv = ["fig5b", "--sizes", "4", "--tasks", "8", "--json"]
        assert main(argv + [str(a)]) == 0
        assert main(argv + [str(b)]) == 0
        da, db = json.loads(a.read_text()), json.loads(b.read_text())
        assert da["cache"] == {"hits": 0, "misses": 3}
        assert db["cache"] == {"hits": 3, "misses": 0}
        assert [p["result"] for p in da["points"]] == [
            p["result"] for p in db["points"]
        ]

    def test_jobs4_artifact_bit_identical_to_serial(self, tmp_path, capsys):
        serial, fanned = tmp_path / "serial.json", tmp_path / "jobs4.json"
        base = ["fig5b", "--sizes", "4", "8", "--tasks", "8", "--no-cache"]
        assert main(base + ["--json", str(serial)]) == 0
        assert main(base + ["--jobs", "4", "--json", str(fanned)]) == 0
        ds = json.loads(serial.read_text())
        df = json.loads(fanned.read_text())
        assert [p["result"] for p in ds["points"]] == [
            p["result"] for p in df["points"]
        ]
        assert [p["point"] for p in ds["points"]] == [
            p["point"] for p in df["points"]
        ]


class TestTraceSubcommand:
    def test_trace_writes_jsonl_and_chrome_files(self, tmp_path, capsys):
        prefix = str(tmp_path / "t")
        rc = main(
            [
                "trace",
                "--scenario", "synthetic",
                "--n", "8",
                "--tasks", "12",
                "--out", prefix,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        jsonl = (tmp_path / "t.jsonl").read_text().splitlines()
        assert jsonl and all(json.loads(line)["kind"] for line in jsonl)
        doc = json.loads((tmp_path / "t.chrome.json").read_text())
        assert doc["traceEvents"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--scenario", "nope"])

    def test_every_registered_scenario_has_runner(self):
        for name, fn in TRACE_SCENARIOS.items():
            assert callable(fn), name
