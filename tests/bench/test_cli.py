"""Tests for the interactive figure CLI."""

import json

import pytest

from repro.bench.cli import FIGURES, TRACE_SCENARIOS, main


class TestCli:
    def test_fig2a_prints_table(self, capsys):
        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2a" in out
        assert "125" in out

    def test_table1_with_f(self, capsys):
        assert main(["table1", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "2f+1 = 5" in out

    def test_fig5a_models(self, capsys):
        assert main(["fig5a", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Kauri" in out and "Basil" in out

    def test_small_sweep_runs(self, capsys):
        assert main(["fig6c", "--sizes", "4", "--tasks", "20"]) == 0
        out = capsys.readouterr().out
        assert "OsirisBFT" in out and "ZFT" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_registered_figure_has_runner(self):
        for name, fn in FIGURES.items():
            assert callable(fn), name


class TestTraceSubcommand:
    def test_trace_writes_jsonl_and_chrome_files(self, tmp_path, capsys):
        prefix = str(tmp_path / "t")
        rc = main(
            [
                "trace",
                "--scenario", "synthetic",
                "--n", "8",
                "--tasks", "12",
                "--out", prefix,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        jsonl = (tmp_path / "t.jsonl").read_text().splitlines()
        assert jsonl and all(json.loads(line)["kind"] for line in jsonl)
        doc = json.loads((tmp_path / "t.chrome.json").read_text())
        assert doc["traceEvents"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--scenario", "nope"])

    def test_every_registered_scenario_has_runner(self):
        for name, fn in TRACE_SCENARIOS.items():
            assert callable(fn), name
