"""Smoke tests: every shipped example runs end-to-end and its internal
assertions hold (each example exercises a Byzantine scenario)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out
