"""Verifier core driven directly on the in-memory runtime.

Adversarial input orderings against a single pure core: equivocation
between chunk contents and neq digests, duplicate copies that must not
count toward f+1 quorums, and stale-epoch role switches.  No Simulator,
no Network — every interaction is a typed effect.
"""

from repro.core.messages import (
    RoleSwitchMsg,
    SuspectExecutorMsg,
    TaskCompleteMsg,
    VerifiedChunkMsg,
)
from repro.core.tasks import Assignment
from repro.crypto.digest import digest
from repro.runtime.testing import sent_messages

from .helpers import (
    activate_assignment,
    feed_chunk,
    honest_chunks,
    make_compute_task,
    make_verifier,
    signed_assignment_msgs,
)


class TestAssignmentQuorum:
    def test_duplicate_coordinator_copies_do_not_activate(self):
        """f+1 copies from the SAME member are one vote, not a quorum."""
        verifier, rt, registry, signers = make_verifier()
        task = make_compute_task(0).with_timestamp(0)
        a = Assignment(task=task, executor="e0", vp_index=1, attempt=0)
        (msg,) = signed_assignment_msgs(signers, a, ("v0",))
        for _ in range(3):
            rt.deliver(msg)
        st = verifier._tasks.get(a.key)
        assert st is None or not st.activated

    def test_distinct_copies_activate(self):
        verifier, rt, registry, signers = make_verifier()
        a = activate_assignment(rt, signers, senders=("v0", "v1"))
        assert verifier._tasks[a.key].activated

    def test_forged_copy_never_counts(self):
        """A message claiming sender v1 but signed by v0 is discarded."""
        verifier, rt, registry, signers = make_verifier()
        task = make_compute_task(0).with_timestamp(0)
        a = Assignment(task=task, executor="e0", vp_index=1, attempt=0)
        real, forged = signed_assignment_msgs(signers, a, ("v0", "v0"))
        forged.sender = "v1"  # sender/signer mismatch
        rt.deliver(real)
        rt.deliver(forged)
        st = verifier._tasks.get(a.key)
        assert st is None or not st.activated

    def test_conflicting_assignment_copies_do_not_mix(self):
        """Signatures over different (executor) tuples never accumulate
        into one quorum."""
        verifier, rt, registry, signers = make_verifier()
        task = make_compute_task(0).with_timestamp(0)
        a0 = Assignment(task=task, executor="e0", vp_index=1, attempt=0)
        a1 = Assignment(task=task, executor="e1", vp_index=1, attempt=0)
        rt.deliver(signed_assignment_msgs(signers, a0, ("v0",))[0])
        rt.deliver(signed_assignment_msgs(signers, a1, ("v1",))[0])
        st = verifier._tasks.get(a0.key)
        assert st is None or not st.activated


class TestEquivocation:
    def test_digest_mismatch_fails_and_accuses(self):
        """Chunk content disagreeing with the neq digest is equivocation:
        the task fails and VP_CO is told the executor is Byzantine."""
        verifier, rt, registry, signers = make_verifier()
        a = activate_assignment(rt, signers)
        chunk = honest_chunks(verifier.app, a)[0]
        feed_chunk(rt, a, chunk, sigma=digest(["lie"]))
        assert verifier._tasks[a.key].failed
        assert verifier.failures_detected == 1
        rt.drain()  # run the queued signing job
        accusations = sent_messages(rt, SuspectExecutorMsg)
        assert len(accusations) == 1
        assert accusations[0].byzantine
        assert accusations[0].executor == "e0"

    def test_digest_from_wrong_executor_ignored(self):
        verifier, rt, registry, signers = make_verifier()
        a = activate_assignment(rt, signers)
        chunk = honest_chunks(verifier.app, a)[0]
        feed_chunk(rt, a, chunk, sender="e1")  # chunk AND digest from e1
        st = verifier._tasks[a.key]
        assert not st.failed
        assert st.next_index == 0  # nothing was verified either

    def test_plain_channel_digest_ignored(self):
        """Digests must travel via the non-equivocating primitive."""
        from repro.core.messages import ChunkDigestMsg, ChunkMsg

        verifier, rt, registry, signers = make_verifier()
        a = activate_assignment(rt, signers)
        chunk = honest_chunks(verifier.app, a)[0]
        cmsg = ChunkMsg(chunk=chunk, assignment=a)
        cmsg.sender = "e0"
        rt.deliver(cmsg)
        dmsg = ChunkDigestMsg(
            task_id=a.task.task_id, attempt=0, index=0, digest=digest(chunk)
        )
        dmsg.sender = "e0"  # note: no _neq marker
        rt.deliver(dmsg)
        rt.drain()
        assert verifier.chunks_verified == 0

    def test_honest_stream_verifies_and_completes(self):
        verifier, rt, registry, signers = make_verifier(pid="v3")
        a = activate_assignment(rt, signers)
        for chunk in honest_chunks(verifier.app, a):
            feed_chunk(rt, a, chunk)
        rt.drain()  # count job + verify jobs
        st = verifier._tasks[a.key]
        assert st.finished and not st.failed
        # v3 leads VP_1 at term 0: data goes to OP, completion to VP_CO
        assert any(
            type(m) is VerifiedChunkMsg for m in sent_messages(rt)
        )
        completes = sent_messages(rt, TaskCompleteMsg)
        assert len(completes) == 1

    def test_chunk_after_final_is_replay(self):
        verifier, rt, registry, signers = make_verifier()
        a = activate_assignment(rt, signers)
        chunks = honest_chunks(verifier.app, a)
        final = chunks[-1]
        for chunk in chunks:
            feed_chunk(rt, a, chunk)
        rt.drain()
        assert verifier._tasks[a.key].finished
        # replayed copy of the final chunk, one index later
        from repro.core.tasks import Chunk

        replay = Chunk(final.task_id, final.index + 1, final.records, True)
        feed_chunk(rt, a, replay)
        rt.drain()
        # the task is already complete; the replay must not be endorsed
        assert verifier.chunks_verified == len(chunks)


class TestStaleEpochRoleSwitch:
    def switch_msgs(self, signers, epoch, to_executor=True, senders=("v0", "v1")):
        out = []
        for sender in senders:
            msg = RoleSwitchMsg(
                vp_index=1, epoch=epoch, to_executor=to_executor
            )
            msg.sig = signers[sender].sign(msg.signed_payload())
            msg.sender = sender
            out.append(msg)
        return out

    def test_quorum_switches_mode(self):
        verifier, rt, registry, signers = make_verifier()
        for msg in self.switch_msgs(signers, epoch=1):
            rt.deliver(msg)
        assert verifier.executor_mode
        assert verifier.role_epoch == 1

    def test_duplicate_sender_votes_insufficient(self):
        verifier, rt, registry, signers = make_verifier()
        (msg,) = self.switch_msgs(signers, epoch=1, senders=("v0",))
        rt.deliver(msg)
        rt.deliver(msg)
        assert not verifier.executor_mode
        assert verifier.role_epoch == 0

    def test_stale_epoch_quorum_ignored(self):
        """A full quorum for an epoch the verifier already moved past
        must not roll the role back (delayed/replayed switch traffic)."""
        verifier, rt, registry, signers = make_verifier()
        for msg in self.switch_msgs(signers, epoch=2, to_executor=True):
            rt.deliver(msg)
        assert verifier.executor_mode and verifier.role_epoch == 2
        # stale epoch-1 quorum arrives late, voting the opposite way
        for msg in self.switch_msgs(signers, epoch=1, to_executor=False):
            rt.deliver(msg)
        assert verifier.executor_mode
        assert verifier.role_epoch == 2

    def test_same_epoch_replay_ignored(self):
        verifier, rt, registry, signers = make_verifier()
        for msg in self.switch_msgs(signers, epoch=1, to_executor=True):
            rt.deliver(msg)
        for msg in self.switch_msgs(signers, epoch=1, to_executor=False):
            rt.deliver(msg)
        assert verifier.executor_mode  # the replayed epoch cannot re-decide

    def test_executor_mode_verifier_executes_assignments(self):
        """After a switch, the verifier's embedded engine accepts
        assignments naming it as executor."""
        verifier, rt, registry, signers = make_verifier()
        for msg in self.switch_msgs(signers, epoch=1):
            rt.deliver(msg)
        task = make_compute_task(7).with_timestamp(0)
        a = Assignment(task=task, executor="v3", vp_index=1, attempt=0)
        for m in signed_assignment_msgs(signers, a, ("v0", "v1")):
            rt.deliver(m)
        rt.drain()
        assert verifier.engine.tasks_executed == 1
