"""TestRuntime.drain failure diagnostics name the stuck effects."""

import pytest

from repro.runtime import testing
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import CtrlJob, Job, Multicast, Schedule, Send, SetTimer
from repro.runtime.testing import describe_effect


class Looper(ProtocolCore):
    """Re-queues itself on every drain round: never quiesces."""

    def spin(self) -> None:
        self.run_ctrl_job(0.0, self.spin)


class Sleeper(ProtocolCore):
    def nap(self) -> None:  # pragma: no cover - never run
        pass


class TestDrainDiagnostics:
    def test_non_quiescent_drain_names_the_pending_queue(self):
        core = Looper("w1")
        rt = testing.TestRuntime(core)
        core.spin()
        with pytest.raises(RuntimeError) as err:
            rt.drain(max_rounds=5)
        message = str(err.value)
        assert "did not quiesce after 5 rounds" in message
        assert "'w1'" in message
        assert "1 undelivered effect(s)" in message
        # the queue payload: effect type, id, and continuation qualname
        assert "CtrlJob#" in message
        assert "Looper.spin" in message

    def test_long_queues_are_truncated_with_a_count(self):
        core = Sleeper("w2")
        rt = testing.TestRuntime(core)
        for _ in range(20):
            core.schedule(0.0, core.nap)
        # one round runs one effect; 3 rounds leave 17 queued
        with pytest.raises(RuntimeError) as err:
            rt.drain(max_rounds=3)
        message = str(err.value)
        assert "17 undelivered effect(s)" in message
        assert "Schedule#" in message
        assert "Sleeper.nap" in message
        assert "... and 1 more" in message


class TestDescribeEffect:
    def test_send_and_multicast_name_destination_and_type(self):
        class Ping:
            pass

        assert describe_effect(Send("v1", Ping())) == "Send->v1:Ping"
        assert (
            describe_effect(Multicast(("v1", "v2"), Ping()))
            == "Multicast->v1,v2:Ping"
        )

    def test_jobs_and_timers_name_their_continuation(self):
        core = Sleeper("w3")
        testing.TestRuntime(core)
        job = Job(0.0, core.nap, (), job_id=4)
        assert describe_effect(job) == "Job#4:Sleeper.nap(+0ms)"
        timer = SetTimer("op-wait", 0.5, core.nap, ())
        assert describe_effect(timer) == "SetTimer:op-wait"
        sched = Schedule(0.0, core.nap, (), sched_id=9)
        assert describe_effect(sched) == "Schedule#9:Sleeper.nap"
        ctrl = CtrlJob(0.0, core.nap, (), job_id=2)
        assert describe_effect(ctrl) == "CtrlJob#2:Sleeper.nap"
