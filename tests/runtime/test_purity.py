"""Protocol cores are substrate-free: no module under ``repro.core`` or
``repro.consensus`` may import the DES kernel or the simulated network.
Binding to a substrate happens exclusively in ``repro.runtime`` (DesHost
and the deployment builder)."""

import ast
import pathlib

import repro.consensus
import repro.core

FORBIDDEN_PREFIXES = ("repro.sim", "repro.net.links")


def module_files(package):
    root = pathlib.Path(package.__file__).parent
    return sorted(root.glob("*.py"))


def imported_names(path):
    """Names imported anywhere in the module, at any nesting level."""
    tree = ast.parse(path.read_text())
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            out.append(node.module)
    return out


class TestCorePurity:
    def test_no_kernel_or_link_imports_in_protocol_modules(self):
        offenders = []
        for package in (repro.core, repro.consensus):
            for path in module_files(package):
                for name in imported_names(path):
                    if name.startswith(FORBIDDEN_PREFIXES):
                        offenders.append(f"{path.name}: {name}")
        assert offenders == [], (
            "protocol modules must stay substrate-free; "
            f"found {offenders}"
        )

    def test_core_package_imports_without_runtime_backends(self):
        """Importing the protocol packages must not drag in the DES; the
        deploy shim resolves lazily on attribute access only."""
        import importlib
        import subprocess
        import sys

        code = (
            "import sys; import repro.core, repro.consensus; "
            "assert 'repro.sim.kernel' not in sys.modules, 'kernel leaked'; "
            "assert 'repro.net.links' not in sys.modules, 'links leaked'"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
