"""Coordinator core (VP_CO member) driven directly on the test runtime.

Drives a full consensus round by hand — request, flush timer, proposal
loop-back, acks — then exercises the quorum-counting surfaces with
duplicate and forged votes.  No Simulator, no Network.
"""

from repro.consensus.messages import CsAck, CsPropose, CsRequest
from repro.core.messages import (
    AssignmentMsg,
    SuspectExecutorMsg,
    VerifierLoadReport,
)
from repro.crypto.digest import digest
from repro.runtime.effects import Multicast
from repro.runtime.testing import sent_messages

from .helpers import make_compute_task, make_coordinator


def commit_task(coordinator, rt, signers, task, rid=None):
    """Drive one request through consensus to commit on this member.

    v0 leads view 0: the request arms the flush timer, flushing proposes
    via the neq primitive, the proposal is looped back to the proposer
    (as the primitive would), and one more member's ack completes the
    f+1 quorum.
    """
    req = CsRequest(request_id=rid or f"r-{task.task_id}", payload=task,
                    payload_size=task.size_bytes)
    rt.deliver(req, sender="ip0")
    rt.fire_timer("cs-flush")
    rt.drain()  # sign + broadcast the proposal
    proposal = sent_messages(rt, CsPropose)[-1]
    proposal._neq = True
    rt.deliver(proposal, sender="v0")
    rt.drain()  # verify + sign + send own ack
    ack = CsAck(
        view=proposal.view,
        seq=proposal.seq,
        batch_digest=digest([r for r, _, _ in proposal.batch]),
        sig=signers["v1"].sign(
            CsAck.signed_payload(
                proposal.view,
                proposal.seq,
                digest([r for r, _, _ in proposal.batch]),
            )
        ),
    )
    rt.deliver(ack, sender="v1")
    return proposal


class TestCommitPath:
    def test_committed_task_is_assigned(self):
        coordinator, rt, registry, signers = make_coordinator()
        task = make_compute_task(0)
        commit_task(coordinator, rt, signers, task)
        assert coordinator.tasks_linearized == 1
        assert coordinator.outstanding[task.task_id].executor in ("e0", "e1")
        rt.drain()  # the assignment signing job
        assignments = sent_messages(rt, AssignmentMsg)
        assert len(assignments) == 1
        a = assignments[0].assignment
        assert a.task.task_id == task.task_id
        assert a.vp_index == 1  # VP_CO never verifies its own assignments

    def test_assignment_targets_executor_and_cluster(self):
        coordinator, rt, registry, signers = make_coordinator()
        commit_task(coordinator, rt, signers, make_compute_task(0))
        rt.drain()
        mcasts = [
            e for e in rt.of(Multicast)
            if type(e.msg) is AssignmentMsg
        ]
        assert len(mcasts) == 1
        entry = next(iter(coordinator.outstanding.values()))
        assert set(mcasts[0].dsts) == {entry.executor, "v3", "v4", "v5"}

    def test_duplicate_ack_sender_does_not_commit(self):
        """One member acking twice is one vote — no commit without its
        own ack or a second distinct member."""
        coordinator, rt, registry, signers = make_coordinator()
        task = make_compute_task(0)
        req = CsRequest(request_id="r1", payload=task,
                        payload_size=task.size_bytes)
        rt.deliver(req, sender="ip0")
        rt.fire_timer("cs-flush")
        rt.drain()
        proposal = sent_messages(rt, CsPropose)[-1]
        proposal._neq = True
        rt.deliver(proposal, sender="v0")
        # do NOT drain: v0's own ack job stays queued, so the slot holds
        # zero votes.  A duplicate v1 ack must still be a single vote.
        bd = digest([r for r, _, _ in proposal.batch])
        ack = CsAck(
            view=0, seq=proposal.seq, batch_digest=bd,
            sig=signers["v1"].sign(CsAck.signed_payload(0, proposal.seq, bd)),
        )
        rt.deliver(ack, sender="v1")
        rt.deliver(ack, sender="v1")
        assert coordinator.tasks_linearized == 0
        # a second distinct member completes the quorum
        ack2 = CsAck(
            view=0, seq=proposal.seq, batch_digest=bd,
            sig=signers["v2"].sign(CsAck.signed_payload(0, proposal.seq, bd)),
        )
        rt.deliver(ack2, sender="v2")
        assert coordinator.tasks_linearized == 1

    def test_invalid_task_rejected_at_the_door(self):
        coordinator, rt, registry, signers = make_coordinator()
        bad = make_compute_task(0, n=-1)  # fails SyntheticApp.valid_task
        req = CsRequest(request_id="r-bad", payload=bad, payload_size=16)
        rt.deliver(req, sender="ip0")
        assert not rt.timer_armed("cs-flush")
        assert coordinator.tasks_linearized == 0


class TestSuspectQuorum:
    def suspect(self, signers, sender, task_id, attempt, executor,
                byzantine=True):
        msg = SuspectExecutorMsg(
            task_id=task_id, attempt=attempt, executor=executor,
            byzantine=byzantine,
        )
        msg.sig = signers[sender].sign(msg.signed_payload())
        msg.sender = sender
        return msg

    def setup_assigned(self):
        coordinator, rt, registry, signers = make_coordinator()
        task = make_compute_task(0)
        commit_task(coordinator, rt, signers, task)
        rt.drain()
        entry = coordinator.outstanding[task.task_id]
        rt.clear()
        return coordinator, rt, signers, entry

    def test_duplicate_accuser_does_not_blacklist(self):
        coordinator, rt, signers, entry = self.setup_assigned()
        msg = self.suspect(
            signers, "v3", entry.task.task_id, entry.attempt, entry.executor
        )
        rt.deliver(msg)
        rt.deliver(msg)
        assert coordinator.blacklist == set()
        assert sent_messages(rt, CsRequest) == []

    def test_f_plus_1_accusers_submit_blacklist_ctl(self):
        coordinator, rt, signers, entry = self.setup_assigned()
        for sender in ("v3", "v4"):
            rt.deliver(self.suspect(
                signers, sender, entry.task.task_id, entry.attempt,
                entry.executor,
            ))
        # the blacklist decision goes through consensus: a CsRequest to
        # each peer plus a local admit
        ctl_requests = sent_messages(rt, CsRequest)
        assert len(ctl_requests) == 2
        assert all(r.payload["kind"] == "blacklist" for r in ctl_requests)
        assert f"ctl:blacklist:{entry.executor}" in coordinator.consensus._pending

    def test_accuser_outside_assigned_cluster_ignored(self):
        coordinator, rt, signers, entry = self.setup_assigned()
        for sender in ("v1", "v2"):  # VP_CO members, not VP_1
            rt.deliver(self.suspect(
                signers, sender, entry.task.task_id, entry.attempt,
                entry.executor,
            ))
        assert sent_messages(rt, CsRequest) == []

    def test_stale_attempt_accusation_ignored(self):
        coordinator, rt, signers, entry = self.setup_assigned()
        for sender in ("v3", "v4"):
            rt.deliver(self.suspect(
                signers, sender, entry.task.task_id, entry.attempt + 7,
                entry.executor,
            ))
        assert sent_messages(rt, CsRequest) == []


class TestLoadReports:
    def test_median_utilization_resists_one_liar(self):
        coordinator, rt, registry, signers = make_coordinator()
        for sender, util in (("v3", 0.9), ("v4", 0.85), ("v5", 0.0)):
            msg = VerifierLoadReport(
                vp_index=1, utilization=util, pending_chunks=0
            )
            msg.sender = sender
            rt.deliver(msg)
        assert coordinator._cluster_utilization(1) == 0.85

    def test_report_claiming_wrong_cluster_ignored(self):
        coordinator, rt, registry, signers = make_coordinator()
        msg = VerifierLoadReport(vp_index=0, utilization=0.5, pending_chunks=0)
        msg.sender = "v3"  # v3 is in cluster 1, claims cluster 0
        rt.deliver(msg)
        assert coordinator._cluster_utilization(0) is None
