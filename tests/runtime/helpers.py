"""Helpers for driving protocol cores on the in-memory test runtime.

No Simulator, no Network anywhere in this package: cores are bound to a
:class:`~repro.runtime.testing.TestRuntime` and fed hand-crafted
messages, which is exactly what makes adversarial orderings precise.
"""

from __future__ import annotations

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core.config import OsirisConfig
from repro.core.coordinator import Coordinator
from repro.core.messages import AssignmentMsg, ChunkDigestMsg, ChunkMsg
from repro.core.tasks import Assignment, chunk_records
from repro.core.verifier import Verifier
from repro.crypto import KeyRegistry
from repro.crypto.digest import digest
from repro.net.topology import SubCluster, Topology
from repro.runtime.testing import TestRuntime

__all__ = [
    "make_topo",
    "make_verifier",
    "make_coordinator",
    "activate_assignment",
    "honest_chunks",
    "feed_chunk",
    "make_compute_task",
]

COORD = ("v0", "v1", "v2")
VP1 = ("v3", "v4", "v5")


def make_topo():
    clusters = (
        SubCluster(index=0, members=COORD, f=1),
        SubCluster(index=1, members=VP1, f=1),
    )
    return Topology(
        input_pids=("ip0",),
        output_pids=("op0",),
        executor_pids=("e0", "e1"),
        verifier_clusters=clusters,
        f=1,
    )


def make_verifier(pid="v3", app=None, **config_overrides):
    """A Verifier core on a TestRuntime, plus the shared key registry."""
    topo = make_topo()
    registry = KeyRegistry()
    signers = {p: registry.register(p) for p in COORD + VP1 + ("e0", "e1")}
    config = OsirisConfig(role_switching=False, **config_overrides)
    app = app or SyntheticApp(records_per_task=4, compute_cost=1e-3)
    verifier = Verifier(
        pid,
        topo,
        registry,
        signers[pid],
        app,
        config,
        cluster=topo.cluster(1),
    )
    rt = TestRuntime(verifier, cores=config.cores_per_node)
    return verifier, rt, registry, signers


def make_coordinator(pid="v0", app=None, **config_overrides):
    """A Coordinator core (VP_CO member) on a TestRuntime."""
    topo = make_topo()
    registry = KeyRegistry()
    signers = {p: registry.register(p) for p in COORD + VP1 + ("e0", "e1")}
    config = OsirisConfig(role_switching=False, **config_overrides)
    app = app or SyntheticApp(records_per_task=4, compute_cost=1e-3)
    coordinator = Coordinator(
        pid,
        topo,
        registry,
        signers[pid],
        app,
        config,
        cluster=topo.cluster(0),
    )
    rt = TestRuntime(coordinator, cores=config.cores_per_node)
    return coordinator, rt, registry, signers


def signed_assignment_msgs(signers, assignment, senders):
    """One AssignmentMsg per sender, each carrying that member's valid
    signature over the assignment tuple."""
    out = []
    for sender in senders:
        msg = AssignmentMsg(
            assignment=assignment,
            sig=signers[sender].sign(assignment.signed_payload()),
        )
        msg.sender = sender
        out.append(msg)
    return out


def activate_assignment(rt, signers, task=None, executor="e0", attempt=0,
                        senders=("v0", "v1")):
    """Activate a task at the verifier via f+1 distinct AssignmentMsg."""
    task = (task or make_compute_task(0)).with_timestamp(0)
    a = Assignment(task=task, executor=executor, vp_index=1, attempt=attempt)
    for msg in signed_assignment_msgs(signers, a, senders):
        rt.deliver(msg)
    return a


def honest_chunks(app, a, chunk_bytes=10**6):
    view = app.initial_state().snapshot(0)
    records = list(app.compute(view, a.task).records)
    return chunk_records(a.task.task_id, records, chunk_bytes)


def feed_chunk(rt, a, chunk, sigma=None, sender="e0", sigs=()):
    """Deliver one chunk + its (possibly lying) neq digest."""
    cmsg = ChunkMsg(chunk=chunk, assignment=a, assignment_sigs=tuple(sigs))
    cmsg.sender = sender
    rt.deliver(cmsg)
    dmsg = ChunkDigestMsg(
        task_id=a.task.task_id,
        attempt=a.attempt,
        index=chunk.index,
        digest=sigma if sigma is not None else digest(chunk),
    )
    dmsg.sender = sender
    dmsg._neq = True
    rt.deliver(dmsg)
