"""Standalone replay of captured verifier inboxes (Fig 7a style).

A live deployment runs a recovery scenario — a Byzantine executor
corrupts records, a verifier cluster detects the mismatch, accuses, and
the task is reassigned — with replay capture enabled on every verifier.
The captured JSONL trace is then replayed against freshly constructed
cores with no Simulator and no Network, and each replayed effect stream
must match its live counterpart signature-for-signature.
"""

from __future__ import annotations

import io

import pytest

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.coordinator import Coordinator
from repro.core.faults import CorruptRecordFault
from repro.core.verifier import Verifier
from repro.obs import CATEGORY_REPLAY, JsonlTraceSink
from repro.runtime.replay import ReplayLog, replay

VERIFIER_PIDS = ("v0", "v1", "v2", "v3", "v4", "v5")


@pytest.fixture(scope="module")
def capture():
    """One live recovery run; returns (cluster, captured jsonl lines)."""
    app = SyntheticApp(records_per_task=6, compute_cost=2e-3)
    workload = [(i * 0.01, make_compute_task(i)) for i in range(6)]
    buf = io.StringIO()
    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=8,
        k=2,
        seed=11,
        config=OsirisConfig(suspect_timeout=60.0, chunk_bytes=4096),
        executor_faults={"e0": CorruptRecordFault(activate_at=0.0)},
        sinks=(JsonlTraceSink(buf, categories=frozenset({CATEGORY_REPLAY})),),
        capture=VERIFIER_PIDS,
    )
    cluster.start()
    cluster.run(until=30.0)
    return cluster, buf.getvalue().splitlines()


def fresh_core(cluster, pid):
    """A brand-new core identical to the captured one at birth."""
    live = cluster.worker(pid)
    cls = Coordinator if isinstance(live, Coordinator) else Verifier
    return cls(
        pid,
        cluster.topo,
        cluster.registry,
        live.signer,
        cluster.app,
        cluster.config,
        cluster=live.cluster,
    )


def replay_pid(cluster, lines, pid):
    log = ReplayLog.from_jsonl(lines, pid)
    rt = replay(
        fresh_core(cluster, pid),
        log,
        cores=cluster.config.cores_per_node,
        wants=cluster.bus.wants,
    )
    return log, rt


class TestVerifierReplay:
    def test_scenario_is_a_recovery(self, capture):
        """Sanity: the live run actually exercised detection + recovery,
        so the capture is a Fig 7a-style inbox rather than a happy path."""
        cluster, lines = capture
        assert sum(v.failures_detected for v in cluster.all_verifiers) >= 1
        assert all(v.chunks_verified >= 1 for v in cluster.all_verifiers)
        log = ReplayLog.from_jsonl(lines, "v3")
        assert log.inputs and log.effects
        kinds = {kind for _, kind, _ in log.inputs}
        assert "msg" in kinds and "job" in kinds

    def test_replayed_verifier_stream_matches_live(self, capture):
        cluster, lines = capture
        log, rt = replay_pid(cluster, lines, "v3")
        assert rt.effects == log.effects

    def test_replayed_detecting_core_matches_live(self, capture):
        """The member that detected the corruption replays too — its
        inbox includes the mismatching chunk and the accusation flow."""
        cluster, lines = capture
        detecting = next(
            v for v in cluster.all_verifiers if v.failures_detected >= 1
        )
        log, rt = replay_pid(cluster, lines, detecting.pid)
        assert rt.effects == log.effects
        assert rt.core.failures_detected == detecting.failures_detected

    def test_replayed_core_reaches_live_state(self, capture):
        """Replay is a full re-execution: the rebuilt core lands on the
        live core's counters, not just its outbox."""
        cluster, lines = capture
        live = cluster.worker("v3")
        _, rt = replay_pid(cluster, lines, "v3")
        assert rt.core.failures_detected == live.failures_detected
        assert rt.core.chunks_verified == live.chunks_verified
        assert rt.core.role_epoch == live.role_epoch

    def test_every_verifier_inbox_replays(self, capture):
        cluster, lines = capture
        for pid in VERIFIER_PIDS:
            log, rt = replay_pid(cluster, lines, pid)
            assert rt.effects == log.effects, f"divergence for {pid}"

    def test_unknown_pid_yields_empty_log(self, capture):
        _, lines = capture
        log = ReplayLog.from_jsonl(lines, "nobody")
        assert log.inputs == [] and log.effects == []
