"""Codec completeness: every registered wire type round-trips.

Replay capture only ever exercised the message subset one pid's inbox
happens to contain; the live backend routes *every* cross-process send
through the codec, so every registered message/control type must encode
and decode without dropping or mangling a field.  The sample builder
fills each init field with a representative non-default value, so a
field the codec silently loses fails the equality check instead of
comparing default-to-default.
"""

from dataclasses import MISSING, fields

import pytest

from repro.core.tasks import Assignment, Chunk, Opcode, Record, Task
from repro.crypto.signatures import Signature
from repro.net.message import Message
from repro.runtime import codec

SAMPLE_TASK = Task(
    task_id="t-7",
    opcode=Opcode.BOTH,
    update_payload=("add", 3, 4),
    compute_payload={"edge": [3, 4]},
    timestamp=12,
    submitted_at=0.25,
    size_bytes=96,
    # non-default: a nested task whose tenant stayed "" would compare
    # default-to-default and hide a codec drop of the field
    tenant="acme",
)
SAMPLE_RECORDS = (
    Record(key=(1, 2), data=("m", 5), size_bytes=32),
    Record(key=(2, 9), data=None, size_bytes=48),
)
SAMPLE_CHUNK = Chunk(
    task_id="t-7", index=1, records=SAMPLE_RECORDS, final=True
)
SAMPLE_ASSIGNMENT = Assignment(
    task=SAMPLE_TASK, executor="e1", vp_index=2, attempt=1
)
SAMPLE_SIG = Signature(signer="v0", mac=b"\x01\x02\xfe")

#: field-name overrides where the generic by-name/type fill is wrong
_BY_NAME = {
    "task": SAMPLE_TASK,
    "chunk": SAMPLE_CHUNK,
    "assignment": SAMPLE_ASSIGNMENT,
    "sig": SAMPLE_SIG,
    "assignment_sigs": (SAMPLE_SIG, Signature(signer="v1", mac=b"\xaa")),
    "opcode": Opcode.COMPUTE,
    "records": SAMPLE_RECORDS,
    "key": (4, 2),
    "mac": b"\x99\x88",
    # consensus batches: (request_id, payload, payload_size) triples
    "batch": (("r1", SAMPLE_TASK, 64), ("r2", {"p": (1, 2)}, 32)),
    # view-change state transfer: (seq, view, batch, batch_digest)
    "slots": ((3, 1, (("r1", "p", 8),), b"\xbb"),),
    "payload": {"nested": [1, (2, 3), {"k": b"\x01"}]},
}


def _scalar_sample(annotation: str):
    if "bytes" in annotation:
        return b"\x07\x11"
    if "str" in annotation:
        return "sample"
    if "bool" in annotation:
        return True
    if "float" in annotation:
        return 1.75
    if "int" in annotation:
        return 5
    if "tuple" in annotation:
        return (1, "a")
    return ("any", 1)


def build_sample(cls):
    """Instantiate ``cls`` with every init field set non-default."""
    kwargs = {}
    for f in fields(cls):
        if not f.init:
            continue
        if f.name in _BY_NAME:
            kwargs[f.name] = _BY_NAME[f.name]
        else:
            kwargs[f.name] = _scalar_sample(str(f.type))
    obj = cls(**kwargs)
    # guard against vacuous equality: at least one field differs from
    # an all-defaults instance (when the class has any defaults at all)
    for f in fields(cls):
        if f.init and f.default is not MISSING:
            assert getattr(obj, f.name) != f.default or f.default in (
                (),
            ), f"{cls.__name__}.{f.name} sample equals its default"
    return obj


REGISTERED = sorted(codec.registered_types().items())


@pytest.mark.parametrize(
    "name,cls", REGISTERED, ids=[name for name, _ in REGISTERED]
)
def test_round_trip(name, cls):
    obj = build_sample(cls)
    back = codec.decode_json(codec.encode_json(obj))
    assert type(back) is cls
    assert back == obj
    for f in fields(cls):
        assert getattr(back, f.name) == getattr(obj, f.name), f.name


@pytest.mark.parametrize(
    "name,cls",
    [(n, c) for n, c in REGISTERED if issubclass(c, Message)],
    ids=[n for n, c in REGISTERED if issubclass(c, Message)],
)
def test_transport_stamps_round_trip(name, cls):
    """sender/_neq ride the inbox form and are absent from content form."""
    obj = build_sample(cls)
    obj.sender = "e3"
    obj._neq = True
    back = codec.decode_json(codec.encode_json(obj, with_sender=True))
    assert back.sender == "e3"
    assert back._neq is True
    bare = codec.decode_json(codec.encode_json(obj, with_sender=False))
    assert bare.sender is None
    assert bare._neq is False


class TestContainers:
    def test_sets_round_trip_deterministically(self):
        value = {"b", "a", 3}
        assert codec.decode_json(codec.encode_json(value)) == value
        assert codec.encode_json(value) == codec.encode_json({3, "a", "b"})

    def test_frozenset_distinct_from_set(self):
        value = frozenset({1, 2})
        back = codec.decode_json(codec.encode_json(value))
        assert back == value
        assert isinstance(back, frozenset)

    def test_tuple_keys_in_dicts(self):
        value = {(1, "a"): [b"\x00", (2,)]}
        assert codec.decode_json(codec.encode_json(value)) == value


class TestTenancyFields:
    """PR 8 fields riding outside ``payload_bytes`` survive the wire.

    ``Task.tenant`` and the ``tenant``/``submitted_at`` stamps on
    VerifiedChunkMsg/VerifiedDigestMsg are metadata the OP's SLO
    accounting depends on; they cross process boundaries both in the
    live backend and in replay capture logs, so they must round-trip
    through the exact capture encoding (``encode_message``), not just
    the bare codec.
    """

    def test_task_tenant_nested_in_assignment_msg(self):
        from repro.core.messages import AssignmentMsg
        from repro.runtime.replay import decode_message, encode_message

        msg = build_sample(AssignmentMsg)
        assert msg.assignment.task.tenant == "acme"  # sample non-vacuous
        assert msg.assignment.task.submitted_at == 0.25
        back = decode_message(encode_message(msg))
        assert back.assignment.task.tenant == "acme"
        assert back.assignment.task.submitted_at == 0.25

    @pytest.mark.parametrize("cls_name", ["VerifiedChunkMsg", "VerifiedDigestMsg"])
    def test_verified_messages_keep_slo_stamps(self, cls_name):
        import repro.core.messages as core_messages
        from repro.runtime.replay import decode_message, encode_message

        cls = getattr(core_messages, cls_name)
        msg = build_sample(cls)
        msg.tenant = "tenant-b"
        msg.submitted_at = 3.5
        msg.sender = "v1"
        back = decode_message(encode_message(msg))
        assert back.tenant == "tenant-b"
        assert back.submitted_at == 3.5
        assert back.sender == "v1"

    def test_task_tenant_excluded_from_canonical_but_not_wire(self):
        stamped = SAMPLE_TASK
        bare = Task(
            task_id=stamped.task_id,
            opcode=stamped.opcode,
            update_payload=stamped.update_payload,
            compute_payload=stamped.compute_payload,
            timestamp=stamped.timestamp,
            submitted_at=stamped.submitted_at,
            size_bytes=stamped.size_bytes,
        )
        # tenancy must not perturb signatures/digests ...
        assert stamped.canonical() == bare.canonical()
        # ... but must not be collapsed by the codec either
        assert codec.encode_json(stamped) != codec.encode_json(bare)
        assert codec.decode_json(codec.encode_json(stamped)).tenant == "acme"


class TestRegistration:
    def test_register_rejects_non_dataclass(self):
        from repro.errors import ReplayError

        with pytest.raises(ReplayError):
            codec.register(int)

    def test_register_enum_round_trips(self):
        import enum

        from repro.errors import ReplayError

        class Mood(enum.Enum):
            UP = "up"
            DOWN = "down"

        codec.register_enum(Mood)
        assert codec.decode_json(codec.encode_json(Mood.DOWN)) is Mood.DOWN
        with pytest.raises(ReplayError):
            codec.register_enum(int)

    def test_unknown_class_is_a_clear_error(self):
        from repro.errors import ReplayError

        with pytest.raises(ReplayError):
            codec.decode({"__c": "NoSuchMessage", "f": {}})
