"""AdmissionGate: the input process's admission semantics, replayed at
the gateway edge — verdicts, shedding, pacing, drain-on-close."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import ADMITTED, DEFERRED, REJECTED, AdmissionGate


class Collector:
    def __init__(self):
        self.items = []
        self.lock = threading.Lock()

    def __call__(self, task):
        with self.lock:
            self.items.append(task)


class TestValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ServeError):
            AdmissionGate(lambda t: None, queue_bound=0)
        with pytest.raises(ServeError):
            AdmissionGate(lambda t: None, rate=0.0)
        with pytest.raises(ServeError):
            AdmissionGate(lambda t: None, time_scale=-1.0)

    def test_double_start_rejected(self):
        gate = AdmissionGate(lambda t: None)
        gate.start()
        try:
            with pytest.raises(ServeError):
                gate.start()
        finally:
            gate.close()


class TestPassThrough:
    def test_no_knobs_forwards_inline(self):
        sink = Collector()
        gate = AdmissionGate(sink)
        assert not gate.enforcing
        # no dispatcher needed: inline forward even before start()
        status, depth = gate.offer("task-a")
        assert (status, depth) == (ADMITTED, 0)
        assert sink.items == ["task-a"]
        assert gate.admitted == 1 and gate.forwarded == 1


class TestBoundedQueue:
    def test_full_queue_sheds(self):
        sink = Collector()
        gate = AdmissionGate(sink, queue_bound=2)
        # dispatcher not started: the queue can only fill
        assert gate.offer("a")[0] == ADMITTED
        assert gate.offer("b")[0] == DEFERRED  # queue non-empty
        status, depth = gate.offer("c")
        assert status == REJECTED and depth == 2
        assert gate.rejected == 1
        gate.start()
        assert gate.wait_empty(5.0)
        gate.close()
        assert sink.items == ["a", "b"]  # shed task never forwarded

    def test_closed_gate_rejects(self):
        gate = AdmissionGate(Collector(), queue_bound=4)
        gate.start()
        gate.close()
        assert gate.offer("late")[0] == REJECTED


class TestRatePacing:
    def test_drain_respects_wall_gap(self):
        sink = Collector()
        # 50 tasks/s sim at time_scale 1.0 → 20 ms wall between forwards
        gate = AdmissionGate(sink, queue_bound=64, rate=50.0, time_scale=1.0)
        gate.start()
        t0 = time.monotonic()
        for i in range(5):
            gate.offer(f"t{i}")
        assert gate.wait_empty(5.0)
        elapsed = time.monotonic() - t0
        gate.close()
        assert len(sink.items) == 5
        # 5 forwards → at least 4 inter-forward gaps of 20 ms
        assert elapsed >= 0.06

    def test_tick_pending_defers_between_drains(self):
        gate = AdmissionGate(Collector(), queue_bound=64, rate=2.0,
                             time_scale=1.0)
        gate.start()
        try:
            assert gate.offer("a")[0] == ADMITTED
            time.sleep(0.1)  # dispatcher forwarded "a", now mid-tick
            assert gate.offer("b")[0] == DEFERRED
        finally:
            gate.close(drain_timeout=2.0)

    def test_close_drains_whats_queued(self):
        sink = Collector()
        gate = AdmissionGate(sink, queue_bound=64, rate=100.0, time_scale=1.0)
        gate.start()
        for i in range(8):
            gate.offer(f"t{i}")
        gate.close(drain_timeout=5.0)
        assert len(sink.items) == 8
        assert gate.forwarded == 8


class TestConcurrentOffers:
    def test_verdicts_account_for_every_offer(self):
        sink = Collector()
        gate = AdmissionGate(sink, queue_bound=16, rate=500.0, time_scale=1.0)
        gate.start()
        results = []
        lock = threading.Lock()

        def offerer(base):
            for i in range(20):
                status, _ = gate.offer(f"{base}-{i}")
                with lock:
                    results.append(status)

        threads = [
            threading.Thread(target=offerer, args=(f"c{j}",)) for j in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        gate.close(drain_timeout=5.0)
        assert len(results) == 80
        assert gate.admitted + gate.deferred + gate.rejected == 80
        # everything that was not shed reached the runtime
        assert len(sink.items) == gate.admitted + gate.deferred
        assert gate.forwarded == len(sink.items)
