"""Frame codec: round-trips over real sockets, oversized and truncated
frames, protocol value types."""

import socket
import struct
import threading

import pytest

from repro.core.tasks import Opcode, Task
from repro.errors import ServeError
from repro.serve.frames import (
    ADMITTED,
    MAX_FRAME,
    ClientHello,
    ServerHello,
    SubmitReply,
    SubmitTask,
    TaskDone,
    pack_frame,
    recv_frame,
    send_frame,
    unpack_payload,
)


def sock_pair():
    return socket.socketpair()


class TestPackUnpack:
    def test_every_frame_type_round_trips(self):
        frames = [
            ClientHello(client="c1"),
            ServerHello(gateway="gw", n=4, shards=2, time_scale=0.25),
            SubmitTask(
                task=Task(
                    task_id="t1",
                    opcode=Opcode.BOTH,
                    update_payload={"x": 1},
                    compute_payload={"y": 2},
                    tenant="t0",
                )
            ),
            SubmitReply(task_id="t1", status=ADMITTED, queue_depth=3),
            TaskDone(
                task_id="t1", tenant="t0", completed_at=2.5, submitted_at=1.0
            ),
        ]
        for frame in frames:
            packed = pack_frame(frame)
            (length,) = struct.unpack(">I", packed[:4])
            assert length == len(packed) - 4
            again = unpack_payload(packed[4:])
            assert again == frame

    def test_task_payload_survives_the_wire_as_a_task(self):
        task = Task(
            task_id="t9", opcode=Opcode.COMPUTE, update_payload=[1, 2],
            compute_payload=None, tenant="t3",
        )
        packed = pack_frame(SubmitTask(task=task))
        again = unpack_payload(packed[4:])
        assert isinstance(again.task, Task)
        assert again.task.canonical() == task.canonical()
        assert again.task.tenant == "t3"

    def test_oversized_payload_rejected_at_pack_time(self):
        huge = SubmitTask(task="x" * (MAX_FRAME + 1))
        with pytest.raises(ServeError, match="exceeds"):
            pack_frame(huge)

    def test_undecodable_payload(self):
        with pytest.raises(ServeError, match="undecodable"):
            unpack_payload(b"not json at all {")


class TestSocketFraming:
    def test_round_trip_over_a_real_socket(self):
        a, b = sock_pair()
        try:
            send_frame(a, SubmitReply(task_id="t1", status=ADMITTED))
            send_frame(a, TaskDone(
                task_id="t1", tenant="t0", completed_at=1.0, submitted_at=0.5
            ))
            first = recv_frame(b)
            second = recv_frame(b)
            assert isinstance(first, SubmitReply)
            assert isinstance(second, TaskDone)
        finally:
            a.close()
            b.close()

    def test_clean_eof_at_frame_boundary_returns_none(self):
        a, b = sock_pair()
        try:
            send_frame(a, ClientHello())
            a.close()
            assert isinstance(recv_frame(b), ClientHello)
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_header_raises(self):
        a, b = sock_pair()
        try:
            a.sendall(b"\x00\x00")  # 2 of 4 header bytes, then EOF
            a.close()
            with pytest.raises(ServeError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_truncated_payload_raises(self):
        a, b = sock_pair()
        try:
            packed = pack_frame(ClientHello(client="x"))
            a.sendall(packed[:-3])  # drop the payload tail
            a.close()
            with pytest.raises(ServeError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_announced_oversize_cut_off_before_payload_read(self):
        a, b = sock_pair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(ServeError, match="ceiling"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_interleaved_frames_from_a_writer_thread(self):
        a, b = sock_pair()
        n = 50
        try:
            def writer():
                for i in range(n):
                    send_frame(a, SubmitReply(task_id=f"t{i}", status=ADMITTED))
                a.close()

            t = threading.Thread(target=writer)
            t.start()
            got = []
            while True:
                frame = recv_frame(b)
                if frame is None:
                    break
                got.append(frame.task_id)
            t.join()
            assert got == [f"t{i}" for i in range(n)]
        finally:
            b.close()


class TestAsyncFraming:
    def test_read_frame_async_round_trip_and_eof(self):
        import asyncio

        from repro.serve.frames import read_frame_async

        async def scenario():
            server_got = []

            async def on_conn(reader, writer):
                while True:
                    frame = await read_frame_async(reader)
                    if frame is None:
                        break
                    server_got.append(frame)
                writer.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(pack_frame(ClientHello(client="async")))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            server.close()
            await server.wait_closed()
            return server_got

        got = asyncio.run(scenario())
        assert got == [ClientHello(client="async")]
