"""End-to-end serving over real sockets and real OS processes.

These tests fork a live cluster behind a :class:`~repro.serve.Gateway`
and drive it with actual TCP clients, so they carry the ``live`` marker
and run in the dedicated timeout-bounded CI job, not tier-1.  A small
``time_scale`` keeps each case around a second or two of wall time.
"""

import socket
import struct

import pytest

from repro import api
from repro.serve import Client, drive_open_loop, serve_bench
from repro.serve.frames import (
    REJECTED,
    ClientHello,
    ServerHello,
    recv_frame,
    send_frame,
)

pytestmark = pytest.mark.live

_TIME_SCALE = 0.05


def _spec(n_tasks=8, rate=80.0, shards=1, config=(), seed=3):
    return api.DeploymentSpec(
        workload="open_loop",
        workload_params=(
            ("n_tasks", n_tasks),
            ("rate", rate),
            ("process", "poisson"),
            ("seed", seed),
        ),
        n=4,
        seed=seed,
        shards=shards,
        tenants=2,
        backend="live",
        sanitize=True,
        config=tuple(config),
    )


def _serve_and_drive(spec, done_timeout=30.0):
    items = spec.resolve_workload().tasks
    gateway = api.serve(spec, time_scale=_TIME_SCALE)
    try:
        clients = drive_open_loop(
            gateway.address,
            items,
            _TIME_SCALE,
            n_clients=2,
            done_timeout=done_timeout,
        )
    finally:
        gateway.stop()
    return gateway.result(client_slo=clients.slo()), clients


class TestGatewayEndToEnd:
    def test_serves_and_completes_every_offered_task(self):
        result, clients = _serve_and_drive(_spec(n_tasks=8))
        assert clients.offered == 8
        assert clients.rejected == 0
        assert clients.completed == 8
        assert result.tasks_completed == 8
        assert (result.sanitizer_violations or 0) == 0
        # gateway-side accounting matches what the clients saw
        assert result.extra["gateway_admitted"] == clients.admitted
        assert result.extra["gateway_deferred"] == clients.deferred
        assert result.extra["gateway_rejected"] == 0
        # typed client SLO landed on the result
        slo = result.client_slo
        assert slo["completed"] == 8
        assert slo["p50_latency"] > 0.0
        assert slo["p99_latency"] >= slo["p50_latency"]

    def test_sharded_serving_routes_by_tenant(self):
        result, clients = _serve_and_drive(_spec(n_tasks=8, shards=2))
        assert clients.completed == 8
        assert (result.sanitizer_violations or 0) == 0
        # both shard pipelines committed work: every OP reports outcomes
        commits = result.extra["commits"]
        assert len(commits) == 2
        assert all(commits.values())

    def test_backpressure_sheds_under_overload(self):
        # queue of 2, drain far below offered: rejections must surface
        result, clients = _serve_and_drive(
            _spec(n_tasks=12, rate=120.0,
                  config=(("admission_queue", 2), ("admission_rate", 4.0))),
            done_timeout=10.0,
        )
        assert clients.rejected > 0
        # only non-rejected tasks ever complete
        assert clients.completed <= clients.admitted + clients.deferred
        assert result.extra["gateway_rejected"] == clients.rejected

    def test_protocol_violation_drops_only_that_client(self):
        spec = _spec(n_tasks=4, rate=400.0)
        items = spec.resolve_workload().tasks
        gateway = api.serve(spec, time_scale=_TIME_SCALE)
        try:
            host, port = gateway.address
            # rogue client: valid hello, then an undecodable frame
            rogue = socket.create_connection((host, port))
            try:
                send_frame(rogue, ClientHello(client="rogue"))
                assert isinstance(recv_frame(rogue), ServerHello)
                rogue.sendall(struct.pack(">I", 7) + b"garbage")
                # gateway drops us: EOF (or reset) on the next read
                try:
                    assert recv_frame(rogue) is None
                except Exception:
                    pass
            finally:
                rogue.close()
            # a well-behaved client on the same gateway still gets served
            with Client(host, port, client="good") as client:
                expect = 0
                for _, task in items:
                    reply = client.submit(task)
                    if reply.status != REJECTED:
                        expect += 1
                done = client.collect_done(expect, timeout=20.0)
                assert len(done) == expect > 0
        finally:
            gateway.stop()
        result = gateway.result()
        assert (result.sanitizer_violations or 0) == 0

    def test_hello_reports_cluster_shape(self):
        spec = _spec(n_tasks=4, shards=2)
        gateway = api.serve(spec, time_scale=_TIME_SCALE)
        try:
            host, port = gateway.address
            with Client(host, port) as client:
                assert client.hello.n == 4
                assert client.hello.shards == 2
                assert client.hello.time_scale == _TIME_SCALE
        finally:
            gateway.stop()


class TestServeBench:
    def test_serve_bench_crossvalidates_and_trips_backpressure(self):
        report = serve_bench(
            n=4, tasks=10, rate=60.0, seed=5, time_scale=_TIME_SCALE
        )
        assert report.ok, report.summary()
        assert report.crossval.mismatches == []
        assert report.serve_result.client_slo["completed"] == 10
        assert report.overload_slo["rejected"] > 0
