"""`python -m repro.mc` exit codes and output contracts."""

import json

from repro.mc.__main__ import main as mc_main


class TestExplore:
    def test_clean_model_exits_zero(self, capsys):
        assert mc_main(["explore", "--n", "3", "--tasks", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_json_mode_reports_stats(self, capsys):
        assert (
            mc_main(["explore", "--n", "3", "--tasks", "1", "--json"]) == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["stats"]["violations"] == 0
        assert payload["stats"]["complete"] is True
        assert payload["model"]["n"] == 3

    def test_bad_model_exits_two(self, capsys):
        assert mc_main(["explore", "--n", "9"]) == 2
        assert mc_main(["explore", "--fault", "no-colon"]) == 2
        assert mc_main(["explore", "--fault", "output:spurious-reports"]) == 2


class TestStats:
    def test_stats_reports_reduction_ratio(self, capsys):
        assert mc_main(["stats", "--n", "3", "--tasks", "1", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        stats = payload["stats"]
        assert stats["reduction_ratio"] > 2.0
        assert stats["tree_size"] > stats["transitions"]
        assert stats["states"] > 0

    def test_stats_plain_output_names_every_counter(self, capsys):
        assert mc_main(["stats", "--n", "3", "--tasks", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("states", "transitions", "reduction_ratio",
                     "stutter_commits", "sleep_skips"):
            assert name in out


class TestReplay:
    def test_malformed_reproducer_exits_two(self, capsys):
        assert mc_main(["replay", "not json"]) == 2
        assert mc_main(["replay", json.dumps({"kind": "other"})]) == 2
        assert mc_main(["replay", "@/no/such/file.json"]) == 2

    def test_non_reproducing_trace_exits_one(self, capsys, tmp_path):
        # a clean model never fires the claimed invariant
        rep = {
            "kind": "mc-reproducer",
            "model": {"n": 3, "tasks": 1},
            "invariants": ["output-failure"],
            "details": [],
            "trace": [],
        }
        path = tmp_path / "rep.json"
        path.write_text(json.dumps(rep))
        assert mc_main(["replay", f"@{path}"]) == 1
        assert "NOT reproduced" in capsys.readouterr().out
