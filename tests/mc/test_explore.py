"""Explorer determinism, reduction accounting, and fault coverage."""

from repro.mc import McModel, explore


class TestDeterminism:
    def test_same_counts_across_two_runs(self):
        model = McModel(n=3, tasks=1)
        first = explore(model)
        second = explore(model)
        assert first.stats.to_dict() == second.stats.to_dict()
        assert first.ok and second.ok

    def test_exploration_is_complete_within_budget(self):
        result = explore(McModel(n=3, tasks=1))
        assert result.stats.complete
        assert result.stats.terminals > 1  # delay budget branches exist


class TestReduction:
    def test_reduction_ratio_beats_two_x(self):
        stats = explore(McModel(n=3, tasks=1)).stats
        assert stats.reduction_ratio > 2.0
        assert stats.tree_size > stats.transitions
        assert stats.interleavings >= stats.terminals

    def test_sleep_sets_and_stutter_both_fire(self):
        stats = explore(McModel(n=3, tasks=1)).stats
        assert stats.sleep_skips > 0
        assert stats.stutter_commits > 0
        assert stats.cache_hits > 0

    def test_disabling_stutter_only_grows_the_space(self):
        base = explore(McModel(n=3, tasks=1)).stats
        full = explore(McModel(n=3, tasks=1, stutter=False)).stats
        assert full.states >= base.states
        assert full.stutter_commits == 0
        assert full.violations == base.violations == 0

    def test_delay_budget_bounds_the_space(self):
        tight = explore(McModel(n=3, tasks=1, delays=0)).stats
        loose = explore(McModel(n=3, tasks=1, delays=1)).stats
        assert tight.terminals == 1  # canonical schedule only
        assert loose.states > tight.states


class TestFaultModels:
    def test_registry_faults_explore_clean(self):
        # spot-check the two most race-prone faults; the full registry
        # sweep is the mc-smoke CI job's territory
        for role, kind in [
            ("executor", "equivocate-chunks"),
            ("verifier", "bogus-digest"),
        ]:
            result = explore(
                McModel(n=3, tasks=1, fault_role=role, fault_kind=kind)
            )
            assert result.stats.complete
            assert result.ok, (role, kind, result.violations)

    def test_silent_executor_exercises_timers(self):
        # a silent executor produces nothing: progress needs suspect
        # timers to fire, which the timer budget must allow
        result = explore(
            McModel(n=3, tasks=1, fault_role="executor", fault_kind="silent")
        )
        assert result.stats.complete
        assert result.ok
        timer_keys = [
            k
            for v in result.violations
            for k in v.trace
            if k[0] == "t"
        ]
        # no violations, so inspect stats instead: the space is larger
        # than the fault-free one because timer branches exist
        base = explore(McModel(n=3, tasks=1)).stats
        assert result.stats.states > base.states
        assert not timer_keys
