"""Cross-check: the explorer finds known-bad cores, with short repros.

Two real historical bugs are re-introduced under test-only
monkeypatches and must be (a) detected by the exploration, (b) shrunk
to a ≤10-step schedule, and (c) replayable from the serialized JSON
reproducer — the end-to-end pipeline a genuine finding would ride.

* PR 5's validation hole: ``SyntheticApp.is_valid`` without the
  payload-equality check lets a corrupt-record executor smuggle a
  wrong record past the verifier quorum → ``output-failure``;
* an acceptance race: ``OutputProcess._try_accept`` accepting on a
  single endorsement (instead of a quorum) commits a chunk no quorum
  endorsed → ``accept-without-quorum``.
"""

import json

from unittest import mock

import pytest

from repro.apps.synthetic import SyntheticApp
from repro.core.input_output import OutputProcess
from repro.mc import (
    McModel,
    McReproducer,
    build_world,
    explore,
    reproduce,
    shrink_trace,
)
from repro.mc.__main__ import main as mc_main


def _weak_is_valid(self, view, record, task):
    """PR 5 revert: structural checks only, payload equality dropped."""
    if len(record.key) != 1 or not isinstance(record.key[0], int):
        return False
    return 0 <= record.key[0] < self._count(task)


def _weak_try_accept(self, task_id, ot, index, slot):
    """Acceptance quorum reverted to a single endorsement."""
    if slot.accepted:
        return
    for sigma, endorsers in slot.endorsements.items():
        if len(endorsers) >= 1 and sigma in slot.data:
            chunk = slot.data[sigma]
            slot.accepted = True
            ot.accepted.add(index)
            self.cancel_timer(f"op-wait-{task_id}-{index}")
            self.chunks_accepted += 1
            self.records_accepted += len(chunk.records)
            self._check_complete(task_id, ot)
            return
    self._arm_wait_timer(task_id, index)


def _find_and_shrink(model, expected_invariant):
    result = explore(model, root=build_world(model))
    assert not result.ok, f"explorer missed the seeded {expected_invariant}"
    violation = result.violations[0]
    assert expected_invariant in violation.invariants
    shrunk = shrink_trace(model, list(violation.trace), set(violation.invariants))
    assert len(shrunk) <= 10, (
        f"reproducer not minimal: {len(shrunk)} steps: {shrunk}"
    )
    return violation, shrunk


class TestSeededValidationHole:
    def test_explorer_finds_and_shrinks_the_corruption(self):
        model = McModel(
            n=3, tasks=1, fault_role="executor", fault_kind="corrupt-record"
        )
        with mock.patch.object(SyntheticApp, "is_valid", _weak_is_valid):
            violation, shrunk = _find_and_shrink(model, "output-failure")
            rep = McReproducer(
                model=model,
                invariants=list(violation.invariants),
                trace=list(shrunk),
                details=list(violation.details),
            )
            # JSON round-trip, then replay from the parsed form
            back = McReproducer.from_dict(json.loads(rep.to_json()))
            hit, report = reproduce(back)
            assert hit, report.summary()
            # the CLI replay path agrees (exit 0 = reproduced)
            assert mc_main(["replay", rep.to_json()]) == 0

    def test_fixed_cores_do_not_reproduce_it(self):
        # sanity against vacuous reproducers: on the real (fixed)
        # cores the same schedule must replay clean
        model = McModel(
            n=3, tasks=1, fault_role="executor", fault_kind="corrupt-record"
        )
        with mock.patch.object(SyntheticApp, "is_valid", _weak_is_valid):
            violation, shrunk = _find_and_shrink(model, "output-failure")
        rep = McReproducer(
            model=model,
            invariants=list(violation.invariants),
            trace=list(shrunk),
        )
        hit, report = reproduce(rep)
        assert not hit, report.summary()
        assert mc_main(["replay", rep.to_json()]) == 1


class TestSeededAcceptanceRace:
    def test_explorer_finds_and_shrinks_the_early_accept(self):
        model = McModel(n=3, tasks=1)
        with mock.patch.object(
            OutputProcess, "_try_accept", _weak_try_accept
        ):
            violation, shrunk = _find_and_shrink(model, "accept-without-quorum")
            rep = McReproducer(
                model=model,
                invariants=list(violation.invariants),
                trace=list(shrunk),
            )
            hit, report = reproduce(
                McReproducer.from_dict(json.loads(rep.to_json()))
            )
            assert hit, report.summary()
            assert mc_main(["replay", rep.to_json()]) == 0

    def test_fixed_cores_do_not_reproduce_it(self):
        model = McModel(n=3, tasks=1)
        with mock.patch.object(
            OutputProcess, "_try_accept", _weak_try_accept
        ):
            violation, shrunk = _find_and_shrink(model, "accept-without-quorum")
        rep = McReproducer(
            model=model,
            invariants=list(violation.invariants),
            trace=list(shrunk),
        )
        hit, _ = reproduce(rep)
        assert not hit


class TestReproducerFormat:
    def test_kind_is_checked(self):
        with pytest.raises(ValueError):
            McReproducer.from_dict({"kind": "fuzz-point"})

    def test_trace_keys_round_trip_as_tuples(self):
        rep = McReproducer(
            model=McModel(),
            invariants=["output-failure"],
            trace=[("d", "v0", "e0", "abc123", 0), ("t", "op0", "op-wait-c0-0", 0)],
        )
        back = McReproducer.from_dict(json.loads(rep.to_json()))
        assert back.trace == rep.trace
        assert all(isinstance(k, tuple) for k in back.trace)
        assert back.model == rep.model
