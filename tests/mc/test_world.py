"""McWorld construction, action identity, snapshots, fingerprints."""

import pytest

from repro.errors import ProtocolError
from repro.mc import McModel, audit_world, build_world


class TestModelValidation:
    def test_bounds_are_enforced(self):
        with pytest.raises(ProtocolError):
            McModel(n=5).validate()
        with pytest.raises(ProtocolError):
            McModel(tasks=4).validate()
        with pytest.raises(ProtocolError):
            McModel(fault_role="executor").validate()  # kind missing
        with pytest.raises(ProtocolError):
            McModel(fault_role="output", fault_kind="spurious-reports").validate()

    def test_round_trips_through_dict(self):
        model = McModel(
            n=4, tasks=3, fault_role="executor", fault_kind="silent",
            delays=2, stutter=False,
        )
        assert McModel.from_dict(model.to_dict()) == model

    def test_from_dict_ignores_unknown_keys(self):
        assert McModel.from_dict({"n": 4, "future_knob": 1}).n == 4


class TestBuildWorld:
    def test_bootstrap_frontier_is_pure_data_plane(self):
        world = build_world(McModel(n=3, tasks=1))
        assert sorted(world.cores) == ["e0", "op0", "v0", "v1", "v2"]
        assert len(world.coordinators) == 3
        assert len(world.outputs) == 1
        # only deliveries pending: locals drained, no timers armed yet
        assert world.pending
        assert all(k[0] == "d" for k in world.pending)
        assert all(not rt.timers for rt in world.runtimes.values())

    def test_action_keys_are_content_based_and_reproducible(self):
        w1 = build_world(McModel(n=3, tasks=2))
        w2 = build_world(McModel(n=3, tasks=2))
        assert sorted(w1.pending) == sorted(w2.pending)
        assert w1.fingerprint() == w2.fingerprint()

    def test_initial_state_passes_the_safety_audit(self):
        report = audit_world(build_world(McModel(n=3, tasks=1)))
        assert report.ok, report.summary()


class TestSnapshots:
    def test_clone_isolates_execution(self):
        world = build_world(McModel(n=3, tasks=1))
        fp_before = world.fingerprint()
        clone = world.clone()
        action = clone.enabled()[0]
        clone.execute(action)
        assert world.fingerprint() == fp_before
        assert clone.fingerprint() != fp_before
        assert action.key not in clone.pending
        assert action.key in world.pending

    def test_clone_shares_the_immutable_environment(self):
        world = build_world(McModel(n=3, tasks=1))
        clone = world.clone()
        assert clone.topo is world.topo
        assert clone.app is world.app
        assert clone.registry is world.registry
        assert clone.config is world.config
        assert clone.cores["v0"] is not world.cores["v0"]

    def test_fingerprint_ignores_occurrence_history(self):
        # two worlds that enqueued different *numbers* of identical
        # payloads still fingerprint by the pending multiset
        world = build_world(McModel(n=3, tasks=1))
        fp = world.fingerprint()
        assert world.clone().fingerprint() == fp


class TestEnabled:
    def test_canonical_order_is_sorted_and_deterministic(self):
        world = build_world(McModel(n=3, tasks=1))
        keys = [a.key for a in world.enabled()]
        assert keys == sorted(keys)

    def test_execution_to_quiescence_terminates(self):
        world = build_world(McModel(n=3, tasks=1))
        steps = 0
        while True:
            enabled = world.enabled()
            if not enabled:
                break
            world.execute(enabled[0])
            steps += 1
            assert steps < 500, "canonical schedule did not terminate"
        assert world.is_terminal()
        report = audit_world(world)
        assert report.ok, report.summary()
        # the canonical run commits every task at the output process
        op = world.outputs[0]
        assert op.chunks_accepted > 0
