"""Tests for the signature registry: unforgeability is structural."""

import pytest

from repro.crypto import KeyRegistry, Signature, sign_cost, verify_cost
from repro.errors import CryptoError


@pytest.fixture
def registry():
    return KeyRegistry(seed=b"test")


class TestSignVerify:
    def test_valid_signature_verifies(self, registry):
        signer = registry.register("v0")
        payload = {"task": 1, "executor": "e0"}
        sig = signer.sign(payload)
        assert registry.verify(payload, sig)

    def test_signature_binds_payload(self, registry):
        signer = registry.register("v0")
        sig = signer.sign({"task": 1})
        assert not registry.verify({"task": 2}, sig)

    def test_signature_binds_signer(self, registry):
        registry.register("v0")
        other = registry.register("v1")
        sig = other.sign({"task": 1})
        forged = Signature(signer="v0", mac=sig.mac)
        assert not registry.verify({"task": 1}, forged)

    def test_unknown_signer_rejected(self, registry):
        sig = Signature(signer="ghost", mac=b"\x00" * 32)
        assert not registry.verify({"x": 1}, sig)

    def test_duplicate_registration_rejected(self, registry):
        registry.register("v0")
        with pytest.raises(CryptoError):
            registry.register("v0")

    def test_known(self, registry):
        registry.register("v0")
        assert registry.known("v0")
        assert not registry.known("v1")

    def test_signatures_deterministic_per_registry_seed(self):
        a = KeyRegistry(seed=b"s").register("p").sign([1])
        b = KeyRegistry(seed=b"s").register("p").sign([1])
        assert a == b

    def test_registry_seeds_isolate_keys(self):
        reg_a = KeyRegistry(seed=b"a")
        reg_b = KeyRegistry(seed=b"b")
        sig = reg_a.register("p").sign([1])
        reg_b.register("p")
        assert not reg_b.verify([1], sig)


class TestQuorum:
    def test_quorum_of_distinct_group_members(self, registry):
        signers = [registry.register(f"v{i}") for i in range(3)]
        payload = ["assign", 1]
        sigs = [s.sign(payload) for s in signers]
        group = {"v0", "v1", "v2"}
        assert registry.verify_quorum(payload, sigs, group, need=2)

    def test_duplicate_signer_counts_once(self, registry):
        s = registry.register("v0")
        payload = ["assign", 1]
        sigs = [s.sign(payload), s.sign(payload)]
        assert not registry.verify_quorum(payload, sigs, {"v0", "v1"}, need=2)

    def test_out_of_group_signer_ignored(self, registry):
        inside = registry.register("v0")
        outside = registry.register("e0")
        payload = ["assign", 1]
        sigs = [inside.sign(payload), outside.sign(payload)]
        assert not registry.verify_quorum(payload, sigs, {"v0", "v1"}, need=2)

    def test_invalid_signature_ignored(self, registry):
        registry.register("v0")
        v1 = registry.register("v1")
        payload = ["assign", 1]
        sigs = [Signature("v0", b"\x00" * 32), v1.sign(payload)]
        assert not registry.verify_quorum(payload, sigs, {"v0", "v1"}, need=2)
        assert registry.verify_quorum(payload, sigs, {"v0", "v1"}, need=1)


class TestCosts:
    def test_costs_scale_linearly(self):
        assert sign_cost(10) == pytest.approx(10 * sign_cost(1))
        assert verify_cost(10) == pytest.approx(10 * verify_cost(1))

    def test_verify_costs_more_than_sign(self):
        assert verify_cost(1) > sign_cost(1)
