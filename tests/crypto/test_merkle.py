"""Tests for Merkle commitments over record chunks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import MerkleTree, merkle_root, verify_inclusion
from repro.errors import CryptoError


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree(["r0"])
        assert tree.size == 1
        assert verify_inclusion("r0", tree.proof(0), tree.root)

    def test_empty_rejected(self):
        with pytest.raises(CryptoError):
            MerkleTree([])

    def test_root_depends_on_contents(self):
        assert merkle_root([1, 2, 3]) != merkle_root([1, 2, 4])

    def test_root_depends_on_order(self):
        assert merkle_root([1, 2]) != merkle_root([2, 1])

    def test_proof_index_out_of_range(self):
        tree = MerkleTree([1, 2])
        with pytest.raises(CryptoError):
            tree.proof(2)

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=33),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_inclusion_proof_verifies(self, items):
        tree = MerkleTree(items)
        for i, item in enumerate(items):
            assert verify_inclusion(item, tree.proof(i), tree.root)

    @given(items=st.lists(st.integers(), min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_wrong_item_fails_proof(self, items):
        tree = MerkleTree(items)
        proof = tree.proof(0)
        tampered = items[0] + 1
        assert not verify_inclusion(tampered, proof, tree.root)

    def test_odd_sized_levels(self):
        # 5 leaves exercises duplicate-last-node promotion
        tree = MerkleTree(list(range(5)))
        for i in range(5):
            assert verify_inclusion(i, tree.proof(i), tree.root)

    def test_leaf_inner_domain_separation(self):
        """A tree of two leaves must not equal a 'leaf' forged from their
        concatenated hashes (classic CVE-2012-2459 shape)."""
        t2 = MerkleTree([b"a", b"b"])
        t1 = MerkleTree([t2.root])
        assert t1.root != t2.root
