"""Tests for canonical serialization and digests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import canonical_bytes, digest, digest_hex
from repro.errors import CryptoError

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


class TestCanonicalBytes:
    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    def test_dict_order_does_not_matter(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_distinct_types_encode_distinctly(self):
        assert canonical_bytes(1) != canonical_bytes(1.0)
        assert canonical_bytes("1") != canonical_bytes(b"1")
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes([]) != canonical_bytes(None)

    def test_list_vs_nested_list_distinct(self):
        assert canonical_bytes([1, 2]) != canonical_bytes([[1], 2])
        assert canonical_bytes(["ab"]) != canonical_bytes(["a", "b"])

    def test_big_integers_roundtrip(self):
        a, b = 2**100, 2**100 + 1
        assert canonical_bytes(a) != canonical_bytes(b)

    def test_numpy_arrays_encoded_by_contents(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([1, 2, 3], dtype=np.int64)
        c = np.array([1, 2, 4], dtype=np.int64)
        assert canonical_bytes(a) == canonical_bytes(b)
        assert canonical_bytes(a) != canonical_bytes(c)

    def test_numpy_dtype_matters(self):
        a = np.array([1, 2], dtype=np.int32)
        b = np.array([1, 2], dtype=np.int64)
        assert canonical_bytes(a) != canonical_bytes(b)

    def test_object_with_canonical_method(self):
        class Rec:
            def canonical(self):
                return [1, "x"]

        assert canonical_bytes(Rec()) == canonical_bytes(Rec())

    def test_unencodable_object_raises(self):
        with pytest.raises(CryptoError):
            canonical_bytes(object())

    def test_unorderable_dict_keys_raise(self):
        with pytest.raises(CryptoError):
            canonical_bytes({(1,): "a", "x": "b"})


class TestDigest:
    @given(values)
    @settings(max_examples=50, deadline=None)
    def test_digest_is_32_bytes(self, value):
        assert len(digest(value)) == 32

    def test_digest_hex_matches_digest(self):
        assert digest_hex([1, 2]) == digest([1, 2]).hex()

    def test_small_change_changes_digest(self):
        assert digest({"records": [1, 2, 3]}) != digest({"records": [1, 2, 4]})
