"""Point/SweepSpec vocabulary: identity, serialization, grid order."""

import pytest

from repro.errors import BenchmarkError
from repro.exp import Point, SweepSpec
from repro.exp.spec import kv


class TestKv:
    def test_sorts_and_freezes(self):
        assert kv({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_empty_and_none(self):
        assert kv(None) == ()
        assert kv({}) == ()

    def test_rejects_non_scalars(self):
        with pytest.raises(BenchmarkError):
            kv({"bad": [1, 2]})


class TestPoint:
    def _point(self, **over):
        base = dict(
            system="osiris",
            workload="anomaly",
            workload_params=kv({"profile": "MM", "n_tasks": 10}),
            n=8,
            seed=3,
        )
        base.update(over)
        return Point(**base)

    def test_rejects_unknown_system(self):
        with pytest.raises(BenchmarkError):
            self._point(system="pbft")

    def test_rejects_bad_size(self):
        with pytest.raises(BenchmarkError):
            self._point(n=0)

    def test_hashable_and_equal_by_value(self):
        assert self._point() == self._point()
        assert len({self._point(), self._point()}) == 1
        assert self._point(seed=4) != self._point()

    def test_descriptor_excludes_label(self):
        a = self._point(label="x")
        b = self._point(label="y")
        assert a.descriptor() == b.descriptor()
        assert a.to_dict() != b.to_dict()

    def test_roundtrips_through_dict(self):
        p = self._point(
            f=2,
            k=3,
            bandwidth=1e9,
            config=kv({"suspect_timeout": 0.5}),
            executor_faults=(("e0", "silent", kv({"activate_at": 5.0})),),
            label="fault-run",
        )
        assert Point.from_dict(p.to_dict()) == p

    def test_descriptor_is_json_safe(self):
        import json

        p = self._point(executor_faults=(("e0", "silent", ()),))
        json.dumps(p.descriptor())  # must not raise


class TestSweepSpecGrid:
    def test_grid_order_sizes_outer_systems_inner(self):
        spec = SweepSpec.grid(
            "g", "synthetic", {"n_tasks": 5}, sizes=(4, 8), seed=1
        )
        assert [(p.system, p.n) for p in spec.points] == [
            ("zft", 4), ("osiris", 4), ("rcp", 4),
            ("zft", 8), ("osiris", 8), ("rcp", 8),
        ]

    def test_grid_skips_rcp_below_three(self):
        spec = SweepSpec.grid("g", "synthetic", {"n_tasks": 5}, sizes=(2, 4))
        assert [(p.system, p.n) for p in spec.points] == [
            ("zft", 2), ("osiris", 2),
            ("zft", 4), ("osiris", 4), ("rcp", 4),
        ]

    def test_grid_config_applies_to_osiris_only(self):
        spec = SweepSpec.grid(
            "g", "synthetic", {"n_tasks": 5}, sizes=(4,),
            config={"suspect_timeout": 1.0},
        )
        by_system = {p.system: p for p in spec.points}
        assert by_system["osiris"].config == (("suspect_timeout", 1.0),)
        assert by_system["zft"].config == ()
        assert by_system["rcp"].config == ()

    def test_systems_subset_preserved(self):
        spec = SweepSpec.grid(
            "g", "anomaly", {"profile": "MM", "n_tasks": 5},
            sizes=(4,), systems=("zft", "osiris"),
        )
        assert [p.system for p in spec.points] == ["zft", "osiris"]

    def test_len_and_to_dict(self):
        spec = SweepSpec.grid("g", "synthetic", {"n_tasks": 5}, sizes=(4,))
        assert len(spec) == 3
        d = spec.to_dict()
        assert d["name"] == "g"
        assert len(d["points"]) == 3
