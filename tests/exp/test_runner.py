"""Sweep runner: dispatch, caching, fan-out determinism, live mode."""

import pytest

from repro.errors import BenchmarkError
from repro.exp import Point, ResultCache, SweepSpec, run_sweep
from repro.exp.runner import build_workload, execute_point, run_point
from repro.exp.spec import kv


def _synthetic_point(**over):
    base = dict(
        system="osiris",
        workload="synthetic",
        workload_params=kv({"n_tasks": 6, "records_per_task": 4}),
        n=4,
        seed=1,
        deadline=600.0,
    )
    base.update(over)
    return Point(**base)


def _tiny_spec(name="tiny"):
    return SweepSpec.grid(
        name,
        "synthetic",
        {"n_tasks": 6, "records_per_task": 4},
        sizes=(4,),
        seed=1,
    )


class TestDispatch:
    def test_unknown_workload_rejected(self):
        p = _synthetic_point(workload="nope", workload_params=())
        with pytest.raises(BenchmarkError, match="unknown workload"):
            build_workload(p)

    def test_unknown_fault_rejected(self):
        p = _synthetic_point(executor_faults=(("e0", "nope", ()),))
        with pytest.raises(BenchmarkError, match="unknown executor fault"):
            run_point(p)

    def test_faults_rejected_for_baselines(self):
        p = _synthetic_point(
            system="zft", executor_faults=(("e0", "silent", ()),)
        )
        with pytest.raises(BenchmarkError, match="OsirisBFT-only"):
            run_point(p)

    def test_each_system_runs(self):
        for system, expect in (
            ("zft", "ZFT"), ("osiris", "OsirisBFT"), ("rcp", "RCP")
        ):
            res = run_point(_synthetic_point(system=system))
            assert res.system == expect
            assert res.tasks_completed == 6

    def test_config_overrides_apply(self):
        res = run_point(
            _synthetic_point(config=kv({"non_equivocation": False}))
        )
        assert res.tasks_completed == 6

    def test_executor_fault_materialized(self):
        res = run_point(
            _synthetic_point(
                n=10,
                k=2,
                workload_params=kv({"n_tasks": 20, "records_per_task": 4}),
                config=kv({"suspect_timeout": 0.5}),
                executor_faults=(("e0", "silent", ()),),
            )
        )
        assert res.extra["reassignments"] >= 1

    def test_execute_point_payload_shape(self):
        payload = execute_point(_synthetic_point())
        assert set(payload) == {"result", "wall_seconds"}
        assert payload["result"]["tasks_completed"] == 6
        assert "cluster" not in payload["result"]["extra"]


class TestRunSweep:
    def test_serial_and_parallel_bit_identical(self):
        spec = _tiny_spec()
        serial = run_sweep(spec, jobs=1)
        fanned = run_sweep(spec, jobs=2)
        assert [o.result.to_dict() for o in serial.outcomes] == [
            o.result.to_dict() for o in fanned.outcomes
        ]

    def test_results_keep_spec_order(self):
        out = run_sweep(_tiny_spec(), jobs=2)
        assert [o.point.system for o in out.outcomes] == [
            "zft", "osiris", "rcp"
        ]

    def test_second_run_served_from_cache(self, tmp_path):
        spec = _tiny_spec()
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert first.cache_hits == 0
        assert second.cache_hits == len(spec)
        assert [o.result.to_dict() for o in first.outcomes] == [
            o.result.to_dict() for o in second.outcomes
        ]
        assert all(o.cached for o in second.outcomes)

    def test_changed_point_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_tiny_spec(), cache=cache)
        changed = SweepSpec.grid(
            "tiny",
            "synthetic",
            {"n_tasks": 7, "records_per_task": 4},
            sizes=(4,),
            seed=1,
        )
        out = run_sweep(changed, cache=cache)
        assert out.cache_hits == 0

    def test_live_mode_keeps_cluster_handle(self):
        out = run_sweep(SweepSpec.of("live", [_synthetic_point()]), live=True)
        assert out.outcomes[0].result.extra["cluster"] is not None

    def test_cached_mode_drops_cluster_handle(self):
        out = run_sweep(SweepSpec.of("dry", [_synthetic_point()]))
        assert "cluster" not in out.outcomes[0].result.extra

    def test_by_keying(self):
        out = run_sweep(_tiny_spec())
        assert set(out.by()) == {("zft", 4), ("osiris", 4), ("rcp", 4)}
        assert set(out.by(lambda p: p.system)) == {"zft", "osiris", "rcp"}

    def test_rejects_bad_jobs(self):
        with pytest.raises(BenchmarkError):
            run_sweep(_tiny_spec(), jobs=0)
