"""Offered-load × shard-count sweeps: point identity, caching, results."""

from repro.exp import Point, ResultCache, SweepSpec, run_sweep
from repro.exp.spec import kv


def slo_grid(seed: int = 1) -> SweepSpec:
    points = [
        Point(
            system="osiris",
            workload="open_loop",
            workload_params=kv(
                {
                    "n_tasks": 12,
                    "rate": rate,
                    "process": "poisson",
                    "seed": seed,
                }
            ),
            n=8,
            seed=seed,
            shards=shards,
            tenants=2 * shards,
            label=f"s{shards}-r{rate:g}",
        )
        for shards in (1, 2)
        for rate in (40.0, 120.0)
    ]
    return SweepSpec.of("slo-test", points)


class TestPointIdentity:
    def test_round_trip(self):
        for point in slo_grid().points:
            assert Point.from_dict(point.to_dict()) == point

    def test_shards_in_descriptor(self):
        p1, p2 = slo_grid().points[0], slo_grid().points[2]
        assert p1.shards != p2.shards
        assert p1.descriptor() != p2.descriptor()

    def test_legacy_descriptor_defaults(self):
        d = slo_grid().points[0].to_dict()
        del d["shards"], d["tenants"]
        p = Point.from_dict(d)
        assert p.shards == 1 and p.tenants == 1


class TestShardedSweep:
    def test_rerun_is_fully_cached(self, tmp_path):
        spec = slo_grid()
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        assert first.cache_hits == 0
        second = run_sweep(spec, cache=cache)
        assert second.cache_hits == len(spec.points)
        assert [r.to_dict() for r in first.results] == [
            r.to_dict() for r in second.results
        ]

    def test_sharded_results_carry_breakdowns(self, tmp_path):
        outcome = run_sweep(slo_grid(), cache=None)
        by_label = {o.point.label: o.result for o in outcome.outcomes}
        assert by_label["s1-r40"].per_shard == {}
        sharded = by_label["s2-r40"]
        assert sorted(sharded.per_shard) == ["op0", "op1"]
        assert len(sharded.per_tenant) == 4
        assert sharded.goodput > 0
