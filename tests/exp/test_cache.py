"""Content-addressed result cache: keys, atomicity, invalidation."""

import json

from repro.exp import ResultCache, code_version, default_cache_dir
from repro.exp.cache import point_key


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()

    def test_is_hex_sha256(self):
        v = code_version()
        assert len(v) == 64
        int(v, 16)


class TestPointKey:
    def test_distinct_descriptors_distinct_keys(self):
        v = code_version()
        a = point_key({"system": "osiris", "n": 8}, v)
        b = point_key({"system": "osiris", "n": 16}, v)
        assert a != b

    def test_code_version_invalidates(self):
        d = {"system": "osiris", "n": 8}
        assert point_key(d, "aaa") != point_key(d, "bbb")

    def test_key_order_independent(self):
        v = code_version()
        assert point_key({"a": 1, "b": 2}, v) == point_key({"b": 2, "a": 1}, v)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"result": {"x": 1}})
        assert cache.get("ab" * 32) == {"result": {"x": 1}}
        assert cache.misses == 1
        assert cache.hits == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"v": 2})
        assert (tmp_path / "cd" / f"{key}.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"v": 1})
        (tmp_path / "ef" / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_no_temp_litter_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"v": 1})
        assert not list(tmp_path.rglob(".tmp-*"))

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"v": 1})
        cache.put("cd" * 32, {"v": 2})
        assert cache.clear() == 2
        assert cache.get("ab" * 32) is None

    def test_entries_are_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "01" * 32
        cache.put(key, {"result": {"throughput": 1.5}})
        raw = (tmp_path / "01" / f"{key}.json").read_text()
        assert json.loads(raw)["result"]["throughput"] == 1.5

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXP_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
