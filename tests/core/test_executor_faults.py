"""Byzantine executor tests: every output-failure class is caught and the
system recovers (safety never violated, liveness preserved)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import SyntheticApp
from repro.core.faults import (
    CorruptRecordFault,
    DuplicateFinalChunkFault,
    DuplicateRecordFault,
    EquivocateChunksFault,
    FabricateRecordFault,
    OmitRecordFault,
    ReorderRecordsFault,
    SilentFault,
    SlowFault,
    TruncateOutputFault,
)
from tests.core.helpers import expected_record_data, run_cluster


def assert_safety(cluster, n_tasks, records_per_task=5):
    """OP accepted exactly A(s,t) for every completed task: no corrupt,
    duplicated or missing record ever reached downstream."""
    m = cluster.metrics
    assert m.tasks_completed == n_tasks
    assert m.records_accepted == n_tasks * records_per_task
    op = cluster.outputs[0]
    for task_id, ot in op._tasks.items():
        if not ot.completed:
            continue
        records = [
            r
            for i in sorted(ot.accepted)
            for sigma, chunk in ot.slots[i].data.items()
            if ot.slots[i].accepted and sigma in ot.slots[i].endorsements
            and len(ot.slots[i].endorsements[sigma]) >= 2
            for r in chunk.records
        ]
        keys = [r.key for r in records]
        assert keys == sorted(set(keys)), task_id
        for r in records:
            assert r.data == expected_record_data(task_id, r.key[0])


FAULTS = {
    "corrupt": CorruptRecordFault,
    "fabricate": FabricateRecordFault,
    "duplicate": DuplicateRecordFault,
    "omit": OmitRecordFault,
    "truncate": TruncateOutputFault,
    "reorder": ReorderRecordsFault,
    "equivocate": EquivocateChunksFault,
}


class TestOutputFailureDetection:
    @pytest.mark.parametrize("name", sorted(FAULTS))
    def test_fault_detected_and_task_recovers(self, name):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=11,
            until=60.0,
            executor_faults={"e0": FAULTS[name]()},
        )
        assert_safety(cluster, 10)
        assert len(cluster.metrics.faults_detected) >= 1, name

    @pytest.mark.parametrize(
        "name", sorted(set(FAULTS) - {"equivocate"})
    )  # equivocation is detected by fewer than f+1 verifiers (the honest
    # majority still completes the task), so no blacklist quorum forms
    def test_byzantine_executor_blacklisted(self, name):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=11,
            until=60.0,
            executor_faults={"e0": FAULTS[name]()},
        )
        for coord in cluster.coordinators:
            assert "e0" in coord.blacklist, name

    def test_detection_reason_matches_fault(self):
        cluster = run_cluster(
            n_tasks=6,
            until=60.0,
            seed=11,
            executor_faults={"e0": CorruptRecordFault()},
        )
        reasons = {kind for _, kind, _ in cluster.metrics.faults_detected}
        assert "invalid-record" in reasons

    def test_count_mismatch_reason_for_omission(self):
        cluster = run_cluster(
            n_tasks=6,
            until=60.0,
            seed=11,
            executor_faults={"e0": OmitRecordFault()},
        )
        reasons = {kind for _, kind, _ in cluster.metrics.faults_detected}
        assert "count-mismatch" in reasons

    def test_duplicate_chunk_caught_as_replay(self):
        # count_cost_ratio > 1 delays the omission check past the replayed
        # chunk's arrival, exercising the taskFinished boundary rule
        app = SyntheticApp(
            records_per_task=10, compute_cost=5e-3, count_cost_ratio=2.0
        )
        cluster = run_cluster(
            n_tasks=6,
            until=60.0,
            seed=11,
            app=app,
            executor_faults={"e0": DuplicateFinalChunkFault()},
        )
        assert cluster.metrics.tasks_completed == 6
        reasons = {kind for _, kind, _ in cluster.metrics.faults_detected}
        assert "chunk-after-final" in reasons

    def test_early_final_caught(self):
        from repro.core.faults import EarlyFinalFault

        app = SyntheticApp(records_per_task=20, compute_cost=5e-3)
        cluster = run_cluster(
            n_tasks=6,
            until=60.0,
            seed=11,
            app=app,
            executor_faults={"e0": EarlyFinalFault()},
        )
        assert cluster.metrics.tasks_completed == 6
        reasons = {kind for _, kind, _ in cluster.metrics.faults_detected}
        assert reasons & {"count-mismatch", "chunk-after-final"}


class TestTimeoutFaults:
    def test_silent_executor_reassigned(self):
        cluster = run_cluster(
            n_tasks=10,
            until=60.0,
            seed=12,
            executor_faults={"e0": SilentFault()},
        )
        assert_safety(cluster, 10)
        assert len(cluster.metrics.reassignments) >= 1

    def test_slow_executor_speculatively_reassigned(self):
        """A correct-but-slow executor triggers reassignment; verifiers
        accept whichever attempt finishes first — output stays correct."""
        cluster = run_cluster(
            n_tasks=10,
            until=60.0,
            seed=13,
            executor_faults={"e0": SlowFault(delay=3.0)},
        )
        assert_safety(cluster, 10)
        assert len(cluster.metrics.reassignments) >= 1

    def test_crashed_executor(self):
        cluster = run_cluster(n_tasks=0, until=0.0)  # build only
        # restart with a crash mid-run
        from tests.core.helpers import compute_workload, fast_config
        from repro.core import build_osiris_cluster

        app = SyntheticApp(records_per_task=5, compute_cost=5e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(10)),
            n_workers=10,
            k=2,
            seed=14,
            config=fast_config(),
        )
        cluster.sim.schedule(0.02, cluster.executors[0].crash)
        cluster.start()
        cluster.run(until=60.0)
        assert cluster.metrics.tasks_completed == 10


class TestAllExecutorsFaulty:
    def test_safety_with_every_executor_byzantine(self):
        """Sec 3: safety is not compromised even if ALL of EP is faulty.
        With fallback execution, liveness holds too (Lemma 6.4)."""
        faults = {f"e{i}": CorruptRecordFault() for i in range(4)}
        cluster = run_cluster(
            n_tasks=6,
            n_workers=10,
            k=2,
            seed=15,
            until=120.0,
            executor_faults=faults,
        )
        assert_safety(cluster, 6)

    def test_all_silent_executors_fall_back_to_verifiers(self):
        faults = {f"e{i}": SilentFault() for i in range(4)}
        cluster = run_cluster(
            n_tasks=4,
            n_workers=10,
            k=2,
            seed=16,
            until=120.0,
            executor_faults=faults,
        )
        assert cluster.metrics.tasks_completed == 4
        assert len(cluster.metrics.fallbacks) >= 1


class TestSafetyProperty:
    @given(
        fault_names=st.lists(
            st.sampled_from(sorted(FAULTS)), min_size=1, max_size=3
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_no_fault_combination_corrupts_output(self, fault_names, seed):
        """Property: arbitrary combinations of Byzantine executors can
        delay output but never corrupt what OP accepts."""
        faults = {
            f"e{i}": FAULTS[name]() for i, name in enumerate(fault_names)
        }
        cluster = run_cluster(
            n_tasks=6,
            n_workers=10,
            k=2,
            seed=seed,
            until=120.0,
            executor_faults=faults,
        )
        assert_safety(cluster, 6)
