"""Coordinator control-plane security: forged control ops, suspect
quorums, and deterministic assignment state across members."""

import pytest

from repro.apps.synthetic import SyntheticApp
from repro.core import build_osiris_cluster
from repro.core.coordinator import _ctl_signed_payload
from repro.core.messages import SuspectExecutorMsg, TaskCompleteMsg
from repro.crypto.signatures import Signature
from tests.core.helpers import compute_workload, fast_config


def deploy(n_tasks=6, seed=80, **kwargs):
    app = SyntheticApp(records_per_task=4, compute_cost=20e-3)
    cluster = build_osiris_cluster(
        app,
        workload=iter(compute_workload(n_tasks)),
        n_workers=10,
        k=2,
        seed=seed,
        config=fast_config(),
        **kwargs,
    )
    return cluster


class TestControlOpValidation:
    def test_unsigned_control_op_rejected(self):
        cluster = deploy()
        coord = cluster.coordinators[0]
        assert not coord._validate({"kind": "blacklist", "executor": "e0"})

    def test_forged_signature_rejected(self):
        cluster = deploy()
        coord = cluster.coordinators[0]
        ctl = {
            "kind": "blacklist",
            "executor": "e0",
            "sig": Signature("v0", b"\x00" * 32),
        }
        assert not coord._validate(ctl)

    def test_outsider_signature_rejected(self):
        """An executor (who has a real key) cannot author control ops."""
        cluster = deploy()
        coord = cluster.coordinators[0]
        e0 = cluster.executors[0]
        ctl = {"kind": "blacklist", "executor": "e1"}
        ctl["sig"] = e0.signer.sign(_ctl_signed_payload(ctl))
        assert not coord._validate(ctl)

    def test_member_signed_control_op_accepted(self):
        cluster = deploy()
        coord = cluster.coordinators[0]
        ctl = {"kind": "blacklist", "executor": "e0"}
        ctl["sig"] = coord.signer.sign(_ctl_signed_payload(ctl))
        assert coord._validate(ctl)

    def test_signature_binds_fields(self):
        cluster = deploy()
        coord = cluster.coordinators[0]
        ctl = {"kind": "blacklist", "executor": "e0"}
        ctl["sig"] = coord.signer.sign(_ctl_signed_payload(ctl))
        tampered = dict(ctl)
        tampered["executor"] = "e1"
        assert not coord._validate(tampered)

    def test_garbage_payload_rejected(self):
        cluster = deploy()
        coord = cluster.coordinators[0]
        assert not coord._validate("not a task")
        assert not coord._validate({"no_kind": True})


class TestSuspectQuorum:
    def _suspect(self, cluster, sender_pid, entry, byzantine=False):
        sender = cluster.worker(sender_pid)
        msg = SuspectExecutorMsg(
            task_id=entry.task.task_id,
            attempt=entry.attempt,
            executor=entry.executor,
            byzantine=byzantine,
        )
        msg.sig = sender.signer.sign(msg.signed_payload())
        msg.sender = sender_pid
        return msg

    def _running_cluster(self):
        app = SyntheticApp(records_per_task=4, compute_cost=5.0)  # slow tasks
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(2)),
            n_workers=10,
            k=2,
            seed=81,
            config=fast_config(suspect_timeout=100.0),
        )
        cluster.start()
        cluster.run(until=0.1)  # tasks assigned, far from complete
        coord = cluster.coordinators[0]
        entry = next(
            e for e in coord.outstanding.values() if not e.done
        )
        return cluster, coord, entry

    def test_single_suspect_insufficient(self):
        cluster, coord, entry = self._running_cluster()
        members = cluster.topo.cluster(entry.vp_index).members
        coord.on_SuspectExecutorMsg(self._suspect(cluster, members[0], entry, True))
        cluster.run(until=1.0)
        assert entry.executor not in coord.blacklist

    def test_quorum_of_suspects_blacklists(self):
        cluster, coord, entry = self._running_cluster()
        victim = entry.executor  # reassignment mutates the entry
        members = cluster.topo.cluster(entry.vp_index).members
        for pid in members[:2]:
            for target in cluster.coordinators:
                target.on_SuspectExecutorMsg(
                    self._suspect(cluster, pid, entry, byzantine=True)
                )
        cluster.run(until=2.0)
        assert victim in coord.blacklist
        assert entry.executor != victim  # its task moved elsewhere

    def test_suspect_from_wrong_cluster_ignored(self):
        cluster, coord, entry = self._running_cluster()
        outside = [
            c
            for c in cluster.topo.verifier_clusters
            if c.index != entry.vp_index
        ][0]
        for pid in outside.members[:2]:
            coord.on_SuspectExecutorMsg(
                self._suspect(cluster, pid, entry, byzantine=True)
            )
        cluster.run(until=1.0)
        assert entry.executor not in coord.blacklist

    def test_stale_attempt_suspect_ignored(self):
        cluster, coord, entry = self._running_cluster()
        members = cluster.topo.cluster(entry.vp_index).members
        msg = self._suspect(cluster, members[0], entry, True)
        entry.attempt += 1  # simulate a reassignment racing the report
        coord.on_SuspectExecutorMsg(msg)
        assert coord._suspect_votes == {}


class TestTaskCompleteQuorum:
    def test_forged_complete_does_not_finish_task(self):
        cluster = deploy(n_tasks=1)
        cluster.start()
        cluster.run(until=0.05)
        coord = cluster.coordinators[0]
        entry = next(iter(coord.outstanding.values()))
        if entry.done:
            pytest.skip("task finished before injection")
        vp = cluster.topo.cluster(entry.vp_index)
        msg = TaskCompleteMsg(
            task_id=entry.task.task_id, attempt=entry.attempt, count=0
        )
        msg.sig = Signature(vp.members[0], b"\x00" * 32)
        msg.sender = vp.members[0]
        coord.on_TaskCompleteMsg(msg)
        assert not entry.done or len(coord._complete_votes) == 0


class TestDeterministicState:
    def test_all_members_agree_on_assignment_state(self):
        cluster = deploy(n_tasks=12)
        cluster.start()
        cluster.run(until=30.0)
        states = [
            sorted(
                (tid, e.executor, e.vp_index, e.attempt)
                for tid, e in coord.outstanding.items()
            )
            for coord in cluster.coordinators
        ]
        assert states[0] == states[1] == states[2]
        assert all(
            c.ts_counter == cluster.coordinators[0].ts_counter
            for c in cluster.coordinators
        )
