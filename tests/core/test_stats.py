"""StreamingPercentiles: exact-mode equivalence with numpy, sketch-mode
error bounds, and the fold transition."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StreamingPercentiles

latencies = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    max_size=200,
)

quantiles = st.floats(min_value=0.0, max_value=100.0)


class TestExactMode:
    @settings(max_examples=200, deadline=None)
    @given(values=latencies, q=quantiles)
    def test_matches_numpy_linear(self, values, q):
        acc = StreamingPercentiles()
        for v in values:
            acc.add(v)
        assert acc.exact
        if not values:
            assert acc.percentile(q) == 0.0
            return
        expected = float(np.percentile(values, q))
        assert acc.percentile(q) == pytest.approx(expected, abs=1e-9)

    def test_empty_stream_is_zero(self):
        acc = StreamingPercentiles()
        assert acc.count == 0
        assert acc.percentile(50) == 0.0
        assert acc.summary() == {
            "count": 0, "p50": 0.0, "p99": 0.0, "p999": 0.0,
        }

    def test_one_sample_is_that_sample(self):
        acc = StreamingPercentiles()
        acc.add(0.25)
        for q in (0.0, 50.0, 99.0, 99.9, 100.0):
            assert acc.percentile(q) == 0.25

    def test_interleaved_add_and_query(self):
        acc = StreamingPercentiles()
        vals = []
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            acc.add(v)
            vals.append(v)
            assert acc.percentile(50) == pytest.approx(
                float(np.percentile(vals, 50))
            )

    def test_out_of_range_quantile_raises(self):
        acc = StreamingPercentiles()
        with pytest.raises(ValueError):
            acc.percentile(-1)
        with pytest.raises(ValueError):
            acc.percentile(100.1)

    def test_bad_construction_raises(self):
        with pytest.raises(ValueError):
            StreamingPercentiles(exact_limit=0)
        with pytest.raises(ValueError):
            StreamingPercentiles(rel_error=0.0)
        with pytest.raises(ValueError):
            StreamingPercentiles(rel_error=1.0)


class TestSketchMode:
    def test_folds_past_exact_limit(self):
        acc = StreamingPercentiles(exact_limit=64)
        for i in range(63):
            acc.add(float(i + 1))
        assert acc.exact
        acc.add(64.0)
        assert not acc.exact
        assert acc.count == 64

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        q=st.floats(min_value=1.0, max_value=99.9),
    )
    def test_relative_error_bound(self, seed, q):
        rng = np.random.default_rng(seed)
        values = rng.lognormal(mean=0.0, sigma=2.0, size=512)
        acc = StreamingPercentiles(exact_limit=64, rel_error=0.01)
        for v in values:
            acc.add(float(v))
        assert not acc.exact
        # the sketch bounds relative error against the *nearest-rank*
        # quantile (interpolation moves the target by at most one
        # neighbouring sample, so check against the bracketing ranks)
        s = np.sort(values)
        rank = q / 100.0 * (len(s) - 1)
        lo, hi = s[math.floor(rank)], s[math.ceil(rank)]
        got = acc.percentile(q)
        assert lo * (1 - 0.011) <= got <= hi * (1 + 0.011)

    def test_zeros_survive_fold(self):
        acc = StreamingPercentiles(exact_limit=8)
        for _ in range(6):
            acc.add(0.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            acc.add(v)
        assert not acc.exact
        assert acc.percentile(10) == 0.0
        assert acc.percentile(99) > 0.0

    def test_memory_stays_bounded(self):
        acc = StreamingPercentiles(exact_limit=128, rel_error=0.01)
        for i in range(50_000):
            acc.add(1e-3 * (1 + (i % 1000)))
        assert not acc.exact
        assert acc._samples == []
        # log-bucket count is O(log(max/min)/log(gamma)), not O(n)
        assert len(acc._buckets) < 1000
        assert acc.count == 50_000

    def test_min_max_clamping(self):
        acc = StreamingPercentiles(exact_limit=4)
        for v in (1.0, 1.0, 1.0, 1.0, 1.0):
            acc.add(v)
        assert not acc.exact
        assert acc.percentile(0) == 1.0
        assert acc.percentile(100) == 1.0
