"""Tests for task/record/chunk data types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Chunk, Opcode, Record, Task, chunk_records
from repro.core.tasks import Assignment
from repro.errors import ProtocolError


class TestOpcode:
    def test_update_flags(self):
        assert Opcode.UPDATE.has_update and not Opcode.UPDATE.has_compute

    def test_compute_flags(self):
        assert Opcode.COMPUTE.has_compute and not Opcode.COMPUTE.has_update

    def test_both_flags(self):
        assert Opcode.BOTH.has_update and Opcode.BOTH.has_compute


class TestTask:
    def test_with_timestamp_preserves_payloads(self):
        t = Task("t1", Opcode.BOTH, update_payload="u", compute_payload="c")
        t2 = t.with_timestamp(7)
        assert t2.timestamp == 7
        assert t2.update_payload == "u" and t2.compute_payload == "c"
        assert t.timestamp == -1  # original untouched

    def test_canonical_includes_timestamp(self):
        t = Task("t1", Opcode.COMPUTE)
        assert t.canonical() != t.with_timestamp(1).canonical()


class TestAssignment:
    def test_signed_payload_binds_all_fields(self):
        t = Task("t1", Opcode.COMPUTE, timestamp=3)
        a = Assignment(t, "e0", 1, attempt=0)
        variants = [
            Assignment(t, "e1", 1, 0),
            Assignment(t, "e0", 2, 0),
            Assignment(t, "e0", 1, 1),
        ]
        for v in variants:
            assert v.signed_payload() != a.signed_payload()

    def test_key_is_task_and_attempt(self):
        t = Task("t1", Opcode.COMPUTE)
        assert Assignment(t, "e0", 0, 2).key == ("t1", 2)


class TestChunking:
    def _records(self, sizes):
        return [Record(key=(i,), size_bytes=s) for i, s in enumerate(sizes)]

    def test_empty_output_yields_single_final_chunk(self):
        chunks = chunk_records("t", [], max_bytes=100)
        assert len(chunks) == 1
        assert chunks[0].final and chunks[0].records == ()

    def test_single_chunk_when_under_limit(self):
        chunks = chunk_records("t", self._records([10, 10]), max_bytes=100)
        assert len(chunks) == 1 and chunks[0].final

    def test_split_on_byte_limit(self):
        chunks = chunk_records("t", self._records([60, 60, 60]), max_bytes=100)
        assert len(chunks) == 3
        assert [c.final for c in chunks] == [False, False, True]

    def test_indices_are_sequential(self):
        chunks = chunk_records("t", self._records([60] * 5), max_bytes=100)
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_oversized_record_gets_own_chunk(self):
        chunks = chunk_records("t", self._records([500, 10]), max_bytes=100)
        assert len(chunks[0].records) == 1

    def test_invalid_max_bytes(self):
        with pytest.raises(ProtocolError):
            chunk_records("t", [], max_bytes=0)

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=200), max_size=50),
        max_bytes=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunking_partitions_records(self, sizes, max_bytes):
        """Chunks are a disjoint, order-preserving partition; exactly the
        last is final; no chunk except singletons exceeds the limit."""
        records = self._records(sizes)
        chunks = chunk_records("t", records, max_bytes)
        flat = [r for c in chunks for r in c.records]
        assert flat == records
        assert [c.final for c in chunks] == [False] * (len(chunks) - 1) + [True]
        for c in chunks:
            if len(c.records) > 1:
                assert c.payload_bytes() <= max_bytes

    def test_chunk_payload_bytes(self):
        c = Chunk("t", 0, tuple(self._records([10, 20])), final=True)
        assert c.payload_bytes() == 30

    def test_chunk_canonical_distinguishes_contents(self):
        a = Chunk("t", 0, (Record(key=(1,)),), final=True)
        b = Chunk("t", 0, (Record(key=(2,)),), final=True)
        assert a.canonical() != b.canonical()
