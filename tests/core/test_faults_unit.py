"""Unit tests for fault strategy transformations (no cluster needed)."""

import pytest

from repro.core import Record, Task
from repro.core.faults import (
    CorruptRecordFault,
    DuplicateFinalChunkFault,
    DuplicateRecordFault,
    EarlyFinalFault,
    ExecutorFault,
    FabricateRecordFault,
    OmitRecordFault,
    OutputFault,
    ReorderRecordsFault,
    SilentFault,
    SlowFault,
    TruncateOutputFault,
    VerifierFault,
)
from repro.core.tasks import Opcode, chunk_records


@pytest.fixture
def task():
    return Task("t1", Opcode.COMPUTE)


@pytest.fixture
def records():
    return [Record(key=(i,), data=i) for i in range(6)]


class TestActivation:
    def test_inactive_before_activate_at(self):
        fault = CorruptRecordFault(activate_at=10.0)
        assert not fault.active(5.0)
        assert fault.active(10.0)

    def test_default_active_immediately(self):
        assert ExecutorFault().active(0.0)

    def test_verifier_and_output_fault_activation(self):
        assert not VerifierFault(activate_at=3.0).active(2.0)
        assert OutputFault().active(0.0)


class TestRecordTransforms:
    def test_base_class_is_honest(self, task, records):
        fault = ExecutorFault()
        assert fault.transform_records(task, records) == records
        assert not fault.silent(task)
        assert not fault.suppress_final_chunk(task)
        assert fault.extra_delay(task) == 0.0
        assert not fault.equivocate(task)
        chunks = chunk_records("t1", records, 10**6)
        assert fault.transform_chunks(task, chunks) == chunks

    def test_corrupt_changes_last_record_data(self, task, records):
        out = CorruptRecordFault().transform_records(task, records)
        assert len(out) == len(records)
        assert out[-1].data != records[-1].data
        assert out[-1].key == records[-1].key

    def test_corrupt_noop_on_empty(self, task):
        assert CorruptRecordFault().transform_records(task, []) == []

    def test_fabricate_appends(self, task, records):
        out = FabricateRecordFault().transform_records(task, records)
        assert len(out) == len(records) + 1

    def test_fabricate_on_empty_output(self, task):
        out = FabricateRecordFault().transform_records(task, [])
        assert len(out) == 1

    def test_duplicate_replays_first(self, task, records):
        out = DuplicateRecordFault().transform_records(task, records)
        assert out[-1] == records[0]

    def test_omit_drops_one(self, task, records):
        out = OmitRecordFault().transform_records(task, records)
        assert len(out) == len(records) - 1

    def test_truncate_halves(self, task, records):
        out = TruncateOutputFault().transform_records(task, records)
        assert len(out) == 3

    def test_reorder_reverses(self, task, records):
        out = ReorderRecordsFault().transform_records(task, records)
        assert out == list(reversed(records))

    def test_silent_and_slow(self, task):
        assert SilentFault().silent(task)
        assert SlowFault(delay=2.5).extra_delay(task) == 2.5


class TestChunkTransforms:
    def test_duplicate_final_chunk_appends_replay(self, task, records):
        chunks = chunk_records("t1", records, 128)
        out = DuplicateFinalChunkFault().transform_chunks(task, chunks)
        assert len(out) == len(chunks) + 1
        assert out[-1].records == chunks[-1].records
        assert out[-1].index == chunks[-1].index + 1
        assert out[-1].final

    def test_early_final_marks_middle_chunk(self, task, records):
        chunks = chunk_records("t1", records, 128)
        assert len(chunks) >= 2
        out = EarlyFinalFault().transform_chunks(task, chunks)
        finals = [c.final for c in out]
        assert finals.count(True) >= 2  # the injected early final + real one

    def test_early_final_noop_on_single_chunk(self, task):
        chunks = chunk_records("t1", [Record(key=(0,))], 10**6)
        out = EarlyFinalFault().transform_chunks(task, chunks)
        assert out == chunks
