"""Unit tests for the execution engine: queueing, cancellation, and the
coordination-free signature quorum."""


from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import build_osiris_cluster
from repro.core.messages import AssignmentMsg
from repro.core.tasks import Assignment
from tests.core.helpers import fast_config


def deploy(**kwargs):
    app = SyntheticApp(records_per_task=3, compute_cost=100e-3)
    cluster = build_osiris_cluster(
        app,
        workload=None,
        n_workers=10,
        k=2,
        seed=60,
        config=fast_config(cores_per_node=1),
        **kwargs,
    )
    return cluster


def send_assignment(cluster, executor_pid, task, attempt=0, vp_index=1,
                    to_executor=None, n_sigs=2):
    target = cluster.worker(to_executor or executor_pid)
    a = Assignment(
        task=task.with_timestamp(0),
        executor=executor_pid,
        vp_index=vp_index,
        attempt=attempt,
    )
    for coord in cluster.coordinators[:n_sigs]:
        msg = AssignmentMsg(assignment=a, sig=coord.signer.sign(a.signed_payload()))
        msg.sender = coord.pid
        target.handle(msg)


class TestQuorum:
    def test_single_signature_does_not_start(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        send_assignment(cluster, "e0", make_compute_task(1), n_sigs=1)
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 0

    def test_quorum_starts_execution(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        send_assignment(cluster, "e0", make_compute_task(1), n_sigs=2)
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 1

    def test_duplicate_signer_insufficient(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        task = make_compute_task(1)
        a = Assignment(task=task.with_timestamp(0), executor="e0", vp_index=1)
        coord = cluster.coordinators[0]
        for _ in range(3):
            msg = AssignmentMsg(
                assignment=a, sig=coord.signer.sign(a.signed_payload())
            )
            msg.sender = coord.pid
            e0.handle(msg)
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 0

    def test_same_attempt_runs_once(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        send_assignment(cluster, "e0", make_compute_task(1), n_sigs=3)
        send_assignment(cluster, "e0", make_compute_task(1), n_sigs=3)
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 1


class TestCancellation:
    def test_queued_task_cancelled_by_superseding_assignment(self):
        """f+1 copies of a newer-attempt assignment naming another
        executor cancel the locally queued older attempt."""
        cluster = deploy()
        e0 = cluster.executors[0]
        # fill the single core, then queue the victim task
        send_assignment(cluster, "e0", make_compute_task(1))
        send_assignment(cluster, "e0", make_compute_task(2))
        assert len(e0.engine._ready) == 1
        # VP_CO reassigned task 2 to e1 (attempt 1); e0 learns via copies
        send_assignment(
            cluster, "e1", make_compute_task(2), attempt=1, to_executor="e0"
        )
        assert e0.engine._ready == []
        assert e0.engine.tasks_cancelled == 1
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 1  # only task 1 ran

    def test_single_copy_does_not_cancel(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        send_assignment(cluster, "e0", make_compute_task(1))
        send_assignment(cluster, "e0", make_compute_task(2))
        send_assignment(
            cluster, "e1", make_compute_task(2), attempt=1,
            to_executor="e0", n_sigs=1,
        )
        assert len(e0.engine._ready) == 1

    def test_in_flight_task_not_cancelled(self):
        """A task already computing runs to completion (speculation:
        first finisher wins)."""
        cluster = deploy()
        e0 = cluster.executors[0]
        send_assignment(cluster, "e0", make_compute_task(1))
        send_assignment(
            cluster, "e1", make_compute_task(1), attempt=1, to_executor="e0"
        )
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 1

    def test_cancel_does_not_affect_newer_attempt(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        send_assignment(cluster, "e0", make_compute_task(1))
        send_assignment(cluster, "e0", make_compute_task(2), attempt=2)
        # stale superseding info (attempt 1 < queued attempt 2): no cancel
        send_assignment(
            cluster, "e1", make_compute_task(2), attempt=1, to_executor="e0"
        )
        assert len(e0.engine._ready) == 1


class TestQueueing:
    def test_tasks_serialize_on_single_core(self):
        cluster = deploy()
        e0 = cluster.executors[0]
        for i in range(3):
            send_assignment(cluster, "e0", make_compute_task(i))
        assert e0.engine._in_flight == 1
        assert len(e0.engine._ready) == 2
        cluster.sim.run(until=1.0)
        assert e0.engine.tasks_executed == 3
        assert e0.engine._in_flight == 0

    def test_control_core_isolated_from_app_core(self):
        """Protocol jobs on the ctrl core never wait behind app jobs."""
        cluster = deploy()
        e0 = cluster.executors[0]
        e0.run_job(100.0, lambda: None)  # hog the app core
        done = []
        e0.run_ctrl_job(1e-3, done.append, "ctl")
        cluster.sim.run(until=1.0)
        assert done == ["ctl"]
