"""Chaos property: random *combined* fault assignments — Byzantine
executors (any number), at most f Byzantine verifiers per sub-cluster,
and Byzantine output processes — never violate safety, and the system
stays live.

This is the paper's full fault model (Sec 3) exercised in one property:
"safety is not compromised even if all processes in EP are faulty" and
"at most f processes in VP_i fail".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import SyntheticApp
from repro.core import build_osiris_cluster
from repro.core.faults import (
    BogusDigestFault,
    CorruptRecordFault,
    DuplicateRecordFault,
    EquivocateChunksFault,
    FabricateRecordFault,
    FalseAccusationFault,
    NegligentLeaderFault,
    OmitRecordFault,
    SilentFault,
    SilentVerifierFault,
    TruncateOutputFault,
)
from tests.core.helpers import compute_workload, expected_record_data, fast_config

EXEC_FAULTS = [
    CorruptRecordFault,
    FabricateRecordFault,
    DuplicateRecordFault,
    OmitRecordFault,
    TruncateOutputFault,
    SilentFault,
    EquivocateChunksFault,
    None,
]
VER_FAULTS = [
    NegligentLeaderFault,
    BogusDigestFault,
    FalseAccusationFault,
    SilentVerifierFault,
    None,
]


@st.composite
def fault_plans(draw):
    execs = {
        f"e{i}": draw(st.sampled_from(EXEC_FAULTS)) for i in range(4)
    }
    # at most ONE faulty verifier per 2f+1=3 sub-cluster (f=1)
    verifier_plan = {}
    for cluster_idx, members in ((0, ["v0", "v1", "v2"]), (1, ["v3", "v4", "v5"])):
        victim = draw(st.sampled_from(members))
        fault_cls = draw(st.sampled_from(VER_FAULTS))
        if fault_cls is not None:
            verifier_plan[victim] = fault_cls()
    return (
        {pid: cls() for pid, cls in execs.items() if cls is not None},
        verifier_plan,
    )


class TestChaos:
    @given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_safety_and_liveness_under_combined_faults(self, plan, seed):
        executor_faults, verifier_faults = plan
        n_tasks = 5
        app = SyntheticApp(records_per_task=4, compute_cost=5e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(n_tasks)),
            n_workers=10,
            k=2,
            seed=seed,
            config=fast_config(max_attempts=2),
            executor_faults=executor_faults,
            verifier_faults=verifier_faults,
        )
        cluster.start()
        cluster.run(until=300.0)
        m = cluster.metrics

        # liveness: every task's output reaches OP
        assert m.tasks_completed == n_tasks, (executor_faults, verifier_faults)
        # safety: exactly the correct records, never more, never corrupt
        assert m.records_accepted == n_tasks * 4
        op = cluster.outputs[0]
        for task_id, ot in op._tasks.items():
            if not ot.completed:
                continue
            for i in sorted(ot.accepted):
                slot = ot.slots[i]
                for sigma, endorsers in slot.endorsers.items() if hasattr(slot, "endorsers") else []:
                    pass
                for sigma, chunk in slot.data.items():
                    if (
                        sigma in slot.endorsements
                        and len(slot.endorsements[sigma]) >= 2
                    ):
                        for r in chunk.records:
                            assert r.data == expected_record_data(
                                task_id, r.key[0]
                            )
