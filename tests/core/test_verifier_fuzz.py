"""Adversarial fuzz of a single verifier: hypothesis generates arbitrary
executor behaviours (chunk framings, record mutations, digest games) and
the verifier must never endorse anything other than exactly A(s, t).

This is the safety core of the paper (Lemma 6.2 / Corollary 6.1) tested
at the unit level, complementing the end-to-end Byzantine runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, Record
from repro.core.messages import AssignmentMsg, ChunkDigestMsg, ChunkMsg
from repro.core.tasks import Assignment, Chunk
from repro.core.verifier import Verifier
from repro.crypto import KeyRegistry, digest
from repro.net import Network, SubCluster, SynchronyModel, Topology
from repro.runtime.des import DesHost
from repro.sim import Simulator


def build_verifier():
    sim = Simulator(seed=9)
    net = Network(sim, synchrony=SynchronyModel())
    registry = KeyRegistry()
    clusters = (
        SubCluster(index=0, members=("v0", "v1", "v2"), f=1),
        SubCluster(index=1, members=("v3", "v4", "v5"), f=1),
    )
    topo = Topology(
        input_pids=("ip0",),
        output_pids=("op0",),
        executor_pids=("e0", "e1"),
        verifier_clusters=clusters,
        f=1,
    )
    config = OsirisConfig(suspect_timeout=1000.0, role_switching=False)
    app = SyntheticApp(records_per_task=4, compute_cost=1e-3)
    verifier = Verifier(
        "v3",
        topo,
        registry,
        registry.register("v3"),
        app,
        config,
        cluster=clusters[1],
    )
    net.register(DesHost(sim, net, verifier, cores=config.cores_per_node))
    coord_signers = [registry.register(pid) for pid in clusters[0].members]

    from repro.sim.process import SimProcess

    # sink stubs for every pid the verifier may message
    for pid in ("v0", "v1", "v2", "v4", "v5", "e0", "e1", "ip0"):
        net.register(SimProcess(sim, pid, cores=1))

    class RecordingOp(SimProcess):
        def __init__(self):
            super().__init__(sim, "op0", cores=1)
            self.chunks = []

        def on_VerifiedChunkMsg(self, msg):
            self.chunks.append(msg)

        def on_VerifiedDigestMsg(self, msg):
            self.chunks.append(msg)

    op = RecordingOp()
    net.register(op)
    return sim, verifier, coord_signers, op, app


def activate(verifier, coord_signers, task, attempt=0):
    a = Assignment(
        task=task.with_timestamp(0), executor="e0", vp_index=1, attempt=attempt
    )
    for signer in coord_signers[:2]:
        msg = AssignmentMsg(assignment=a, sig=signer.sign(a.signed_payload()))
        msg.sender = signer.pid
        verifier.handle(msg)
    return a


def feed_chunk(verifier, a, chunk, digest_value=None, sender="e0"):
    msg = ChunkMsg(chunk=chunk, assignment=a)
    msg.sender = sender
    verifier.handle(msg)
    dmsg = ChunkDigestMsg(
        task_id=a.task.task_id,
        attempt=a.attempt,
        index=chunk.index,
        digest=digest_value if digest_value is not None else digest(chunk),
    )
    dmsg.sender = sender
    dmsg._neq = True
    verifier.handle(dmsg)


# The honest output of SyntheticApp task "c0" with n=4: keys (0,),..,(3,)
def honest_records(app, task):
    view = app.initial_state().snapshot(0)
    return list(app.compute(view, task.with_timestamp(0)).records)


record_pool = st.sampled_from(["honest0", "honest1", "honest2", "honest3",
                               "corrupt", "foreign", "dup0"])


@st.composite
def adversarial_streams(draw):
    """A sequence of chunks: arbitrary record selections, frame splits,
    final flags, and optional digest lies."""
    n_chunks = draw(st.integers(min_value=1, max_value=4))
    chunks = []
    for i in range(n_chunks):
        picks = draw(st.lists(record_pool, min_size=0, max_size=5))
        final = draw(st.booleans()) if i < n_chunks - 1 else True
        lie = draw(st.booleans())
        chunks.append((picks, final, lie))
    return chunks


def materialize(picks, honest):
    out = []
    for name in picks:
        if name.startswith("honest"):
            out.append(honest[int(name[-1])])
        elif name == "dup0":
            out.append(honest[0])
        elif name == "corrupt":
            out.append(Record(key=(2,), data="corrupt"))
        else:
            out.append(Record(key=(99,), data=12345))
    return out


class TestVerifierSafetyFuzz:
    @given(stream=adversarial_streams())
    @settings(max_examples=120, deadline=None)
    def test_never_endorses_incorrect_output(self, stream):
        sim, verifier, signers, op, app = build_verifier()
        task = make_compute_task(0)
        honest = honest_records(app, task)
        a = activate(verifier, signers, task)

        sent = []
        for index, (picks, final, lie) in enumerate(stream):
            records = materialize(picks, honest)
            chunk = Chunk(task.task_id, index, tuple(records), final)
            sigma = b"\x00" * 32 if lie else None
            feed_chunk(verifier, a, chunk, digest_value=sigma)
            sent.extend(records)
            if final:
                break
        sim.run(until=50.0)

        if op.chunks:
            # the verifier endorsed something: it must be exactly A(s, t)
            endorsed = [
                r
                for msg in op.chunks
                if getattr(msg, "chunk", None) is not None
                for r in msg.chunk.records
            ]
            # v3 might not be leader; reconstruct from digests instead
            if endorsed:
                assert [r.key for r in endorsed] == [r.key for r in honest]
                assert [r.data for r in endorsed] == [r.data for r in honest]
            # and the executor's stream must indeed have been correct
            assert [r.key for r in sent] == [r.key for r in honest]
        else:
            # nothing endorsed: the stream must NOT have been the honest
            # one delivered with honest digests
            honest_stream = [r.key for r in sent] == [
                r.key for r in honest
            ] and all(not lie for _, _, lie in stream) and all(
                r.data == h.data for r, h in zip(sent, honest)
            )
            assert not honest_stream

    @given(stream=adversarial_streams())
    @settings(max_examples=60, deadline=None)
    def test_failed_streams_accuse_executor(self, stream):
        """Whenever verification fails, the verifier reports the executor
        (the markByzantineExecutor path) — it never fails silently."""
        sim, verifier, signers, op, app = build_verifier()
        task = make_compute_task(0)
        honest = honest_records(app, task)
        a = activate(verifier, signers, task)
        for index, (picks, final, lie) in enumerate(stream):
            records = materialize(picks, honest)
            chunk = Chunk(task.task_id, index, tuple(records), final)
            feed_chunk(
                verifier, a, chunk,
                digest_value=b"\x00" * 32 if lie else None,
            )
            if final:
                break
        sim.run(until=50.0)
        st_ = verifier._tasks.get((task.task_id, 0))
        if st_ is not None and st_.failed:
            assert verifier.failures_detected >= 1
