"""Verifier pipeline behaviours that integration runs don't pin down:
digest gating, out-of-order chunk buffering, count deferral, retained
output resends, and role-switch epochs."""


from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import build_osiris_cluster
from repro.core.messages import ChunkDigestMsg, ChunkMsg, RoleSwitchMsg
from repro.core.tasks import Assignment, Chunk, Record
from repro.crypto.digest import digest
from tests.core.helpers import compute_workload, fast_config


def deploy(n_tasks=4, seed=50, **kwargs):
    app = SyntheticApp(records_per_task=6, compute_cost=5e-3)
    cluster = build_osiris_cluster(
        app,
        workload=iter(compute_workload(n_tasks)),
        n_workers=10,
        k=2,
        seed=seed,
        config=fast_config(),
        **kwargs,
    )
    return cluster


class TestDigestGating:
    def test_chunk_without_neq_digest_never_verified(self):
        """A chunk whose σ(C) digest never arrived through the
        non-equivocating primitive is buffered, not processed."""
        cluster = deploy()
        cluster.start()
        cluster.run(until=0.002)  # assignments under way
        verifier = cluster.verifiers[0]
        task = make_compute_task(99).with_timestamp(0)
        a = Assignment(task, "e0", verifier.cluster.index, 0)
        chunk = Chunk("c99", 0, (Record(key=(0,)),), final=True)
        msg = ChunkMsg(chunk=chunk, assignment=a)
        msg.sender = "e0"
        verifier.on_ChunkMsg(msg)
        cluster.run(until=5.0)
        # the injected chunk never got verified (no quorum sigs AND no digest)
        assert all(
            key[0] != "c99" or not st.verified
            for key, st in verifier._tasks.items()
        )

    def test_plain_channel_digest_ignored(self):
        """ChunkDigestMsg sent over a plain link (no _neq marker) is
        ignored — digests must use the primitive (Sec 5.2.2)."""
        cluster = deploy()
        verifier = cluster.verifiers[0]
        msg = ChunkDigestMsg(task_id="x", attempt=0, index=0, digest=b"d")
        msg.sender = "e0"
        verifier.on_ChunkDigestMsg(msg)
        assert ("x", 0) not in verifier._tasks


class TestRoleSwitchEpochs:
    def test_stale_epoch_ignored(self):
        cluster = deploy()
        verifier = cluster.verifiers[0]
        coord_members = cluster.topo.coordinator.members
        signers = {c.pid: c.signer for c in cluster.coordinators}

        def switch(epoch, to_executor):
            for pid in list(coord_members)[:2]:
                msg = RoleSwitchMsg(
                    vp_index=verifier.cluster.index,
                    epoch=epoch,
                    to_executor=to_executor,
                )
                msg.sig = signers[pid].sign(msg.signed_payload())
                msg.sender = pid
                verifier.on_RoleSwitchMsg(msg)

        switch(2, True)
        assert verifier.executor_mode and verifier.role_epoch == 2
        switch(1, False)  # stale epoch must not undo epoch 2
        assert verifier.executor_mode

    def test_single_copy_insufficient(self):
        cluster = deploy()
        verifier = cluster.verifiers[0]
        coord = cluster.coordinators[0]
        msg = RoleSwitchMsg(
            vp_index=verifier.cluster.index, epoch=1, to_executor=True
        )
        msg.sig = coord.signer.sign(msg.signed_payload())
        msg.sender = coord.pid
        verifier.on_RoleSwitchMsg(msg)
        assert not verifier.executor_mode

    def test_forged_signature_rejected(self):
        cluster = deploy()
        verifier = cluster.verifiers[0]
        from repro.crypto.signatures import Signature

        for pid in list(cluster.topo.coordinator.members)[:2]:
            msg = RoleSwitchMsg(
                vp_index=verifier.cluster.index, epoch=1, to_executor=True
            )
            msg.sig = Signature(pid, b"\x00" * 32)
            msg.sender = pid
            verifier.on_RoleSwitchMsg(msg)
        assert not verifier.executor_mode


class TestRetention:
    def test_completed_outputs_retained_bounded(self):
        config = fast_config(retained_outputs=5)
        app = SyntheticApp(records_per_task=2, compute_cost=1e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(20)),
            n_workers=10,
            k=2,
            seed=51,
            config=config,
        )
        cluster.start()
        cluster.run(until=30.0)
        for v in cluster.verifiers:
            assert len(v._retained) <= 5

    def test_retained_chunks_match_task_output(self):
        cluster = deploy(n_tasks=3)
        cluster.start()
        cluster.run(until=30.0)
        verifier = cluster.verifiers[0]
        for task_id, chunks in verifier._retained.items():
            for chunk, sigma in chunks:
                assert digest(chunk) == sigma
                assert chunk.task_id == task_id


class TestLeaderResend:
    def test_new_leader_resends_to_op_after_election(self):
        """Direct election: the next leader pushes retained data so OP
        completes tasks whose data a negligent leader withheld."""
        from repro.core.faults import NegligentLeaderFault

        app = SyntheticApp(records_per_task=4, compute_cost=2e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(6)),
            n_workers=10,
            k=2,
            seed=52,
            config=fast_config(),
            verifier_faults={"v3": NegligentLeaderFault()},
        )
        cluster.start()
        cluster.run(until=60.0)
        assert cluster.metrics.records_accepted == 24
        # leadership moved off the negligent member
        terms = {v.term for v in cluster.verifiers}
        assert max(terms) >= 1
