"""Graceful-execution integration tests: the happy path of Fig 4."""

import pytest

from repro.apps.synthetic import SyntheticApp, make_compute_task, make_update_task
from repro.core import Opcode, Task
from tests.core.helpers import compute_workload, fast_config, run_cluster


class TestComputePipeline:
    def test_all_tasks_complete(self):
        cluster = run_cluster(n_tasks=20)
        assert cluster.metrics.tasks_completed == 20

    def test_all_records_accepted_exactly_once(self):
        cluster = run_cluster(n_tasks=20)
        assert cluster.metrics.records_accepted == 20 * 5

    def test_no_faults_detected_in_graceful_run(self):
        cluster = run_cluster(n_tasks=20)
        assert cluster.metrics.faults_detected == []
        assert cluster.metrics.reassignments == []
        assert cluster.metrics.leader_elections == []

    def test_tasks_execute_exactly_once(self):
        """No task replication: total executions == number of tasks."""
        cluster = run_cluster(n_tasks=20)
        total = sum(e.engine.tasks_executed for e in cluster.executors)
        assert total == 20

    def test_tasks_spread_across_executors(self):
        cluster = run_cluster(n_tasks=20)
        used = sum(1 for e in cluster.executors if e.engine.tasks_executed > 0)
        assert used == len(cluster.executors)

    def test_latency_recorded_per_task(self):
        cluster = run_cluster(n_tasks=10)
        assert len(cluster.metrics.task_latencies) == 10
        assert all(lat > 0 for lat in cluster.metrics.task_latencies)

    def test_empty_output_task_completes(self):
        cluster = run_cluster(n_tasks=5, workload=compute_workload(5, records=0))
        assert cluster.metrics.tasks_completed == 5
        assert cluster.metrics.records_accepted == 0

    def test_large_output_uses_multiple_chunks(self):
        app = SyntheticApp(records_per_task=40, compute_cost=2e-3, record_bytes=64)
        cluster = run_cluster(n_tasks=5, app=app)  # 256B chunks -> 10 chunks
        assert cluster.metrics.records_accepted == 200
        op = cluster.outputs[0]
        assert op.chunks_accepted > 5

    def test_single_cluster_coordinator_verifies(self):
        """k=1: VP_CO itself verifies record chunks."""
        cluster = run_cluster(n_tasks=10, n_workers=7, k=1)
        assert cluster.metrics.tasks_completed == 10
        assert any(c.chunks_verified > 0 for c in cluster.coordinators)

    def test_f2_deployment(self):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=14,
            k=2,
            config=fast_config(f=2),
        )
        assert cluster.metrics.tasks_completed == 10

    def test_3f_plus_1_without_non_equivocation(self):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=12,
            k=2,
            config=fast_config(non_equivocation=False),
        )
        assert cluster.topo.coordinator.members.__len__() == 4
        assert cluster.metrics.tasks_completed == 10


class TestStateUpdates:
    def _mixed_workload(self, n):
        out, t = [], 0.0
        for i in range(n):
            out.append((t, make_update_task(i, key=f"k{i}")))
            t += 0.005
            out.append((t, make_compute_task(i)))
            t += 0.005
        return out

    def test_updates_reach_all_workers(self):
        cluster = run_cluster(workload=self._mixed_workload(10), until=20.0)
        for proc in cluster.executors + cluster.all_verifiers:
            assert proc.store.applied_ts == 10, proc.pid

    def test_update_only_workload(self):
        workload = [(i * 0.005, make_update_task(i)) for i in range(20)]
        cluster = run_cluster(workload=workload)
        assert cluster.executors[0].store.applied_ts == 20
        assert cluster.metrics.records_accepted == 0

    def test_compute_pinned_to_latest_update(self):
        cluster = run_cluster(workload=self._mixed_workload(5), until=20.0)
        # every compute task completed despite interleaved updates
        assert cluster.metrics.tasks_completed == 5

    def test_both_opcode_updates_then_computes(self):
        app = SyntheticApp(records_per_task=3, compute_cost=1e-3)
        tasks = [
            (
                i * 0.01,
                Task(
                    task_id=f"b{i}",
                    opcode=Opcode.BOTH,
                    update_payload=("put", f"k{i}", i),
                    compute_payload={},
                ),
            )
            for i in range(10)
        ]
        cluster = run_cluster(app=app, workload=tasks)
        assert cluster.metrics.tasks_completed == 10
        assert cluster.executors[0].store.applied_ts == 10

    def test_invalid_tasks_filtered_at_coordinator(self):
        """Task-Validity: VP_CO refuses tasks outside T (Byzantine IP)."""
        bad = Task(task_id="bad", opcode=Opcode.COMPUTE, compute_payload={"n": -5})
        workload = [(0.0, bad)] + compute_workload(5)
        cluster = run_cluster(workload=workload)
        assert cluster.metrics.tasks_completed == 5
        assert all("bad" != t for t in [])  # bad task never completes
        assert cluster.coordinators[0].tasks_linearized == 5


class TestDeploymentShapes:
    @pytest.mark.parametrize("n_workers,k", [(4, 1), (8, 1), (10, 2), (16, 3)])
    def test_various_shapes_complete(self, n_workers, k):
        cluster = run_cluster(n_tasks=8, n_workers=n_workers, k=k)
        assert cluster.metrics.tasks_completed == 8

    def test_executor_count(self):
        cluster = run_cluster(n_workers=10, k=2)
        assert len(cluster.executors) == 10 - 2 * 3

    def test_determinism_same_seed(self):
        a = run_cluster(n_tasks=10, seed=7)
        b = run_cluster(n_tasks=10, seed=7)
        assert a.metrics.records_accepted == b.metrics.records_accepted
        assert a.metrics.task_latencies == b.metrics.task_latencies

    def test_default_cluster_count(self):
        from repro.core import OsirisConfig, default_cluster_count

        cfg = OsirisConfig()
        assert default_cluster_count(32, cfg) == 5
        assert default_cluster_count(6, cfg) == 1
