"""Tests for protocol message sizing and signed payload binding."""


from repro.core import Opcode, Record, Task
from repro.core.messages import (
    ChunkDigestMsg,
    ChunkMsg,
    ChunkShareMsg,
    EquivocationReport,
    FallbackExecuteMsg,
    LeaderElectMsg,
    NegligentLeaderReport,
    OutputSizeReport,
    RoleSwitchMsg,
    StateUpdateMsg,
    SuspectExecutorMsg,
    TaskCompleteMsg,
    VerifiedChunkMsg,
    VerifiedDigestMsg,
    VerifierLoadReport,
)
from repro.core.tasks import Assignment, Chunk
from repro.net.message import HEADER_BYTES


def make_chunk(n=3, size=100):
    return Chunk(
        "t1", 0, tuple(Record(key=(i,), size_bytes=size) for i in range(n)), True
    )


def make_assignment():
    return Assignment(
        Task("t1", Opcode.COMPUTE, timestamp=1, size_bytes=64), "e0", 1, 0
    )


class TestWireSizes:
    def test_chunk_msg_dominated_by_records(self):
        small = ChunkMsg(chunk=make_chunk(1), assignment=make_assignment())
        big = ChunkMsg(chunk=make_chunk(50), assignment=make_assignment())
        assert big.wire_size() - small.wire_size() == 49 * 100

    def test_digest_messages_are_small(self):
        chunk = ChunkMsg(chunk=make_chunk(100), assignment=make_assignment())
        for msg in (
            ChunkDigestMsg(),
            VerifiedDigestMsg(),
            OutputSizeReport(),
            VerifierLoadReport(),
            LeaderElectMsg(),
            NegligentLeaderReport(),
        ):
            assert msg.wire_size() < chunk.wire_size() / 10

    def test_wire_size_includes_header(self):
        assert OutputSizeReport().wire_size() >= HEADER_BYTES

    def test_verified_chunk_carries_data(self):
        msg = VerifiedChunkMsg(chunk=make_chunk(10))
        assert msg.payload_bytes() >= 10 * 100

    def test_state_update_scales_with_task(self):
        small = StateUpdateMsg(task=Task("a", Opcode.UPDATE, size_bytes=10))
        big = StateUpdateMsg(task=Task("b", Opcode.UPDATE, size_bytes=1000))
        assert big.wire_size() > small.wire_size()

    def test_share_and_fallback_sizes(self):
        share = ChunkShareMsg(chunk=make_chunk(5), assignment=make_assignment())
        assert share.payload_bytes() >= 500
        fb = FallbackExecuteMsg(task=Task("t", Opcode.COMPUTE, size_bytes=64))
        assert fb.payload_bytes() >= 64


class TestSignedPayloads:
    def test_suspect_payload_binds_fields(self):
        base = SuspectExecutorMsg(
            task_id="t1", attempt=0, executor="e0", byzantine=False
        )
        variants = [
            SuspectExecutorMsg(task_id="t2", attempt=0, executor="e0"),
            SuspectExecutorMsg(task_id="t1", attempt=1, executor="e0"),
            SuspectExecutorMsg(task_id="t1", attempt=0, executor="e1"),
            SuspectExecutorMsg(
                task_id="t1", attempt=0, executor="e0", byzantine=True
            ),
        ]
        for v in variants:
            assert v.signed_payload() != base.signed_payload()

    def test_complete_payload_binds_fields(self):
        a = TaskCompleteMsg(task_id="t1", attempt=0, count=5)
        b = TaskCompleteMsg(task_id="t1", attempt=0, count=6)
        assert a.signed_payload() != b.signed_payload()

    def test_role_switch_payload_binds_direction(self):
        out = RoleSwitchMsg(vp_index=1, epoch=1, to_executor=True)
        back = RoleSwitchMsg(vp_index=1, epoch=1, to_executor=False)
        assert out.signed_payload() != back.signed_payload()

    def test_elect_payload_binds_term(self):
        assert (
            LeaderElectMsg(vp_index=1, new_term=1).signed_payload()
            != LeaderElectMsg(vp_index=1, new_term=2).signed_payload()
        )

    def test_equivocation_report_fields(self):
        msg = EquivocationReport(vp_index=1, task_id="t", index=2, digest=b"x")
        assert msg.payload_bytes() > 0
