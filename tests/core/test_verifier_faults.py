"""Byzantine verifier and output-process tests (Sec 5.2.2 machinery)."""


from repro.apps.synthetic import SyntheticApp
from repro.core.faults import (
    BogusDigestFault,
    FalseAccusationFault,
    NegligentLeaderFault,
    SilentVerifierFault,
    SpuriousReportsFault,
)
from tests.core.helpers import compute_workload, fast_config, run_cluster


class TestNegligentLeader:
    def test_election_replaces_withholding_leader(self):
        # v3 leads cluster 1 (term 0)
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=21,
            until=60.0,
            verifier_faults={"v3": NegligentLeaderFault()},
        )
        assert cluster.metrics.tasks_completed == 10
        assert cluster.metrics.records_accepted == 50
        assert len(cluster.metrics.leader_elections) >= 1

    def test_new_leader_resends_withheld_chunks(self):
        cluster = run_cluster(
            n_tasks=5,
            n_workers=10,
            k=2,
            seed=22,
            until=60.0,
            verifier_faults={"v3": NegligentLeaderFault()},
        )
        # all data eventually reached OP despite the leader never sending
        assert cluster.outputs[0].records_accepted == 25

    def test_executors_unaffected_by_leader_failure(self):
        """Sec 7.4: 'OsirisBFT recovers to the same level since the
        executors are still correct' — no reassignment storm."""
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=23,
            until=60.0,
            verifier_faults={"v3": NegligentLeaderFault()},
        )
        assert all(
            "e" not in c.blacklist for c in cluster.coordinators
        )


class TestBogusDigest:
    def test_minority_bogus_digest_cannot_block_acceptance(self):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=24,
            until=60.0,
            verifier_faults={"v4": BogusDigestFault()},  # non-leader of VP1
        )
        assert cluster.metrics.tasks_completed == 10
        assert cluster.metrics.records_accepted == 50

    def test_bogus_leader_data_rejected_until_election(self):
        """A leader that sends data whose digest doesn't match the honest
        quorum cannot get it accepted; the negligence path elects an
        honest leader."""
        cluster = run_cluster(
            n_tasks=6,
            n_workers=10,
            k=2,
            seed=25,
            until=60.0,
            verifier_faults={"v3": BogusDigestFault()},  # leader of VP1
        )
        assert cluster.metrics.tasks_completed == 6
        assert cluster.metrics.records_accepted == 30


class TestFalseAccusation:
    def test_single_false_accuser_is_ignored(self):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=26,
            until=60.0,
            verifier_faults={"v4": FalseAccusationFault()},
        )
        assert cluster.metrics.tasks_completed == 10
        # no executor was blacklisted on a single (< f+1) accusation
        for coord in cluster.coordinators:
            assert coord.blacklist == set()


class TestSilentVerifier:
    def test_one_silent_verifier_tolerated(self):
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=27,
            until=60.0,
            verifier_faults={"v4": SilentVerifierFault()},
        )
        assert cluster.metrics.tasks_completed == 10

    def test_silent_leader_handled_like_negligent(self):
        cluster = run_cluster(
            n_tasks=6,
            n_workers=10,
            k=2,
            seed=28,
            until=60.0,
            verifier_faults={"v3": SilentVerifierFault()},
        )
        assert cluster.metrics.tasks_completed == 6


class TestByzantineOutputProcess:
    def test_spurious_reports_eventually_ignored(self):
        """An OP reporting f+1 distinct leaders is marked Byzantine by
        verifiers and its reports stop causing elections."""
        from repro.core import build_osiris_cluster

        app = SyntheticApp(records_per_task=5, compute_cost=5e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(10)),
            n_workers=10,
            k=2,
            seed=29,
            config=fast_config(),
            n_outputs=2,
            output_faults={"op1": SpuriousReportsFault()},
        )
        cluster.outputs[1].start_spurious_reports(vp_index=1, period=0.05)
        cluster.start()
        cluster.run(until=60.0)
        assert cluster.metrics.tasks_completed == 10
        # elections are bounded: once the OP has named f+1 leaders it is
        # ignored, so elections stop growing
        assert len(cluster.metrics.leader_elections) <= 4
        v3 = cluster.worker("v3")
        assert "op1" in v3._byzantine_ops
