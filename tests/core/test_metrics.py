"""Tests for the metrics hub."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MetricsHub
from repro.errors import BenchmarkError


class TestThroughput:
    def test_throughput_over_window(self):
        m = MetricsHub()
        m.on_records_accepted(100, 0.5)
        m.on_records_accepted(100, 1.5)
        assert m.throughput(0.0, 2.0) == pytest.approx(100.0)

    def test_throughput_window_excludes_outside(self):
        m = MetricsHub()
        m.on_records_accepted(100, 0.5)
        m.on_records_accepted(100, 5.5)
        assert m.throughput(0.0, 1.0) == pytest.approx(100.0)

    def test_empty_window_rejected(self):
        with pytest.raises(BenchmarkError):
            MetricsHub().throughput(1.0, 1.0)

    def test_series_sorted(self):
        m = MetricsHub()
        m.on_records_accepted(10, 3.5)
        m.on_records_accepted(10, 1.5)
        times = [t for t, _ in m.throughput_series()]
        assert times == sorted(times)

    def test_peak(self):
        m = MetricsHub()
        m.on_records_accepted(10, 0.5)
        m.on_records_accepted(90, 1.5)
        assert m.peak_throughput() == pytest.approx(90.0)
        assert MetricsHub().peak_throughput() == 0.0


class TestTimeToFraction:
    def test_exact_fraction_time(self):
        m = MetricsHub()
        for i in range(10):
            m.on_records_accepted(10, float(i))
        assert m.time_to_fraction(0.5) == pytest.approx(4.0)
        assert m.time_to_fraction(1.0) == pytest.approx(9.0)

    def test_p90_throughput(self):
        m = MetricsHub()
        for i in range(1, 11):
            m.on_records_accepted(10, float(i))
        # 90 records by t=9 → 10/s
        assert m.p90_throughput() == pytest.approx(10.0)

    def test_no_records(self):
        assert MetricsHub().p90_throughput() == 0.0
        assert MetricsHub().time_to_fraction(0.9) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(BenchmarkError):
            MetricsHub().time_to_fraction(0.0)
        with pytest.raises(BenchmarkError):
            MetricsHub().time_to_fraction(1.5)

    @given(
        counts=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_fraction_monotone_in_frac(self, counts):
        m = MetricsHub()
        for i, c in enumerate(counts):
            m.on_records_accepted(c, float(i))
        assert m.time_to_fraction(0.3) <= m.time_to_fraction(0.9)


class TestLatency:
    def test_latency_from_submission_to_completion(self):
        m = MetricsHub()
        m.on_task_submitted("t1", 1.0)
        m.on_task_output_complete("t1", 3.5)
        assert m.task_latencies == [2.5]
        assert m.mean_latency() == pytest.approx(2.5)

    def test_completion_deduplicated(self):
        m = MetricsHub()
        m.on_task_submitted("t1", 1.0)
        m.on_task_output_complete("t1", 3.0)
        m.on_task_output_complete("t1", 4.0)
        assert m.tasks_completed == 1
        assert len(m.task_latencies) == 1

    def test_unknown_task_completion_counts_without_latency(self):
        m = MetricsHub()
        m.on_task_output_complete("ghost", 3.0)
        assert m.tasks_completed == 1
        assert m.task_latencies == []

    def test_resubmission_keeps_first_time(self):
        m = MetricsHub()
        m.on_task_submitted("t1", 1.0)
        m.on_task_submitted("t1", 2.0)
        m.on_task_output_complete("t1", 3.0)
        assert m.task_latencies == [2.0]

    def test_percentiles(self):
        m = MetricsHub()
        for i in range(100):
            m.on_task_submitted(f"t{i}", 0.0)
            m.on_task_output_complete(f"t{i}", float(i + 1))
        assert m.latency_percentile(50) == pytest.approx(51.0, abs=2)
        assert m.latency_percentile(99) == pytest.approx(99.0, abs=2)

    def test_percentile_bounds(self):
        with pytest.raises(BenchmarkError):
            MetricsHub().latency_percentile(101)

    def test_empty_latency(self):
        m = MetricsHub()
        assert m.mean_latency() == 0.0
        assert m.latency_percentile(99) == 0.0


class TestEventLogs:
    def test_event_records(self):
        m = MetricsHub()
        m.on_fault_detected(1.0, "invalid-record", "e0")
        m.on_reassignment(2.0, "t1", 1)
        m.on_role_switch(3.0, 2, True)
        m.on_fallback(4.0, "t2")
        m.on_leader_election(5.0, 1, 1)
        m.on_equivocation_report(6.0, "t3", 0)
        assert m.faults_detected == [(1.0, "invalid-record", "e0")]
        assert m.reassignments == [(2.0, "t1", 1)]
        assert m.role_switches == [(3.0, 2, True)]
        assert m.fallbacks == [(4.0, "t2")]
        assert m.leader_elections == [(5.0, 1, 1)]
        assert m.equivocation_reports == [(6.0, "t3", 0)]

    def test_invalid_bin_seconds(self):
        with pytest.raises(BenchmarkError):
            MetricsHub(bin_seconds=0)
