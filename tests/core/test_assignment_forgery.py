"""Regression: a single Byzantine VP_CO member colluding with an executor
must not be able to activate verification for a task that was never
linearized (found by audit; activation now always requires the f+1
signature quorum on every path)."""


from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import build_osiris_cluster
from repro.core.messages import AssignmentMsg, ChunkDigestMsg, ChunkMsg
from repro.core.tasks import Assignment, chunk_records
from repro.crypto.digest import digest
from tests.core.helpers import fast_config


def deploy():
    app = SyntheticApp(records_per_task=3, compute_cost=1e-3)
    cluster = build_osiris_cluster(
        app,
        workload=None,
        n_workers=10,
        k=2,
        seed=90,
        config=fast_config(),
    )
    return cluster, app


def forged_assignment(cluster, app, task_id="ghost"):
    """An assignment signed by only ONE coordinator member for a task
    that never went through consensus."""
    task = make_compute_task(999).with_timestamp(0)
    task = task.with_timestamp(0)
    a = Assignment(task=task, executor="e0", vp_index=1, attempt=0)
    traitor = cluster.coordinators[0]
    sig = traitor.signer.sign(a.signed_payload())
    return a, sig, traitor.pid, task


class TestForgedAssignment:
    def test_single_signed_assignment_plus_chunks_never_verifies(self):
        cluster, app = deploy()
        a, sig, traitor_pid, task = forged_assignment(cluster, app)
        verifier = cluster.verifiers[0]

        # step 1: traitor sends its (valid!) single assignment copy
        amsg = AssignmentMsg(assignment=a, sig=sig)
        amsg.sender = traitor_pid
        verifier.handle(amsg)
        assert not any(st.activated for st in verifier._tasks.values())

        # step 2: colluding executor streams a perfectly plausible output
        view = app.initial_state().snapshot(0)
        records = list(app.compute(view, a.task).records)
        chunk = chunk_records(a.task.task_id, records, 10**6)[0]
        cmsg = ChunkMsg(chunk=chunk, assignment=a, assignment_sigs=(sig,))
        cmsg.sender = "e0"
        verifier.handle(cmsg)
        dmsg = ChunkDigestMsg(
            task_id=a.task.task_id, attempt=0, index=0, digest=digest(chunk)
        )
        dmsg.sender = "e0"
        dmsg._neq = True
        verifier.handle(dmsg)
        cluster.sim.run(until=5.0)

        # the verifier never activated, verified, or forwarded anything
        st = verifier._tasks.get(a.key)
        assert st is None or (not st.activated and not st.verified)
        assert verifier.chunks_verified == 0
        assert cluster.metrics.records_accepted == 0

    def test_quorum_signed_chunk_borne_assignment_still_works(self):
        """The coordination-free path (legit quorum prepended to chunks)
        keeps working."""
        cluster, app = deploy()
        verifier = cluster.verifiers[0]
        task = make_compute_task(1).with_timestamp(0)
        a = Assignment(task=task, executor="e0", vp_index=1, attempt=0)
        sigs = tuple(
            c.signer.sign(a.signed_payload()) for c in cluster.coordinators[:2]
        )
        view = app.initial_state().snapshot(0)
        records = list(app.compute(view, a.task).records)
        chunk = chunk_records(a.task.task_id, records, 10**6)[0]
        cmsg = ChunkMsg(chunk=chunk, assignment=a, assignment_sigs=sigs)
        cmsg.sender = "e0"
        verifier.handle(cmsg)
        dmsg = ChunkDigestMsg(
            task_id=a.task.task_id, attempt=0, index=0, digest=digest(chunk)
        )
        dmsg.sender = "e0"
        dmsg._neq = True
        verifier.handle(dmsg)
        cluster.sim.run(until=5.0)
        st = verifier._tasks.get(a.key)
        assert st is not None and st.activated
        assert verifier.chunks_verified == 1
