"""Unit-level tests for WorkerBase's f+1 state-update rule and the
OutputProcess acceptance logic (driven directly, no full pipeline)."""


from repro.apps.synthetic import SyntheticApp
from repro.core import MetricsHub, Opcode, OsirisConfig, Record, Task
from repro.core.messages import (
    StateUpdateMsg,
    VerifiedChunkMsg,
    VerifiedDigestMsg,
)
from repro.core.tasks import Chunk
from repro.core.input_output import OutputProcess
from repro.core.worker import WorkerBase
from repro.crypto import KeyRegistry, digest
from repro.net import Network, SubCluster, SynchronyModel, Topology
from repro.runtime.des import DesHost
from repro.sim import Simulator


def make_env(n_exec=2):
    sim = Simulator(seed=4)
    net = Network(sim, synchrony=SynchronyModel())
    registry = KeyRegistry()
    clusters = (
        SubCluster(index=0, members=("v0", "v1", "v2"), f=1),
        SubCluster(index=1, members=("v3", "v4", "v5"), f=1),
    )
    topo = Topology(
        input_pids=("ip0",),
        output_pids=("op0",),
        executor_pids=tuple(f"e{i}" for i in range(n_exec)),
        verifier_clusters=clusters,
        f=1,
    )
    config = OsirisConfig()
    metrics = MetricsHub()
    sim.bus.attach(metrics)
    app = SyntheticApp()
    return sim, net, registry, topo, config, metrics, app


def make_worker(pid="e0"):
    sim, net, registry, topo, config, metrics, app = make_env()
    worker = WorkerBase(
        pid, topo, registry, registry.register(pid), app, config
    )
    net.register(DesHost(sim, net, worker, cores=config.cores_per_node))
    signers = {v: registry.register(v) for v in topo.coordinator.members}
    return worker, signers, registry


def update_msg(signers, sender, ts, task_id=None):
    task = Task(
        task_id=task_id or f"u{ts}",
        opcode=Opcode.UPDATE,
        update_payload=("put", "k", ts),
        timestamp=ts,
    )
    msg = StateUpdateMsg(task=task)
    msg.sig = signers[sender].sign(msg.signed_payload())
    msg.sender = sender
    return msg


class TestStateUpdateQuorum:
    def test_single_copy_not_applied(self):
        worker, signers, _ = make_worker()
        worker.on_StateUpdateMsg(update_msg(signers, "v0", 1))
        assert worker.store.applied_ts == 0

    def test_f_plus_1_copies_apply(self):
        worker, signers, _ = make_worker()
        worker.on_StateUpdateMsg(update_msg(signers, "v0", 1))
        worker.on_StateUpdateMsg(update_msg(signers, "v1", 1))
        assert worker.store.applied_ts == 1

    def test_duplicate_sender_does_not_count_twice(self):
        worker, signers, _ = make_worker()
        worker.on_StateUpdateMsg(update_msg(signers, "v0", 1))
        worker.on_StateUpdateMsg(update_msg(signers, "v0", 1))
        assert worker.store.applied_ts == 0

    def test_non_coordinator_sender_ignored(self):
        worker, signers, registry = make_worker()
        outsider = registry.register("v9")
        task = Task("u1", Opcode.UPDATE, update_payload=("put", "k", 1), timestamp=1)
        msg = StateUpdateMsg(task=task)
        msg.sig = outsider.sign(msg.signed_payload())
        msg.sender = "v9"
        worker.on_StateUpdateMsg(msg)
        worker.on_StateUpdateMsg(update_msg(signers, "v0", 1))
        assert worker.store.applied_ts == 0

    def test_forged_signature_ignored(self):
        worker, signers, _ = make_worker()
        msg = update_msg(signers, "v0", 1)
        # v1 claims to be the sender but carries v0's signature
        msg.sender = "v1"
        worker.on_StateUpdateMsg(msg)
        worker.on_StateUpdateMsg(update_msg(signers, "v2", 1))
        assert worker.store.applied_ts == 0

    def test_extra_copies_idempotent(self):
        worker, signers, _ = make_worker()
        for sender in ("v0", "v1", "v2"):
            worker.on_StateUpdateMsg(update_msg(signers, sender, 1))
        assert worker.store.applied_ts == 1
        assert worker.store.duplicate_updates == 0

    def test_unstamped_update_ignored(self):
        worker, signers, _ = make_worker()
        task = Task("u1", Opcode.UPDATE, update_payload=("put", "k", 1))
        msg = StateUpdateMsg(task=task)
        msg.sig = signers["v0"].sign(msg.signed_payload())
        msg.sender = "v0"
        worker.on_StateUpdateMsg(msg)
        assert worker.store.applied_ts == 0


def make_op():
    sim, net, registry, topo, config, metrics, app = make_env()
    op = OutputProcess("op0", topo, config)
    net.register(DesHost(sim, net, op, cores=2))
    return op, metrics, sim


def chunk_msg(sender, task_id="t1", index=0, final=True, records=2, data_tag="x"):
    chunk = Chunk(
        task_id,
        index,
        tuple(Record(key=(i,), data=data_tag) for i in range(records)),
        final,
    )
    msg = VerifiedChunkMsg(
        vp_index=1,
        task_id=task_id,
        index=index,
        final=final,
        chunk=chunk,
        digest=digest(chunk),
    )
    msg.sender = sender
    return msg


def digest_msg(sender, reference_chunk_msg):
    msg = VerifiedDigestMsg(
        vp_index=1,
        task_id=reference_chunk_msg.task_id,
        index=reference_chunk_msg.index,
        final=reference_chunk_msg.final,
        digest=reference_chunk_msg.digest,
    )
    msg.sender = sender
    return msg


class TestOutputAcceptance:
    def test_data_alone_insufficient(self):
        op, metrics, _ = make_op()
        op.on_VerifiedChunkMsg(chunk_msg("v3"))
        assert metrics.records_accepted == 0

    def test_f_plus_1_matching_digests_accept(self):
        op, metrics, _ = make_op()
        data = chunk_msg("v3")
        op.on_VerifiedChunkMsg(data)
        op.on_VerifiedDigestMsg(digest_msg("v4", data))
        assert metrics.records_accepted == 2
        assert metrics.tasks_completed == 1

    def test_duplicate_endorser_does_not_count(self):
        op, metrics, _ = make_op()
        data = chunk_msg("v3")
        op.on_VerifiedChunkMsg(data)
        op.on_VerifiedChunkMsg(data)
        assert metrics.records_accepted == 0

    def test_sender_outside_claimed_cluster_ignored(self):
        op, metrics, _ = make_op()
        data = chunk_msg("v0")  # v0 belongs to cluster 0, claims cluster 1
        op.on_VerifiedChunkMsg(data)
        op.on_VerifiedDigestMsg(digest_msg("v4", data))
        assert metrics.records_accepted == 0

    def test_mismatched_data_digest_not_accepted(self):
        """A lying leader sends data whose recomputed digest differs from
        the quorum digest: must not be accepted."""
        op, metrics, _ = make_op()
        honest = chunk_msg("v3", data_tag="honest")
        lying = chunk_msg("v5", data_tag="tampered")
        lying.digest = honest.digest  # claims the honest digest
        op.on_VerifiedChunkMsg(lying)
        op.on_VerifiedDigestMsg(digest_msg("v4", honest))
        assert metrics.records_accepted == 0

    def test_multi_chunk_completion_requires_all_indices(self):
        op, metrics, _ = make_op()
        c0 = chunk_msg("v3", index=0, final=False)
        c1 = chunk_msg("v3", index=1, final=True)
        op.on_VerifiedChunkMsg(c1)
        op.on_VerifiedDigestMsg(digest_msg("v4", c1))
        assert metrics.tasks_completed == 0  # chunk 0 missing
        op.on_VerifiedChunkMsg(c0)
        op.on_VerifiedDigestMsg(digest_msg("v4", c0))
        assert metrics.tasks_completed == 1
        assert metrics.records_accepted == 4

    def test_second_cluster_output_for_same_task_ignored(self):
        op, metrics, _ = make_op()
        data = chunk_msg("v3")
        op.on_VerifiedChunkMsg(data)
        op.on_VerifiedDigestMsg(digest_msg("v4", data))
        # a different sub-cluster tries to deliver the same task again
        dup = chunk_msg("v3")
        dup.vp_index = 0
        dup.sender = "v0"
        op.on_VerifiedChunkMsg(dup)
        assert metrics.records_accepted == 2
