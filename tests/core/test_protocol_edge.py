"""Edge-case protocol tests: role switching, fallback, partial synchrony,
equivocation recovery, and liveness under adversarial timing."""


from repro.apps.synthetic import SyntheticApp
from repro.core import build_osiris_cluster
from repro.core.faults import EquivocateChunksFault, SilentFault
from repro.net import SynchronyModel
from tests.core.helpers import compute_workload, fast_config, run_cluster


class TestRoleSwitching:
    def test_idle_verifiers_switch_to_executors_under_backlog(self):
        """Many outstanding cheap-verification tasks: a cluster lends out."""
        app = SyntheticApp(records_per_task=2, compute_cost=300e-3)
        config = fast_config(
            role_switching=True,
            role_switch_interval=0.2,
            switch_out_backlog=2.0,
            switch_patience=2,
            switch_cooldown=2,
            min_verifier_clusters=1,
            cores_per_node=1,
        )
        # 2 executors, 3 clusters: heavy compute backlog
        workload = compute_workload(60, period=0.001)
        cluster = run_cluster(
            app=app,
            workload=workload,
            n_workers=11,
            k=3,
            seed=31,
            config=config,
            until=120.0,
        )
        assert cluster.metrics.tasks_completed == 60
        switches = [s for s in cluster.metrics.role_switches if s[2]]
        assert len(switches) >= 1
        # the switched cluster actually executed tasks
        switched_idx = switches[0][1]
        members = cluster.topo.cluster(switched_idx).members
        executed = sum(
            cluster.worker(pid).engine.tasks_executed for pid in members
        )
        assert executed > 0

    def test_switched_cluster_recalled_when_verification_grows(self):
        # verification costs ~3x the computation: lent clusters must be
        # recalled once the active clusters drown
        app = SyntheticApp(
            records_per_task=50,
            compute_cost=100e-3,
            record_bytes=64,
            verify_cost_ratio=3.0,
        )
        config = fast_config(
            role_switching=True,
            role_switch_interval=0.2,
            switch_out_backlog=2.0,
            switch_in_util=0.6,
            switch_patience=2,
            switch_cooldown=2,
            cores_per_node=1,
            chunk_bytes=64 * 256,
        )
        workload = compute_workload(60, period=0.001)
        cluster = run_cluster(
            app=app,
            workload=workload,
            n_workers=11,
            k=3,
            seed=32,
            config=config,
            until=240.0,
        )
        back = [s for s in cluster.metrics.role_switches if not s[2]]
        out = [s for s in cluster.metrics.role_switches if s[2]]
        # with verification heavy, any lent cluster must come back
        if out:
            assert back
        assert cluster.metrics.tasks_completed == 60

    def test_role_switching_disabled_stays_static(self):
        cluster = run_cluster(
            n_tasks=20,
            seed=33,
            config=fast_config(role_switching=False),
        )
        assert cluster.metrics.role_switches == []

    def test_min_verifier_clusters_respected(self):
        app = SyntheticApp(records_per_task=2, compute_cost=50e-3)
        config = fast_config(
            role_switching=True,
            role_switch_interval=0.2,
            switch_out_backlog=1.0,
            min_verifier_clusters=2,
        )
        cluster = run_cluster(
            app=app,
            workload=compute_workload(60, period=0.001),
            n_workers=14,
            k=3,
            seed=34,
            config=config,
            until=60.0,
        )
        for coord in cluster.coordinators:
            assert len(coord._verifier_pool()) >= 2


class TestFallbackExecution:
    def test_task_falls_back_after_max_attempts(self):
        """Every executor silent: tasks exhaust reassignment attempts and
        verifier sub-clusters execute them directly (Lemma 6.4)."""
        faults = {f"e{i}": SilentFault() for i in range(4)}
        cluster = run_cluster(
            n_tasks=3,
            n_workers=10,
            k=2,
            seed=35,
            until=240.0,
            config=fast_config(max_attempts=2),
            executor_faults=faults,
        )
        assert cluster.metrics.tasks_completed == 3
        assert len(cluster.metrics.fallbacks) == 3

    def test_fallback_records_are_correct(self):
        faults = {f"e{i}": SilentFault() for i in range(4)}
        cluster = run_cluster(
            n_tasks=3,
            n_workers=10,
            k=2,
            seed=36,
            until=240.0,
            config=fast_config(max_attempts=2),
            executor_faults=faults,
        )
        assert cluster.metrics.records_accepted == 15


class TestEquivocationRecovery:
    def test_minority_deprived_verifier_recovers_chunk(self):
        """Plain-channel equivocation leaves a minority verifier with a
        mismatching chunk; OP still accepts via the honest majority."""
        cluster = run_cluster(
            n_tasks=10,
            n_workers=10,
            k=2,
            seed=37,
            until=60.0,
            executor_faults={"e0": EquivocateChunksFault()},
        )
        assert cluster.metrics.tasks_completed == 10
        assert cluster.metrics.records_accepted == 50


class TestPartialSynchrony:
    def test_liveness_after_gst(self):
        """Pre-GST delays cause timeouts and spurious reassignment, but
        after GST every task completes and safety never broke."""
        app = SyntheticApp(records_per_task=5, compute_cost=5e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(10)),
            n_workers=10,
            k=2,
            seed=38,
            config=fast_config(suspect_timeout=0.3),
            synchrony=SynchronyModel(
                gst=2.0, pre_gst_extra=0.4, delta=1e-3
            ),
        )
        cluster.start()
        cluster.run(until=120.0)
        assert cluster.metrics.tasks_completed == 10
        assert cluster.metrics.records_accepted == 50


class TestDuplicateSubmission:
    def test_resubmitted_task_executes_once(self):
        """IP retries (same task id) must not duplicate output."""
        tasks = compute_workload(5)
        tasks += [(t + 0.001, task) for t, task in tasks]  # duplicates
        tasks.sort(key=lambda p: p[0])
        cluster = run_cluster(workload=tasks, seed=39)
        assert cluster.metrics.tasks_completed == 5
        assert cluster.metrics.records_accepted == 25
