"""Machine-checked Lemma 4.1/4.2/6.2: the output-failure taxonomy is
complete, correct executions are failure-free, and the verification
operators accept exactly the correct output."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Record
from repro.core.failure_model import OutputFailure, classify_output, operators_accept


def recs(keys, data=None):
    return [Record(key=(k,), data=(data or {}).get(k, k * 7)) for k in keys]


EXPECTED = recs([1, 2, 3, 4])


def is_valid(record):
    return any(
        record.key == e.key and record.data == e.data for e in EXPECTED
    )


class TestClassification:
    def test_correct_output_has_no_failure(self):
        assert classify_output(EXPECTED, EXPECTED) == OutputFailure.NONE

    def test_empty_expected_and_observed(self):
        assert classify_output([], []) == OutputFailure.NONE

    def test_fabricated_record_is_mismatch(self):
        observed = EXPECTED + recs([99])
        assert OutputFailure.MISMATCH in classify_output(observed, EXPECTED)

    def test_corrupted_data_is_mismatch(self):
        observed = recs([1, 2, 3]) + [Record(key=(4,), data="junk")]
        failures = classify_output(observed, EXPECTED)
        assert OutputFailure.MISMATCH in failures
        assert OutputFailure.OMISSION in failures  # true record 4 missing

    def test_replayed_record_is_duplication(self):
        observed = EXPECTED + recs([1])
        assert OutputFailure.DUPLICATION in classify_output(observed, EXPECTED)

    def test_dropped_record_is_omission(self):
        observed = recs([1, 2, 4])
        assert classify_output(observed, EXPECTED) == OutputFailure.OMISSION

    def test_combined_failures(self):
        observed = recs([1, 1, 99])
        failures = classify_output(observed, EXPECTED)
        assert OutputFailure.MISMATCH in failures
        assert OutputFailure.DUPLICATION in failures
        assert OutputFailure.OMISSION in failures


expected_strategy = st.lists(
    st.integers(min_value=0, max_value=30), min_size=0, max_size=10, unique=True
).map(sorted)


class TestLemma41Completeness:
    @given(
        expected_keys=expected_strategy,
        observed_keys=st.lists(
            st.integers(min_value=0, max_value=40), max_size=15
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_deviation_is_classified(self, expected_keys, observed_keys):
        """Lemma 4.1: every invalid output hits >= 1 failure class."""
        expected = recs(expected_keys)
        observed = recs(observed_keys)
        failures = classify_output(observed, expected)
        multiset_equal = sorted(observed_keys) == sorted(expected_keys)
        if multiset_equal:
            assert failures == OutputFailure.NONE
        else:
            assert failures != OutputFailure.NONE

    @given(expected_keys=expected_strategy)
    @settings(max_examples=100, deadline=None)
    def test_lemma_42_correct_execution_no_failures(self, expected_keys):
        """Lemma 4.2 (output side): faithful execution yields no failure."""
        expected = recs(expected_keys)
        assert classify_output(expected, expected) == OutputFailure.NONE


class TestLemma62Operators:
    def _is_valid_for(self, expected):
        table = {(e.key, e.data) for e in expected}
        return lambda r: (r.key, r.data) in table

    @given(
        expected_keys=expected_strategy,
        observed_keys=st.lists(
            st.integers(min_value=0, max_value=40), max_size=15
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_operators_accept_iff_output_correct(
        self, expected_keys, observed_keys
    ):
        """Lemma 6.2: validity + total order + count ⟺ R = A(s, t)."""
        expected = recs(expected_keys)
        observed = recs(observed_keys)
        accepted = operators_accept(
            observed, expected, self._is_valid_for(expected)
        )
        assert accepted == (observed_keys == sorted(expected_keys))

    def test_out_of_order_rejected(self):
        observed = recs([2, 1, 3, 4])
        assert not operators_accept(observed, EXPECTED, is_valid)

    def test_duplicate_rejected_by_strict_order(self):
        observed = recs([1, 2, 3, 3])
        assert not operators_accept(observed, EXPECTED, is_valid)

    def test_padding_with_duplicates_rejected(self):
        """Omission hidden by duplication (count right, content wrong)."""
        observed = recs([1, 1, 2, 3])
        assert not operators_accept(observed, EXPECTED, is_valid)
