"""Shared helpers for core protocol tests."""

from __future__ import annotations

import hashlib

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, build_osiris_cluster


def fast_config(**overrides) -> OsirisConfig:
    """Config with short timeouts so failure tests converge quickly."""
    defaults = dict(
        suspect_timeout=0.1,
        op_timeout=0.05,
        role_switching=False,
        chunk_bytes=256,
    )
    defaults.update(overrides)
    return OsirisConfig(**defaults)


def compute_workload(n_tasks: int, period: float = 0.01, records=None):
    """(time, task) pairs of pure compute tasks."""
    return [
        (i * period, make_compute_task(i, n=records)) for i in range(n_tasks)
    ]


def run_cluster(
    n_tasks=10,
    n_workers=10,
    k=2,
    seed=1,
    until=30.0,
    app=None,
    config=None,
    workload=None,
    **kwargs,
):
    """Build, run and return a cluster with a simple compute workload."""
    app = app or SyntheticApp(records_per_task=5, compute_cost=5e-3)
    workload = workload if workload is not None else compute_workload(n_tasks)
    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=n_workers,
        k=k,
        seed=seed,
        config=config or fast_config(),
        **kwargs,
    )
    cluster.start()
    cluster.run(until=until)
    return cluster


def expected_record_data(task_id: str, i: int) -> int:
    """The datum SyntheticApp must produce at position i of a task."""
    raw = hashlib.sha256(f"{task_id}:{i}".encode()).digest()
    return int.from_bytes(raw[:8], "big")
