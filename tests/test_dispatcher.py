"""The unified ``python -m repro <subcommand>`` dispatcher forwards to
the per-package CLIs and fails loudly on anything else."""

import pytest

from repro.__main__ import _COMMANDS, main


class TestDispatch:
    def test_no_args_prints_usage_and_fails(self, capsys):
        assert main([]) == 2
        assert "usage: python -m repro" in capsys.readouterr().out

    def test_explicit_help_succeeds(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in _COMMANDS:
            assert name in out

    def test_unknown_command_fails(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    @pytest.mark.parametrize("name", sorted(_COMMANDS))
    def test_each_subcommand_forwards_to_a_real_cli(self, name, capsys):
        # --help is handled by each sub-CLI's argparse: SystemExit(0)
        # proves the forward resolved an actual parser, not a stub
        with pytest.raises(SystemExit) as exc:
            main([name, "--help"])
        assert exc.value.code == 0
        assert capsys.readouterr().out  # the sub-CLI printed its help
