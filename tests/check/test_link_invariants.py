"""Link-layer invariant checks: clean traffic passes, violations fire."""

from dataclasses import dataclass

from repro.check.links import LinkInvariantSink, _reference_mean_rate
from repro.check.report import SanitizerReport
from repro.net import Message, Network, SynchronyModel
from repro.obs.events import LinkTransfer
from repro.sim import Simulator, SimProcess


@dataclass
class Payload(Message):
    value: int = 0


class Receiver(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid, cores=1)
        self.got = []

    def on_Payload(self, msg):
        self.got.append(msg.value)


def make(n=3, seed=2, **syn):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=SynchronyModel(**syn))
    report = SanitizerReport()
    sink = LinkInvariantSink(net, report)
    sim.bus.attach(sink)
    procs = [Receiver(sim, f"p{i}") for i in range(n)]
    for p in procs:
        net.register(p)
    return sim, net, sink, report


def transfer(src, dst, time, deliver_at, nbytes=1000, neq=False):
    return LinkTransfer(
        time=time,
        pid=src,
        dst=dst,
        nbytes=nbytes,
        msg_type="Payload",
        deliver_at=deliver_at,
        neq=neq,
    )


class TestCleanTraffic:
    def test_real_network_traffic_has_no_violations(self):
        sim, net, sink, report = make()
        for v in range(20):
            net.send("p0", f"p{1 + (v % 2)}", Payload(value=v))
            if v % 3 == 0:
                net.neq_multicast("p0", ["p1", "p2"], Payload(value=v))
        sim.run()
        sink.audit()
        assert report.ok, report.summary()
        assert report.transfers_checked > 20

    def test_neq_labels_balance_the_counter(self):
        sim, net, sink, report = make()
        net.neq_multicast("p0", ["p1", "p2"], Payload(value=1))
        sim.run()
        sink.audit()
        assert sink.neq_labeled == 2 == net.neq_sends
        assert report.ok


class TestViolations:
    def test_full_duplex_violation_fires(self):
        # a 1000-byte message needs 2*tx of serialization; delivery at
        # send time + epsilon is physically impossible
        _, net, sink, report = make()
        tx = 1000 / net.bandwidth
        sink.handle(transfer("p0", "p1", time=0.0, deliver_at=tx / 2))
        assert "full-duplex" in report.invariants_hit()

    def test_fifo_violation_fires(self):
        _, net, sink, report = make()
        sink.handle(transfer("p0", "p1", time=0.0, deliver_at=10.0))
        sink.handle(transfer("p0", "p1", time=5.0, deliver_at=9.0))
        assert "fifo-order" in report.invariants_hit()

    def test_delta_bound_violation_fires(self):
        # post-GST delivery later than the Δ-implied recurrence allows
        _, net, sink, report = make(delta=2e-3)
        tx = 1000 / net.bandwidth
        late = 2 * tx + net.synchrony.delta + 1.0
        sink.handle(transfer("p0", "p1", time=0.0, deliver_at=late))
        assert "delta-bound" in report.invariants_hit()

    def test_egress_shadow_mismatch_fires(self):
        # traffic the sink never saw leaves the NIC ahead of the shadow
        sim, net, sink, report = make()
        sim.bus.detach(sink)
        net.send("p0", "p1", Payload(value=1))
        sim.run()
        sim.bus.attach(sink)
        sink.audit()
        assert "egress-shadow" in report.invariants_hit()

    def test_mislabeled_neq_send_fires(self):
        # a send that takes the neq premium without going through the
        # primitive (the sticky-flag bug's signature)
        sim, net, sink, report = make()
        net.neq_multicast("p0", ["p1"], Payload(value=1))
        net.send("p0", "p2", Payload(value=2), neq=True)  # not counted
        sim.run()
        sink.audit()
        assert "neq-label" in report.invariants_hit()


class TestMeterAudit:
    def test_reference_spec_prorates(self):
        bins = {0: 100, 1: 200}
        assert _reference_mean_rate(bins, 1.0, 0.0, 2.0) == 150.0
        assert _reference_mean_rate(bins, 1.0, 0.5, 1.5) == 150.0
        assert _reference_mean_rate(bins, 1.0, 0.25, 0.75) == 100.0

    def test_meter_matching_spec_passes(self):
        sim, net, sink, report = make()
        for v in range(10):
            net.send("p0", "p1", Payload(value=v))
        sim.run()
        sink.audit()
        assert "meter-proration" not in report.invariants_hit()
