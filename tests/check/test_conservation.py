"""End-to-end record conservation: honest runs classify clean, and the
auditor notices doctored OP state (equivocation, dropped records, counter
drift)."""

from dataclasses import replace

from repro import api
from repro.bench.workloads import synthetic_bench
from repro.check.conservation import ConservationSink
from repro.check.report import SanitizerReport
from repro.core.config import OsirisConfig
from repro.core.cluster import build_osiris_cluster
from repro.obs.events import ChunkAccepted, TaskCompleted


def sanitized_cluster(n_tasks=6, n=5, seed=3):
    wl = synthetic_bench(n_tasks)
    cluster = build_osiris_cluster(
        wl.app,
        workload=wl.stream,
        n_workers=n,
        seed=seed,
        config=OsirisConfig(
            f=1, chunk_bytes=wl.chunk_bytes, suspect_timeout=60.0,
            cores_per_node=1,
        ),
        sanitize=True,
    )
    cluster.start()
    cluster.run(until=600.0)
    assert cluster.metrics.tasks_completed == n_tasks
    return cluster


def committed_slot(cluster):
    """Some accepted slot of a completed compute task, with its quorum."""
    op = cluster.outputs[0]
    for task_id, ot in op._tasks.items():
        if ot.vp_index >= 0 and ot.completed and ot.accepted:
            index = min(ot.accepted)
            quorum = cluster.topo.cluster(ot.vp_index).quorum
            return op, task_id, ot, ot.slots[index], quorum
    raise AssertionError("no committed slot in the run")


class TestHonestRuns:
    def test_zero_violations_and_every_output_recomputed(self):
        result = api.run(
            api.DeploymentSpec(
                workload=synthetic_bench(8), n=5, seed=4, sanitize=True
            )
        )
        report = result.extra["sanitizer_report"]
        assert report.ok, report.summary()
        assert report.outputs_recomputed == 8
        assert result.sanitizer_violations == 0


class TestLiveChecks:
    def test_double_accept_fires(self):
        report = SanitizerReport()
        sink = ConservationSink(report)
        ev = ChunkAccepted(time=1.0, pid="op0", task_id="t1", index=0, records=5)
        sink.handle(ev)
        sink.handle(ev)
        assert "double-accept" in report.invariants_hit()

    def test_double_complete_fires(self):
        report = SanitizerReport()
        sink = ConservationSink(report)
        ev = TaskCompleted(time=1.0, pid="op0", task_id="t1")
        sink.handle(ev)
        sink.handle(ev)
        assert "double-complete" in report.invariants_hit()


class TestAuditedState:
    def test_counter_drift_fires(self):
        cluster = sanitized_cluster()
        cluster.outputs[0].records_accepted += 1
        report = cluster.sanitizer.audit(cluster)
        assert "records-counter" in report.invariants_hit()

    def test_second_quorum_digest_is_committed_equivocation(self):
        cluster = sanitized_cluster()
        op, task_id, ot, slot, quorum = committed_slot(cluster)
        fake = b"\x00" * 32
        slot.endorsements[fake] = {f"v{i}" for i in range(quorum)}
        slot.data[fake] = next(iter(slot.data.values()))
        report = cluster.sanitizer.audit(cluster)
        assert "committed-equivocation" in report.invariants_hit()

    def test_dropped_record_classifies_as_output_failure(self):
        cluster = sanitized_cluster()
        op, task_id, ot, slot, quorum = committed_slot(cluster)
        sigma, chunk = next(
            (s, c)
            for s, c in slot.data.items()
            if len(slot.endorsements.get(s, ())) >= quorum
        )
        assert chunk.records, "winning chunk should carry records"
        slot.data[sigma] = replace(chunk, records=chunk.records[:-1])
        report = cluster.sanitizer.audit(cluster)
        assert "output-failure" in report.invariants_hit()
