"""Fuzz coverage of sharded open-loop deployments and their shrinks."""

import random

from dataclasses import replace

from repro.check.fuzz import _candidates, _check, generate_point
from repro.exp.spec import Point, kv


class TestGeneration:
    def test_space_includes_sharded_open_loop(self):
        rng = random.Random(5)
        pts = [generate_point(rng) for _ in range(80)]
        sharded = [p for p in pts if p.shards > 1]
        assert sharded, "no sharded draws in 80 points"
        for p in sharded:
            assert p.system == "osiris"
            assert p.workload == "open_loop"
            assert p.shards == 2
            assert 2 <= p.tenants <= 4
            wp = dict(p.workload_params)
            assert wp["process"] in ("poisson", "diurnal", "burst_idle")
        assert any(p.shards == 1 for p in pts)

    def test_sharded_draw_runs_clean(self):
        rng = random.Random(5)
        point = next(
            p for _ in range(80) if (p := generate_point(rng)).shards > 1
        )
        status, invariants, detail = _check(point)
        assert status == "ok", (invariants, detail)


class TestShrinkOrder:
    def _point(self, **overrides) -> Point:
        kw = dict(
            system="osiris",
            workload="open_loop",
            workload_params=kv({"n_tasks": 8, "rate": 50.0}),
            n=8,
            k=1,
            shards=2,
            tenants=3,
        )
        kw.update(overrides)
        return Point(**kw)

    def test_tenants_and_shards_shrink_before_topology(self):
        cands = list(_candidates(self._point()))
        tenant_at = next(
            i for i, c in enumerate(cands) if c.tenants == 1 and c.shards == 2
        )
        shard_at = next(i for i, c in enumerate(cands) if c.shards == 1)
        n_at = next(
            (i for i, c in enumerate(cands) if c.n < 8), len(cands)
        )
        assert tenant_at < shard_at < n_at

    def test_single_pipeline_point_yields_no_shard_shrinks(self):
        point = self._point(shards=1, tenants=1)
        for cand in _candidates(point):
            assert cand.shards == 1 and cand.tenants == 1
