"""Each of the four substrate bugfixes in this change has a sanitizer
invariant standing guard behind it.  These tests emulate the *pre-fix*
behaviour (via the old code path, a stale flag, or a monkeypatched old
implementation) and assert the sanitizer flags it — so reverting any of
the fixes turns a silent modelling error into a red check."""

import math
from dataclasses import dataclass

from repro.check.cpu import CpuInvariantSink
from repro.check.links import LinkInvariantSink
from repro.check.report import SanitizerReport
from repro.net import Message, Network, SynchronyModel
from repro.net.links import ByteMeter
from repro.sim import Simulator, SimProcess
from repro.sim.cpu import CpuBank
from repro.sim.kernel import EventHandle


@dataclass
class Payload(Message):
    value: int = 0


class Receiver(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid, cores=1)
        self.got = []

    def on_Payload(self, msg):
        self.got.append((msg.value, bool(getattr(msg, "_neq", False))))


def linked(seed=2, synchrony=None, **net_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=synchrony or SynchronyModel(), **net_kwargs)
    report = SanitizerReport()
    sink = LinkInvariantSink(net, report)
    sim.bus.attach(sink)
    procs = [Receiver(sim, f"p{i}") for i in range(3)]
    for p in procs:
        net.register(p)
    return sim, net, sink, report


class TestCancellationLeakRevert:
    """Satellite 1: JobHandle.cancel must roll occupancy back.  The
    pre-fix path cancelled the bare kernel event, leaving the job's full
    cost charged and the core blocked."""

    def test_bare_event_cancel_is_flagged_as_leak(self):
        sim = Simulator(seed=0)
        report = SanitizerReport()
        sink = CpuInvariantSink(report)
        sim.bus.attach(sink)
        bank = CpuBank(sim, 1, owner="e0", name="app")
        bank.submit(1.0, lambda: None)
        handle = bank.submit(10.0, lambda: None)
        # pre-fix behaviour: kill the completion event, skip the rollback
        EventHandle.cancel(handle)
        sim.run()
        sink.audit_bank("e0", bank, drained=True)
        assert "cpu-conservation" in report.invariants_hit()

    def test_fixed_cancel_is_clean(self):
        sim = Simulator(seed=0)
        report = SanitizerReport()
        sink = CpuInvariantSink(report)
        sim.bus.attach(sink)
        bank = CpuBank(sim, 1, owner="e0", name="app")
        bank.submit(1.0, lambda: None)
        bank.submit(10.0, lambda: None).cancel()
        sim.run()
        sink.audit_bank("e0", bank, drained=True)
        assert report.ok, report.summary()


class TestStickyNeqRevert:
    """Satellite 2: the neq flag is a per-send channel property.  The
    pre-fix code stamped ``msg._neq = True`` on the object, so reusing
    it on a plain send kept the neq premium and label."""

    def test_sticky_flag_resend_is_flagged(self):
        sim, net, sink, report = linked()
        msg = Payload(value=1)
        net.neq_multicast("p0", ["p1"], msg)
        sim.run()
        # pre-fix behaviour: the plain-send path honours the stale flag
        net.send("p0", "p2", msg, neq=bool(getattr(msg, "_neq", False)))
        sim.run()
        sink.audit()
        assert "neq-label" in report.invariants_hit()

    def test_fixed_resend_is_clean(self):
        sim, net, sink, report = linked()
        msg = Payload(value=1)
        net.neq_multicast("p0", ["p1"], msg)
        sim.run()
        net.send("p0", "p2", msg)
        sim.run()
        sink.audit()
        assert report.ok, report.summary()


class TestMeterOvercountRevert:
    """Satellite 3: ``ByteMeter.mean_rate`` prorates partially covered
    bins.  The pre-fix implementation counted every touched bin whole,
    overcounting misaligned windows — exactly what the audit probes."""

    def test_whole_bin_mean_rate_is_flagged(self, monkeypatch):
        def whole_bin(self, start, end):
            if end <= start:
                return 0.0
            lo = int(start // self.bin_seconds)
            hi = int(math.ceil(end / self.bin_seconds))
            total = sum(c for i, c in self._bins.items() if lo <= i < hi)
            return total / (end - start)

        sim, net, sink, report = linked()
        for v in range(10):
            net.send("p0", "p1", Payload(value=v))
        sim.run()
        monkeypatch.setattr(ByteMeter, "mean_rate", whole_bin)
        sink.audit()
        assert "meter-proration" in report.invariants_hit()


class TestDeltaValidationRevert:
    """Satellite 4: the Network validates Δ against the *composed*
    ``neq_latency_factor × (base + jitter)`` bound.  Without it, a legal
    SynchronyModel plus a large premium silently breaks the post-GST
    delivery guarantee every timeout in the system is derived from."""

    def test_unvalidated_premium_breaks_the_delta_bound(self):
        syn = SynchronyModel(base_latency=1e-3, jitter=0.0, delta=2e-3)
        sim, net, sink, report = linked(
            seed=4, synchrony=syn, neq_latency_factor=1.0
        )
        # pre-fix behaviour: the composed bound was never checked, so a
        # config like this one could reach the send path
        net.neq_latency_factor = 3.0
        net.neq_multicast("p0", ["p1"], Payload(value=1))
        sim.run()
        assert "delta-bound" in report.invariants_hit()

    def test_validated_premium_is_clean(self):
        syn = SynchronyModel(base_latency=1e-3, jitter=0.0, delta=4e-3)
        sim, net, sink, report = linked(
            seed=4, synchrony=syn, neq_latency_factor=3.0
        )
        net.neq_multicast("p0", ["p1"], Payload(value=1))
        sim.run()
        sink.audit()
        assert report.ok, report.summary()


class TestMcCleanSmallModel:
    """The bounded explorer (``repro.mc``) found *no* safety violation
    in the shipped cores at n≤4 — every executor/verifier registry
    fault explored clean under the delay budget.  Pin that: if a future
    change re-introduces an ordering bug (equivocation commit, early
    accept, lost chunk), this exhaustive-at-small-scale sweep turns it
    into a red check with a shrinkable schedule, instead of relying on
    fuzz luck.  (The seeded-bug cross-checks in
    ``tests/mc/test_seeded_bugs.py`` prove the explorer *would* catch
    such a revert.)"""

    def test_mc_clean_smallmodel(self):
        from repro.mc import McModel, explore

        result = explore(McModel(n=3, tasks=1))
        assert result.stats.complete
        assert result.ok, [v.invariants for v in result.violations]

    def test_mc_clean_under_equivocating_executor(self):
        from repro.mc import McModel, explore

        result = explore(
            McModel(
                n=3,
                tasks=1,
                fault_role="executor",
                fault_kind="equivocate-chunks",
            )
        )
        assert result.stats.complete
        assert result.ok, [v.invariants for v in result.violations]
