"""The sanitizer is observational: enabling it must not perturb a single
byte of the golden fig5 trace, while still checking the whole run."""

import hashlib
import io
import json
import pathlib

from repro import api
from repro.bench import anomaly_bench
from repro.obs import JsonlTraceSink

FIXTURE = (
    pathlib.Path(__file__).parent.parent
    / "obs"
    / "fixtures"
    / "fig5_mm_n8.json"
)


class TestGoldenSanitize:
    def test_sanitized_run_is_byte_identical_and_clean(self):
        expected = json.loads(FIXTURE.read_text())
        buf = io.StringIO()
        result = api.run(
            api.DeploymentSpec(
                workload=anomaly_bench(
                    "MM", n_tasks=expected["n_tasks"], seed=expected["seed"]
                ),
                n=8,
                seed=expected["seed"],
                sinks=[JsonlTraceSink(buf)],
                sanitize=True,
            )
        )
        text = buf.getvalue()
        assert len(text.splitlines()) == expected["lines"]
        assert (
            hashlib.sha256(text.encode()).hexdigest() == expected["sha256"]
        ), (
            "sanitize=True perturbed the trace — the checkers must stay "
            "purely observational"
        )
        report = result.extra["sanitizer_report"]
        assert result.sanitizer_violations == 0
        assert report.ok, report.summary()
        # and it actually looked at the run, not just waved it through
        assert report.transfers_checked > 0
        assert report.spans_checked > 0
        assert report.banks_audited > 0
        assert report.outputs_recomputed == expected["n_tasks"]
