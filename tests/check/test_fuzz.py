"""Fuzz driver: deterministic generation, clean sweeps, greedy shrinking."""

import random

import repro.check.fuzz as fuzz_mod
from repro.check.fuzz import generate_point, run_fuzz, shrink_point
from repro.exp.spec import Point, kv


class TestGeneration:
    def test_same_seed_draws_same_points(self):
        rng1, rng2 = random.Random(9), random.Random(9)
        pts1 = [generate_point(rng1) for _ in range(25)]
        pts2 = [generate_point(rng2) for _ in range(25)]
        assert pts1 == pts2

    def test_draws_are_structurally_valid(self):
        rng = random.Random(13)
        for _ in range(60):
            p = generate_point(rng)
            if p.system != "osiris":
                assert not p.executor_faults and not p.verifier_faults
                continue
            n_exec = p.n - 3 * (p.k or 1)
            assert n_exec >= 0
            for pid, kind, _params in p.executor_faults:
                assert int(pid[1:]) < n_exec
            for pid, _kind, _params in p.verifier_faults:
                # only non-coordinator verifiers may be faulty, which
                # requires a second sub-cluster
                assert (p.k or 1) >= 2 and int(pid[1:]) >= 3

    def test_space_includes_faulty_and_clean_points(self):
        rng = random.Random(1)
        pts = [generate_point(rng) for _ in range(60)]
        assert any(p.executor_faults for p in pts)
        assert any(not p.executor_faults for p in pts)
        assert any(p.system != "osiris" for p in pts)


class TestSweep:
    def test_small_budget_sweep_is_clean(self):
        outcome = run_fuzz(budget=5, seed=11)
        assert outcome.executed == 5
        assert outcome.ok, [f.detail for f in outcome.failures]

    def test_outcome_serializes(self):
        outcome = run_fuzz(budget=2, seed=11)
        d = outcome.to_dict()
        assert d["executed"] == 2 and d["failures"] == []


class TestShrink:
    def test_greedy_shrink_minimizes_a_failing_point(self, monkeypatch):
        def fake_check(point):
            if point.executor_faults:
                return ("violation", frozenset({"x"}), "detail")
            return ("ok", frozenset(), "")

        monkeypatch.setattr(fuzz_mod, "_check", fake_check)
        point = Point(
            system="osiris",
            workload="synthetic",
            workload_params=kv({"n_tasks": 12}),
            n=8,
            k=1,
            seed=3,
            config=kv({"suspect_timeout": 2.0}),
            executor_faults=(
                ("e0", "silent", kv({"activate_at": 0.0})),
                ("e1", "slow", kv({"activate_at": 0.0})),
            ),
        )
        shrunk, runs = shrink_point(point, frozenset({"x"}))
        assert len(shrunk.executor_faults) == 1
        assert shrunk.config == ()
        assert dict(shrunk.workload_params)["n_tasks"] == 2
        assert shrunk.n == 4
        assert runs <= fuzz_mod.MAX_SHRINK_RUNS


class TestCli:
    def test_fuzz_subcommand_exits_zero_on_clean_sweep(self, capsys):
        from repro.check.__main__ import main

        assert main(["fuzz", "--budget", "2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out

    def test_point_subcommand_replays_a_descriptor(self, capsys):
        import json

        from repro.check.__main__ import main

        point = Point(
            system="osiris",
            workload="synthetic",
            workload_params=kv({"n_tasks": 3}),
            n=4,
            seed=1,
        )
        assert main(["point", json.dumps(point.to_dict())]) == 0
        assert "0 violation(s)" in capsys.readouterr().out
