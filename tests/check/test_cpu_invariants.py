"""CPU invariant checks: span geometry, cancellation, the ledger."""

from repro.check.cpu import CpuInvariantSink
from repro.check.report import SanitizerReport
from repro.obs.events import CpuCancel, CpuSpan
from repro.sim import Simulator
from repro.sim.cpu import CpuBank


def make(cores=1, owner="e0"):
    sim = Simulator(seed=0)
    report = SanitizerReport()
    sink = CpuInvariantSink(report)
    sim.bus.attach(sink)
    bank = CpuBank(sim, cores, owner=owner, name="app")
    return sim, bank, sink, report


def span(time, end, core=0, pid="e0", bank="app"):
    return CpuSpan(time=time, pid=pid, bank=bank, core=core, end=end)


class TestCleanRuns:
    def test_sequential_jobs_pass(self):
        sim, bank, sink, report = make()
        done = []
        for cost in (1.0, 2.0, 0.5):
            bank.submit(cost, done.append, cost)
        sim.run()
        sink.audit_bank("e0", bank, drained=True)
        assert report.ok, report.summary()
        assert len(done) == 3
        assert report.spans_checked == 3

    def test_cancelled_jobs_still_balance(self):
        sim, bank, sink, report = make()
        done = []
        bank.submit(1.0, done.append, "a")
        handle = bank.submit(2.0, done.append, "b")
        bank.submit(0.5, done.append, "c")
        sim.schedule_at(0.25, handle.cancel)
        sim.run()
        sink.audit_bank("e0", bank, drained=True)
        assert report.ok, report.summary()
        assert done == ["a", "c"]
        assert sink.cancels_seen == 1

    def test_mid_flight_cancel_truncates_the_span(self):
        sim, bank, sink, report = make()
        handle = bank.submit(2.0, lambda: None)
        sim.schedule_at(0.5, handle.cancel)
        sim.run()
        sink.audit_bank("e0", bank, drained=True)
        assert report.ok, report.summary()
        spans = sink._spans[("e0", "app")][0]
        assert spans == [[0.0, 0.5]]

    def test_multicore_bank_passes(self):
        sim, bank, sink, report = make(cores=2)
        for cost in (1.0, 1.0, 1.0, 1.0):
            bank.submit(cost, lambda: None)
        sim.run()
        sink.audit_bank("e0", bank, drained=True)
        assert report.ok, report.summary()


class TestViolations:
    def test_overlapping_spans_fire(self):
        _, _, sink, report = make()
        sink.handle(span(0.0, 2.0))
        sink.handle(span(1.0, 3.0))
        assert "core-overlap" in report.invariants_hit()

    def test_unmatched_cancel_fires(self):
        _, _, sink, report = make()
        sink.handle(
            CpuCancel(
                time=1.0, pid="e0", bank="app", core=0, end=5.0, reclaimed=4.0
            )
        )
        assert "cancel-unmatched" in report.invariants_hit()

    def test_core_out_of_range_fires(self):
        _, bank, sink, report = make(cores=1)
        sink.handle(span(0.0, 1.0, core=3))
        sink.audit_bank("e0", bank, drained=True)
        assert "core-range" in report.invariants_hit()

    def test_busy_seconds_drift_fires(self):
        sim, bank, sink, report = make()
        bank.submit(1.0, lambda: None)
        sim.run()
        bank.busy_seconds += 0.5  # corrupt the ledger
        sink.audit_bank("e0", bank, drained=True)
        hit = report.invariants_hit()
        assert "cpu-conservation" in hit or "span-sum" in hit

    def test_undrained_bank_skips_ledger_checks(self):
        # a deadline-bounded run legitimately has jobs in flight
        sim, bank, sink, report = make()
        bank.submit(1.0, lambda: None)
        bank.submit(5.0, lambda: None)
        sim.run(until=1.5)
        sink.audit_bank("e0", bank, drained=False)
        assert report.ok, report.summary()
