"""Tests for version-history compaction of multiversioned states."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.anomaly import MultiVersionGraph
from repro.store import KVState


class TestKVCompaction:
    def _kv(self, n=10):
        kv = KVState()
        for ts in range(1, n + 1):
            kv.apply(ts, ("put", "k", ts))
        return kv

    def test_recent_snapshots_exact_after_compaction(self):
        kv = self._kv()
        kv.compact(5)
        for ts in range(5, 11):
            assert kv.snapshot(ts).get("k") == ts

    def test_compaction_drops_versions(self):
        kv = self._kv()
        before = kv.version_count()
        dropped = kv.compact(8)
        assert dropped > 0
        assert kv.version_count() == before - dropped

    def test_compaction_idempotent(self):
        kv = self._kv()
        kv.compact(5)
        assert kv.compact(5) == 0

    def test_compact_nothing_when_min_ts_zero(self):
        kv = self._kv()
        assert kv.compact(0) == 0

    @given(
        n=st.integers(min_value=2, max_value=20),
        cut=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_reads_at_or_above_cut_unchanged(self, n, cut):
        cut = min(cut, n)
        kv = self._kv(n)
        expected = {ts: kv.snapshot(ts).get("k") for ts in range(cut, n + 1)}
        kv.compact(cut)
        for ts in range(cut, n + 1):
            assert kv.snapshot(ts).get("k") == expected[ts]


class TestGraphCompaction:
    def _graph(self, n=10):
        g = MultiVersionGraph([(0, 1)])
        for ts in range(1, n + 1):
            g.apply(ts, ("add", 0, ts + 10))
        return g

    def test_recent_snapshots_exact(self):
        g = self._graph()
        g.compact(6)
        for ts in range(6, 11):
            assert g.snapshot(ts).degree(0) == ts + 1

    def test_versions_dropped(self):
        g = self._graph()
        before = g.version_count()
        dropped = g.compact(9)
        assert dropped > 0
        assert g.version_count() == before - dropped

    def test_compaction_preserves_latest_adjacency(self):
        g = self._graph()
        latest = set(g.snapshot(10).neighbors(0))
        g.compact(10)
        assert set(g.snapshot(10).neighbors(0)) == latest
