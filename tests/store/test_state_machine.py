"""Tests for the KV reference state machine and snapshot isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store import KVState


class TestApply:
    def test_put_then_get(self):
        kv = KVState()
        kv.apply(1, ("put", "a", 10))
        assert kv.snapshot(1).get("a") == 10

    def test_delete(self):
        kv = KVState()
        kv.apply(1, ("put", "a", 10))
        kv.apply(2, ("del", "a"))
        assert kv.snapshot(2).get("a") is None
        assert "a" not in kv.snapshot(2)

    def test_batched_ops(self):
        kv = KVState()
        kv.apply(1, [("put", "a", 1), ("put", "b", 2)])
        snap = kv.snapshot(1)
        assert snap.get("a") == 1 and snap.get("b") == 2

    def test_non_monotonic_apply_rejected(self):
        kv = KVState()
        kv.apply(2, ("put", "a", 1))
        with pytest.raises(StoreError):
            kv.apply(2, ("put", "a", 2))
        with pytest.raises(StoreError):
            kv.apply(1, ("put", "a", 2))

    def test_unknown_op_rejected(self):
        kv = KVState()
        with pytest.raises(StoreError):
            kv.apply(1, ("frobnicate", "a"))

    def test_apply_returns_cost(self):
        kv = KVState(update_cost=1e-3)
        assert kv.apply(1, [("put", "a", 1), ("put", "b", 2)]) == pytest.approx(2e-3)

    def test_updates_applied_counter(self):
        kv = KVState()
        kv.apply(1, [("put", "a", 1), ("put", "b", 2)])
        kv.apply(2, ("del", "a"))
        assert kv.updates_applied == 3


class TestSnapshotIsolation:
    def test_snapshot_pins_version(self):
        kv = KVState()
        kv.apply(1, ("put", "a", 1))
        snap = kv.snapshot(1)
        kv.apply(2, ("put", "a", 2))
        assert snap.get("a") == 1
        assert kv.snapshot(2).get("a") == 2

    def test_snapshot_before_key_existed(self):
        kv = KVState()
        kv.apply(1, ("put", "a", 1))
        kv.apply(2, ("put", "b", 2))
        assert kv.snapshot(1).get("b") is None

    def test_snapshot_sees_tombstone_history(self):
        kv = KVState()
        kv.apply(1, ("put", "a", 1))
        kv.apply(2, ("del", "a"))
        kv.apply(3, ("put", "a", 3))
        assert kv.snapshot(1).get("a") == 1
        assert kv.snapshot(2).get("a") is None
        assert kv.snapshot(3).get("a") == 3

    @given(
        writes=st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_snapshots_match_sequential_replay(self, writes):
        """Every snapshot equals a fresh replay of the prefix — the
        multiversion store agrees with the obvious sequential semantics."""
        kv = KVState()
        for ts, (key, value) in enumerate(writes, start=1):
            kv.apply(ts, ("put", key, value))

        for ts in range(1, len(writes) + 1):
            replay = {}
            for key, value in writes[:ts]:
                replay[key] = value
            snap = kv.snapshot(ts)
            for key in "abcd":
                assert snap.get(key) == replay.get(key)
