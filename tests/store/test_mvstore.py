"""Tests for in-order update application and readiness gating."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store import KVState, MultiVersionStore


def make_store():
    return MultiVersionStore(KVState())


class TestOrdering:
    def test_in_order_applies_immediately(self):
        store = make_store()
        store.submit(1, ("put", "a", 1))
        assert store.applied_ts == 1

    def test_out_of_order_update_buffers(self):
        store = make_store()
        store.submit(2, ("put", "a", 2))
        assert store.applied_ts == 0
        assert store.pending_count == 1
        store.submit(1, ("put", "a", 1))
        assert store.applied_ts == 2
        assert store.pending_count == 0
        assert store.view(2).get("a") == 2
        assert store.view(1).get("a") == 1

    def test_gap_chain_applies_in_one_shot(self):
        store = make_store()
        for ts in (4, 3, 2):
            store.submit(ts, ("put", "k", ts))
        assert store.applied_ts == 0
        store.submit(1, ("put", "k", 1))
        assert store.applied_ts == 4

    def test_duplicates_ignored_and_counted(self):
        store = make_store()
        store.submit(1, ("put", "a", 1))
        cost = store.submit(1, ("put", "a", 999))
        assert cost == 0.0
        assert store.duplicate_updates == 1
        assert store.view(1).get("a") == 1

    def test_duplicate_of_pending_ignored(self):
        store = make_store()
        store.submit(3, ("put", "a", 3))
        store.submit(3, ("put", "a", 999))
        store.submit(1, ("put", "a", 1))
        store.submit(2, ("put", "a", 2))
        assert store.view(3).get("a") == 3

    @given(perm=st.permutations(list(range(1, 12))))
    @settings(max_examples=50, deadline=None)
    def test_any_arrival_order_yields_same_state(self, perm):
        store = make_store()
        for ts in perm:
            store.submit(ts, ("put", "k", ts))
        assert store.applied_ts == 11
        for ts in range(1, 12):
            assert store.view(ts).get("k") == ts


class TestReadiness:
    def test_view_of_unapplied_version_rejected(self):
        store = make_store()
        with pytest.raises(StoreError):
            store.view(1)

    def test_ready(self):
        store = make_store()
        assert store.ready(0)
        assert not store.ready(1)
        store.submit(1, ("put", "a", 1))
        assert store.ready(1)

    def test_when_ready_fires_immediately_if_visible(self):
        store = make_store()
        store.submit(1, ("put", "a", 1))
        fired = []
        store.when_ready(1, lambda: fired.append("now"))
        assert fired == ["now"]

    def test_when_ready_defers_until_applied(self):
        store = make_store()
        fired = []
        store.when_ready(2, lambda: fired.append(store.applied_ts))
        store.submit(1, ("put", "a", 1))
        assert fired == []
        store.submit(2, ("put", "a", 2))
        assert fired == [2]

    def test_when_ready_multiple_waiters_fifo(self):
        store = make_store()
        fired = []
        store.when_ready(1, lambda: fired.append("first"))
        store.when_ready(1, lambda: fired.append("second"))
        store.submit(1, ("put", "a", 1))
        assert fired == ["first", "second"]

    def test_cost_accumulates(self):
        store = MultiVersionStore(KVState(update_cost=1e-3))
        store.submit(1, [("put", "a", 1), ("put", "b", 2)])
        assert store.total_apply_cost == pytest.approx(2e-3)

    def test_base_ts_offset(self):
        store = MultiVersionStore(KVState(), base_ts=0)
        assert store.applied_ts == 0
