"""Tests for the 2f+1 consensus protocol: safety, liveness, view changes."""


from repro.consensus import ConsensusClient, ConsensusMember
from repro.crypto import KeyRegistry
from repro.net import Network, SubCluster, SynchronyModel
from repro.runtime.core import ProtocolCore
from repro.runtime.des import DesHost
from repro.sim import Simulator


class Host(ProtocolCore):
    """Consensus member core recording its commit sequence."""

    def __init__(self, pid):
        super().__init__(pid)
        self.committed = []  # (seq, batch)

    def record(self, seq, batch):
        self.committed.append((seq, batch))


class Client(ProtocolCore):
    pass


def make_group(f=1, n_members=None, validate=None, seed=3, **member_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=SynchronyModel())
    registry = KeyRegistry()
    n = n_members or (2 * f + 1)
    group = SubCluster(index=0, members=tuple(f"v{i}" for i in range(n)), f=f)
    hosts, members = [], []
    for pid in group.members:
        host = Host(pid)
        net.register(DesHost(sim, net, host, cores=2))
        signer = registry.register(pid)
        member = ConsensusMember(
            host, registry, signer, group,
            on_commit=host.record, validate=validate, **member_kwargs,
        )
        hosts.append(host)
        members.append(member)
    client_core = Client("client")
    net.register(DesHost(sim, net, client_core, cores=2))
    client = ConsensusClient(client_core, group)
    return sim, net, hosts, members, client


def committed_ids(host):
    return [rid for _, batch in host.committed for rid, _, _ in batch]


class TestGracefulCommit:
    def test_single_request_commits_on_all_members(self):
        sim, net, hosts, members, client = make_group()
        client.submit({"op": "x"})
        sim.run(until=1.0)
        for host in hosts:
            assert len(committed_ids(host)) == 1

    def test_commit_carries_payload(self):
        sim, net, hosts, members, client = make_group()
        client.submit({"op": "x"})
        sim.run(until=1.0)
        _, batch = hosts[0].committed[0]
        assert batch[0][1] == {"op": "x"}

    def test_all_members_agree_on_order(self):
        sim, net, hosts, members, client = make_group()
        for i in range(20):
            client.submit({"op": i})
        sim.run(until=2.0)
        orders = [committed_ids(h) for h in hosts]
        assert orders[0] == orders[1] == orders[2]
        assert len(orders[0]) == 20

    def test_seq_numbers_are_contiguous(self):
        sim, net, hosts, members, client = make_group()
        for i in range(10):
            client.submit({"op": i})
        sim.run(until=2.0)
        seqs = [seq for seq, _ in hosts[0].committed]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_duplicate_request_committed_once(self):
        sim, net, hosts, members, client = make_group()
        rid = client.submit({"op": 1})
        # replay the same request id directly to all members
        from repro.consensus.messages import CsRequest

        for pid in ("v0", "v1", "v2"):
            net.send("client", pid, CsRequest(request_id=rid, payload={"op": 1}))
        sim.run(until=1.0)
        assert committed_ids(hosts[0]).count(rid) == 1

    def test_batching_groups_requests(self):
        sim, net, hosts, members, client = make_group()
        for i in range(50):
            client.submit({"op": i})
        sim.run(until=2.0)
        # far fewer consensus slots than requests
        assert len(hosts[0].committed) < 50
        assert len(committed_ids(hosts[0])) == 50

    def test_requests_from_two_clients_all_commit(self):
        sim, net, hosts, members, client = make_group()
        client2_core = Client("client2")
        net.register(DesHost(sim, net, client2_core, cores=2))
        client2 = ConsensusClient(client2_core, client.group)
        client.submit({"op": "a"})
        client2.submit({"op": "b"})
        sim.run(until=1.0)
        assert len(committed_ids(hosts[0])) == 2

    def test_five_member_group_f2(self):
        sim, net, hosts, members, client = make_group(f=2)
        client.submit({"op": 1})
        sim.run(until=1.0)
        for host in hosts:
            assert len(committed_ids(host)) == 1


class TestValidation:
    def test_invalid_requests_filtered(self):
        validate = lambda payload: payload.get("ok", False)
        sim, net, hosts, members, client = make_group(validate=validate)
        client.submit({"ok": True})
        client.submit({"ok": False})
        sim.run(until=1.0)
        payloads = [p for _, b in hosts[0].committed for _, p, _ in b]
        assert payloads == [{"ok": True}]


class TestLeaderFailure:
    def test_crashed_leader_triggers_view_change(self):
        sim, net, hosts, members, client = make_group()
        hosts[0].crash()  # v0 is leader of view 0
        client.submit({"op": 1})
        sim.run(until=5.0)
        for host in hosts[1:]:
            assert len(committed_ids(host)) == 1, host.pid
        assert members[1].view >= 1

    def test_commits_resume_after_view_change(self):
        sim, net, hosts, members, client = make_group()
        hosts[0].crash()
        for i in range(5):
            client.submit({"op": i})
        sim.run(until=5.0)
        assert len(committed_ids(hosts[1])) == 5
        # and the two survivors agree
        assert committed_ids(hosts[1]) == committed_ids(hosts[2])

    def test_leader_crash_mid_stream(self):
        sim, net, hosts, members, client = make_group()
        for i in range(5):
            client.submit({"op": i})
        sim.schedule(0.02, hosts[0].crash)
        sim.schedule(1.0, lambda: [client.submit({"op": 100 + i}) for i in range(5)])
        sim.run(until=8.0)
        ids1, ids2 = committed_ids(hosts[1]), committed_ids(hosts[2])
        # agreement on the common prefix and everything eventually commits
        assert ids1 == ids2
        assert len(ids1) == 10

    def test_f2_survives_two_crashes(self):
        sim, net, hosts, members, client = make_group(f=2)
        hosts[0].crash()
        hosts[1].crash()
        client.submit({"op": 1})
        sim.run(until=20.0)
        survivors = hosts[2:]
        for host in survivors:
            assert len(committed_ids(host)) == 1


class TestSafetyUnderEquivocationAttempts:
    def test_plain_channel_proposals_rejected(self):
        """Proposals not sent through the non-equivocating primitive are
        ignored, so a Byzantine leader cannot equivocate via plain sends."""
        from repro.consensus.messages import CsPropose
        from repro.crypto.digest import digest

        sim, net, hosts, members, client = make_group()
        leader = members[0]
        bd = digest(["evil"])
        sig = leader.signer.sign(CsPropose.signed_payload(0, 1, bd))
        msg = CsPropose(view=0, seq=1, batch=(("evil", {"op": 666}, 0),), sig=sig)
        net.send("v0", "v1", msg)  # plain send, not neq_multicast
        sim.run(until=1.0)
        assert committed_ids(hosts[1]) == []

    def test_forged_leader_signature_rejected(self):
        from repro.consensus.messages import CsPropose
        from repro.crypto.signatures import Signature

        sim, net, hosts, members, client = make_group()
        msg = CsPropose(
            view=0, seq=1, batch=(("evil", {"op": 666}, 0),),
            sig=Signature("v0", b"\x00" * 32),
        )
        net.neq_multicast("v1", ["v1", "v2"], msg)
        sim.run(until=1.0)
        assert committed_ids(hosts[1]) == []
        assert committed_ids(hosts[2]) == []

    def test_proposal_from_non_leader_rejected(self):
        from repro.consensus.messages import CsPropose
        from repro.crypto.digest import digest

        sim, net, hosts, members, client = make_group()
        impostor = members[1]  # not the view-0 leader
        bd = digest(["evil"])
        sig = impostor.signer.sign(CsPropose.signed_payload(0, 1, bd))
        msg = CsPropose(view=0, seq=1, batch=(("evil", {"op": 666}, 0),), sig=sig)
        net.neq_multicast("v1", ["v0", "v2"], msg)
        sim.run(until=1.0)
        assert committed_ids(hosts[0]) == []


class TestPartialSynchrony:
    def test_progress_after_gst_despite_pre_gst_delays(self):
        sim = Simulator(seed=3)
        syn = SynchronyModel(gst=0.5, pre_gst_extra=0.3, delta=1e-3)
        net = Network(sim, synchrony=syn)
        registry = KeyRegistry()
        group = SubCluster(index=0, members=("v0", "v1", "v2"), f=1)
        hosts = []
        for pid in group.members:
            host = Host(pid)
            net.register(DesHost(sim, net, host, cores=2))
            ConsensusMember(
                host, registry, registry.register(pid), group,
                on_commit=host.record,
            )
            hosts.append(host)
        client_core = Client("client")
        net.register(DesHost(sim, net, client_core, cores=2))
        client = ConsensusClient(client_core, group)
        client.submit({"op": 1})
        sim.run(until=10.0)
        for host in hosts:
            assert len(committed_ids(host)) == 1
