"""Tests for the 3f+1 PBFT-style consensus (no non-equivocation)."""

import pytest

from repro.consensus import ConsensusClient, PbftMember
from repro.crypto import KeyRegistry
from repro.errors import ConsensusError
from repro.net import Network, SubCluster, SynchronyModel
from repro.runtime.core import ProtocolCore
from repro.runtime.des import DesHost
from repro.sim import Simulator


class Host(ProtocolCore):
    def __init__(self, pid):
        super().__init__(pid)
        self.delivered = []

    def record(self, seq, batch):
        for rid, _, _ in batch:
            self.delivered.append(rid)


def make_group(f=1, seed=6, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=SynchronyModel())
    registry = KeyRegistry()
    n = 3 * f + 1
    group = SubCluster(index=0, members=tuple(f"v{i}" for i in range(n)), f=f)
    hosts, members = [], []
    for pid in group.members:
        host = Host(pid)
        net.register(DesHost(sim, net, host, cores=1))
        members.append(
            PbftMember(
                host, registry, registry.register(pid), group,
                on_commit=host.record, **kwargs,
            )
        )
        hosts.append(host)
    cp = Host("client")
    net.register(DesHost(sim, net, cp, cores=1))
    return sim, net, hosts, members, ConsensusClient(cp, group)


class TestGraceful:
    def test_requests_commit_on_all_members(self):
        sim, net, hosts, members, client = make_group()
        for i in range(20):
            client.submit({"op": i})
        sim.run(until=5.0)
        for host in hosts:
            assert len(host.delivered) == 20

    def test_all_members_agree_on_order(self):
        sim, net, hosts, members, client = make_group()
        for i in range(30):
            sim.schedule(i * 0.002, lambda i=i: client.submit({"op": i}))
        sim.run(until=5.0)
        orders = [h.delivered for h in hosts]
        assert all(o == orders[0] for o in orders)

    def test_group_size_enforced(self):
        sim = Simulator()
        net = Network(sim)
        registry = KeyRegistry()
        group = SubCluster(index=0, members=("a", "b", "c"), f=1)
        host = Host("a")
        net.register(DesHost(sim, net, host, cores=1))
        with pytest.raises(ConsensusError):
            PbftMember(
                host, registry, registry.register("a"), group,
                on_commit=host.record,
            )

    def test_no_neq_multicast_used(self):
        """PBFT must not rely on the heavyweight primitive at all."""
        sim, net, hosts, members, client = make_group()
        for i in range(10):
            client.submit({"op": i})
        sim.run(until=5.0)
        assert net.neq_multicasts == 0
        assert len(hosts[0].delivered) == 10


class TestFaults:
    def test_crashed_leader_recovered_by_view_change(self):
        sim, net, hosts, members, client = make_group(seed=7)
        hosts[0].crash()
        for i in range(10):
            client.submit({"op": i})
        sim.run(until=20.0)
        for host in hosts[1:]:
            assert len(host.delivered) == 10, host.pid
        assert members[1].view >= 1

    def test_f_crashes_tolerated(self):
        sim, net, hosts, members, client = make_group(f=1, seed=8)
        hosts[3].crash()  # a non-leader
        for i in range(10):
            client.submit({"op": i})
        sim.run(until=20.0)
        for host in hosts[:3]:
            assert len(host.delivered) == 10

    def test_leader_crash_mid_stream_exactly_once(self):
        sim, net, hosts, members, client = make_group(seed=9)
        for i in range(30):
            sim.schedule(i * 0.005, lambda i=i: client.submit({"op": i}))
        sim.schedule(0.05, hosts[0].crash)
        sim.run(until=30.0)
        for host in hosts[1:]:
            assert len(host.delivered) == 30
            assert len(set(host.delivered)) == 30
        assert hosts[1].delivered == hosts[2].delivered == hosts[3].delivered

    def test_equivocating_preprepares_cannot_both_commit(self):
        """Two conflicting proposals for the same slot: the prepare
        quorum (2f+1 of 3f+1) makes at most one win."""
        from repro.consensus.pbft import PbftPrePrepare
        from repro.crypto.digest import digest as dg

        sim, net, hosts, members, client = make_group(seed=10)
        leader = members[0]
        batch_a = (("a", {"op": "a"}, 0),)
        batch_b = (("b", {"op": "b"}, 0),)
        for batch, targets in ((batch_a, ["v1", "v2"]), (batch_b, ["v3"])):
            bd = dg([rid for rid, _, _ in batch])
            sig = leader.signer.sign(PbftPrePrepare.signed_payload(0, 1, bd))
            msg = PbftPrePrepare(view=0, seq=1, batch=batch, sig=sig)
            for t in targets:
                net.send("v0", t, msg)
        sim.run(until=5.0)
        delivered = [set(h.delivered) for h in hosts[1:]]
        # at most one of the conflicting requests ever commits, and no
        # two correct members commit different ones
        union = set().union(*delivered)
        assert not ({"a", "b"} <= union)


class TestOsirisWithoutNonEquivocation:
    def test_full_pipeline_on_pbft(self):
        """End-to-end OsirisBFT with 3f+1 sub-clusters and PBFT."""
        from repro.apps.synthetic import SyntheticApp
        from repro.core import build_osiris_cluster
        from tests.core.helpers import compute_workload, fast_config

        app = SyntheticApp(records_per_task=5, compute_cost=5e-3)
        cluster = build_osiris_cluster(
            app,
            workload=iter(compute_workload(15)),
            n_workers=12,
            k=2,
            seed=77,
            config=fast_config(non_equivocation=False),
        )
        cluster.start()
        cluster.run(until=30.0)
        assert cluster.metrics.tasks_completed == 15
        assert cluster.metrics.records_accepted == 75
