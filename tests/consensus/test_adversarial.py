"""Adversarial consensus cases: forged acks, bogus view changes, replayed
messages — safety must hold against protocol-level Byzantine inputs."""

import pytest

from repro.consensus import ConsensusClient, ConsensusMember
from repro.consensus.messages import CsAck, CsPropose, CsViewChange
from repro.crypto import KeyRegistry
from repro.crypto.digest import digest
from repro.crypto.signatures import Signature
from repro.net import Network, SubCluster, SynchronyModel
from repro.runtime.core import ProtocolCore
from repro.runtime.des import DesHost
from repro.sim import Simulator


class Host(ProtocolCore):
    def __init__(self, pid):
        super().__init__(pid)
        self.delivered = []

    def record(self, seq, batch):
        for rid, _, _ in batch:
            self.delivered.append(rid)


def make_group(f=1, seed=21):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=SynchronyModel())
    registry = KeyRegistry()
    group = SubCluster(
        index=0, members=tuple(f"v{i}" for i in range(2 * f + 1)), f=f
    )
    hosts, members = [], []
    for pid in group.members:
        host = Host(pid)
        net.register(DesHost(sim, net, host, cores=1))
        members.append(
            ConsensusMember(
                host, registry, registry.register(pid), group,
                on_commit=host.record,
            )
        )
        hosts.append(host)
    client_core = Host("client")
    net.register(DesHost(sim, net, client_core, cores=1))
    return sim, net, hosts, members, ConsensusClient(client_core, group)


class TestForgedAcks:
    def test_forged_ack_signature_never_counts(self):
        """An attacker cannot manufacture a commit quorum with forged
        ack signatures."""
        sim, net, hosts, members, client = make_group()
        # propose something real but suppress v2 so no natural quorum…
        hosts[2].crash()
        client.submit({"op": 1})
        sim.run(until=0.01)
        # …then forge v2's ack
        m0 = members[0]
        slot = m0._slots.get(1)
        if slot is None:
            pytest.skip("proposal not yet delivered")
        fake = CsAck(
            view=0, seq=1, batch_digest=slot.batch_digest,
            sig=Signature("v2", b"\x00" * 32),
        )
        fake.sender = "v2"
        hosts[0].handle(fake)
        # the forged vote must not have been recorded
        assert "v2" not in m0._slots[1].acks

    def test_ack_for_wrong_digest_ignored(self):
        sim, net, hosts, members, client = make_group()
        client.submit({"op": 1})
        sim.run(until=0.01)
        m0, m1 = members[0], members[1]
        slot = m0._slots.get(1)
        if slot is None:
            pytest.skip("proposal not yet delivered")
        wrong = digest(["other"])
        sig = m1.signer.sign(CsAck.signed_payload(0, 1, wrong))
        msg = CsAck(view=0, seq=1, batch_digest=wrong, sig=sig)
        msg.sender = "v1"
        hosts[0].handle(msg)
        assert "v1" not in slot.acks or slot.batch_digest == wrong


class TestBogusViewChanges:
    def test_single_vote_cannot_change_view(self):
        sim, net, hosts, members, client = make_group()
        m1 = members[1]
        sig = m1.signer.sign(CsViewChange.signed_payload(5, 0))
        msg = CsViewChange(new_view=5, committed_seq=0, slots=(), sig=sig)
        msg.sender = "v1"
        hosts[0].handle(msg)
        assert members[0].view == 0

    def test_outsider_view_change_ignored(self):
        sim, net, hosts, members, client = make_group()
        registry_outsider = KeyRegistry(seed=b"evil").register("v9")
        sig = registry_outsider.sign(CsViewChange.signed_payload(1, 0))
        msg = CsViewChange(new_view=1, committed_seq=0, slots=(), sig=sig)
        msg.sender = "v9"
        hosts[0].handle(msg)
        assert members[0].view == 0

    def test_view_change_slots_cannot_forge_commits(self):
        """Reported slots only seed re-proposals — they still need a live
        ack quorum in the new view before committing."""
        sim, net, hosts, members, client = make_group()
        m1, m2 = members[1], members[2]
        evil_batch = (("evil", {"op": 666}, 0),)
        bd = digest(["evil"])
        for m, pid in ((m1, "v1"), (m2, "v2")):
            sig = m.signer.sign(CsViewChange.signed_payload(1, 0))
            msg = CsViewChange(
                new_view=1,
                committed_seq=0,
                slots=((1, 0, evil_batch, bd),),
                sig=sig,
            )
            msg.sender = pid
            hosts[0].handle(msg)
        # view adopted (quorum of votes)…
        assert members[0].view == 1
        sim.run(until=0.5)
        # the injected slot was re-proposed by the new leader and can
        # commit — but only through the normal ack path; the key safety
        # property is agreement:
        sim.run(until=2.0)
        assert hosts[0].delivered == hosts[1].delivered == hosts[2].delivered


class TestReplay:
    def test_replayed_propose_is_idempotent(self):
        sim, net, hosts, members, client = make_group()
        client.submit({"op": 1})
        sim.run(until=1.0)
        before = list(hosts[0].delivered)
        m0 = members[0]
        slot = m0._slots[1]
        leader = members[0]
        sig = leader.signer.sign(
            CsPropose.signed_payload(0, 1, slot.batch_digest)
        )
        replay = CsPropose(view=0, seq=1, batch=slot.batch, sig=sig)
        replay.sender = "v0"
        replay._neq = True
        hosts[1].handle(replay)
        sim.run(until=2.0)
        assert hosts[1].delivered == before

    def test_replayed_request_id_committed_once(self):
        sim, net, hosts, members, client = make_group()
        rid = client.submit({"op": 1})
        sim.run(until=1.0)
        from repro.consensus.messages import CsRequest

        for pid in ("v0", "v1", "v2"):
            net.send("client", pid, CsRequest(request_id=rid, payload={"op": 1}))
        sim.run(until=2.0)
        assert hosts[0].delivered.count(rid) == 1
