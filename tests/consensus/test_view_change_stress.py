"""Stress tests for view changes: no request is ever lost or delivered
twice, even when leaders are deposed mid-stream with proposals in
flight (the state-transfer + reclaim machinery)."""


from repro.consensus import ConsensusClient, ConsensusMember
from repro.crypto import KeyRegistry
from repro.net import Network, SubCluster, SynchronyModel
from repro.runtime.core import ProtocolCore
from repro.runtime.des import DesHost
from repro.sim import Simulator


class Host(ProtocolCore):
    def __init__(self, pid):
        super().__init__(pid)
        self.delivered = []  # rids in delivery order

    def record(self, seq, batch):
        for rid, _, _ in batch:
            self.delivered.append(rid)


def make_group(f=1, seed=3, slow_cpu=False, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=SynchronyModel())
    registry = KeyRegistry()
    n = 2 * f + 1
    group = SubCluster(index=0, members=tuple(f"v{i}" for i in range(n)), f=f)
    hosts, members = [], []
    for pid in group.members:
        host = Host(pid)
        net.register(DesHost(sim, net, host, cores=1))
        members.append(
            ConsensusMember(
                host, registry, registry.register(pid), group,
                on_commit=host.record, **kwargs,
            )
        )
        hosts.append(host)
    cp = Host("client")
    net.register(DesHost(sim, net, cp, cores=1))
    return sim, net, hosts, members, ConsensusClient(cp, group)


class TestNoLossUnderViewChanges:
    def test_cpu_contention_does_not_lose_requests(self):
        """Long app jobs on member CPUs once starved the protocol and
        view-change churn dropped batches; the control core plus state
        transfer must deliver everything exactly once."""
        sim, net, hosts, members, client = make_group(
            base_view_timeout=10e-3  # hair-trigger view changes
        )
        # saturate the app cores so any protocol work queued there stalls
        for host in hosts:
            for _ in range(50):
                host.run_job(0.5, lambda: None)
        for i in range(200):
            sim.schedule(
                i * 0.001, lambda i=i: client.submit({"op": i})
            )
        sim.run(until=60.0)
        for host in hosts:
            assert len(host.delivered) == 200, host.pid
            assert len(set(host.delivered)) == 200

    def test_repeated_leader_crashes(self):
        """Crash each leader in turn; survivors agree on a complete,
        duplicate-free, identically-ordered history."""
        sim, net, hosts, members, client = make_group(f=2, seed=9)
        for i in range(60):
            sim.schedule(i * 0.01, lambda i=i: client.submit({"op": i}))
        sim.schedule(0.2, hosts[0].crash)
        sim.schedule(1.5, hosts[1].crash)
        sim.run(until=60.0)
        survivors = hosts[2:]
        for host in survivors:
            assert len(host.delivered) == 60, host.pid
            assert len(set(host.delivered)) == 60
        assert survivors[0].delivered == survivors[1].delivered

    def test_exactly_once_delivery_under_view_churn(self):
        """Tiny view timeout forces many view changes; re-proposals must
        dedupe at commit."""
        sim, net, hosts, members, client = make_group(
            seed=5, base_view_timeout=5e-3, batch_delay=2e-3
        )
        for i in range(100):
            sim.schedule(i * 0.002, lambda i=i: client.submit({"op": i}))
        sim.run(until=30.0)
        for host in hosts:
            assert sorted(host.delivered) == sorted(set(host.delivered))
            assert len(host.delivered) == 100

    def test_agreement_on_order_always(self):
        sim, net, hosts, members, client = make_group(
            seed=11, base_view_timeout=8e-3
        )
        for host in hosts:
            for _ in range(20):
                host.run_job(0.2, lambda: None)
        for i in range(80):
            sim.schedule(i * 0.003, lambda i=i: client.submit({"op": i}))
        sim.run(until=30.0)
        assert hosts[0].delivered == hosts[1].delivered == hosts[2].delivered


class TestStateTransfer:
    def test_view_change_messages_carry_uncommitted_slots(self):
        sim, net, hosts, members, client = make_group()
        # stall commits by crashing everyone else after a proposal lands
        client.submit({"op": 1})
        sim.run(until=0.002)
        slots = members[0]._uncommitted_slots()
        # shape check: tuples of (seq, view, batch, digest)
        for seq, view, batch, bd in slots:
            assert isinstance(seq, int) and isinstance(view, int)
            assert isinstance(bd, bytes)

    def test_empty_gap_slots_commit_as_noops(self):
        """After a view change fills sequence gaps with empty batches,
        commits stay contiguous and callbacks skip empty deliveries."""
        sim, net, hosts, members, client = make_group(seed=13)
        hosts[0].crash()  # leader of view 0
        for i in range(10):
            sim.schedule(i * 0.01, lambda i=i: client.submit({"op": i}))
        sim.run(until=20.0)
        for host in hosts[1:]:
            assert len(host.delivered) == 10
        # committed sequence is contiguous on survivors
        for member in members[1:]:
            assert member.committed_seq >= 1
