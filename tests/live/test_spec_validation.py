"""``backend=`` on DeploymentSpec: dispatch plus loud rejection of every
spec shape the live OS-process backend cannot host (these are fast — no
process is ever forked)."""

import pytest

from repro.adversary.campaign import Action, Campaign, FaultSpec, Trigger
from repro.adversary.library import fig7a
from repro.api import DeploymentSpec, build
from repro.errors import BenchmarkError, LiveError


def _spec(**kw):
    base = dict(
        workload="anomaly",
        workload_params={"profile": "MM", "n_tasks": 4},
        n=4,
        seed=0,
        deadline=60.0,
    )
    base.update(kw)
    return DeploymentSpec(**base)


def _trigger_campaign() -> Campaign:
    corrupt = FaultSpec(role="executor", kind="corrupt-record")
    return Campaign(
        name="adaptive",
        triggers=(
            Trigger(
                on="chunk-accepted",
                actions=(Action(op="set", select="executors", fault=corrupt),),
            ),
        ),
    )


class TestBackendField:
    def test_default_backend_is_des(self):
        assert _spec().backend == "des"

    def test_unknown_backend_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown backend 'mpi'"):
            _spec(backend="mpi")

    def test_live_accepted_for_plain_osiris(self):
        assert _spec(backend="live").backend == "live"

    def test_descriptor_carries_backend(self):
        d = _spec(backend="live").descriptor()
        assert d["backend"] == "live"
        assert DeploymentSpec.from_dict(d).backend == "live"

    def test_from_dict_defaults_to_des(self):
        d = _spec().descriptor()
        d.pop("backend")
        assert DeploymentSpec.from_dict(d).backend == "des"


class TestLiveRejections:
    """Unsupported spec × live combinations must fail at construction,
    not hang or silently drop the feature at run time."""

    def test_live_rejects_baselines(self):
        for system in ("zft", "rcp"):
            with pytest.raises(BenchmarkError, match="OsirisBFT only"):
                _spec(system=system, backend="live")

    def test_live_rejects_replay_capture(self):
        with pytest.raises(BenchmarkError, match="replay capture"):
            _spec(capture=("e0",), backend="live")

    def test_live_rejects_trigger_campaigns(self):
        with pytest.raises(BenchmarkError, match="trigger campaigns"):
            _spec(faults=_trigger_campaign(), backend="live")

    def test_live_accepts_timed_phase_campaigns(self):
        spec = _spec(faults=fig7a(at=0.5), backend="live")
        assert spec.campaign is not None
        assert spec.campaign.name == "fig7a"

    def test_des_still_accepts_trigger_campaigns(self):
        assert _spec(faults=_trigger_campaign()).campaign is not None


class TestBuildDispatch:
    def test_build_live_returns_unstarted_runtime(self):
        from repro.live import LiveRuntime

        rt = build(_spec(backend="live"))
        assert isinstance(rt, LiveRuntime)
        topo = rt.plan.topo
        workers = len(topo.executor_pids) + sum(
            len(c.members) for c in topo.verifier_clusters
        )
        assert workers == 4

    def test_build_live_rejects_des_builder_overrides(self):
        with pytest.raises(BenchmarkError, match="time_scale"):
            build(_spec(backend="live"), sanitize_substrate=True)

    def test_live_runtime_rejects_nonpositive_time_scale(self):
        with pytest.raises(LiveError, match="time_scale"):
            build(_spec(backend="live"), time_scale=0.0)
