"""DES ↔ live cross-validation: same spec + seed, same commit outcomes.

These tests fork real OS processes and run against the wall clock, so
they carry the ``live`` marker and are excluded from the default tier-1
run (``pytest -m live`` selects them; CI drives them in a dedicated
timeout-bounded job).  ``time_scale=0.25`` keeps each leg around a
second of wall time for the MM anomaly profile.
"""

import pytest

from repro.adversary.library import fig7a
from repro.api import DeploymentSpec, run
from repro.live import cross_validate

pytestmark = pytest.mark.live

_TIME_SCALE = 0.25


def _mm_spec(n: int, seed: int = 0, n_tasks: int = 12, **kw) -> DeploymentSpec:
    return DeploymentSpec(
        workload="anomaly",
        workload_params={"profile": "MM", "n_tasks": n_tasks},
        n=n,
        seed=seed,
        deadline=60.0,
        sanitize=True,
        **kw,
    )


class TestCrossValidation:
    def test_mm_n4_graceful(self):
        report = cross_validate(_mm_spec(4), time_scale=_TIME_SCALE)
        assert report.ok, report.summary()
        assert report.des_commits  # non-vacuous: at least one OP compared
        assert sum(
            len(c["chunks"]) for c in report.des_commits.values()
        ) > 0

    def test_mm_n8_graceful(self):
        report = cross_validate(_mm_spec(8), time_scale=_TIME_SCALE)
        assert report.ok, report.summary()

    def test_fig7a_campaign(self):
        """All executors turn Byzantine mid-run under both backends; the
        committed record contents must still coincide (detection and
        reassignment paths differ in timing, not in outcome)."""
        spec = _mm_spec(8, seed=1, faults=fig7a(at=0.5))
        report = cross_validate(spec, time_scale=_TIME_SCALE)
        assert report.ok, report.summary()


class TestLiveRun:
    def test_smoke_run_completes_workload(self):
        result = run(_mm_spec(4).with_(backend="live"), time_scale=_TIME_SCALE)
        assert result.extra["backend"] == "live"
        assert result.tasks_completed == 12
        assert (result.sanitizer_violations or 0) == 0
        live = result.extra["live_report"]
        assert live.wall_seconds > 0
        assert live.sim_seconds > 0
        assert sum(live.busy_seconds.values()) > 0
        assert not live.unhandled_messages

    def test_campaign_actions_applied_and_recovery_folded(self):
        # inject at t=0 so every executor corrupts its *first* output —
        # detection is then guaranteed regardless of wall-clock schedule
        # (a mid-run `at` can race workload drain under the live backend)
        spec = _mm_spec(8, seed=1, faults=fig7a(at=0.0)).with_(backend="live")
        result = run(spec, time_scale=_TIME_SCALE)
        live = result.extra["live_report"]
        corrupted = [a for a in live.applied_actions if a[1] == "set"]
        # every executor in the n=8 layout (5 executors + 3 verifiers)
        assert sorted(a[2] for a in corrupted) == [f"e{i}" for i in range(5)]
        assert all(role == "executor" for _, _, _, role, _ in corrupted)
        assert result.extra["faults_detected"] > 0
        assert result.recovery["campaign"] == "fig7a"

    def test_missed_deadline_raises_instead_of_hanging(self):
        from repro.errors import BenchmarkError

        spec = _mm_spec(4, n_tasks=12).with_(
            backend="live", deadline=0.05
        )
        with pytest.raises(BenchmarkError, match="missed deadline"):
            run(spec, time_scale=_TIME_SCALE)

    def test_runtime_is_single_use(self):
        from repro.api import build
        from repro.errors import LiveError

        rt = build(_mm_spec(4, n_tasks=2).with_(backend="live"))
        rt.run(deadline=60.0, target_tasks=2)
        with pytest.raises(LiveError, match="runs once"):
            rt.run(deadline=60.0, target_tasks=2)
