"""Wire-level control types: registration and codec round-trips.

The live backend puts exactly two payload shapes on its queues: codec
JSON of ``repro.live.wire`` control dataclasses, and codec JSON of
protocol messages wrapped in :class:`NetEnvelope`.  These tests pin the
control plane; protocol message coverage lives in
``tests/runtime/test_codec_completeness.py``.
"""

from repro.live.wire import (
    ChildEvent,
    ChildExit,
    ChildReady,
    CtrlAction,
    CtrlShutdown,
    CtrlStart,
    NetEnvelope,
    register_wire,
)
from repro.obs.events import ChunkAccepted, TaskCompleted
from repro.runtime import codec


def setup_module():
    register_wire()


def _round_trip(obj):
    return codec.decode(codec.encode(obj))


def test_register_wire_is_idempotent():
    before = set(codec.registered_types())
    register_wire()
    register_wire()
    assert set(codec.registered_types()) == before


def test_net_envelope_round_trips():
    env = NetEnvelope(src="e1", dst="v0", neq=True, payload='{"x": 1}')
    back = _round_trip(env)
    assert back == env
    assert back.neq is True


def test_ctrl_types_round_trip():
    for obj in (
        CtrlStart(t0=123.5, time_scale=0.25),
        CtrlAction(pid="e0", action={"op": "set", "select": "executors"}),
        CtrlShutdown(grace=0.2),
        ChildReady(pid="v3"),
    ):
        assert _round_trip(obj) == obj


def test_child_event_carries_trace_events():
    for event in (
        TaskCompleted(time=1.25, pid="op0", task_id="t-3"),
        ChunkAccepted(time=2.0, pid="op0", task_id="t-3", index=1, records=4),
    ):
        back = _round_trip(ChildEvent(pid="op0", event=event))
        assert type(back.event) is type(event)
        assert back.event == event


def test_child_exit_round_trips():
    exit_ = ChildExit(
        pid="op0",
        summary={"completed": ["t-1"], "chunks": {"t-1:0": "ab"}},
        busy_seconds=1.5,
        tasks_executed=3,
        unhandled=0,
        crashed=False,
    )
    assert _round_trip(exit_) == exit_
