"""DeploymentSpec and fault normalization: the single construction path."""

import pytest

from repro import api
from repro.adversary import Campaign
from repro.adversary.library import silent_minority
from repro.bench.workloads import synthetic_bench
from repro.core.config import OsirisConfig
from repro.core.faults import (
    CorruptRecordFault,
    NegligentLeaderFault,
    SlowFault,
)
from repro.errors import BenchmarkError


class TestNormalizeFaults:
    def test_none_is_empty_plan(self):
        plan = api.normalize_faults(None)
        assert plan.empty
        assert plan.campaign is None

    def test_legacy_mapping_routes_by_strategy_role(self):
        plan = api.normalize_faults(
            {
                "e0": SlowFault(delay=1.0),
                "e1": CorruptRecordFault(),
                "v0": NegligentLeaderFault(),
            }
        )
        assert [pid for pid, _ in plan.executors] == ["e0", "e1"]
        assert [pid for pid, _ in plan.verifiers] == ["v0"]
        assert not plan.outputs
        assert plan.campaign is None

    def test_campaign_and_campaign_json(self):
        campaign = silent_minority()
        assert api.normalize_faults(campaign).campaign == campaign
        assert api.normalize_faults(campaign.to_json()).campaign == campaign

    def test_plan_passthrough_is_identity(self):
        plan = api.normalize_faults({"e0": SlowFault(delay=1.0)})
        assert api.normalize_faults(plan) == plan

    def test_role_kwargs_win_on_collision(self):
        slow, corrupt = SlowFault(delay=1.0), CorruptRecordFault()
        plan = api.normalize_faults(
            {"e0": slow}, executors={"e0": corrupt}
        )
        assert plan.executor_map()["e0"] is corrupt

    def test_rejects_junk(self):
        with pytest.raises(BenchmarkError):
            api.normalize_faults(42)
        with pytest.raises(BenchmarkError):
            api.normalize_faults({"e0": "not a strategy"})


class TestSpecValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=5, system="spark")

    def test_bad_topology_and_duration_rejected(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=0)
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=5, duration=0.0)

    def test_baselines_reject_faults(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(
                workload="synthetic",
                n=5,
                system="zft",
                faults=silent_minority(),
            )
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(
                workload="synthetic",
                n=5,
                system="rcp",
                faults={"e0": SlowFault(delay=1.0)},
            )

    def test_non_scalar_params_rejected(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(
                workload="synthetic",
                n=5,
                workload_params=(("n_tasks", [4]),),
            )


class TestSpecShape:
    def spec(self, **over):
        kw = dict(
            workload="synthetic",
            workload_params=(("records_per_task", 3), ("n_tasks", 4)),
            n=5,
            config=(("suspect_timeout", 2.0),),
            faults=silent_minority(),
        )
        kw.update(over)
        return api.DeploymentSpec(**kw)

    def test_params_normalized_sorted(self):
        spec = self.spec()
        assert spec.workload_params == (
            ("n_tasks", 4),
            ("records_per_task", 3),
        )

    def test_faults_normalized_at_construction(self):
        spec = self.spec()
        assert isinstance(spec.faults, api.FaultPlan)
        assert spec.campaign == silent_minority()

    def test_with_returns_updated_copy(self):
        spec = self.spec()
        other = spec.with_(seed=7)
        assert other.seed == 7
        assert spec.seed == 0
        assert other.workload_params == spec.workload_params

    def test_resolve_named_workload(self):
        workload = self.spec().resolve_workload()
        assert workload.n_compute_tasks == 4

    def test_resolve_live_workload_is_passthrough(self):
        live = synthetic_bench(n_tasks=2, records_per_task=3)
        spec = self.spec(workload=live, workload_params=())
        assert spec.resolve_workload() is live

    def test_unknown_workload_name_rejected(self):
        with pytest.raises(BenchmarkError):
            self.spec(workload="no-such-workload").resolve_workload()


class TestSerialization:
    def spec(self):
        return api.DeploymentSpec(
            workload="synthetic",
            workload_params=(("n_tasks", 4),),
            n=5,
            k=2,
            seed=3,
            duration=10.0,
            config=(("suspect_timeout", 2.0),),
            faults=silent_minority(at=1.0),
            sanitize=True,
        )

    def test_descriptor_roundtrip(self):
        spec = self.spec()
        clone = api.DeploymentSpec.from_dict(spec.descriptor())
        assert clone.descriptor() == spec.descriptor()
        assert clone.campaign == spec.campaign
        assert clone.duration == spec.duration

    def test_descriptor_is_json_safe(self):
        import json

        json.dumps(self.spec().descriptor())  # must not raise

    def test_live_workload_not_serializable(self):
        spec = api.DeploymentSpec(
            workload=synthetic_bench(n_tasks=2, records_per_task=3), n=5
        )
        with pytest.raises(BenchmarkError):
            spec.descriptor()

    def test_live_strategies_not_serializable(self):
        spec = api.DeploymentSpec(
            workload="synthetic", n=5, faults={"e0": SlowFault(delay=1.0)}
        )
        with pytest.raises(BenchmarkError):
            spec.descriptor()

    def test_config_overrides_covers_full_config(self):
        overrides = dict(api.config_overrides(OsirisConfig(f=2)))
        assert overrides["f"] == 2
        assert "suspect_timeout" in overrides
        assert api.config_overrides(None) == ()
