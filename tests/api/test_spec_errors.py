"""DeploymentSpec serialization error paths: ``from_dict`` /
``descriptor`` fed hostile or malformed inputs must fail loudly with
library errors, never half-construct a spec."""

import pytest

from repro import api
from repro.errors import AdversaryError, BenchmarkError, ReproError


def valid_dict(**overrides):
    d = api.DeploymentSpec(
        workload="synthetic", workload_params=(("n_tasks", 4),), n=4
    ).descriptor()
    d.update(overrides)
    return d


class TestFromDictErrors:
    def test_unknown_backend(self):
        with pytest.raises(BenchmarkError, match="backend"):
            api.DeploymentSpec.from_dict(valid_dict(backend="k8s"))

    def test_unknown_system(self):
        with pytest.raises(BenchmarkError, match="system"):
            api.DeploymentSpec.from_dict(valid_dict(system="pbft"))

    def test_bad_shards_and_tenants(self):
        with pytest.raises(BenchmarkError, match="shards"):
            api.DeploymentSpec.from_dict(valid_dict(shards=0))
        with pytest.raises(BenchmarkError, match="tenants"):
            api.DeploymentSpec.from_dict(valid_dict(tenants=-1))

    def test_sharded_baseline_rejected(self):
        with pytest.raises(BenchmarkError, match="OsirisBFT-only"):
            api.DeploymentSpec.from_dict(valid_dict(system="zft", shards=2))

    def test_bad_cluster_size(self):
        with pytest.raises(BenchmarkError, match="cluster size"):
            api.DeploymentSpec.from_dict(valid_dict(n=0))

    def test_bad_duration(self):
        with pytest.raises(BenchmarkError, match="duration"):
            api.DeploymentSpec.from_dict(valid_dict(duration=-3.0))

    def test_malformed_campaign_json(self):
        with pytest.raises(AdversaryError, match="malformed campaign"):
            api.DeploymentSpec.from_dict(valid_dict(campaign="{not json"))
        with pytest.raises(AdversaryError, match="malformed campaign"):
            api.DeploymentSpec.from_dict(
                valid_dict(campaign='{"phases": "nope"}')
            )

    def test_missing_required_keys(self):
        with pytest.raises(KeyError):
            api.DeploymentSpec.from_dict({"workload": "synthetic"})

    def test_non_scalar_param_values(self):
        with pytest.raises(BenchmarkError, match="JSON scalar"):
            api.DeploymentSpec.from_dict(
                valid_dict(workload_params=[["n_tasks", [1, 2]]])
            )

    def test_live_backend_capture_conflict_still_caught(self):
        spec = api.DeploymentSpec.from_dict(valid_dict(backend="live"))
        assert spec.backend == "live"
        with pytest.raises(BenchmarkError, match="capture"):
            spec.with_(capture=("ip0",))


class TestDescriptorErrors:
    def test_live_workload_object_not_serializable(self):
        from repro.bench.workloads import synthetic_bench

        spec = api.DeploymentSpec(workload=synthetic_bench(4), n=4)
        with pytest.raises(BenchmarkError, match="registry-named"):
            spec.descriptor()

    def test_live_fault_strategies_not_serializable(self):
        from repro.core.faults import CorruptRecordFault

        spec = api.DeploymentSpec(
            workload="synthetic", n=4, faults={"e0": CorruptRecordFault()}
        )
        with pytest.raises(BenchmarkError, match="Campaign"):
            spec.descriptor()

    def test_descriptor_errors_are_library_errors(self):
        # callers catch ReproError at the CLI boundary; both failure
        # modes must stay inside the hierarchy
        from repro.bench.workloads import synthetic_bench

        for spec in (
            api.DeploymentSpec(workload=synthetic_bench(4), n=4),
        ):
            with pytest.raises(ReproError):
                spec.descriptor()
