"""Sharded multi-tenant deployments through the spec → run path:
routing, SLO reporting, admission control, and serialization."""

import pytest

from repro import api
from repro.bench.reporting import format_tenant_rows
from repro.errors import BenchmarkError


def sharded_spec(**overrides):
    kw = dict(
        workload="open_loop",
        workload_params=(
            ("n_tasks", 30),
            ("rate", 40.0),
            ("process", "poisson"),
        ),
        n=8,
        seed=3,
        shards=2,
        tenants=2,
        sanitize=True,
    )
    kw.update(overrides)
    return api.DeploymentSpec(**kw)


class TestShardedRun:
    def test_zero_violations_and_deterministic(self):
        r1 = api.run(sharded_spec())
        r2 = api.run(sharded_spec())
        assert r1.sanitizer_violations == 0
        assert r1.to_dict() == r2.to_dict()

    def test_routing_uses_both_pipelines(self):
        res = api.run(sharded_spec())
        assert sorted(res.per_shard) == ["op0", "op1"]
        assert sum(res.per_shard.values()) == res.tasks_completed == 30

    def test_slo_fields_populated(self):
        res = api.run(sharded_spec())
        assert res.goodput > 0
        assert 0 < res.p50_latency <= res.p999_latency
        assert set(res.per_tenant) == {"t0", "t1"}
        for summary in res.per_tenant.values():
            assert summary["count"] > 0
            assert summary["p50"] <= summary["p99"] <= summary["p999"]
        assert len(format_tenant_rows(res)) == 2
        assert "p999" in res.row() and "goodput" in res.row()

    def test_single_shard_remains_default(self):
        spec = api.DeploymentSpec(workload="synthetic", n=8)
        assert spec.shards == 1 and spec.tenants == 1
        res = api.run(
            api.DeploymentSpec(
                workload="synthetic",
                workload_params=(("n_tasks", 8),),
                n=8,
                seed=1,
            )
        )
        assert res.per_shard == {}
        assert res.per_tenant == {}


class TestValidation:
    def test_shards_require_osiris(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=4, system="zft", shards=2)

    def test_tenants_require_osiris(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=4, system="rcp", tenants=2)

    def test_sharded_live_runs_point_at_serve(self):
        # constructible (the serve gateway hosts it), but a pre-planned
        # run() cannot feed more than the primary input pipeline
        spec = api.DeploymentSpec(
            workload="synthetic", n=4, backend="live", shards=2
        )
        with pytest.raises(BenchmarkError, match="serve"):
            api.run(spec)

    def test_bounds(self):
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=4, shards=0)
        with pytest.raises(BenchmarkError):
            api.DeploymentSpec(workload="synthetic", n=4, tenants=0)

    def test_descriptor_round_trip(self):
        spec = sharded_spec(sanitize=False, tenants=3)
        d = spec.descriptor()
        assert d["shards"] == 2 and d["tenants"] == 3
        again = api.DeploymentSpec.from_dict(d)
        assert again.descriptor() == d

    def test_legacy_dict_defaults_to_single_pipeline(self):
        spec = api.DeploymentSpec(workload="synthetic", n=4)
        d = spec.descriptor()
        del d["shards"], d["tenants"]
        again = api.DeploymentSpec.from_dict(d)
        assert again.shards == 1 and again.tenants == 1


class TestAdmissionControl:
    def test_overload_sheds_and_accounts(self):
        # shed tasks never complete, so drain-to-completion would miss
        # its target by construction: overload runs use duration mode
        res = api.run(
            sharded_spec(
                shards=1,
                tenants=2,
                duration=20.0,
                workload_params=(
                    ("n_tasks", 60),
                    ("rate", 400.0),
                    ("process", "poisson"),
                ),
                config=(
                    ("admission_queue", 4),
                    ("admission_rate", 25.0),
                ),
            )
        )
        metrics = res.extra["cluster"].metrics
        assert metrics.tasks_rejected > 0
        assert metrics.tasks_admitted > 0
        assert metrics.tasks_deferred > 0
        assert metrics.tasks_admitted + metrics.tasks_rejected == 60
        # every admitted task still completes, shed ones never do
        assert res.tasks_completed == metrics.tasks_admitted
        assert res.sanitizer_violations == 0

    def test_admission_off_by_default(self):
        res = api.run(sharded_spec())
        metrics = res.extra["cluster"].metrics
        assert metrics.tasks_admitted == 0
        assert metrics.tasks_rejected == 0
        assert res.tasks_completed == 30


class TestResultRoundTrip:
    def test_result_dict_round_trips(self):
        from repro.bench.workloads import synthetic_bench

        res = api.run(
            api.DeploymentSpec(workload=synthetic_bench(6), n=8, seed=2)
        )
        d = res.to_dict()
        again = type(res).from_dict(d)
        assert again.to_dict() == d
        # new SLO fields survive the round trip with their values
        assert again.p50_latency == res.p50_latency
        assert again.goodput == res.goodput

    def test_typed_fields_round_trip(self):
        from repro.bench.workloads import synthetic_bench

        res = api.run(
            api.DeploymentSpec(
                workload=synthetic_bench(4), n=5, seed=1, sanitize=True
            )
        )
        assert res.sanitizer_violations == 0
        assert res.recovery is None  # no campaign ran
        d = res.to_dict()
        assert d["sanitizer_violations"] == 0
        assert d["recovery"] is None
        assert d["client_slo"] == {}
        again = type(res).from_dict(d)
        assert again.sanitizer_violations == 0
        assert again.recovery is None
        # legacy dicts without the typed keys still load
        for key in ("sanitizer_violations", "recovery", "client_slo"):
            d.pop(key)
        legacy = type(res).from_dict(d)
        assert legacy.sanitizer_violations is None
        assert legacy.recovery is None
        assert legacy.client_slo == {}
