"""Legacy entry points are deprecation shims over repro.api — they warn,
and they produce results identical to the spec path they delegate to."""

import pytest

from repro import api
from repro.bench.scenarios import run_osiris, run_rcp, run_zft
from repro.bench.workloads import synthetic_bench
from repro.core.config import OsirisConfig
from repro.core.faults import SlowFault


def workload():
    return synthetic_bench(n_tasks=4, records_per_task=3, compute_cost=0.05)


def spec_result(**over):
    kw = dict(workload=workload(), n=5)
    kw.update(over)
    return api.run(api.DeploymentSpec(**kw))


class TestDeprecationWarnings:
    def test_run_osiris_warns(self):
        with pytest.deprecated_call():
            run_osiris(workload(), n=5)

    def test_run_zft_warns(self):
        with pytest.deprecated_call():
            run_zft(workload(), n=4)

    def test_run_rcp_warns(self):
        with pytest.deprecated_call():
            run_rcp(workload(), n=4)


class TestShimEquivalence:
    """Shim and direct spec runs must be *identical* measurements, not
    merely similar — both paths drive the same deterministic simulation."""

    def test_run_osiris_matches_spec_path(self):
        with pytest.deprecated_call():
            legacy = run_osiris(workload(), n=5, seed=3)
        direct = spec_result(seed=3)
        assert legacy.to_dict() == direct.to_dict()

    def test_run_osiris_with_legacy_config_object(self):
        config = OsirisConfig(f=1, suspect_timeout=2.0)
        with pytest.deprecated_call():
            legacy = run_osiris(workload(), n=5, config=config)
        direct = spec_result(config=api.config_overrides(config))
        assert legacy.to_dict() == direct.to_dict()

    def test_run_osiris_with_legacy_fault_mapping(self):
        # config=OsirisConfig(...) historically pinned the *full* config,
        # not just the changed fields — the spec side must mirror that
        config = OsirisConfig(f=1, suspect_timeout=0.5)
        with pytest.deprecated_call():
            legacy = run_osiris(
                workload(), n=5, config=config,
                faults={"e0": SlowFault(delay=2.0)},
            )
        direct = spec_result(
            config=api.config_overrides(config),
            faults={"e0": SlowFault(delay=2.0)},
        )
        # identical fault handling: same reassignment churn, same totals
        assert legacy.to_dict() == direct.to_dict()
        assert legacy.extra["reassignments"] > 0

    def test_run_osiris_per_role_fault_dicts_still_work(self):
        config = OsirisConfig(f=1, suspect_timeout=0.5)
        with pytest.deprecated_call():
            legacy = run_osiris(
                workload(), n=5, config=config,
                executor_faults={"e0": SlowFault(delay=2.0)},
            )
        direct = spec_result(
            config=api.config_overrides(config),
            faults={"e0": SlowFault(delay=2.0)},
        )
        assert legacy.to_dict() == direct.to_dict()

    def test_run_zft_matches_spec_path(self):
        with pytest.deprecated_call():
            legacy = run_zft(workload(), n=4, seed=2)
        direct = spec_result(system="zft", n=4, seed=2)
        assert legacy.to_dict() == direct.to_dict()

    def test_run_rcp_matches_spec_path(self):
        with pytest.deprecated_call():
            legacy = run_rcp(workload(), n=4, seed=2)
        direct = spec_result(system="rcp", n=4, seed=2)
        assert legacy.to_dict() == direct.to_dict()
