"""Regression tests for hot-path maintenance in the network layer.

Two properties the batched-dispatch refactor introduced and must keep:

* ``Network._fifo_tail`` is bounded: entries for (src, dst) pairs with no
  in-flight traffic are swept between kernel dispatch batches rather than
  accumulating for the lifetime of the simulation.
* ``ByteMeter`` bins lazily: ``add()`` only appends; binning happens on
  the first read, via a vectorized fold for large pending batches and a
  scalar fold for small ones — both byte-exact against a reference fold.
"""

from dataclasses import dataclass

from repro.net import Message, Network
from repro.net.links import ByteMeter
from repro.sim import Simulator, SimProcess


@dataclass
class Data(Message):
    seq: int = 0
    nbytes: int = 0

    def payload_bytes(self) -> int:
        return self.nbytes


class Sink(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid, cores=1)
        self.received = []

    def on_Data(self, msg):
        self.received.append((self.sim.now, msg.seq, msg.sender))


class TestFifoTailBound:
    def test_stale_tails_are_swept_during_long_run(self):
        """Many distinct (src, dst) pairs, each active briefly: the tail
        map must not retain every pair ever used (the pre-refactor
        behavior), and a final sweep after quiescence empties it."""
        sim = Simulator(seed=1)
        net = Network(sim)
        n = 8
        procs = [Sink(sim, f"p{i}") for i in range(n)]
        for p in procs:
            net.register(p)

        rounds = 400
        for r in range(rounds):
            src = r % n
            dst = (r + 1 + (r // n) % (n - 1)) % n
            sim.schedule(
                r * 0.5,
                lambda s=src, d=dst, q=r: net.send(
                    f"p{s}", f"p{d}", Data(seq=q)
                ),
            )

        max_size = 0

        def watch():
            nonlocal max_size
            max_size = max(max_size, len(net._fifo_tail))

        sim.add_batch_hook(watch)
        sim.run()

        pairs_used = n * (n - 1)  # every ordered pair gets traffic
        assert sum(len(p.received) for p in procs) == rounds
        # bounded: the map never holds anywhere near every pair ever used
        assert max_size < pairs_used
        # after quiescence every tail is stale; one sweep empties the map
        net._sweep_fifo_tails()
        assert net._fifo_tail == {}

    def test_sweep_keeps_future_tails(self):
        """The sweep only drops tails at or behind ``sim.now`` — a pair
        with in-flight traffic keeps its FIFO anchor."""
        sim = Simulator(seed=1)
        net = Network(sim)
        for p in (Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")):
            net.register(p)

        net.send("a", "b", Data(seq=1))
        net.send("a", "c", Data(seq=2))
        t_ab = net._fifo_tail[("a", "b")]
        # land between the two deliveries, then sweep by hand
        sim.run(until=t_ab)
        net._sweep_fifo_tails()
        assert ("a", "b") not in net._fifo_tail
        assert ("a", "c") in net._fifo_tail
        sim.run()
        net._sweep_fifo_tails()
        assert net._fifo_tail == {}


class TestLazyMeterFlush:
    @staticmethod
    def _reference_bins(samples, bin_seconds):
        bins: dict[int, int] = {}
        for t, b in samples:
            i = int(t // bin_seconds)
            bins[i] = bins.get(i, 0) + b
        return bins

    def test_vectorized_flush_matches_reference(self):
        """> 64 pending samples takes the numpy fold; totals per bin must
        be exact (integer byte counts, not float-rounded)."""
        meter = ByteMeter(bin_seconds=0.1)
        samples = [
            (((i * 37) % 1000) / 100.0, 100 + (i * 13) % 1500)
            for i in range(5000)
        ]
        for t, b in samples:
            meter.add(t, b)
        assert meter._flush() == self._reference_bins(samples, 0.1)
        assert meter.total == sum(b for _, b in samples)

    def test_scalar_flush_matches_reference(self):
        """<= 64 pending samples takes the scalar fold — same answer."""
        meter = ByteMeter(bin_seconds=0.1)
        samples = [(i * 0.03, 1500) for i in range(50)]
        for t, b in samples:
            meter.add(t, b)
        assert meter._flush() == self._reference_bins(samples, 0.1)

    def test_add_is_append_only_until_read(self):
        """``add()`` must not bin eagerly; the first read drains pending."""
        meter = ByteMeter(bin_seconds=1.0)
        for i in range(10):
            meter.add(i * 0.5, 100)
        assert len(meter._pending_t) == 10
        series = meter.rate_series()
        assert meter._pending_t == []
        assert sum(v for _, v in series) * 1.0 == meter.total

    def test_incremental_flushes_accumulate(self):
        """Reading mid-stream and again later merges into the same bins
        an eager meter would have produced."""
        meter = ByteMeter(bin_seconds=0.1)
        first = [(i * 0.01, 10 + i) for i in range(200)]
        second = [(i * 0.01, 7 * i % 97) for i in range(200)]
        for t, b in first:
            meter.add(t, b)
        meter._flush()
        for t, b in second:
            meter.add(t, b)
        assert meter._flush() == self._reference_bins(first + second, 0.1)
