"""Tests for the reliable FIFO link and NIC bandwidth model."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net import Message, Network, SynchronyModel
from repro.sim import Simulator, SimProcess


@dataclass
class Data(Message):
    seq: int = 0
    nbytes: int = 0

    def payload_bytes(self) -> int:
        return self.nbytes


class Sink(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid, cores=1)
        self.received = []

    def on_Data(self, msg):
        self.received.append((self.sim.now, msg.seq, msg.sender))


def make_net(n=3, bandwidth=1e9, **synchrony_kwargs):
    sim = Simulator(seed=1)
    syn = SynchronyModel(**synchrony_kwargs) if synchrony_kwargs else SynchronyModel()
    net = Network(sim, synchrony=syn, bandwidth=bandwidth)
    procs = [Sink(sim, f"p{i}") for i in range(n)]
    for p in procs:
        net.register(p)
    return sim, net, procs


class TestDelivery:
    def test_message_is_delivered(self):
        sim, net, procs = make_net()
        net.send("p0", "p1", Data(seq=1))
        sim.run()
        assert [(s, r) for _, s, r in procs[1].received] == [(1, "p0")]

    def test_sender_is_stamped_by_network(self):
        sim, net, procs = make_net()
        msg = Data(seq=1)
        net.send("p2", "p1", msg)
        sim.run()
        assert procs[1].received[0][2] == "p2"

    def test_latency_applied(self):
        sim, net, procs = make_net(jitter=0.0, base_latency=1e-3, delta=4e-3)
        net.send("p0", "p1", Data(seq=1, nbytes=0))
        sim.run()
        t = procs[1].received[0][0]
        assert t >= 1e-3

    def test_unknown_destination_raises(self):
        sim, net, _ = make_net()
        with pytest.raises(NetworkError):
            net.send("p0", "ghost", Data())

    def test_unknown_sender_raises(self):
        sim, net, _ = make_net()
        with pytest.raises(NetworkError):
            net.send("ghost", "p0", Data())

    def test_duplicate_registration_rejected(self):
        sim, net, procs = make_net()
        with pytest.raises(NetworkError):
            net.register(procs[0])


class TestFifo:
    def test_fifo_per_link(self):
        sim, net, procs = make_net()
        for i in range(20):
            net.send("p0", "p1", Data(seq=i, nbytes=1000 * (20 - i)))
        sim.run()
        seqs = [s for _, s, _ in procs[1].received]
        assert seqs == list(range(20))

    @given(sizes=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_fifo_property(self, sizes):
        sim, net, procs = make_net(jitter=10e-6)
        for i, size in enumerate(sizes):
            net.send("p0", "p1", Data(seq=i, nbytes=size))
        sim.run()
        seqs = [s for _, s, _ in procs[1].received]
        assert seqs == list(range(len(sizes)))
        times = [t for t, _, _ in procs[1].received]
        assert times == sorted(times)


class TestBandwidth:
    def test_large_message_takes_transmission_time(self):
        sim, net, procs = make_net(bandwidth=1e6, jitter=0.0)  # 1 MB/s
        net.send("p0", "p1", Data(seq=0, nbytes=10**6))
        sim.run()
        # ~1s egress + ~1s ingress serialization
        assert procs[1].received[0][0] >= 2.0

    def test_egress_serializes_concurrent_sends(self):
        sim, net, procs = make_net(bandwidth=1e6, jitter=0.0)
        net.send("p0", "p1", Data(seq=0, nbytes=10**6))
        net.send("p0", "p2", Data(seq=1, nbytes=10**6))
        sim.run()
        t1 = procs[1].received[0][0]
        t2 = procs[2].received[0][0]
        # second send could not start egress until the first finished
        assert t2 >= t1 + 0.9

    def test_ingress_converges_at_receiver(self):
        """Two senders to one receiver serialize at the receiver NIC —
        the OP-link bottleneck of Sec 7.2."""
        sim, net, procs = make_net(bandwidth=1e6, jitter=0.0)
        net.send("p0", "p2", Data(seq=0, nbytes=10**6))
        net.send("p1", "p2", Data(seq=1, nbytes=10**6))
        sim.run()
        times = sorted(t for t, _, _ in procs[2].received)
        assert times[1] - times[0] >= 0.9

    def test_meters_count_bytes(self):
        sim, net, procs = make_net()
        msg = Data(seq=0, nbytes=500)
        net.send("p0", "p1", msg)
        sim.run()
        assert net.nic("p0").egress_meter.total == msg.wire_size()
        assert net.nic("p1").ingress_meter.total == msg.wire_size()

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(NetworkError):
            Network(Simulator(), bandwidth=0)


class TestMulticast:
    def test_plain_multicast_reaches_all(self):
        sim, net, procs = make_net(n=4)
        net.multicast("p0", ["p1", "p2", "p3"], Data(seq=9))
        sim.run()
        for p in procs[1:]:
            assert [s for _, s, _ in p.received] == [9]

    def test_neq_multicast_reaches_all(self):
        sim, net, procs = make_net(n=4)
        net.neq_multicast("p0", ["p1", "p2", "p3"], Data(seq=9))
        sim.run()
        for p in procs[1:]:
            assert [s for _, s, _ in p.received] == [9]
        assert net.neq_multicasts == 1

    def test_neq_multicast_empty_group_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(NetworkError):
            net.neq_multicast("p0", [], Data())

    def test_neq_multicast_is_slower_than_plain_send(self):
        sim1, net1, procs1 = make_net(jitter=0.0, base_latency=1e-3, delta=4e-3)
        net1.send("p0", "p1", Data(seq=0))
        sim1.run()
        plain_t = procs1[1].received[0][0]

        sim2, net2, procs2 = make_net(jitter=0.0, base_latency=1e-3, delta=4e-3)
        net2.neq_multicast("p0", ["p1"], Data(seq=0))
        sim2.run()
        neq_t = procs2[1].received[0][0]
        assert neq_t > plain_t


class TestByteMeter:
    def test_rate_series_bins(self):
        from repro.net import ByteMeter

        meter = ByteMeter(bin_seconds=1.0)
        meter.add(0.5, 100)
        meter.add(0.7, 100)
        meter.add(2.1, 300)
        assert meter.rate_series() == [(0.0, 200.0), (2.0, 300.0)]

    def test_mean_rate(self):
        from repro.net import ByteMeter

        meter = ByteMeter()
        meter.add(0.0, 100)
        meter.add(1.0, 300)
        assert meter.mean_rate(0.0, 2.0) == pytest.approx(200.0)

    def test_mean_rate_prorates_boundary_bins(self):
        """A window cutting through a bin must count only the covered
        fraction of that bin, not the whole bin (regression: boundary
        bandwidth was overestimated in the Fig 6 profiling bench)."""
        from repro.net import ByteMeter

        meter = ByteMeter(bin_seconds=1.0)
        meter.add(0.5, 100)
        # whole-bin summation would report 100 / 0.5 = 200.0
        assert meter.mean_rate(0.0, 0.5) == pytest.approx(100.0)
        meter.add(1.2, 200)
        # [0.5, 1.5): half of bin 0 (50) + half of bin 1 (100)
        assert meter.mean_rate(0.5, 1.5) == pytest.approx(150.0)
        # full-coverage windows are unchanged
        assert meter.mean_rate(0.0, 2.0) == pytest.approx(150.0)

    def test_mean_rate_sparse_window(self):
        """Huge windows with few populated bins take the sparse path and
        agree with the dense computation."""
        from repro.net import ByteMeter

        meter = ByteMeter(bin_seconds=1.0)
        meter.add(3.0, 100)
        meter.add(1_000_000.25, 400)
        assert meter.mean_rate(0.0, 2_000_000.0) == pytest.approx(
            500 / 2_000_000.0
        )
        # sparse path still prorates the boundary bin
        assert meter.mean_rate(0.0, 1_000_000.5) == pytest.approx(
            (100 + 400 * 0.5) / 1_000_000.5
        )

    def test_empty_window_rejected(self):
        from repro.net import ByteMeter

        with pytest.raises(NetworkError):
            ByteMeter().mean_rate(1.0, 1.0)


class TestPartialSynchrony:
    def test_pre_gst_messages_can_be_slower(self):
        sim, net, procs = make_net(
            base_latency=1e-4,
            jitter=0.0,
            gst=10.0,
            pre_gst_extra=0.5,
            delta=1e-3,
        )
        net.send("p0", "p1", Data(seq=0))
        sim.run()
        pre_t = procs[1].received[0][0]
        assert pre_t <= 0.5 + 1e-3

        # after GST the bound is delta
        sim.schedule_at(20.0, lambda: net.send("p0", "p1", Data(seq=1)))
        sim.run()
        post_t = procs[1].received[1][0] - 20.0
        assert post_t <= 1e-3

    def test_delta_must_bound_latency(self):
        with pytest.raises(NetworkError):
            SynchronyModel(base_latency=1.0, jitter=0.0, delta=0.5)

    def test_delta_must_bound_neq_amplified_latency(self):
        """Liveness regression: Δ must cover the neq latency premium, or
        Δ-derived timeouts falsely fire on correct neq senders.  The model
        alone accepts delta=2e-3, but composed with the default 3× neq
        factor the worst post-GST latency is 3e-3."""
        syn = SynchronyModel(base_latency=1e-3, jitter=0.0, delta=2e-3)
        with pytest.raises(NetworkError):
            Network(Simulator(seed=1), synchrony=syn, neq_latency_factor=3.0)
        # the same model is fine without the amplification
        Network(Simulator(seed=1), synchrony=syn, neq_latency_factor=1.0)

    def test_post_gst_neq_delivery_within_delta(self):
        """With a validated configuration, a post-GST neq multicast is
        delivered within Δ of its send."""
        sim, net, procs = make_net(jitter=0.0, base_latency=1e-3, delta=4e-3)
        net.neq_multicast("p0", ["p1"], Data(seq=0))
        sim.run()
        assert procs[1].received[0][0] <= 4e-3

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            SynchronyModel(base_latency=-1.0)
