"""Semantics of the non-equivocating multicast primitive: the properties
the 2f+1 bound rests on (Sec 3, [23])."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Message, Network, SynchronyModel
from repro.sim import Simulator, SimProcess


@dataclass
class Payload(Message):
    value: int = 0


class Sink(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid, cores=1)
        self.got = []

    def on_Payload(self, msg):
        self.got.append((msg.value, bool(getattr(msg, "_neq", False))))


def make(n=4, seed=2):
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=SynchronyModel())
    procs = [Sink(sim, f"p{i}") for i in range(n)]
    for p in procs:
        net.register(p)
    return sim, net, procs


class TestAtomicity:
    def test_every_group_member_receives_identical_payload(self):
        sim, net, procs = make()
        net.neq_multicast("p0", ["p1", "p2", "p3"], Payload(value=7))
        sim.run()
        assert all(p.got == [(7, True)] for p in procs[1:])

    @given(
        values=st.lists(st.integers(), min_size=1, max_size=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_members_see_same_sequence(self, values, seed):
        """Per-sender neq streams arrive in identical order everywhere."""
        sim, net, procs = make(seed=seed)
        for v in values:
            net.neq_multicast("p0", ["p1", "p2", "p3"], Payload(value=v))
        sim.run()
        seqs = [[v for v, _ in p.got] for p in procs[1:]]
        assert seqs[0] == seqs[1] == seqs[2] == values


class TestChannelMarking:
    def test_receivers_can_distinguish_the_channel(self):
        """Protocols only accept certain messages via the primitive
        (consensus proposals, chunk digests); the substrate must make the
        channel visible to receivers."""
        sim, net, procs = make()
        net.send("p0", "p1", Payload(value=1))
        net.neq_multicast("p0", ["p1"], Payload(value=2))
        sim.run()
        assert procs[1].got == [(1, False), (2, True)]

    def test_plain_send_never_marked(self):
        sim, net, procs = make()
        for _ in range(3):
            net.send("p0", "p1", Payload(value=0))
        sim.run()
        assert all(not neq for _, neq in procs[1].got)

    def test_primitive_usage_counted(self):
        sim, net, procs = make()
        net.neq_multicast("p0", ["p1", "p2"], Payload(value=1))
        net.send("p0", "p1", Payload(value=2))
        assert net.neq_multicasts == 1
        assert net.neq_sends == 2

    def test_flag_is_per_send_not_sticky_neq_then_plain(self):
        """Regression: neq_multicast used to mutate the shared message
        object permanently, so a later plain send of the *same object* got
        the neq latency premium and was delivered marked neq=True."""
        sim, net, procs = make()
        msg = Payload(value=5)
        net.neq_multicast("p0", ["p1"], msg)
        sim.run()
        net.send("p0", "p2", msg)
        sim.run()
        assert procs[1].got == [(5, True)]
        assert procs[2].got == [(5, False)]

    def test_flag_is_per_send_not_sticky_plain_then_neq(self):
        sim, net, procs = make()
        msg = Payload(value=6)
        net.send("p0", "p2", msg)
        sim.run()
        net.neq_multicast("p0", ["p1"], msg)
        sim.run()
        assert procs[2].got == [(6, False)]
        assert procs[1].got == [(6, True)]

    def test_reused_object_gets_plain_latency_after_neq(self):
        """The latency premium must follow the send, not the object."""
        latencies = {}
        for reuse in (False, True):
            sim = Simulator(seed=4)
            net = Network(
                sim,
                synchrony=SynchronyModel(jitter=0.0, base_latency=1e-3, delta=4e-3),
            )
            a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
            for p in (a, b, c):
                net.register(p)
            msg = Payload(value=1)
            net.neq_multicast("a", ["b"], msg)
            sim.run()
            start = sim.now
            net.send("a", "c", msg if reuse else Payload(value=1))
            sim.run()
            latencies[reuse] = sim.now - start
        assert latencies[True] == pytest.approx(latencies[False])


class TestHeavyweight:
    def test_primitive_latency_premium_configurable(self):
        results = {}
        for factor in (1.0, 5.0):
            sim = Simulator(seed=3)
            net = Network(
                sim,
                synchrony=SynchronyModel(jitter=0.0, base_latency=1e-3, delta=6e-3),
                neq_latency_factor=factor,
            )
            a, b = Sink(sim, "a"), Sink(sim, "b")
            net.register(a)
            net.register(b)
            net.neq_multicast("a", ["b"], Payload(value=1))
            sim.run()
            results[factor] = sim.now
        assert results[5.0] > results[1.0]
