"""Tests for topology / sub-cluster descriptions."""

import pytest

from repro.errors import NetworkError
from repro.net import SubCluster, Topology


def make_topology(f=1, k=2, executors=4):
    clusters = []
    pid = 0
    for i in range(k):
        size = 2 * f + 1
        clusters.append(
            SubCluster(
                index=i,
                members=tuple(f"v{pid + j}" for j in range(size)),
                f=f,
            )
        )
        pid += size
    return Topology(
        input_pids=("ip0",),
        output_pids=("op0",),
        executor_pids=tuple(f"e{i}" for i in range(executors)),
        verifier_clusters=tuple(clusters),
        f=f,
    )


class TestSubCluster:
    def test_minimum_size_enforced(self):
        with pytest.raises(NetworkError):
            SubCluster(index=0, members=("a", "b"), f=1)

    def test_quorum_is_f_plus_1(self):
        sc = SubCluster(index=0, members=("a", "b", "c"), f=1)
        assert sc.quorum == 2

    def test_leader_rotation(self):
        sc = SubCluster(index=0, members=("a", "b", "c"), f=1)
        assert sc.leader_at(0) == "a"
        assert sc.leader_at(1) == "b"
        assert sc.leader_at(3) == "a"

    def test_3f_plus_1_allowed(self):
        sc = SubCluster(index=0, members=("a", "b", "c", "d"), f=1)
        assert sc.quorum == 2


class TestTopology:
    def test_coordinator_is_first_cluster(self):
        topo = make_topology()
        assert topo.coordinator.index == 0

    def test_worker_clusters_include_coordinator(self):
        # VP_CO is one of the verifier sub-clusters (Sec 2): it verifies
        # records in addition to coordinating
        topo = make_topology(k=3)
        assert [c.index for c in topo.worker_clusters] == [0, 1, 2]

    def test_single_cluster_serves_both_roles(self):
        topo = make_topology(k=1)
        assert [c.index for c in topo.worker_clusters] == [0]

    def test_worker_pids_is_ep_union_vp(self):
        topo = make_topology(f=1, k=2, executors=4)
        wp = topo.worker_pids()
        assert len(wp) == 4 + 2 * 3
        assert set(topo.executor_pids) <= set(wp)

    def test_cluster_of(self):
        topo = make_topology()
        assert topo.cluster_of("v0").index == 0
        assert topo.cluster_of("v3").index == 1
        assert topo.cluster_of("e0") is None

    def test_cluster_by_index(self):
        topo = make_topology()
        assert topo.cluster(1).index == 1
        with pytest.raises(NetworkError):
            topo.cluster(9)

    def test_overlapping_pids_rejected(self):
        sc = SubCluster(index=0, members=("x", "y", "z"), f=1)
        with pytest.raises(NetworkError):
            Topology(
                input_pids=("x",),
                output_pids=("op0",),
                executor_pids=(),
                verifier_clusters=(sc,),
                f=1,
            )

    def test_empty_verifier_clusters_rejected(self):
        with pytest.raises(NetworkError):
            Topology(
                input_pids=("ip0",),
                output_pids=("op0",),
                executor_pids=("e0",),
                verifier_clusters=(),
                f=1,
            )
