"""Anomaly Detection with link deletions: snapshot correctness for
matching over shrinking graphs and delete-task handling in the cluster."""


from repro.apps.anomaly import (
    AnomalyApp,
    EdgeAnchoredMatcher,
    MultiVersionGraph,
    clique,
    make_link_task,
    power_law_graph,
)
from repro.core import Opcode, build_osiris_cluster
from tests.core.helpers import fast_config


class TestMatcherUnderDeletions:
    def test_deleted_edge_produces_no_matches(self):
        g = MultiVersionGraph([(0, 1), (1, 2), (0, 2)])
        g.apply(1, ("del", 0, 1))
        m = EdgeAnchoredMatcher(clique(3))
        assert m.enumerate(g.snapshot(1), 0, 1).matches == ()
        # …but the pre-deletion snapshot still matches
        assert len(m.enumerate(g.snapshot(0), 0, 1).matches) == 1

    def test_deletion_invalidates_neighbor_matches(self):
        # square with both diagonals: two triangles share edge (0, 2)
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]
        g = MultiVersionGraph(edges)
        m = EdgeAnchoredMatcher(clique(3))
        before = len(m.enumerate(g.snapshot(0), 0, 2).matches)
        g.apply(1, ("del", 1, 2))
        after = len(m.enumerate(g.snapshot(1), 0, 2).matches)
        assert before == 2 and after == 1

    def test_is_instance_respects_version(self):
        g = MultiVersionGraph([(0, 1), (1, 2), (0, 2)])
        m = EdgeAnchoredMatcher(clique(3))
        g.apply(1, ("del", 1, 2))
        assert m.is_instance(g.snapshot(0), (0, 1, 2))
        assert not m.is_instance(g.snapshot(1), (0, 1, 2))


class TestDeleteTasksOnCluster:
    def test_mixed_add_delete_stream(self):
        base = power_law_graph(60, 4, seed=5)
        app = AnomalyApp(base, clique(3), step_cost=1e-5)
        workload = []
        t = 0.0
        # add fresh links, then delete some of them again
        added = []
        i = 0
        for u, v in [(0, 50), (1, 51), (2, 52), (3, 53)]:
            workload.append((t, make_link_task(i, u, v, op="add")))
            added.append((u, v))
            t += 0.01
            i += 1
        for u, v in added[:2]:
            workload.append(
                (t, make_link_task(i, u, v, op="del", compute=False))
            )
            t += 0.01
            i += 1
        cluster = build_osiris_cluster(
            app,
            workload=iter(workload),
            n_workers=10,
            k=2,
            seed=70,
            config=fast_config(chunk_bytes=4096),
        )
        cluster.start()
        cluster.run(until=30.0)
        # 4 compute tasks (adds) completed; deletes were update-only
        assert cluster.metrics.tasks_completed == 4
        ex = cluster.executors[0]
        assert ex.store.applied_ts == 6
        final = ex.store.view(6)
        assert not final.has_edge(0, 50)
        assert final.has_edge(2, 52)

    def test_delete_task_is_valid_task(self):
        base = power_law_graph(30, 3, seed=5)
        app = AnomalyApp(base, clique(3))
        task = make_link_task(0, 1, 2, op="del", compute=False)
        assert task.opcode == Opcode.UPDATE
        assert app.valid_task(task)
