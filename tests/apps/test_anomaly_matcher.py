"""Tests for patterns and the edge-anchored matcher, cross-checked
against networkx / brute force ground truth."""

from itertools import combinations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.anomaly import (
    EdgeAnchoredMatcher,
    MultiVersionGraph,
    Pattern,
    clique,
    clique_minus,
    dense_six,
    path,
    power_law_graph,
)
from repro.errors import ApplicationError


class TestPattern:
    def test_clique_edges(self):
        assert clique(4).edge_count == 6

    def test_clique_minus(self):
        assert clique_minus(6, 2).edge_count == 13

    def test_path_edges(self):
        p = path(3)
        assert p.size == 4 and p.edge_count == 3

    def test_dense_six_differs_from_clique_minus(self):
        # K6 minus independent edges vs minus adjacent edges: different
        # automorphism group sizes prove non-isomorphism
        assert len(dense_six().automorphisms()) != len(
            clique_minus(6, 2).automorphisms()
        )

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ApplicationError):
            Pattern.from_edges(4, [(0, 1), (2, 3)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ApplicationError):
            Pattern.from_edges(3, [(0, 5)])

    def test_clique_automorphisms(self):
        assert len(clique(4).automorphisms()) == 24

    def test_path_automorphisms(self):
        assert len(path(3).automorphisms()) == 2

    def test_canonical_match_is_minimal(self):
        p = path(2)  # 0-1-2, automorphism reverses
        assert p.canonical_match((5, 3, 1)) == (1, 3, 5)
        assert p.is_canonical((1, 3, 5))
        assert not p.is_canonical((5, 3, 1))

    def test_directed_edge_orbits_clique(self):
        # all directed edges of a clique are one orbit
        assert len(clique(5).directed_edge_orbits()) == 1

    def test_directed_edge_orbits_path(self):
        # 3-hop path: {(0,1)~(3,2)}, {(1,0)~(2,3)}, {(1,2)~(2,1)}
        assert len(path(3).directed_edge_orbits()) == 3

    def test_matching_order_connected(self):
        for pat in (clique(4), path(3), dense_six(), clique_minus(6, 2)):
            order = pat.matching_order()
            assert sorted(order) == list(range(pat.size))
            for i in range(1, len(order)):
                assert any(
                    pat.has_edge(order[i], order[j]) for j in range(i)
                )


def graph_pair(n=80, m=4, seed=1):
    edges = power_law_graph(n, m, seed=seed)
    g = MultiVersionGraph(edges)
    return edges, g.snapshot(0), nx.Graph(edges)


class TestTriangles:
    def test_matches_networkx_common_neighbors(self):
        edges, view, G = graph_pair()
        m = EdgeAnchoredMatcher(clique(3))
        for u, v in edges[:40]:
            truth = len(set(G.neighbors(u)) & set(G.neighbors(v)))
            out = m.enumerate(view, u, v)
            assert len(out.matches) == truth
            assert m.count(view, u, v).count == truth

    def test_no_edge_no_matches(self):
        _, view, G = graph_pair()
        m = EdgeAnchoredMatcher(clique(3))
        non_edge = None
        for u in range(80):
            for v in range(u + 1, 80):
                if not G.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        out = m.enumerate(view, *non_edge)
        assert out.matches == ()
        assert m.count(view, *non_edge).count == 0


class TestCliques:
    @pytest.mark.parametrize("k", [4, 5])
    def test_matches_networkx_clique_enumeration(self, k):
        edges, view, G = graph_pair(n=60, m=4, seed=2)
        truth_all = set()
        for c in nx.find_cliques(G):
            if len(c) >= k:
                for sub in combinations(sorted(c), k):
                    if all(G.has_edge(a, b) for a, b in combinations(sub, 2)):
                        truth_all.add(sub)
        m = EdgeAnchoredMatcher(clique(k))
        for u, v in edges[:30]:
            truth = {t for t in truth_all if u in t and v in t}
            out = m.enumerate(view, u, v)
            assert set(out.matches) == truth
            assert m.count(view, u, v).count == len(truth)

    def test_clique_count_cheaper_than_enumeration(self):
        edges, view, _ = graph_pair(n=80, m=6, seed=3)
        m = EdgeAnchoredMatcher(clique(4))
        enum_steps = sum(m.enumerate(view, u, v).steps for u, v in edges[:30])
        count_steps = sum(m.count(view, u, v).steps for u, v in edges[:30])
        assert count_steps < enum_steps


class TestGenericPatterns:
    def brute_force(self, G, pattern, u, v):
        """All canonical embeddings of `pattern` containing edge (u,v)."""
        from itertools import permutations

        nodes = list(G.nodes)
        found = set()
        k = pattern.size
        # brute force over node tuples near u,v only for small graphs
        for tup in permutations(nodes, k):
            if u not in tup or v not in tup:
                continue
            if not all(
                G.has_edge(tup[a], tup[b]) for a, b in pattern.edges
            ):
                continue
            if not any(
                {tup[a], tup[b]} == {u, v} for a, b in pattern.edges
            ):
                continue
            found.add(pattern.canonical_match(tup))
        return found

    @pytest.mark.parametrize(
        "pattern", [path(2), path(3), clique_minus(4, 1)]
    )
    def test_matches_brute_force(self, pattern):
        edges = power_law_graph(16, 2, seed=4)
        view = MultiVersionGraph(edges).snapshot(0)
        G = nx.Graph(edges)
        m = EdgeAnchoredMatcher(pattern)
        for u, v in edges[:10]:
            truth = self.brute_force(G, pattern, u, v)
            out = m.enumerate(view, u, v)
            assert set(out.matches) == truth, (u, v)
            assert m.count(view, u, v).count == len(truth)

    def test_matches_are_sorted_and_unique(self):
        edges, view, _ = graph_pair(n=60, m=4, seed=5)
        m = EdgeAnchoredMatcher(dense_six())
        for u, v in edges[:20]:
            out = m.enumerate(view, u, v)
            assert list(out.matches) == sorted(set(out.matches))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_every_match_is_instance_containing_link(self, seed):
        edges = power_law_graph(40, 3, seed=seed)
        view = MultiVersionGraph(edges).snapshot(0)
        m = EdgeAnchoredMatcher(clique_minus(4, 1))
        u, v = edges[seed % len(edges)]
        for match in m.enumerate(view, u, v).matches:
            assert m.is_instance(view, match)
            assert m.contains_link(match, u, v)


class TestValidity:
    def test_is_instance_rejects_non_canonical(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        view = MultiVersionGraph(edges).snapshot(0)
        m = EdgeAnchoredMatcher(clique(3))
        assert m.is_instance(view, (0, 1, 2))
        assert not m.is_instance(view, (2, 1, 0))

    def test_is_instance_rejects_missing_edge(self):
        edges = [(0, 1), (1, 2)]
        view = MultiVersionGraph(edges).snapshot(0)
        m = EdgeAnchoredMatcher(clique(3))
        assert not m.is_instance(view, (0, 1, 2))

    def test_is_instance_rejects_repeated_vertex(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        view = MultiVersionGraph(edges).snapshot(0)
        m = EdgeAnchoredMatcher(clique(3))
        assert not m.is_instance(view, (0, 1, 1))

    def test_contains_link(self):
        m = EdgeAnchoredMatcher(path(2))
        assert m.contains_link((1, 2, 3), 2, 1)
        assert not m.contains_link((1, 2, 3), 1, 3)  # non-adjacent in path
