"""Tests for the synthetic dial-a-workload application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import SyntheticApp, make_compute_task, make_update_task
from repro.core import Record


@pytest.fixture
def app():
    return SyntheticApp(records_per_task=6, compute_cost=1e-3)


def view_of(app):
    return app.initial_state().snapshot(0)


class TestContract:
    def test_compute_is_deterministic(self, app):
        t = make_compute_task(3).with_timestamp(0)
        a = app.compute(view_of(app), t)
        b = app.compute(view_of(app), t)
        assert a.records == b.records
        assert a.cost == b.cost

    def test_records_sorted_unique(self, app):
        t = make_compute_task(3).with_timestamp(0)
        keys = [r.key for r in app.compute(view_of(app), t).records]
        assert keys == sorted(set(keys))

    def test_output_size_matches_compute(self, app):
        t = make_compute_task(3, n=17).with_timestamp(0)
        assert app.output_size(view_of(app), t).count == 17
        assert len(app.compute(view_of(app), t).records) == 17

    def test_verification_cheaper_than_compute(self, app):
        t = make_compute_task(0).with_timestamp(0)
        result = app.compute(view_of(app), t)
        count = app.output_size(view_of(app), t)
        verify_total = count.cost + sum(
            app.verify_record_cost(r) for r in result.records
        )
        assert verify_total < result.cost

    @given(n=st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_every_record_is_valid(self, n):
        app = SyntheticApp()
        t = make_compute_task(1, n=n).with_timestamp(0)
        view = view_of(app)
        for r in app.compute(view, t).records:
            assert app.is_valid(view, r, t)

    def test_cross_task_record_invalid(self, app):
        ta = make_compute_task(1).with_timestamp(0)
        tb = make_compute_task(2).with_timestamp(0)
        view = view_of(app)
        for r in app.compute(view, ta).records:
            assert not app.is_valid(view, r, tb)

    def test_corrupted_record_invalid(self, app):
        t = make_compute_task(1).with_timestamp(0)
        view = view_of(app)
        r = app.compute(view, t).records[0]
        assert not app.is_valid(view, Record(key=r.key, data=r.data + 1), t)
        assert not app.is_valid(view, Record(key=(999,), data=r.data), t)
        assert not app.is_valid(view, Record(key=("x",), data=r.data), t)


class TestTaskValidation:
    def test_negative_count_rejected(self, app):
        assert not app.valid_task(make_compute_task(1, n=-1))

    def test_update_without_payload_rejected(self, app):
        from repro.core import Opcode, Task

        assert not app.valid_task(Task("u", Opcode.UPDATE))

    def test_factories_produce_valid_tasks(self, app):
        assert app.valid_task(make_compute_task(1))
        assert app.valid_task(make_update_task(1))
