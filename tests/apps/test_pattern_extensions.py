"""Tests for the star and cycle pattern factories, cross-checked against
brute force — high-symmetry patterns stress the canonicalization."""

from itertools import permutations

import networkx as nx
import pytest

from repro.apps.anomaly import (
    EdgeAnchoredMatcher,
    MultiVersionGraph,
    cycle,
    power_law_graph,
    star,
)


def brute_force(G, pattern, u, v):
    found = set()
    for tup in permutations(G.nodes, pattern.size):
        if u not in tup or v not in tup:
            continue
        if not all(G.has_edge(tup[a], tup[b]) for a, b in pattern.edges):
            continue
        if not any({tup[a], tup[b]} == {u, v} for a, b in pattern.edges):
            continue
        found.add(pattern.canonical_match(tup))
    return found


class TestStar:
    def test_star_shape(self):
        p = star(4)
        assert p.size == 5 and p.edge_count == 4
        assert p.neighbors(0) == (1, 2, 3, 4)

    def test_star_automorphisms_are_leaf_permutations(self):
        assert len(star(3).automorphisms()) == 6  # 3!

    def test_star_orbits(self):
        # hub→leaf and leaf→hub: exactly two directed-edge orbits
        assert len(star(4).directed_edge_orbits()) == 2

    @pytest.mark.parametrize("leaves", [2, 3])
    def test_star_matches_brute_force(self, leaves):
        edges = power_law_graph(14, 2, seed=3)
        view = MultiVersionGraph(edges).snapshot(0)
        G = nx.Graph(edges)
        m = EdgeAnchoredMatcher(star(leaves))
        for u, v in edges[:8]:
            assert set(m.enumerate(view, u, v).matches) == brute_force(
                G, star(leaves), u, v
            )


class TestCycle:
    def test_cycle_shape(self):
        p = cycle(5)
        assert p.size == 5 and p.edge_count == 5

    def test_cycle_automorphisms_are_dihedral(self):
        assert len(cycle(5).automorphisms()) == 10  # D5

    def test_cycle_orbit_is_single(self):
        assert len(cycle(4).directed_edge_orbits()) == 1

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_cycle_matches_brute_force(self, k):
        edges = power_law_graph(12, 2, seed=4)
        view = MultiVersionGraph(edges).snapshot(0)
        G = nx.Graph(edges)
        m = EdgeAnchoredMatcher(cycle(k))
        for u, v in edges[:8]:
            assert set(m.enumerate(view, u, v).matches) == brute_force(
                G, cycle(k), u, v
            )

    def test_cycle_count_matches_enumeration(self):
        edges = power_law_graph(20, 3, seed=5)
        view = MultiVersionGraph(edges).snapshot(0)
        m = EdgeAnchoredMatcher(cycle(4))
        for u, v in edges[:10]:
            assert m.count(view, u, v).count == len(
                m.enumerate(view, u, v).matches
            )
