"""Planning edge cases: verify-outcome counters, branched infeasibility,
cache behaviour, continuous variables."""

import numpy as np
import pytest

from repro.apps.planning import (
    BranchAndBoundSolver,
    CertificateVerifier,
    MipInstance,
    PlanningApp,
    instance_suite,
    make_planning_task,
)


def mixed_instance():
    """2 integer + 1 continuous variable."""
    return MipInstance(
        name="mixed",
        c=np.array([-3.0, -2.0, -1.0]),
        a_ub=np.array([[2.0, 1.0, 1.0]]),
        b_ub=np.array([4.0]),
        lower=np.zeros(3),
        upper=np.array([2.0, 2.0, 1.5]),
        integer=np.array([True, True, False]),
    )


def branched_infeasible():
    """LP-feasible but integer-infeasible: x must be integral in a window
    that contains no integer (0.4 <= x <= 0.6)."""
    return MipInstance(
        name="int-infeasible",
        c=np.array([1.0]),
        a_ub=np.array([[1.0], [-1.0]]),
        b_ub=np.array([0.6, -0.4]),
        lower=np.zeros(1),
        upper=np.ones(1),
        integer=np.array([True]),
    )


class TestMixedInteger:
    def test_continuous_variable_allowed_fractional(self):
        solver = BranchAndBoundSolver()
        result = solver.solve(mixed_instance())
        assert result.status == "optimal"
        x = result.x
        assert float(x[0]) == int(x[0]) and float(x[1]) == int(x[1])
        checker = CertificateVerifier()
        out = checker.verify_optimal(
            mixed_instance(), x, result.objective, result.certificate
        )
        assert out.ok, out.reason


class TestBranchedInfeasibility:
    def test_integer_infeasible_detected_and_certified(self):
        solver = BranchAndBoundSolver()
        inst = branched_infeasible()
        result = solver.solve(inst)
        assert result.status == "infeasible"
        # the root LP is feasible, so the certificate must branch
        assert result.certificate.kind == "branch"
        out = CertificateVerifier().verify_infeasible(inst, result.certificate)
        assert out.ok, out.reason
        assert out.lp_resolves >= 2  # both integer windows re-checked

    def test_outcome_counters_populated(self):
        solver = BranchAndBoundSolver()
        inst = instance_suite(count=1, seed=3, infeasible_every=0)[0]
        result = solver.solve(inst)
        out = CertificateVerifier().verify_optimal(
            inst, result.x, result.objective, result.certificate
        )
        assert out.leaves_checked == result.certificate.leaf_count()
        assert out.lp_resolves <= out.leaves_checked


class TestSolveCache:
    def test_compute_reuses_solver_results(self):
        suite = instance_suite(count=3, seed=4)
        app = PlanningApp(instances=suite)
        view = app.initial_state().snapshot(0)
        t = make_planning_task(0, 1).with_timestamp(0)
        first = app.compute(view, t)
        assert 1 in app._solve_cache
        second = app.compute(view, t)
        assert first.cost == second.cost
        assert first.records[0].data["objective"] == pytest.approx(
            second.records[0].data["objective"]
        )

    def test_resolve_budget_enforced(self):
        checker = CertificateVerifier(max_lp_resolves=0)
        inst = branched_infeasible()
        result = BranchAndBoundSolver().solve(inst)
        out = checker.verify_infeasible(inst, result.certificate)
        assert not out.ok
        assert out.reason == "too-many-resolves"
