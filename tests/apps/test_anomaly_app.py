"""Anomaly Detection as a verifiable application, unit + cluster tests."""

import pytest

from repro.apps.anomaly import (
    AnomalyApp,
    anomaly_workload,
    clique,
    link_update_stream,
    make_link_task,
    power_law_graph,
)
from repro.core import Opcode, Task, build_osiris_cluster
from repro.core.faults import OmitRecordFault
from tests.core.helpers import fast_config


@pytest.fixture
def app():
    base = power_law_graph(60, 4, seed=1)
    return AnomalyApp(base, clique(3))


class TestOperators:
    def test_valid_task_accepts_link_task(self, app):
        assert app.valid_task(make_link_task(0, 1, 2))

    def test_valid_task_rejects_self_loop(self, app):
        bad = Task(
            task_id="x",
            opcode=Opcode.BOTH,
            update_payload=("add", 1, 1),
            compute_payload={"edge": [1, 1]},
        )
        assert not app.valid_task(bad)

    def test_valid_task_rejects_malformed_update(self, app):
        bad = Task(task_id="x", opcode=Opcode.UPDATE, update_payload=("grow", 1))
        assert not app.valid_task(bad)

    def test_compute_is_sorted_and_valid(self, app):
        state = app.initial_state()
        state.apply(1, ("add", 0, 1))
        view = state.snapshot(1)
        task = make_link_task(0, 0, 1).with_timestamp(1)
        result = app.compute(view, task)
        keys = [r.key for r in result.records]
        assert keys == sorted(keys)
        for rec in result.records:
            assert app.is_valid(view, rec, task)
        assert result.cost > 0

    def test_output_size_matches_compute(self, app):
        state = app.initial_state()
        state.apply(1, ("add", 0, 1))
        view = state.snapshot(1)
        task = make_link_task(0, 0, 1).with_timestamp(1)
        result = app.compute(view, task)
        count = app.output_size(view, task)
        assert count.count == len(result.records)
        assert count.cost <= result.cost

    def test_is_valid_rejects_foreign_record(self, app):
        from repro.core import Record

        state = app.initial_state()
        state.apply(1, ("add", 0, 1))
        view = state.snapshot(1)
        task = make_link_task(0, 0, 1).with_timestamp(1)
        # a triangle that exists but does not contain the updated link
        assert not app.is_valid(view, Record(key=(9, 10, 11)), task)
        assert not app.is_valid(view, Record(key=("a", "b", "c")), task)

    def test_update_only_task(self, app):
        t = make_link_task(0, 3, 4, compute=False)
        assert t.opcode == Opcode.UPDATE
        assert app.valid_task(t)


class TestWorkloadGenerators:
    def test_power_law_graph_shape(self):
        edges = power_law_graph(100, 3, seed=0)
        assert len(edges) >= 3 * (100 - 4)
        assert all(u != v for u, v in edges)

    def test_power_law_rejects_small_n(self):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            power_law_graph(3, 5)

    def test_power_law_deterministic(self):
        assert power_law_graph(50, 3, seed=7) == power_law_graph(50, 3, seed=7)

    def test_link_stream_fresh_links_at_rate(self):
        base = power_law_graph(50, 3, seed=0)
        existing = {(min(u, v), max(u, v)) for u, v in base}
        stream = list(link_update_stream(base, n_tasks=20, rate=100, seed=1))
        assert len(stream) == 20
        times = [t for t, _ in stream]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(0.01)
        for _, task in stream:
            _, u, v = task.update_payload
            assert (min(u, v), max(u, v)) not in existing

    def test_named_workloads(self):
        for name in ("MM", "LH", "HL", "fig5b"):
            base, pattern = anomaly_workload(name, n_vertices=60, attach=4)
            assert len(base) > 0 and pattern.size >= 4

    def test_unknown_workload_rejected(self):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            anomaly_workload("XX")


class TestAnomalyOnCluster:
    def _cluster(self, n_tasks=15, seed=42, **kwargs):
        base = power_law_graph(80, 4, seed=2)
        app = AnomalyApp(base, clique(3), step_cost=1e-5)
        workload = link_update_stream(base, n_tasks=n_tasks, rate=100, seed=3)
        cluster = build_osiris_cluster(
            app,
            workload=workload,
            n_workers=10,
            k=2,
            seed=seed,
            config=fast_config(chunk_bytes=4096),
            **kwargs,
        )
        cluster.start()
        return cluster

    def test_end_to_end_anomaly_detection(self):
        cluster = self._cluster()
        cluster.run(until=30.0)
        assert cluster.metrics.tasks_completed == 15
        assert cluster.metrics.faults_detected == []

    def test_all_replicas_converge_to_same_graph_version(self):
        cluster = self._cluster()
        cluster.run(until=30.0)
        versions = {
            p.store.applied_ts
            for p in cluster.executors + cluster.all_verifiers
        }
        assert versions == {15}

    def test_corrupt_match_detected(self):
        # fabrication works even for tasks whose true output is empty
        from repro.core.faults import FabricateRecordFault

        cluster = self._cluster(
            executor_faults={"e0": FabricateRecordFault()}
        )
        cluster.run(until=60.0)
        assert cluster.metrics.tasks_completed == 15
        reasons = {k for _, k, _ in cluster.metrics.faults_detected}
        assert reasons & {"invalid-record", "digest-mismatch", "count-mismatch"}

    def test_omitted_match_detected(self):
        cluster = self._cluster(executor_faults={"e0": OmitRecordFault()})
        cluster.run(until=60.0)
        assert cluster.metrics.tasks_completed == 15
