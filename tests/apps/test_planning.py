"""Motion Planning tests: solver correctness, certificate soundness,
tamper resistance, and on-cluster integration."""

from itertools import product

import numpy as np
import pytest

from repro.apps.planning import (
    BranchAndBoundSolver,
    CertificateVerifier,
    CertNode,
    MipInstance,
    PlanningApp,
    instance_suite,
    make_planning_task,
)
from repro.errors import ApplicationError


@pytest.fixture(scope="module")
def suite():
    return instance_suite(count=12, seed=1)


@pytest.fixture(scope="module")
def solver():
    return BranchAndBoundSolver()


@pytest.fixture(scope="module")
def checker():
    return CertificateVerifier()


def brute_force_optimum(inst):
    if inst.n_vars > 14 or not inst.integer.all():
        pytest.skip("instance too large for brute force")
    best = np.inf
    for bits in product(*[
        range(int(lo), int(hi) + 1)
        for lo, hi in zip(inst.lower, inst.upper)
    ]):
        x = np.array(bits, dtype=float)
        if inst.is_feasible(x):
            best = min(best, inst.objective(x))
    return best


class TestInstances:
    def test_suite_is_deterministic(self):
        a = instance_suite(count=5, seed=3)
        b = instance_suite(count=5, seed=3)
        for ia, ib in zip(a, b):
            assert ia.name == ib.name
            assert (ia.c == ib.c).all()

    def test_suite_contains_infeasible_instances(self, suite):
        # every 20th is infeasible; with 12 none — generate more
        big = instance_suite(count=40, seed=1)
        assert any(i.name.startswith("infeasible") for i in big)

    def test_shape_validation(self):
        with pytest.raises(ApplicationError):
            MipInstance(
                name="bad",
                c=np.ones(3),
                a_ub=np.ones((2, 4)),
                b_ub=np.ones(2),
                lower=np.zeros(3),
                upper=np.ones(3),
                integer=np.ones(3, dtype=bool),
            )

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ApplicationError):
            MipInstance(
                name="bad",
                c=np.ones(2),
                a_ub=np.ones((1, 2)),
                b_ub=np.ones(1),
                lower=np.ones(2),
                upper=np.zeros(2),
                integer=np.ones(2, dtype=bool),
            )

    def test_is_feasible(self, suite):
        inst = suite[0]
        assert not inst.is_feasible(np.full(inst.n_vars, 0.5))  # fractional
        assert inst.is_feasible(np.zeros(inst.n_vars)) or True


class TestSolver:
    def test_knapsack_matches_brute_force(self, solver):
        inst = instance_suite(count=1, seed=5, infeasible_every=0)[0]
        result = solver.solve(inst)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(
            brute_force_optimum(inst), abs=1e-6
        )

    def test_solution_is_feasible_and_integral(self, solver, suite):
        for inst in suite[:6]:
            result = solver.solve(inst)
            if result.status == "optimal":
                assert inst.is_feasible(result.x)
                assert inst.objective(result.x) == pytest.approx(
                    result.objective, abs=1e-5
                )

    def test_infeasible_detected(self, solver):
        big = instance_suite(count=40, seed=1)
        inst = next(i for i in big if i.name.startswith("infeasible"))
        assert solver.solve(inst).status == "infeasible"

    def test_work_counters_positive(self, solver, suite):
        result = solver.solve(suite[0])
        assert result.nodes_explored >= 1
        assert result.lp_solves >= result.nodes_explored


class TestCertificates:
    def test_all_suite_certificates_verify(self, solver, checker, suite):
        for inst in suite:
            r = solver.solve(inst)
            if r.status == "optimal":
                out = checker.verify_optimal(
                    inst, r.x, r.objective, r.certificate
                )
            else:
                out = checker.verify_infeasible(inst, r.certificate)
            assert out.ok, (inst.name, out.reason)

    def test_claimed_better_objective_rejected(self, solver, checker, suite):
        inst = suite[0]
        r = solver.solve(inst)
        out = checker.verify_optimal(
            inst, r.x, r.objective - 5.0, r.certificate
        )
        assert not out.ok

    def test_suboptimal_solution_rejected(self, solver, checker, suite):
        """A feasible but worse x: objective matches x, but the
        certificate (bounding the true optimum) must betray it."""
        inst = instance_suite(count=1, seed=5, infeasible_every=0)[0]
        r = solver.solve(inst)
        worse = np.zeros(inst.n_vars)  # empty knapsack is feasible
        if abs(inst.objective(worse) - r.objective) < 1e-9:
            pytest.skip("degenerate instance")
        out = checker.verify_optimal(
            inst, worse, inst.objective(worse), r.certificate
        )
        assert not out.ok
        assert out.reason == "bound-too-weak"

    def test_infeasible_solution_rejected(self, solver, checker, suite):
        inst = suite[0]
        r = solver.solve(inst)
        bad_x = np.full(inst.n_vars, 10_000.0)
        out = checker.verify_optimal(inst, bad_x, r.objective, r.certificate)
        assert not out.ok
        assert out.reason == "solution-infeasible"

    def test_truncated_certificate_rejected(self, solver, checker, suite):
        inst = suite[0]
        r = solver.solve(inst)
        cert = r.certificate
        if cert.kind != "branch":
            pytest.skip("root solved without branching")
        # chop off a subtree: coverage hole must be caught
        pruned = CertNode(
            kind="branch",
            branch_var=cert.branch_var,
            branch_val=cert.branch_val,
            left=cert.left,
            right=None,
        )
        out = checker.verify_optimal(inst, r.x, r.objective, pruned)
        assert not out.ok

    def test_fake_infeasibility_rejected(self, checker, suite):
        inst = suite[0]  # actually feasible
        fake = CertNode(kind="infeasible")
        out = checker.verify_infeasible(inst, fake)
        assert not out.ok
        assert out.reason == "leaf-actually-feasible"

    def test_bad_branch_var_rejected(self, checker, suite):
        inst = suite[0]
        cert = CertNode(
            kind="branch",
            branch_var=10**6,
            branch_val=0.0,
            left=CertNode(kind="infeasible"),
            right=CertNode(kind="infeasible"),
        )
        out = checker.verify_optimal(
            inst, np.zeros(inst.n_vars), inst.objective(np.zeros(inst.n_vars)), cert
        )
        assert not out.ok


class TestPlanningApp:
    def test_operators_roundtrip(self, suite):
        app = PlanningApp(instances=suite)
        task = make_planning_task(0, 2).with_timestamp(0)
        assert app.valid_task(task)
        view = app.initial_state().snapshot(0)
        out = app.compute(view, task)
        assert len(out.records) == 1
        assert app.is_valid(view, out.records[0], task)
        assert app.output_size(view, task).count == 1

    def test_invalid_instance_index_rejected(self, suite):
        app = PlanningApp(instances=suite)
        assert not app.valid_task(make_planning_task(0, 999))
        assert not app.valid_task(make_planning_task(0, -1))

    def test_tampered_record_rejected(self, suite):
        from repro.core import Record

        app = PlanningApp(instances=suite)
        task = make_planning_task(0, 0).with_timestamp(0)
        view = app.initial_state().snapshot(0)
        rec = app.compute(view, task).records[0]
        tampered = Record(
            key=(0,),
            data={**rec.data, "objective": rec.data["objective"] - 3.0},
            size_bytes=rec.size_bytes,
        )
        assert not app.is_valid(view, tampered, task)

    def test_on_cluster(self, suite):
        from repro.core import build_osiris_cluster
        from tests.core.helpers import fast_config

        app = PlanningApp(instances=suite, node_cost=1e-3)
        workload = [
            (i * 0.01, make_planning_task(i, i % len(suite)))
            for i in range(12)
        ]
        cluster = build_osiris_cluster(
            app,
            workload=iter(workload),
            n_workers=10,
            k=2,
            seed=55,
            config=fast_config(chunk_bytes=65536),
        )
        cluster.start()
        cluster.run(until=30.0)
        assert cluster.metrics.tasks_completed == 12
        assert cluster.metrics.records_accepted == 12
        assert cluster.metrics.faults_detected == []
