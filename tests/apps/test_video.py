"""Video Analysis tests: frames, k-means, operators, cluster integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.video import (
    VideoApp,
    VideoState,
    check_stability,
    frame_stream,
    lloyd,
    make_cluster_task,
    make_frame_task,
)
from repro.errors import ApplicationError, StoreError


class TestFrameStream:
    def test_deterministic(self):
        a = list(frame_stream(3, seed=5))
        b = list(frame_stream(3, seed=5))
        for fa, fb in zip(a, b):
            assert (fa == fb).all()

    def test_shapes(self):
        frames = list(frame_stream(4, points_per_frame=200))
        assert len(frames) == 4
        for f in frames:
            assert f.shape == (200, 3)

    def test_blobs_move_between_frames(self):
        frames = list(frame_stream(2, seed=1))
        assert not (frames[0] == frames[1]).all()


class TestVideoState:
    def test_window_selects_recent_frames(self):
        state = VideoState()
        for ts in range(1, 6):
            state.apply(ts, np.full((10, 3), float(ts)))
        view = state.snapshot(5)
        pts = view.points(2)
        assert len(pts) == 20
        assert set(pts[:, 0]) == {4.0, 5.0}

    def test_snapshot_isolated_from_new_frames(self):
        state = VideoState()
        state.apply(1, np.ones((10, 3)))
        view = state.snapshot(1)
        state.apply(2, np.zeros((10, 3)))
        assert (view.points(4)[:, 0] == 1.0).all()

    def test_empty_view(self):
        view = VideoState().snapshot(0)
        assert view.points(4).shape == (0, 3)

    def test_non_monotonic_rejected(self):
        state = VideoState()
        state.apply(2, np.ones((5, 3)))
        with pytest.raises(StoreError):
            state.apply(2, np.ones((5, 3)))

    def test_bad_frame_rejected(self):
        with pytest.raises(StoreError):
            VideoState().apply(1, np.ones(5))


class TestKMeans:
    def _points(self, seed=0):
        rng = np.random.default_rng(seed)
        return np.concatenate(
            [
                rng.normal((0, 0, 0), 0.5, size=(50, 3)),
                rng.normal((10, 10, 10), 0.5, size=(50, 3)),
                rng.normal((-10, 5, 0), 0.5, size=(50, 3)),
            ]
        )

    def test_separated_blobs_recovered(self):
        pts = self._points()
        res = lloyd(pts, 3, seed=1)
        assert sorted(res.sizes.tolist()) == [50, 50, 50]

    def test_result_is_lloyd_stable(self):
        pts = self._points()
        res = lloyd(pts, 3, seed=1)
        assert check_stability(pts, res.centroids, res.sizes)

    def test_centroids_sorted(self):
        pts = self._points()
        res = lloyd(pts, 3, seed=1)
        keys = [tuple(c) for c in res.centroids]
        assert keys == sorted(keys)

    def test_too_few_points_rejected(self):
        with pytest.raises(ApplicationError):
            lloyd(np.ones((2, 3)), 5)

    def test_tampered_centroid_fails_stability(self):
        pts = self._points()
        res = lloyd(pts, 3, seed=1)
        bad = res.centroids.copy()
        bad[1] += 3.0
        assert not check_stability(pts, bad, res.sizes)

    def test_tampered_sizes_fail_stability(self):
        pts = self._points()
        res = lloyd(pts, 3, seed=1)
        bad_sizes = res.sizes.copy()
        bad_sizes[0] += 1
        assert not check_stability(pts, res.centroids, bad_sizes)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_stability_property(self, seed):
        """lloyd() output always passes the verifier's stability check —
        the executor/verifier contract of the video app."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, size=(120, 3))
        res = lloyd(pts, 5, seed=seed)
        assert check_stability(pts, res.centroids, res.sizes)


class TestVideoApp:
    def _ready_state(self, app, n_frames=6):
        state = app.initial_state()
        for ts, frame in enumerate(
            frame_stream(n_frames, points_per_frame=200, seed=2), start=1
        ):
            state.apply(ts, frame)
        return state

    def test_operators_roundtrip(self):
        app = VideoApp()
        state = self._ready_state(app)
        view = state.snapshot(6)
        task = make_cluster_task(0, k=6, window=3).with_timestamp(6)
        out = app.compute(view, task)
        assert len(out.records) == 6
        keys = [r.key for r in out.records]
        assert keys == sorted(keys)
        for rec in out.records:
            assert app.is_valid(view, rec, task)
        assert app.output_size(view, task).count == 6

    def test_valid_task_checks(self):
        app = VideoApp()
        assert app.valid_task(make_cluster_task(0))
        assert app.valid_task(
            make_frame_task(0, np.ones((10, 3)))
        )
        assert not app.valid_task(make_cluster_task(0, k=0))
        assert not app.valid_task(make_cluster_task(0, k=10**6))
        from repro.core import Opcode, Task

        assert not app.valid_task(
            Task(task_id="x", opcode=Opcode.UPDATE, update_payload="nope")
        )

    def test_starved_window_produces_no_records(self):
        app = VideoApp()
        state = app.initial_state()
        view = state.snapshot(0)
        task = make_cluster_task(0, k=4, window=2).with_timestamp(0)
        assert app.compute(view, task).records == ()
        assert app.output_size(view, task).count == 0

    def test_foreign_centroid_rejected(self):
        from repro.core import Record

        app = VideoApp()
        state = self._ready_state(app)
        view = state.snapshot(6)
        task = make_cluster_task(0, k=6, window=3).with_timestamp(6)
        rec = app.compute(view, task).records[0]
        tampered = Record(
            key=rec.key,
            data={
                "size": rec.data["size"],
                "all_centroids": rec.data["all_centroids"] + 1.0,
                "all_sizes": rec.data["all_sizes"],
            },
            size_bytes=rec.size_bytes,
        )
        assert not app.is_valid(view, tampered, task)

    def test_on_cluster_time_based_analytics(self):
        """Sec 4.1 case (ii): update tasks for frames, periodic compute."""
        from repro.core import build_osiris_cluster
        from tests.core.helpers import fast_config

        app = VideoApp()
        workload = []
        t = 0.0
        frames = frame_stream(12, points_per_frame=150, seed=4)
        for i, frame in enumerate(frames):
            workload.append((t, make_frame_task(i, frame)))
            t += 0.02
            if i % 4 == 3:
                workload.append((t, make_cluster_task(i, k=4, window=4)))
                t += 0.02
        cluster = build_osiris_cluster(
            app,
            workload=iter(workload),
            n_workers=10,
            k=2,
            seed=66,
            config=fast_config(chunk_bytes=8192),
        )
        cluster.start()
        cluster.run(until=30.0)
        assert cluster.metrics.tasks_completed == 3
        assert cluster.metrics.records_accepted == 12
        assert cluster.metrics.faults_detected == []
