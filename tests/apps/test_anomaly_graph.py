"""Tests for the multiversioned dynamic graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.anomaly import MultiVersionGraph
from repro.errors import StoreError


class TestBaseGraph:
    def test_base_edges_visible_at_version_zero(self):
        g = MultiVersionGraph([(0, 1), (1, 2)])
        view = g.snapshot(0)
        assert view.has_edge(0, 1) and view.has_edge(1, 0)
        assert view.has_edge(1, 2)
        assert not view.has_edge(0, 2)

    def test_neighbors_sorted(self):
        g = MultiVersionGraph([(5, 1), (5, 9), (5, 3)])
        assert list(g.snapshot(0).neighbors(5)) == [1, 3, 9]

    def test_self_loops_ignored(self):
        g = MultiVersionGraph([(1, 1), (1, 2)])
        assert list(g.snapshot(0).neighbors(1)) == [2]

    def test_duplicate_base_edges_collapse(self):
        g = MultiVersionGraph([(0, 1), (1, 0), (0, 1)])
        assert g.snapshot(0).degree(0) == 1

    def test_edge_count(self):
        g = MultiVersionGraph([(0, 1), (1, 2), (2, 0)])
        assert g.snapshot(0).edge_count() == 3


class TestUpdates:
    def test_add_edge(self):
        g = MultiVersionGraph([(0, 1)])
        g.apply(1, ("add", 1, 2))
        assert g.snapshot(1).has_edge(1, 2)
        assert not g.snapshot(0).has_edge(1, 2)

    def test_delete_edge(self):
        g = MultiVersionGraph([(0, 1)])
        g.apply(1, ("del", 0, 1))
        assert not g.snapshot(1).has_edge(0, 1)
        assert g.snapshot(0).has_edge(0, 1)

    def test_batched_updates_one_version(self):
        g = MultiVersionGraph([])
        g.apply(1, [("add", 0, 1), ("add", 1, 2)])
        view = g.snapshot(1)
        assert view.has_edge(0, 1) and view.has_edge(1, 2)

    def test_idempotent_add(self):
        g = MultiVersionGraph([(0, 1)])
        cost = g.apply(1, ("add", 0, 1))
        assert cost == 0.0
        assert g.snapshot(1).degree(0) == 1

    def test_delete_missing_edge_is_noop(self):
        g = MultiVersionGraph([])
        assert g.apply(1, ("del", 0, 1)) == 0.0

    def test_non_monotonic_rejected(self):
        g = MultiVersionGraph([])
        g.apply(2, ("add", 0, 1))
        with pytest.raises(StoreError):
            g.apply(2, ("add", 1, 2))

    def test_unknown_op_rejected(self):
        g = MultiVersionGraph([])
        with pytest.raises(StoreError):
            g.apply(1, ("xor", 0, 1))

    def test_cost_scales_with_degree(self):
        g = MultiVersionGraph([(0, i) for i in range(1, 100)])
        hub_cost = g.apply(1, ("add", 0, 200))
        g2 = MultiVersionGraph([])
        leaf_cost = g2.apply(1, ("add", 0, 1))
        assert hub_cost > leaf_cost


class TestSnapshotIsolation:
    def test_old_view_unchanged_by_later_updates(self):
        g = MultiVersionGraph([(0, 1)])
        view0 = g.snapshot(0)
        nbrs_before = view0.neighbors(0).copy()
        g.apply(1, ("add", 0, 2))
        g.apply(2, ("del", 0, 1))
        assert (view0.neighbors(0) == nbrs_before).all()
        assert view0.has_edge(0, 1)
        assert not view0.has_edge(0, 2)

    def test_views_at_each_version(self):
        g = MultiVersionGraph([])
        for ts in range(1, 6):
            g.apply(ts, ("add", 0, ts))
        for ts in range(1, 6):
            assert g.snapshot(ts).degree(0) == ts

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["add", "del"]),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_snapshot_matches_sequential_replay(self, ops):
        """Multiversion reads == replaying the op prefix on a plain set."""
        g = MultiVersionGraph([])
        for ts, op in enumerate(ops, start=1):
            g.apply(ts, op)
        reference: set[tuple[int, int]] = set()
        for ts, (kind, u, v) in enumerate(ops, start=1):
            if u != v:
                e = (min(u, v), max(u, v))
                if kind == "add":
                    reference.add(e)
                else:
                    reference.discard(e)
            view = g.snapshot(ts)
            for a in range(7):
                for b in range(a + 1, 7):
                    assert view.has_edge(a, b) == ((a, b) in reference)
