"""Campaign controller: phases, triggers, clears on a live deployment."""

import pytest

from repro import api
from repro.adversary import Action, Campaign, FaultSpec, Phase, Trigger
from repro.core.faults import OmitRecordFault, SilentFault, SlowFault
from repro.errors import AdversaryError
from repro.obs.events import ChunkAccepted, TaskAssigned


def build(campaign, n=5):
    spec = api.DeploymentSpec(
        workload="synthetic",
        workload_params=(("n_tasks", 2), ("records_per_task", 3)),
        n=n,
        faults=campaign,
    )
    return api.build(spec)


def set_action(select, kind="silent", role="executor", **params):
    return Action(
        op="set",
        select=select,
        fault=FaultSpec(role=role, kind=kind, params=tuple(params.items())),
    )


class TestPhases:
    def test_t0_phase_applies_at_install(self):
        campaign = Campaign(
            name="c", phases=(Phase(at=0.0, actions=(set_action("executors"),)),)
        )
        cluster = build(campaign)
        for e in cluster.executors:
            assert isinstance(e.engine.fault, SilentFault)
        assert cluster.campaign.first_injection_at == 0.0
        # the RecoverySink is attached before install, so it saw the t=0 set
        assert cluster.recovery.injected_at == 0.0
        assert cluster.recovery.actions_applied == len(cluster.executors)

    def test_scheduled_phase_applies_at_its_time(self):
        campaign = Campaign(
            name="c",
            phases=(
                Phase(at=1.0, actions=(set_action("e0", "slow", delay=3.0),)),
            ),
        )
        cluster = build(campaign)
        e0 = cluster.worker("e0")
        assert e0.engine.fault is None
        cluster.run(until=0.5)
        assert e0.engine.fault is None
        cluster.run(until=2.0)
        assert isinstance(e0.engine.fault, SlowFault)
        assert e0.engine.fault.delay == 3.0
        assert cluster.campaign.first_injection_at == 1.0

    def test_clear_restores_honesty(self):
        campaign = Campaign(
            name="c",
            phases=(
                Phase(at=0.0, actions=(set_action("executors[:2]"),)),
                Phase(
                    at=1.0,
                    actions=(Action(op="clear", select="executors[:2]"),),
                ),
            ),
        )
        cluster = build(campaign)
        assert cluster.worker("e0").engine.fault is not None
        cluster.run(until=2.0)
        assert cluster.worker("e0").engine.fault is None
        assert cluster.worker("e1").engine.fault is None
        ops = [op for _, op, _, _, _ in cluster.campaign.applied]
        assert ops == ["set", "set", "clear", "clear"]
        # clears never move first_injection_at
        assert cluster.campaign.first_injection_at == 0.0

    def test_set_is_swap(self):
        campaign = Campaign(
            name="c",
            phases=(
                Phase(at=0.0, actions=(set_action("e0", "silent"),)),
                Phase(at=1.0, actions=(set_action("e0", "omit-record"),)),
            ),
        )
        cluster = build(campaign)
        assert isinstance(cluster.worker("e0").engine.fault, SilentFault)
        cluster.run(until=2.0)
        assert isinstance(cluster.worker("e0").engine.fault, OmitRecordFault)

    def test_verifier_fault_targets_cluster(self):
        campaign = Campaign(
            name="c",
            phases=(
                Phase(
                    at=0.0,
                    actions=(
                        set_action(
                            "cluster:0[:1]", "negligent-leader", role="verifier"
                        ),
                    ),
                ),
            ),
        )
        cluster = build(campaign)
        assert cluster.worker("v0").fault is not None
        assert cluster.worker("v1").fault is None


class TestTriggers:
    def trigger_campaign(self, **over):
        kw = dict(
            on="chunk-accepted",
            actions=(set_action("e0", "omit-record"),),
            once=True,
        )
        kw.update(over)
        return Campaign(name="c", triggers=(Trigger(**kw),))

    def emit_chunk(self, cluster, task_id="t1"):
        cluster.bus.emit(
            ChunkAccepted(
                time=cluster.sim.now,
                pid="op0",
                task_id=task_id,
                index=0,
                records=3,
            )
        )

    def test_trigger_fires_on_matching_event(self):
        cluster = build(self.trigger_campaign())
        assert cluster.worker("e0").engine.fault is None
        self.emit_chunk(cluster)
        assert isinstance(cluster.worker("e0").engine.fault, OmitRecordFault)
        # purely adaptive: injection time recorded at runtime
        assert cluster.campaign.first_injection_at == cluster.sim.now

    def test_once_disarms(self):
        cluster = build(self.trigger_campaign())
        self.emit_chunk(cluster)
        applied = len(cluster.campaign.applied)
        self.emit_chunk(cluster)
        assert len(cluster.campaign.applied) == applied

    def test_recurring_trigger_stays_armed(self):
        cluster = build(self.trigger_campaign(once=False))
        self.emit_chunk(cluster)
        self.emit_chunk(cluster)
        assert len(cluster.campaign.applied) == 2

    def test_where_filters_and_event_selector(self):
        campaign = Campaign(
            name="c",
            triggers=(
                Trigger(
                    on="task-assigned",
                    where=(("executor", "e1"),),
                    actions=(set_action("event:executor", "silent"),),
                ),
            ),
        )
        cluster = build(campaign)

        def assign(executor):
            cluster.bus.emit(
                TaskAssigned(
                    time=cluster.sim.now,
                    pid="v0",
                    task_id="t1",
                    executor=executor,
                    attempt=0,
                )
            )

        assign("e0")
        assert cluster.worker("e0").engine.fault is None
        assert cluster.worker("e1").engine.fault is None
        assign("e1")
        assert cluster.worker("e0").engine.fault is None
        assert isinstance(cluster.worker("e1").engine.fault, SilentFault)

    def test_after_delays_application(self):
        cluster = build(self.trigger_campaign(after=0.5))
        self.emit_chunk(cluster)
        assert cluster.worker("e0").engine.fault is None
        cluster.run(until=1.0)
        assert isinstance(cluster.worker("e0").engine.fault, OmitRecordFault)


class TestValidation:
    def test_unknown_trigger_kind_rejected_at_install(self):
        campaign = Campaign(
            name="c",
            triggers=(
                Trigger(on="no-such-event", actions=(set_action("e0"),)),
            ),
        )
        with pytest.raises(AdversaryError):
            build(campaign)

    def test_verifier_fault_on_non_verifier_rejected(self):
        campaign = Campaign(
            name="c",
            phases=(
                Phase(
                    at=0.0,
                    actions=(
                        set_action("e0", "negligent-leader", role="verifier"),
                    ),
                ),
            ),
        )
        with pytest.raises(AdversaryError):
            build(campaign)

    def test_double_install_rejected(self):
        campaign = Campaign(
            name="c", phases=(Phase(at=0.0, actions=(set_action("e0"),)),)
        )
        cluster = build(campaign)
        with pytest.raises(AdversaryError):
            cluster.campaign.install()

    def test_fresh_controller_on_same_cluster_is_fine(self):
        from repro.adversary import CampaignController

        campaign = Campaign(
            name="c", phases=(Phase(at=0.0, actions=(set_action("e0"),)),)
        )
        cluster = build(campaign)
        CampaignController(campaign, cluster).install()
        assert cluster.worker("e0").engine.fault is not None
