"""Adaptive campaigns are deterministic: triggers react to simulation
events through the bus, never to wall-clock or RNG, so the same campaign
on the same seed replays bit-identically — including the exact moment a
trigger fires and the fault it plants."""

import hashlib
import io
import json
import pathlib

from repro import api
from repro.adversary.library import turncoat
from repro.obs import JsonlTraceSink


def traced_run(seed=0, n_tasks=12):
    buf = io.StringIO()
    spec = api.DeploymentSpec(
        workload="anomaly",
        workload_params=(("n_tasks", n_tasks), ("profile", "MM")),
        n=8,
        seed=seed,
        config=(("suspect_timeout", 2.0),),
        faults=turncoat(),
        sinks=(JsonlTraceSink(buf),),
    )
    result = api.run(spec)
    return buf.getvalue(), result


class TestSameProcessReplay:
    def test_same_seed_same_campaign_identical_traces(self):
        text_a, result_a = traced_run(seed=3)
        text_b, result_b = traced_run(seed=3)
        assert text_a.encode() == text_b.encode()
        report_a = result_a.extra["recovery_report"]
        report_b = result_b.extra["recovery_report"]
        assert report_a.injected_at == report_b.injected_at

    def test_trigger_time_moves_with_the_seed(self):
        # sanity: the adaptive injection point is seed-dependent, so the
        # equality above is not pinning a hard-coded constant
        _, result_a = traced_run(seed=3)
        _, result_b = traced_run(seed=4)
        a = result_a.extra["recovery_report"].injected_at
        b = result_b.extra["recovery_report"].injected_at
        assert a is not None and b is not None
        assert a != b


class TestGoldenCampaignTrace:
    """Cross-session determinism for the adaptive path, mirroring the
    fig5 golden: the turncoat MM n=8 trace — honest warmup, triggered
    betrayal, detection, reassignment — is pinned to a committed
    fingerprint."""

    FIXTURE = (
        pathlib.Path(__file__).parent.parent
        / "obs"
        / "fixtures"
        / "turncoat_mm_n8.json"
    )

    def test_turncoat_mm_n8_trace_matches_committed_fingerprint(self):
        expected = json.loads(self.FIXTURE.read_text())
        buf = io.StringIO()
        spec = api.DeploymentSpec(
            workload="anomaly",
            workload_params=(
                ("n_tasks", expected["n_tasks"]),
                ("profile", expected["profile"]),
            ),
            n=expected["n"],
            seed=expected["seed"],
            config=(("suspect_timeout", expected["suspect_timeout"]),),
            faults=turncoat(),
            sanitize=True,
            sinks=(JsonlTraceSink(buf),),
        )
        result = api.run(spec)
        text = buf.getvalue()
        assert len(text.splitlines()) == expected["lines"]
        assert (
            hashlib.sha256(text.encode()).hexdigest() == expected["sha256"]
        ), (
            "same-seed campaign trace diverged from the committed golden "
            "fingerprint — a refactor changed when the trigger fires or "
            "what the fault does"
        )
        # the golden run is also a safety regression: the betrayal is
        # detected and nothing invalid is ever committed
        assert result.extra["recovery_report"].detections > 0
        assert result.sanitizer_violations == 0
