"""RecoverySink metrics: exact arithmetic on synthetic event streams."""

from repro.adversary import RECOVERY_FRACTION, RecoverySink
from repro.obs.events import (
    AdversaryAction,
    FaultDetected,
    RecordsAccepted,
    TaskReassigned,
)


def accept(sink, time, count):
    sink.handle(
        RecordsAccepted(time=time, pid="op0", task_id="t", count=count)
    )


def inject(sink, time, op="set"):
    sink.handle(
        AdversaryAction(
            time=time,
            pid="adversary",
            campaign="c",
            op=op,
            target="e0",
            role="executor",
            fault="silent",
        )
    )


class TestInjectionTracking:
    def test_first_set_is_the_injection(self):
        sink = RecoverySink()
        inject(sink, 3.0, op="clear")
        assert sink.injected_at is None  # clears are not injections
        inject(sink, 5.0)
        inject(sink, 7.0)
        assert sink.injected_at == 5.0
        assert sink.actions_applied == 3

    def test_latencies_measured_from_injection(self):
        sink = RecoverySink()
        sink.handle(
            FaultDetected(time=1.0, pid="v0", reason="x", culprit="e9")
        )  # pre-injection detection: counted, but not the latency anchor
        inject(sink, 5.0)
        sink.handle(
            FaultDetected(time=6.5, pid="v0", reason="x", culprit="e0")
        )
        sink.handle(TaskReassigned(time=7.0, pid="v0", task_id="t", attempt=1))
        report = sink.report(campaign="c", until=10.0)
        assert report.detection_latency == 1.5
        assert report.reassignment_latency == 2.0
        assert report.detections == 2
        assert report.reassignments == 1


class TestThroughputMetrics:
    def fed_sink(self):
        """10 rec/s for t∈[2,10), dip to 2 rec/s for [11,14), back to 10."""
        sink = RecoverySink(bin_seconds=1.0)
        for t in range(2, 10):
            accept(sink, t + 0.5, 10)
        inject(sink, 10.0)
        for t in range(11, 14):
            accept(sink, t + 0.5, 2)
        for t in range(14, 20):
            accept(sink, t + 0.5, 10)
        return sink

    def test_pre_fault_throughput_skips_warmup(self):
        report = self.fed_sink().report(campaign="c", until=20.0)
        # bins 0-1 are empty warmup; bins 2..9 hold 10 rec/s
        assert report.pre_throughput == 10.0

    def test_dip_depth_and_duration(self):
        report = self.fed_sink().report(campaign="c", until=20.0)
        assert report.dip_throughput == 2.0
        assert report.dip_depth == 1.0 - 2.0 / 10.0
        # bins 11,12,13 sit below 90% of 10 rec/s
        assert report.dip_duration == 3.0

    def test_recovery_point_and_latency(self):
        report = self.fed_sink().report(campaign="c", until=20.0)
        assert report.recovered
        assert report.recovered_at == 14.0
        assert report.time_to_recover == 4.0

    def test_recovery_requires_sustained_bins(self):
        """A single above-threshold blip must not count as recovered."""
        sink = RecoverySink(bin_seconds=1.0)
        for t in range(0, 5):
            accept(sink, t + 0.5, 10)
        inject(sink, 5.0)
        accept(sink, 6.5, 10)  # blip
        accept(sink, 7.5, 1)
        accept(sink, 8.5, 1)
        report = sink.report(campaign="c", until=9.0)
        assert not report.recovered
        assert report.time_to_recover is None

    def test_no_injection_no_window_metrics(self):
        sink = RecoverySink()
        accept(sink, 1.5, 10)
        report = sink.report(campaign="c", until=5.0)
        assert report.injected_at is None
        assert report.pre_throughput is None
        assert report.recovered_at is None
        assert report.records_accepted == 10

    def test_t0_injection_has_no_pre_window(self):
        sink = RecoverySink()
        inject(sink, 0.0)
        for t in range(1, 5):
            accept(sink, t + 0.5, 10)
        report = sink.report(campaign="c", until=5.0)
        assert report.injected_at == 0.0
        assert report.pre_throughput is None
        assert report.dip_depth is None


class TestVerdicts:
    def test_safety_verdict(self):
        sink = RecoverySink()
        assert sink.report(campaign="c").safe is None  # not sanitized
        assert sink.report(campaign="c", sanitizer_violations=0).safe is True
        assert sink.report(campaign="c", sanitizer_violations=2).safe is False

    def test_to_dict_is_json_scalars(self):
        import json

        sink = self_ = RecoverySink()
        inject(self_, 1.0)
        d = sink.report(campaign="c", until=2.0, sanitizer_violations=0).to_dict()
        json.dumps(d)  # must not raise
        assert d["campaign"] == "c"
        assert d["safe"] is True

    def test_threshold_constant_sane(self):
        assert 0.5 < RECOVERY_FRACTION < 1.0
