"""End-to-end campaign runs: safety regressions and recovery reporting.

These are the scenario-level regression tests the campaign engine was
built to express:

* a mismatching executor against the *anomaly* app must be detected
  (its records carry no payload, so a corrupted-but-valid-key record is
  outside A(s, t) — a gap the attack matrix originally exposed);
* the slow/silent × speculative-reassignment race must keep acceptance
  exactly-once (two attempts of the same task racing verified chunks to
  the OP);
* campaign runs must fold a recovery report into the scenario result.
"""

from repro import api
from repro.adversary import Action, Campaign, FaultSpec, Phase
from repro.adversary.library import silent_minority, slow_then_recover


def run_synthetic(campaign, n_tasks=12, records_per_task=5, n=5, **spec_over):
    spec_kwargs = dict(
        workload="synthetic",
        workload_params=(
            ("compute_cost", 0.12),
            ("n_tasks", n_tasks),
            ("records_per_task", records_per_task),
        ),
        n=n,
        seed=0,
        config=(("suspect_timeout", 0.5),),
        faults=campaign,
        sanitize=True,
    )
    spec_kwargs.update(spec_over)
    return api.run(api.DeploymentSpec(**spec_kwargs))


def campaign_of(kind, select="e0", at=0.0, **params):
    return Campaign(
        name=f"test-{kind}",
        phases=(
            Phase(
                at=at,
                actions=(
                    Action(
                        op="set",
                        select=select,
                        fault=FaultSpec(
                            role="executor",
                            kind=kind,
                            params=tuple(params.items()),
                        ),
                    ),
                ),
            ),
        ),
    )


class TestAnomalyMismatchDetection:
    """Regression: anomaly records are bare match tuples; a record with
    corrupted payload data must fail ``is_valid`` (r ∈ A(s, t) is on the
    whole record), not slip through to the OP."""

    def run_mm(self, campaign):
        return api.run(
            api.DeploymentSpec(
                workload="anomaly",
                workload_params=(("n_tasks", 20), ("profile", "MM")),
                n=8,
                seed=0,
                config=(("suspect_timeout", 2.0),),
                faults=campaign,
                sanitize=True,
            )
        )

    def test_corrupt_record_is_detected_and_never_committed(self):
        result = self.run_mm(campaign_of("corrupt-record", select="e0"))
        assert result.sanitizer_violations == 0
        assert result.extra["faults_detected"] > 0
        report = result.extra["recovery_report"]
        assert report.safe is True
        assert report.detections > 0

    def test_fabricated_record_is_detected(self):
        result = self.run_mm(campaign_of("fabricate-record", select="e0"))
        assert result.sanitizer_violations == 0
        assert result.extra["faults_detected"] > 0


class TestReassignmentRaceExactlyOnce:
    """Slow/silent × speculative reassignment: the losing attempt's
    chunks must never double-accept records (ConservationSink guards
    the invariant; the totals pin it at scenario level)."""

    def test_slow_executor_race(self):
        campaign = campaign_of("slow", select="e0", delay=5.0)
        result = run_synthetic(campaign)
        assert result.records == 12 * 5  # exactly once, no duplicates
        assert result.sanitizer_violations == 0
        assert result.extra["reassignments"] > 0  # the race actually ran

    def test_silent_executor_race(self):
        campaign = campaign_of("silent", select="e0", at=1.0)
        result = run_synthetic(campaign)
        assert result.records == 12 * 5
        assert result.sanitizer_violations == 0
        assert result.extra["reassignments"] > 0

    def test_slow_then_recover_clears_mid_race(self):
        campaign = slow_then_recover(at=0.0, until=3.0, count=1, delay=4.0)
        result = run_synthetic(campaign)
        assert result.records == 12 * 5
        assert result.sanitizer_violations == 0


class TestRecoveryFoldedIntoResult:
    def test_report_and_flattened_scalars(self):
        result = run_synthetic(silent_minority(at=1.0, count=1))
        report = result.extra["recovery_report"]
        assert report.campaign == "silent-minority"
        assert report.injected_at == 1.0
        assert report.safe is True
        assert result.recovery["injected_at"] == 1.0
        assert result.recovery["records_accepted"] == result.records
        assert result.recovery["safe"] is True

    def test_scalars_survive_serialization(self):
        result = run_synthetic(silent_minority(at=1.0, count=1))
        d = result.to_dict()
        assert d["recovery"]["injected_at"] == 1.0
        assert "recovery_report" not in d["extra"]  # live handle dropped
        again = type(result).from_dict(d)
        assert again.recovery == result.recovery

    def test_no_campaign_no_recovery_keys(self):
        result = run_synthetic(None)
        assert "recovery_report" not in result.extra
