"""Built-in campaign library: shape, serializability, registry."""

from repro.adversary import BUILTIN, Campaign
from repro.adversary.library import coup, fig7a, slow_then_recover, turncoat


class TestRegistry:
    def test_every_builtin_is_a_valid_serializable_campaign(self):
        for name, factory in BUILTIN.items():
            campaign = factory()
            assert campaign.name == name
            assert not campaign.empty
            assert campaign.note
            assert Campaign.from_json(campaign.to_json()) == campaign

    def test_names_match_keys(self):
        assert set(BUILTIN) == {
            "fig7a",
            "mass-equivocation",
            "silent-minority",
            "negligent-cluster",
            "slow-then-recover",
            "turncoat",
            "coup",
        }


class TestShapes:
    def test_fig7a_hits_all_executors_at_45(self):
        campaign = fig7a()
        assert campaign.first_injection() == 45.0
        (phase,) = campaign.phases
        (action,) = phase.actions
        assert action.select == "executors"
        assert action.fault.kind == "corrupt-record"

    def test_fig7a_is_retimeable(self):
        assert fig7a(at=10.0).first_injection() == 10.0

    def test_slow_then_recover_has_remission(self):
        campaign = slow_then_recover(at=5.0, until=9.0)
        ops = [a.op for p in campaign.phases for a in p.actions]
        assert ops == ["set", "clear"]
        assert [p.at for p in campaign.phases] == [5.0, 9.0]

    def test_turncoat_is_purely_adaptive(self):
        campaign = turncoat()
        assert not campaign.phases
        assert campaign.first_injection() is None
        (trigger,) = campaign.triggers
        assert trigger.on == "chunk-accepted"
        assert trigger.once

    def test_coup_corrupts_the_successor(self):
        campaign = coup(index=1)
        (trigger,) = campaign.triggers
        assert trigger.on == "leader-election"
        assert dict(trigger.where) == {"vp_index": 1}
        (action,) = trigger.actions
        assert action.select == "event:new-leader"
