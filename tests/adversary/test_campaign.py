"""Campaign vocabulary: validation, serialization identity, selectors."""

import pytest

from repro.adversary import (
    Action,
    Campaign,
    FaultSpec,
    Phase,
    Trigger,
    resolve_selector,
)
from repro.errors import AdversaryError
from repro.net.topology import SubCluster, Topology
from repro.obs.events import FaultDetected, LeaderElection, TaskAssigned


def topo2():
    """ip0/op0, e0..e3, two verifier sub-clusters of 3."""
    return Topology(
        input_pids=("ip0",),
        output_pids=("op0",),
        executor_pids=("e0", "e1", "e2", "e3"),
        verifier_clusters=(
            SubCluster(index=0, members=("v0", "v1", "v2"), f=1),
            SubCluster(index=1, members=("v3", "v4", "v5"), f=1),
        ),
        f=1,
    )


def set_action(select="executors", kind="silent", **params):
    return Action(
        op="set",
        select=select,
        fault=FaultSpec(role="executor", kind=kind, params=tuple(params.items())),
    )


class TestFaultSpec:
    def test_builds_fresh_strategies(self):
        spec = FaultSpec(role="executor", kind="slow", params=(("delay", 2.0),))
        a, b = spec.build(), spec.build()
        assert a is not b
        assert a.delay == 2.0

    def test_rejects_unknown_role_and_kind(self):
        with pytest.raises(AdversaryError):
            FaultSpec(role="scheduler", kind="slow")
        with pytest.raises(AdversaryError):
            FaultSpec(role="executor", kind="teleport")

    def test_params_normalized_sorted(self):
        spec = FaultSpec(
            role="executor", kind="slow",
            params=(("delay", 1.0), ("activate_at", 3.0)),
        )
        assert spec.params == (("activate_at", 3.0), ("delay", 1.0))

    def test_rejects_non_scalar_params(self):
        with pytest.raises(AdversaryError):
            FaultSpec(role="executor", kind="slow", params=(("delay", [1]),))


class TestActionPhaseTrigger:
    def test_set_needs_fault_clear_forbids_it(self):
        with pytest.raises(AdversaryError):
            Action(op="set", select="executors")
        with pytest.raises(AdversaryError):
            Action(
                op="clear",
                select="executors",
                fault=FaultSpec(role="executor", kind="silent"),
            )
        with pytest.raises(AdversaryError):
            Action(op="swap", select="executors")

    def test_phase_validation(self):
        with pytest.raises(AdversaryError):
            Phase(at=-1.0, actions=(set_action(),))
        with pytest.raises(AdversaryError):
            Phase(at=0.0, actions=())

    def test_trigger_validation(self):
        with pytest.raises(AdversaryError):
            Trigger(on="chunk-accepted", actions=())
        with pytest.raises(AdversaryError):
            Trigger(on="chunk-accepted", actions=(set_action(),), after=-1.0)


class TestCampaign:
    def campaign(self):
        return Campaign(
            name="demo",
            note="two phases, one trigger",
            phases=(
                Phase(at=5.0, name="hit", actions=(set_action(),)),
                Phase(
                    at=9.0,
                    name="remit",
                    actions=(Action(op="clear", select="executors"),),
                ),
            ),
            triggers=(
                Trigger(
                    on="chunk-accepted",
                    actions=(set_action("e0", "omit-record"),),
                ),
            ),
        )

    def test_json_roundtrip_is_identity(self):
        c = self.campaign()
        assert Campaign.from_json(c.to_json()) == c

    def test_canonical_json_is_stable(self):
        c = self.campaign()
        assert c.to_json() == Campaign.from_json(c.to_json()).to_json()

    def test_malformed_json_raises(self):
        with pytest.raises(AdversaryError):
            Campaign.from_json("{not json")
        with pytest.raises(AdversaryError):
            Campaign.from_json('{"phases": []}')  # missing name

    def test_first_injection_ignores_clear_only_phases(self):
        assert self.campaign().first_injection() == 5.0
        adaptive = Campaign(
            name="a",
            triggers=(
                Trigger(on="chunk-accepted", actions=(set_action(),)),
            ),
        )
        assert adaptive.first_injection() is None

    def test_empty(self):
        assert Campaign(name="x").empty
        assert not self.campaign().empty


class TestSelectors:
    def test_roles_and_pids(self):
        topo = topo2()
        assert resolve_selector("executors", topo) == ("e0", "e1", "e2", "e3")
        assert resolve_selector("coordinators", topo) == ("v0", "v1", "v2")
        assert resolve_selector("outputs", topo) == ("op0",)
        assert resolve_selector("verifiers", topo) == tuple(
            f"v{i}" for i in range(6)
        )
        assert resolve_selector("e2", topo) == ("e2",)

    def test_cluster_and_slices(self):
        topo = topo2()
        assert resolve_selector("cluster:1", topo) == ("v3", "v4", "v5")
        assert resolve_selector("cluster:1[:2]", topo) == ("v3", "v4")
        assert resolve_selector("executors[1:3]", topo) == ("e1", "e2")
        assert resolve_selector("executors[:]", topo) == ("e0", "e1", "e2", "e3")

    def test_event_field_selectors(self):
        topo = topo2()
        assigned = TaskAssigned(
            time=1.0, pid="v0", task_id="t1", executor="e3", attempt=0
        )
        assert resolve_selector("event:executor", topo, assigned) == ("e3",)
        detected = FaultDetected(
            time=1.0, pid="v3", reason="digest-mismatch", culprit="e1"
        )
        assert resolve_selector("event:culprit", topo, detected) == ("e1",)

    def test_event_new_leader(self):
        topo = topo2()
        election = LeaderElection(time=2.0, pid="v4", vp_index=1, term=2)
        assert resolve_selector("event:new-leader", topo, election) == (
            topo.cluster(1).leader_at(2),
        )

    def test_errors(self):
        topo = topo2()
        with pytest.raises(AdversaryError):
            resolve_selector("event:pid", topo)  # outside a trigger
        with pytest.raises(AdversaryError):
            resolve_selector("e9", topo)
        with pytest.raises(AdversaryError):
            resolve_selector("e0[:1]", topo)
        with pytest.raises(AdversaryError):
            resolve_selector("executors[0]", topo)  # index, not a range
        with pytest.raises(AdversaryError):
            resolve_selector("cluster:x", topo)
        with pytest.raises(AdversaryError):
            # task-id field is not a pid
            assigned = TaskAssigned(
                time=1.0, pid="v0", task_id="t1", executor="e0", attempt=0
            )
            resolve_selector("event:attempt", topo, assigned)
