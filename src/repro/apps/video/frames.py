"""Synthetic video feed and the multiversioned frame-window state.

The paper's Video Analysis application "operates on frequently updating
video feed and periodically computes pixel clusters" for segmentation /
motion detection.  We stand in for camera frames with moving-Gaussian-
blob point clouds (x, y, intensity): blobs drift between frames, so
clusters move over time, exactly what a k-means segmentation tracks.

State updates append frames; computation tasks cluster the points of
the most recent ``window`` frames at their snapshot version —
multiversioning keeps old frames alive for in-flight tasks while new
frames stream in.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

import numpy as np

from repro.errors import StoreError
from repro.store.state_machine import VersionedState

__all__ = ["VideoState", "VideoView", "frame_stream"]


class VideoState(VersionedState):
    """Append-only multiversioned store of frames (point clouds)."""

    def __init__(self, apply_cost_per_point: float = 1e-8) -> None:
        self._ts: list[int] = []
        self._frames: list[np.ndarray] = []
        self.apply_cost_per_point = apply_cost_per_point

    def apply(self, ts: int, payload) -> float:
        if self._ts and ts <= self._ts[-1]:
            raise StoreError(f"non-monotonic frame ts={ts}")
        frame = np.asarray(payload, dtype=np.float64)
        if frame.ndim != 2 or frame.shape[1] < 2:
            raise StoreError("frame must be an (n_points, dims>=2) array")
        self._ts.append(ts)
        self._frames.append(frame)
        return self.apply_cost_per_point * len(frame)

    def snapshot(self, ts: int) -> "VideoView":
        return VideoView(self, ts)

    def frames_at(self, ts: int, window: int) -> list[np.ndarray]:
        hi = bisect_right(self._ts, ts)
        lo = max(0, hi - window)
        return self._frames[lo:hi]


class VideoView:
    """Read view over the last ``window`` frames as of a version."""

    __slots__ = ("_state", "ts")

    def __init__(self, state: VideoState, ts: int) -> None:
        self._state = state
        self.ts = ts

    def points(self, window: int) -> np.ndarray:
        """Concatenated points of the window (empty (0,3) if no frames)."""
        frames = self._state.frames_at(self.ts, window)
        if not frames:
            return np.empty((0, 3))
        return np.concatenate(frames, axis=0)

    def frame_count(self) -> int:
        return len(self._state.frames_at(self.ts, 10**9))


def frame_stream(
    n_frames: int,
    points_per_frame: int = 400,
    n_blobs: int = 6,
    seed: int = 0,
    arena: float = 100.0,
) -> Iterator[np.ndarray]:
    """Deterministic moving-blob frames: (points, 3) float arrays."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1 * arena, 0.9 * arena, size=(n_blobs, 2))
    velocity = rng.uniform(-1.5, 1.5, size=(n_blobs, 2))
    intensity = rng.uniform(30, 220, size=n_blobs)
    for _ in range(n_frames):
        per_blob = points_per_frame // n_blobs
        parts = []
        for b in range(n_blobs):
            xy = rng.normal(centers[b], 2.5, size=(per_blob, 2))
            lum = rng.normal(intensity[b], 6.0, size=(per_blob, 1))
            parts.append(np.hstack([xy, lum]))
        rest = points_per_frame - per_blob * n_blobs
        if rest:
            noise = np.hstack(
                [
                    rng.uniform(0, arena, size=(rest, 2)),
                    rng.uniform(0, 255, size=(rest, 1)),
                ]
            )
            parts.append(noise)
        centers = centers + velocity
        centers = np.clip(centers, 0, arena)
        yield np.concatenate(parts, axis=0)
