"""Lloyd's k-means with deterministic seeding and stability checking.

The executor runs k-means to convergence (many assignment passes); the
verifier checks *Lloyd stability* in a single pass: each reported
centroid must equal the mean of the points assigned to it under
nearest-centroid assignment, with matching cluster sizes.  That is the
paper's "verifiers check the optimality of centroids" — an
iterations-fold cheaper check than re-running the clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ApplicationError

__all__ = ["KMeansResult", "lloyd", "check_stability", "assign"]


@dataclass(frozen=True)
class KMeansResult:
    """Converged centroids (sorted lexicographically), sizes, and the
    work counter (total point-centroid distance evaluations)."""

    centroids: np.ndarray
    sizes: np.ndarray
    iterations: int
    distance_evals: int


def _seed_centroids(points: np.ndarray, k: int, seed: int) -> np.ndarray:
    """k-means++ style deterministic seeding."""
    rng = np.random.default_rng(seed)
    first = int(rng.integers(0, len(points)))
    centroids = [points[first]]
    d2 = np.full(len(points), np.inf)
    for _ in range(1, k):
        diff = points - centroids[-1]
        d2 = np.minimum(d2, np.einsum("ij,ij->i", diff, diff))
        total = float(d2.sum())
        if total <= 0:
            centroids.append(points[int(rng.integers(0, len(points)))])
            continue
        target = rng.random() * total
        idx = int(np.searchsorted(np.cumsum(d2), target))
        centroids.append(points[min(idx, len(points) - 1)])
    return np.array(centroids)


def assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (ties break to the lowest index)."""
    d = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2 * points @ centroids.T
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    return np.argmin(d, axis=1)


def lloyd(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> KMeansResult:
    """Run Lloyd's algorithm to (local) convergence."""
    if len(points) < k:
        raise ApplicationError(f"need >= k={k} points, got {len(points)}")
    centroids = _seed_centroids(points, k, seed)
    evals = len(points) * k  # seeding pass, roughly
    labels = assign(points, centroids)
    for it in range(1, max_iter + 1):
        new = np.empty_like(centroids)
        for j in range(k):
            members = points[labels == j]
            new[j] = members.mean(axis=0) if len(members) else centroids[j]
        centroids = new
        new_labels = assign(points, centroids)
        evals += len(points) * k
        if (new_labels == labels).all():
            # exact fixed point: assignment reproduces the centroids that
            # produced it — precisely what the verifier will re-check
            break
        labels = new_labels
    sizes = np.bincount(labels, minlength=k)
    order = np.lexsort(centroids.T[::-1])
    return KMeansResult(
        centroids=centroids[order],
        sizes=sizes[order],
        iterations=it,
        distance_evals=evals,
    )


def check_stability(
    points: np.ndarray,
    centroids: np.ndarray,
    sizes: np.ndarray,
    tol: float = 1e-6,
) -> bool:
    """Single-pass Lloyd-stability check (the verification operator).

    Accepts iff nearest-centroid assignment reproduces the claimed sizes
    and every non-empty cluster's mean equals its centroid within tol.
    """
    if len(centroids) == 0 or len(points) == 0:
        return len(centroids) == 0
    labels = assign(points, centroids)
    actual_sizes = np.bincount(labels, minlength=len(centroids))
    if not (actual_sizes == np.asarray(sizes)).all():
        return False
    for j in range(len(centroids)):
        members = points[labels == j]
        if len(members) == 0:
            continue
        if np.abs(members.mean(axis=0) - centroids[j]).max() > tol:
            return False
    return True
