"""Video Analysis: streaming pixel clustering with verifiable centroids."""

from repro.apps.video.app import VideoApp, make_cluster_task, make_frame_task
from repro.apps.video.frames import VideoState, VideoView, frame_stream
from repro.apps.video.kmeans import KMeansResult, assign, check_stability, lloyd

__all__ = [
    "KMeansResult",
    "VideoApp",
    "VideoState",
    "VideoView",
    "assign",
    "check_stability",
    "frame_stream",
    "lloyd",
    "make_cluster_task",
    "make_frame_task",
]
