"""Video Analysis as a verifiable application.

Time-based analytics (Sec 4.1 case ii): frame tasks define only U,
periodic clustering tasks define only A.  Each clustering task emits k
records — one per pixel cluster, sorted by centroid — and every record
embeds the full centroid context so a verifier can check Lloyd
stability for that record's cluster in one assignment pass.

Like the paper's formulation, verification certifies *local optimality*
of the reported centroids (any Lloyd-stable configuration passes); the
deterministic per-task seed makes the honest output unique in practice.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.apps.video.frames import VideoState, VideoView
from repro.apps.video.kmeans import check_stability, lloyd
from repro.core.api import ComputeResult, CountResult, VerifiableApplication
from repro.core.tasks import Opcode, Record, Task

__all__ = ["VideoApp", "make_frame_task", "make_cluster_task"]


def make_frame_task(i: int, frame: np.ndarray) -> Task:
    """A state-update task carrying one video frame."""
    return Task(
        task_id=f"frame{i}",
        opcode=Opcode.UPDATE,
        update_payload=frame,
        size_bytes=int(frame.size * 8),
    )


def make_cluster_task(i: int, k: int = 8, window: int = 4) -> Task:
    """A periodic clustering (computation-only) task."""
    return Task(
        task_id=f"cluster{i}",
        opcode=Opcode.COMPUTE,
        compute_payload={"k": k, "window": window},
        size_bytes=48,
    )


def _task_seed(task_id: str) -> int:
    return int.from_bytes(
        hashlib.sha256(task_id.encode()).digest()[:4], "big"
    )


class VideoApp(VerifiableApplication):
    """Streaming pixel clustering with centroid-optimality verification.

    Parameters
    ----------
    eval_cost:
        Simulated seconds per point-centroid distance evaluation; the
        executor's cost is ``distance_evals × eval_cost`` (measured from
        the actual run), the verifier's one stability pass is
        ``n_points × k × eval_cost``.
    """

    name = "video-analysis"

    def __init__(
        self,
        eval_cost: float = 5e-8,
        record_bytes: int = 512,
        max_k: int = 64,
    ) -> None:
        self.eval_cost = eval_cost
        self.record_bytes = record_bytes
        self.max_k = max_k

    # ----------------------------------------------------------------- state
    def initial_state(self) -> VideoState:
        return VideoState()

    # ------------------------------------------------------------------- T
    def valid_task(self, task: Task) -> bool:
        if task.opcode.has_update:
            frame = task.update_payload
            if not isinstance(frame, np.ndarray) or frame.ndim != 2:
                return False
            if frame.shape[1] < 2 or len(frame) == 0:
                return False
        if task.opcode.has_compute:
            cp = task.compute_payload
            if not isinstance(cp, dict):
                return False
            k, window = cp.get("k"), cp.get("window")
            if not isinstance(k, int) or not 1 <= k <= self.max_k:
                return False
            if not isinstance(window, int) or window < 1:
                return False
        return True

    # ------------------------------------------------------------------- A
    def compute(self, view: VideoView, task: Task) -> ComputeResult:
        cp = task.compute_payload
        k, window = cp["k"], cp["window"]
        points = view.points(window)
        if len(points) < k:
            return ComputeResult(records=(), cost=1e-6)
        result = lloyd(points, k, seed=_task_seed(task.task_id))
        records = tuple(
            Record(
                key=tuple(round(float(c), 9) for c in result.centroids[j]),
                data={
                    "size": int(result.sizes[j]),
                    "all_centroids": result.centroids,
                    "all_sizes": result.sizes,
                },
                size_bytes=self.record_bytes,
            )
            for j in range(k)
        )
        return ComputeResult(
            records=records, cost=result.distance_evals * self.eval_cost
        )

    # ------------------------------------------------- verification operators
    def is_valid(self, view: VideoView, record: Record, task: Task) -> bool:
        cp = task.compute_payload
        k, window = cp["k"], cp["window"]
        data = record.data
        if not isinstance(data, dict):
            return False
        cents = data.get("all_centroids")
        sizes = data.get("all_sizes")
        if not isinstance(cents, np.ndarray) or cents.shape[0] != k:
            return False
        if not isinstance(sizes, np.ndarray) or len(sizes) != k:
            return False
        # the record's key must be one of the claimed centroids…
        keys = {
            tuple(round(float(c), 9) for c in cents[j]) for j in range(k)
        }
        if record.key not in keys:
            return False
        points = view.points(window)
        if len(points) < k:
            return False  # no records expected for starved windows
        # …and the claimed configuration must be Lloyd-stable on the
        # actual window, with sizes matching (one assignment pass)
        return check_stability(points, cents, sizes)

    def output_size(self, view: VideoView, task: Task) -> CountResult:
        cp = task.compute_payload
        k, window = cp["k"], cp["window"]
        points = view.points(window)
        count = k if len(points) >= k else 0
        return CountResult(count=count, cost=1e-6)

    def verify_record_cost(self, record: Record) -> float:
        # one stability pass over the window validates the context shared
        # by all k records; amortize it across them (n·k evals / k)
        data = record.data if isinstance(record.data, dict) else {}
        cents = data.get("all_centroids")
        k = max(1, len(cents) if isinstance(cents, np.ndarray) else 1)
        sizes = data.get("all_sizes")
        n = int(np.sum(sizes)) if isinstance(sizes, np.ndarray) else 1000
        return n * k * self.eval_cost / k
