"""Synthetic verifiable application with dial-a-workload knobs.

Used by protocol tests and by the bottleneck benches to place workloads
anywhere on the CPU-cost × output-size plane (the paper's LH/HL/MM axes)
without the noise of a real algorithm.  The "computation" derives a
deterministic pseudo-random record stream from the task id; the state is
a KV map so update/compute/both opcodes all exercise real store paths.

Despite being synthetic it is a *bona fide* verifiable application:
``is_valid`` recomputes what the record at that position must be, and
``output_size`` knows the exact count, so every output failure class is
detectable exactly as in a real app.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.core.api import ComputeResult, CountResult, VerifiableApplication
from repro.core.tasks import Record, Task
from repro.store.state_machine import KVState

__all__ = ["SyntheticApp", "make_compute_task", "make_update_task"]


def _h(task_id: str, i: int) -> int:
    raw = hashlib.sha256(f"{task_id}:{i}".encode()).digest()
    return int.from_bytes(raw[:8], "big")


class SyntheticApp(VerifiableApplication):
    """Deterministic workload generator posing as an application.

    Parameters
    ----------
    records_per_task:
        |A(s, t)| for every compute task (overridable per task via the
        ``n`` field of the compute payload).
    compute_cost:
        Simulated seconds of executor CPU per task.
    count_cost_ratio / verify_cost_ratio:
        outputSize cost and total per-task verification cost as fractions
        of ``compute_cost`` — the paper's premise is that both are ≪ 1.
    record_bytes:
        Wire size per record (drives the output-volume axis).
    """

    name = "synthetic"

    def __init__(
        self,
        records_per_task: int = 10,
        compute_cost: float = 10e-3,
        count_cost_ratio: float = 0.05,
        verify_cost_ratio: float = 0.1,
        record_bytes: int = 64,
    ) -> None:
        self.records_per_task = records_per_task
        self.compute_cost = compute_cost
        self.count_cost_ratio = count_cost_ratio
        self.verify_cost_ratio = verify_cost_ratio
        self.record_bytes = record_bytes

    # ----------------------------------------------------------------- state
    def initial_state(self) -> KVState:
        return KVState()

    # ------------------------------------------------------------------ U/A
    def valid_task(self, task: Task) -> bool:
        if task.opcode.has_compute:
            payload = task.compute_payload
            if not isinstance(payload, dict) or payload.get("n", 0) < 0:
                return False
        if task.opcode.has_update:
            if task.update_payload is None:
                return False
        return True

    def _count(self, task: Task) -> int:
        payload = task.compute_payload or {}
        return int(payload.get("n", self.records_per_task))

    def _expected_record(self, task: Task, i: int) -> Record:
        return Record(
            key=(i,),
            data=_h(task.task_id, i),
            size_bytes=self.record_bytes,
        )

    def compute(self, view: Any, task: Task) -> ComputeResult:
        n = self._count(task)
        records = tuple(self._expected_record(task, i) for i in range(n))
        return ComputeResult(records=records, cost=self.compute_cost)

    # ------------------------------------------------- verification operators
    def is_valid(self, view: Any, record: Record, task: Task) -> bool:
        if len(record.key) != 1 or not isinstance(record.key[0], int):
            return False
        i = record.key[0]
        if not 0 <= i < self._count(task):
            return False
        return record.data == _h(task.task_id, i)

    def output_size(self, view: Any, task: Task) -> CountResult:
        return CountResult(
            count=self._count(task),
            cost=self.compute_cost * self.count_cost_ratio,
        )

    def verify_record_cost(self, record: Record) -> float:
        n = max(1, self.records_per_task)
        return self.compute_cost * self.verify_cost_ratio / n


def make_update_task(i: int, key: str = "k", value: Any = None) -> Task:
    """A pure state-update task for the synthetic app."""
    from repro.core.tasks import Opcode

    return Task(
        task_id=f"u{i}",
        opcode=Opcode.UPDATE,
        update_payload=("put", key, value if value is not None else i),
    )


def make_compute_task(i: int, n: Optional[int] = None) -> Task:
    """A pure computation task for the synthetic app."""
    from repro.core.tasks import Opcode

    return Task(
        task_id=f"c{i}",
        opcode=Opcode.COMPUTE,
        compute_payload={} if n is None else {"n": n},
    )
