"""Verifiable applications: the paper's three workloads plus a synthetic
dial-a-workload app for protocol benchmarking.

* :mod:`repro.apps.anomaly`   — Anomaly Detection (pattern matching on a
  dynamic network graph).
* :mod:`repro.apps.planning`  — Motion Planning (MIP solving with
  optimality/infeasibility certificates).
* :mod:`repro.apps.video`     — Video Analysis (k-means pixel clustering
  with centroid-optimality verification).
* :mod:`repro.apps.synthetic` — configurable CPU/output workload.
"""

from repro.apps.synthetic import SyntheticApp, make_compute_task, make_update_task

__all__ = ["SyntheticApp", "make_compute_task", "make_update_task"]
