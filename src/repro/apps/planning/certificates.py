"""Certificate verification for Motion Planning records.

The verifier-side counterpart of the solver's proofs — the analogue of
SCIP's built-in proof validation [21] that the paper's verification
operators call.  Verification never *searches*: it walks the certificate
tree, accumulating the branching box, and checks each leaf:

* **bound / incumbent leaves** — weak duality.  Given multipliers
  y, μ_l, μ_u ≥ 0 with ``c + Aᵀy − μ_l + μ_u = 0``, every feasible x in
  the leaf box [l, u] satisfies::

      c·x = (μ_l − μ_u − Aᵀy)·x ≥ μ_l·l − μ_u·u − y·b

  so ``μ_l·l − μ_u·u − y·b ≥ obj − tol`` proves no better point exists
  in that box — a handful of dense dot products.
* **infeasible / resolve leaves** — one LP re-solve of the leaf box
  (still no tree search; the paper's point is avoiding re-computation,
  not avoiding every LP).

Plus the global checks: the branching tree partitions the root domain
(so the leaves cover everything) and the claimed solution is feasible,
integral and matches the claimed objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.apps.planning.branch_bound import CertNode
from repro.apps.planning.mip import MipInstance

__all__ = ["CertificateVerifier", "VerifyOutcome"]

_TOL = 1e-5


@dataclass(frozen=True)
class VerifyOutcome:
    """Verification verdict plus the work counter for the cost model."""

    ok: bool
    reason: str
    leaves_checked: int
    lp_resolves: int


class CertificateVerifier:
    """Checks optimality/infeasibility certificates against an instance."""

    def __init__(self, max_lp_resolves: int = 64) -> None:
        self.max_lp_resolves = max_lp_resolves

    # ------------------------------------------------------------ public
    def verify_optimal(
        self, inst: MipInstance, x, objective: float, cert: CertNode
    ) -> VerifyOutcome:
        """Check a claimed optimal solution + certificate."""
        x = np.asarray(x, dtype=float)
        if not inst.is_feasible(x):
            return VerifyOutcome(False, "solution-infeasible", 0, 0)
        if abs(inst.objective(x) - objective) > 1e-4:
            return VerifyOutcome(False, "objective-mismatch", 0, 0)
        return self._walk(inst, cert, objective)

    def verify_infeasible(
        self, inst: MipInstance, cert: CertNode
    ) -> VerifyOutcome:
        """Check a claimed infeasibility certificate: every leaf of the
        partition must itself be (LP-)infeasible."""
        return self._walk(inst, cert, objective=None)

    # ----------------------------------------------------------- tree walk
    def _walk(self, inst: MipInstance, cert: CertNode, objective):
        state = {"leaves": 0, "resolves": 0}
        ok, reason = self._check_node(
            inst,
            cert,
            inst.lower.copy().astype(float),
            inst.upper.copy().astype(float),
            objective,
            state,
        )
        return VerifyOutcome(ok, reason, state["leaves"], state["resolves"])

    def _check_node(self, inst, node, lower, upper, objective, state):
        if node is None:
            return False, "missing-node"
        if node.kind == "branch":
            i = node.branch_var
            if not 0 <= i < inst.n_vars or not inst.integer[i]:
                return False, "bad-branch-var"
            val = node.branch_val
            if val != np.floor(val):
                return False, "bad-branch-val"
            up_l = upper.copy()
            up_l[i] = min(up_l[i], val)
            lo_r = lower.copy()
            lo_r[i] = max(lo_r[i], val + 1.0)
            ok, reason = self._check_node(
                inst, node.left, lower, up_l, objective, state
            )
            if not ok:
                return ok, reason
            return self._check_node(
                inst, node.right, lo_r, upper, objective, state
            )

        state["leaves"] += 1
        if (lower > upper).any():
            return True, "ok"  # empty box: vacuously covered
        if node.kind in ("bound", "incumbent") and node.duals is not None:
            if objective is None:
                # an infeasibility claim cannot contain feasible leaves
                return False, "feasible-leaf-in-infeasible-claim"
            return self._check_dual_bound(
                inst, node.duals, lower, upper, objective
            )
        if node.kind in ("infeasible", "resolve", "bound", "incumbent"):
            return self._resolve_leaf(inst, lower, upper, objective, state)
        return False, f"unknown-leaf-kind-{node.kind}"

    # ------------------------------------------------------------- checks
    @staticmethod
    def _check_dual_bound(inst, duals, lower, upper, objective):
        y = np.asarray(duals["y"], dtype=float)
        mu_l = np.asarray(duals["mu_l"], dtype=float)
        mu_u = np.asarray(duals["mu_u"], dtype=float)
        if (
            y.shape != (inst.n_constraints,)
            or mu_l.shape != (inst.n_vars,)
            or mu_u.shape != (inst.n_vars,)
        ):
            return False, "dual-shape"
        if (y < -_TOL).any() or (mu_l < -_TOL).any() or (mu_u < -_TOL).any():
            return False, "dual-sign"
        stationarity = inst.c + inst.a_ub.T @ y - mu_l + mu_u
        if np.abs(stationarity).max() > 1e-4:
            return False, "dual-stationarity"
        # unbounded box directions with nonzero multiplier make the bound -inf
        finite_l = np.isfinite(lower)
        finite_u = np.isfinite(upper)
        if (mu_l[~finite_l] > _TOL).any() or (mu_u[~finite_u] > _TOL).any():
            return False, "dual-unbounded-direction"
        bound = (
            float(mu_l[finite_l] @ lower[finite_l])
            - float(mu_u[finite_u] @ upper[finite_u])
            - float(y @ inst.b_ub)
        )
        if bound < objective - 1e-3:
            return False, "bound-too-weak"
        return True, "ok"

    def _resolve_leaf(self, inst, lower, upper, objective, state):
        if state["resolves"] >= self.max_lp_resolves:
            return False, "too-many-resolves"
        state["resolves"] += 1
        res = linprog(
            inst.c,
            A_ub=inst.a_ub,
            b_ub=inst.b_ub,
            bounds=list(zip(lower, upper)),
            method="highs",
        )
        if res.status == 2:
            return True, "ok"
        if objective is None:
            return False, "leaf-actually-feasible"
        if res.status != 0:
            return False, f"lp-status-{res.status}"
        if res.fun < objective - 1e-3:
            return False, "better-point-exists"
        return True, "ok"
