"""Motion Planning as a verifiable application.

A batch workload (tasks never define U, Sec 4.1 case iii): each task
names one MIP instance from the suite; the executor solves it with
branch and bound and emits a single record carrying the solution *and*
its optimality/infeasibility certificate.  Verifiers validate the
certificate — never re-running the search — mirroring the paper's SCIP
proof-log configuration where "output failures can lead to human harm".
"""

from __future__ import annotations

from typing import Any, Optional


from repro.apps.planning.branch_bound import BranchAndBoundSolver, CertNode
from repro.apps.planning.certificates import CertificateVerifier
from repro.apps.planning.mip import MipInstance, instance_suite
from repro.core.api import ComputeResult, CountResult, VerifiableApplication
from repro.core.tasks import Opcode, Record, Task
from repro.store.state_machine import KVState

__all__ = ["PlanningApp", "make_planning_task"]


def make_planning_task(i: int, instance_index: int) -> Task:
    """A batch task: solve instance ``instance_index`` of the suite."""
    return Task(
        task_id=f"mip{i}",
        opcode=Opcode.COMPUTE,
        compute_payload={"instance": instance_index},
        size_bytes=48,
    )


class PlanningApp(VerifiableApplication):
    """MIP solving with certificate-based verification.

    Parameters
    ----------
    instances:
        The instance suite (defaults to the 107-instance generator).
    node_cost:
        Simulated seconds per branch-and-bound node explored (executor).
    verify_leaf_cost / verify_lp_cost:
        Simulated seconds per certificate leaf checked (dense algebra)
        and per LP re-solve (infeasible/resolve leaves).
    """

    name = "motion-planning"

    def __init__(
        self,
        instances: Optional[list[MipInstance]] = None,
        node_cost: float = 2e-3,
        verify_leaf_cost: float = 2e-5,
        verify_lp_cost: float = 5e-4,
        record_bytes: int = 4096,
    ) -> None:
        self.instances = instances if instances is not None else instance_suite()
        self.solver = BranchAndBoundSolver()
        self.checker = CertificateVerifier()
        self.node_cost = node_cost
        self.verify_leaf_cost = verify_leaf_cost
        self.verify_lp_cost = verify_lp_cost
        self.record_bytes = record_bytes
        self._solve_cache: dict[int, Any] = {}

    # ----------------------------------------------------------------- state
    def initial_state(self) -> KVState:
        return KVState()  # batch workload: state never changes

    # ------------------------------------------------------------------- T
    def valid_task(self, task: Task) -> bool:
        if task.opcode.has_update:
            return False
        payload = task.compute_payload
        return (
            isinstance(payload, dict)
            and isinstance(payload.get("instance"), int)
            and 0 <= payload["instance"] < len(self.instances)
        )

    # ------------------------------------------------------------------- A
    def compute(self, view: Any, task: Task) -> ComputeResult:
        idx = task.compute_payload["instance"]
        result = self._solve(idx)
        data = {
            "status": result.status,
            "objective": result.objective,
            "x": None if result.x is None else result.x,
            "certificate": result.certificate,
        }
        record = Record(key=(0,), data=data, size_bytes=self.record_bytes)
        return ComputeResult(
            records=(record,), cost=result.nodes_explored * self.node_cost
        )

    def _solve(self, idx: int):
        """Deterministic per-instance solve, cached: many simulated
        processes share one Python heap, so re-solves of the same
        instance (replication, verification fallback) cost no wall time."""
        if idx not in self._solve_cache:
            self._solve_cache[idx] = self.solver.solve(self.instances[idx])
        return self._solve_cache[idx]

    # ------------------------------------------------- verification operators
    def is_valid(self, view: Any, record: Record, task: Task) -> bool:
        if record.key != (0,) or not isinstance(record.data, dict):
            return False
        data = record.data
        idx = task.compute_payload["instance"]
        inst = self.instances[idx]
        cert = data.get("certificate")
        if not isinstance(cert, CertNode):
            return False
        if data.get("status") == "optimal":
            if data.get("x") is None or data.get("objective") is None:
                return False
            out = self.checker.verify_optimal(
                inst, data["x"], data["objective"], cert
            )
        elif data.get("status") == "infeasible":
            out = self.checker.verify_infeasible(inst, cert)
        else:
            return False
        return out.ok

    def output_size(self, view: Any, task: Task) -> CountResult:
        # Task-Bounded trivially: every planning task emits one record
        return CountResult(count=1, cost=1e-6)

    def verify_record_cost(self, record: Record) -> float:
        data = record.data if isinstance(record.data, dict) else {}
        cert = data.get("certificate")
        leaves = cert.leaf_count() if isinstance(cert, CertNode) else 1
        return leaves * self.verify_leaf_cost + self.verify_lp_cost
