"""Mixed Integer Program instances and generators.

Motion Planning (Sec 7, "Applications") solves MIPs drawn from a set of
107 standard instances; output failures "can lead to human harm", which
is why certificates matter.  We cannot ship MIPLIB offline, so
:func:`instance_suite` generates a deterministic family of small
knapsack / assignment / covering / planning instances with the same
*role*: heterogeneous solve times, occasional infeasibility, and a
compute≫verify asymmetry once certificates are attached.

All instances are minimization problems::

    min c·x   s.t.  A_ub x ≤ b_ub,   l ≤ x ≤ u,   x_i ∈ ℤ for i ∈ I
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ApplicationError

__all__ = ["MipInstance", "instance_suite"]


@dataclass(frozen=True)
class MipInstance:
    """An immutable MIP instance."""

    name: str
    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integer: np.ndarray  # bool mask

    def __post_init__(self) -> None:
        n = len(self.c)
        if self.a_ub.shape != (len(self.b_ub), n):
            raise ApplicationError(
                f"A_ub shape {self.a_ub.shape} inconsistent with "
                f"c ({n}) / b_ub ({len(self.b_ub)})"
            )
        if len(self.lower) != n or len(self.upper) != n or len(self.integer) != n:
            raise ApplicationError("bounds/mask length mismatch")
        if (self.lower > self.upper).any():
            raise ApplicationError("lower bound exceeds upper bound")

    @property
    def n_vars(self) -> int:
        return len(self.c)

    @property
    def n_constraints(self) -> int:
        return len(self.b_ub)

    def canonical(self) -> list:
        return [
            self.name,
            self.c,
            self.a_ub,
            self.b_ub,
            self.lower,
            self.upper,
            self.integer.astype(np.int8),
        ]

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Constraint + bound + integrality check for a candidate point."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_vars,):
            return False
        if (self.a_ub @ x > self.b_ub + tol).any():
            return False
        if (x < self.lower - tol).any() or (x > self.upper + tol).any():
            return False
        frac = np.abs(x[self.integer] - np.round(x[self.integer]))
        return bool((frac <= 1e-5).all())

    def objective(self, x: np.ndarray) -> float:
        return float(self.c @ np.asarray(x, dtype=float))


def _knapsack(rng: np.random.Generator, n: int, idx: int) -> MipInstance:
    """0/1 knapsack as minimization of negated value."""
    values = rng.integers(5, 40, size=n).astype(float)
    weights = rng.integers(3, 25, size=n).astype(float)
    capacity = float(weights.sum() * rng.uniform(0.3, 0.6))
    return MipInstance(
        name=f"knapsack-{idx}",
        c=-values,
        a_ub=weights[None, :],
        b_ub=np.array([capacity]),
        lower=np.zeros(n),
        upper=np.ones(n),
        integer=np.ones(n, dtype=bool),
    )


def _assignment(rng: np.random.Generator, k: int, idx: int) -> MipInstance:
    """k×k assignment with ≤-form side constraints (conflict-resolution
    flavor of the air-traffic formulations [62])."""
    cost = rng.uniform(1, 20, size=(k, k))
    n = k * k
    rows = []
    b = []
    for i in range(k):  # each agent at most one slot, and at least one
        row = np.zeros(n)
        row[i * k : (i + 1) * k] = 1.0
        rows.append(row)
        b.append(1.0)
        rows.append(-row)
        b.append(-1.0)
    for j in range(k):  # each slot at most one agent
        col = np.zeros(n)
        col[j::k] = 1.0
        rows.append(col)
        b.append(1.0)
    return MipInstance(
        name=f"assign-{idx}",
        c=cost.ravel(),
        a_ub=np.array(rows),
        b_ub=np.array(b),
        lower=np.zeros(n),
        upper=np.ones(n),
        integer=np.ones(n, dtype=bool),
    )


def _covering(rng: np.random.Generator, n: int, m: int, idx: int) -> MipInstance:
    """Set covering: every element covered by ≥1 chosen set."""
    cost = rng.integers(1, 15, size=n).astype(float)
    cover = (rng.random((m, n)) < 0.3).astype(float)
    for r in range(m):  # ensure coverable
        if cover[r].sum() == 0:
            cover[r, rng.integers(0, n)] = 1.0
    return MipInstance(
        name=f"cover-{idx}",
        c=cost,
        a_ub=-cover,
        b_ub=-np.ones(m),
        lower=np.zeros(n),
        upper=np.ones(n),
        integer=np.ones(n, dtype=bool),
    )


def _infeasible(rng: np.random.Generator, n: int, idx: int) -> MipInstance:
    """Deliberately contradictory constraints (x·1 ≤ a and x·1 ≥ a+Δ)."""
    ones = np.ones(n)
    a = float(rng.integers(2, 5))
    return MipInstance(
        name=f"infeasible-{idx}",
        c=rng.uniform(1, 5, size=n),
        a_ub=np.vstack([ones, -ones]),
        b_ub=np.array([a, -(a + n + 1.0)]),
        lower=np.zeros(n),
        upper=np.ones(n),
        integer=np.ones(n, dtype=bool),
    )


def instance_suite(
    count: int = 107, seed: int = 0, infeasible_every: int = 20
) -> list[MipInstance]:
    """Deterministic suite mirroring the paper's 107 MIP instances."""
    rng = np.random.default_rng(seed)
    out: list[MipInstance] = []
    for i in range(count):
        if infeasible_every and i % infeasible_every == infeasible_every - 1:
            out.append(_infeasible(rng, int(rng.integers(4, 9)), i))
        else:
            kind = i % 3
            if kind == 0:
                out.append(_knapsack(rng, int(rng.integers(8, 16)), i))
            elif kind == 1:
                out.append(_assignment(rng, int(rng.integers(3, 5)), i))
            else:
                out.append(
                    _covering(
                        rng,
                        int(rng.integers(8, 14)),
                        int(rng.integers(6, 12)),
                        i,
                    )
                )
    return out
