"""Branch-and-bound MIP solver emitting verifiable certificates.

The executor-side analogue of the paper's SCIP configuration that
"appends a proof of optimality or infeasibility to each record" [21].
The solver explores the LP-relaxation tree (scipy HiGHS for node LPs),
branching on the most fractional integer variable, and records the tree
as a :class:`CertNode` certificate:

* every **internal** node stores its branching variable/value, so the
  verifier can confirm the leaves partition the root domain;
* every **bounded leaf** stores LP dual multipliers (y, μ_l, μ_u) whose
  weak-duality bound proves no better integer point hides there;
* every **infeasible leaf** either stores a Farkas-style certificate or
  is flagged for one cheap LP re-solve by the verifier;
* the **incumbent leaf** stores the integral solution itself.

Verification (see :mod:`repro.apps.planning.certificates`) is a tree
walk with dense linear algebra — no search — which is the compute≫verify
asymmetry the paper's Motion Planning application relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.apps.planning.mip import MipInstance
from repro.errors import ApplicationError

__all__ = ["CertNode", "SolveResult", "BranchAndBoundSolver"]

_TOL = 1e-6


@dataclass
class CertNode:
    """One node of the certificate tree (kind ∈ branch|bound|incumbent|
    infeasible|resolve)."""

    kind: str
    branch_var: int = -1
    branch_val: float = 0.0
    left: Optional["CertNode"] = None
    right: Optional["CertNode"] = None
    x: Optional[np.ndarray] = None          # incumbent leaves
    duals: Optional[dict] = None            # bound leaves: y, mu_l, mu_u

    def canonical(self) -> list:
        return [
            self.kind,
            self.branch_var,
            self.branch_val,
            self.left.canonical() if self.left else None,
            self.right.canonical() if self.right else None,
            None if self.x is None else self.x,
            None
            if self.duals is None
            else [self.duals["y"], self.duals["mu_l"], self.duals["mu_u"]],
        ]

    def leaf_count(self) -> int:
        if self.kind != "branch":
            return 1
        return self.left.leaf_count() + self.right.leaf_count()


@dataclass(frozen=True)
class SolveResult:
    """Solver output: status ∈ optimal|infeasible, with certificate."""

    status: str
    objective: Optional[float]
    x: Optional[np.ndarray]
    certificate: CertNode
    nodes_explored: int
    lp_solves: int


class BranchAndBoundSolver:
    """Plain best-first branch and bound over LP relaxations."""

    def __init__(self, max_nodes: int = 10_000) -> None:
        self.max_nodes = max_nodes

    # ------------------------------------------------------------ node LPs
    def _solve_lp(self, inst: MipInstance, lower, upper):
        return linprog(
            inst.c,
            A_ub=inst.a_ub,
            b_ub=inst.b_ub,
            bounds=list(zip(lower, upper)),
            method="highs",
        )

    @staticmethod
    def _extract_duals(res, inst: MipInstance) -> Optional[dict]:
        """Map HiGHS marginals to our certificate convention:
        c + Aᵀy − μ_l + μ_u = 0 with y, μ_l, μ_u ≥ 0."""
        try:
            y = -np.asarray(res.ineqlin.marginals, dtype=float)
            mu_l = np.asarray(res.lower.marginals, dtype=float)
            mu_u = -np.asarray(res.upper.marginals, dtype=float)
        except AttributeError:
            return None
        y = np.clip(y, 0.0, None)
        mu_l = np.clip(mu_l, 0.0, None)
        mu_u = np.clip(mu_u, 0.0, None)
        stationarity = inst.c + inst.a_ub.T @ y - mu_l + mu_u
        if np.abs(stationarity).max() > 1e-5:
            return None
        return {"y": y, "mu_l": mu_l, "mu_u": mu_u}

    # ---------------------------------------------------------------- solve
    def solve(self, inst: MipInstance) -> SolveResult:
        """Solve to proven optimality (or infeasibility)."""
        nodes_explored = 0
        lp_solves = 0
        incumbent_x: Optional[np.ndarray] = None
        incumbent_obj = np.inf

        # pass 1: explore the tree, remember branching structure
        def explore(lower, upper) -> CertNode:
            nonlocal nodes_explored, lp_solves, incumbent_x, incumbent_obj
            nodes_explored += 1
            if nodes_explored > self.max_nodes:
                raise ApplicationError(
                    f"{inst.name}: node budget {self.max_nodes} exhausted"
                )
            res = self._solve_lp(inst, lower, upper)
            lp_solves += 1
            if res.status == 2:  # infeasible subproblem
                return CertNode(kind="infeasible")
            if res.status != 0:
                raise ApplicationError(
                    f"{inst.name}: LP solver status {res.status}"
                )
            if res.fun >= incumbent_obj - _TOL:
                duals = self._extract_duals(res, inst)
                return CertNode(
                    kind="bound" if duals else "resolve", duals=duals
                )
            x = np.asarray(res.x, dtype=float)
            frac = np.abs(x - np.round(x))
            frac[~inst.integer] = 0.0
            branch_var = int(np.argmax(frac))
            if frac[branch_var] <= 1e-6:
                # integral: new incumbent
                if res.fun < incumbent_obj:
                    incumbent_obj = float(res.fun)
                    incumbent_x = np.round(x * (inst.integer)) + x * (
                        ~inst.integer
                    )
                duals = self._extract_duals(res, inst)
                return CertNode(
                    kind="incumbent", x=incumbent_x.copy(), duals=duals
                )
            val = float(np.floor(x[branch_var]))
            lo_l, up_l = lower.copy(), upper.copy()
            up_l[branch_var] = val
            lo_r, up_r = lower.copy(), upper.copy()
            lo_r[branch_var] = val + 1.0
            node = CertNode(
                kind="branch", branch_var=branch_var, branch_val=val
            )
            node.left = explore(lo_l, up_l)
            node.right = explore(lo_r, up_r)
            return node

        root = explore(inst.lower.copy().astype(float), inst.upper.copy().astype(float))

        if incumbent_x is None:
            return SolveResult(
                status="infeasible",
                objective=None,
                x=None,
                certificate=root,
                nodes_explored=nodes_explored,
                lp_solves=lp_solves,
            )
        # Leaves pruned against intermediate incumbents remain valid in the
        # final certificate: incumbents only improve, so every pruned
        # leaf's dual bound ≥ some incumbent ≥ the final objective.
        return SolveResult(
            status="optimal",
            objective=float(incumbent_obj),
            x=incumbent_x,
            certificate=root,
            nodes_explored=nodes_explored,
            lp_solves=lp_solves,
        )

