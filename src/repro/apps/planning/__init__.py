"""Motion Planning: MIP solving with verifiable optimality proofs."""

from repro.apps.planning.app import PlanningApp, make_planning_task
from repro.apps.planning.branch_bound import (
    BranchAndBoundSolver,
    CertNode,
    SolveResult,
)
from repro.apps.planning.certificates import CertificateVerifier, VerifyOutcome
from repro.apps.planning.mip import MipInstance, instance_suite

__all__ = [
    "BranchAndBoundSolver",
    "CertNode",
    "CertificateVerifier",
    "MipInstance",
    "PlanningApp",
    "SolveResult",
    "VerifyOutcome",
    "instance_suite",
    "make_planning_task",
]
