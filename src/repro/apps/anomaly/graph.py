"""Multiversioned dynamic graph — the network state of Anomaly Detection.

The paper's use case maintains "an up-to-date version of the network
graph using a continuous stream of link updates" in a multiversioned
data store (Fig 1).  We implement copy-on-write per-vertex adjacency:
each vertex keeps a version history of sorted numpy neighbor arrays, so
a snapshot read at timestamp ``ts`` is a binary search per vertex and a
pattern-matching task pinned to ``ts`` sees a stable graph while newer
updates keep applying — exactly the snapshot isolation Sec 5 requires.

Sorted arrays are deliberate (see the hpc-parallel guides): candidate
generation in the matcher is ``numpy.intersect1d`` over sorted
neighborhoods, the vectorized inner loop of every pattern-matching
system.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.errors import StoreError
from repro.store.state_machine import VersionedState

__all__ = ["MultiVersionGraph", "GraphView"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_ADJ: tuple[tuple[int, ...], frozenset[int]] = ((), frozenset())


class MultiVersionGraph(VersionedState):
    """Undirected graph with per-vertex copy-on-write version histories.

    Updates are ``("add", u, v)`` / ``("del", u, v)`` tuples or lists
    thereof.  The base graph (version 0) is loaded at construction.
    """

    def __init__(
        self,
        base_edges: Iterable[tuple[int, int]] = (),
        update_cost_per_degree: float = 5e-9,
        update_cost_base: float = 1e-6,
    ) -> None:
        # per-vertex parallel version lists: timestamps, numpy arrays
        # (public API), and (tuple, frozenset) fast views of the same
        # neighborhoods for the matcher's intersection hot loop
        self._hist: dict[
            int,
            tuple[
                list[int],
                list[np.ndarray],
                list[tuple[int, ...]],
                list[frozenset[int]],
            ],
        ] = {}
        self._version = 0
        self.update_cost_per_degree = update_cost_per_degree
        self.update_cost_base = update_cost_base
        self.edges_applied = 0
        base: dict[int, set[int]] = {}
        for u, v in base_edges:
            if u == v:
                continue
            base.setdefault(u, set()).add(v)
            base.setdefault(v, set()).add(u)
        for vertex, nbrs in base.items():
            ordered = sorted(nbrs)
            arr = np.fromiter(ordered, dtype=np.int64, count=len(ordered))
            self._hist[vertex] = (
                [0], [arr], [tuple(ordered)], [frozenset(ordered)]
            )
        # content fingerprint chain: one SHA-256 per applied timestamp,
        # chaining the normalized op list onto the previous digest.  Two
        # graphs with the same base and the same applied op sequence have
        # identical fingerprints at every version — the soundness basis
        # for cross-replica memoization of pure computations
        # (see EdgeAnchoredMatcher): equal fingerprint implies equal
        # state, while divergent (e.g. Byzantine) histories get distinct
        # chains and are never conflated.
        canon = sorted(
            (v, n) for v, nbrs in base.items() for n in nbrs if v < n
        )
        self._fp_ts: list[int] = [0]
        self._fp: list[bytes] = [
            hashlib.sha256(repr(canon).encode()).digest()
        ]
        # fingerprints are only exact for ts >= this floor (compaction
        # rewrites what older snapshots resolve to)
        self._fp_min = 0

    @property
    def version(self) -> int:
        """Highest applied update timestamp."""
        return self._version

    def clone(self) -> "MultiVersionGraph":
        """Independent copy sharing immutable per-version payloads.

        The copy-on-write discipline (arrays/tuples/frozensets are never
        mutated in place, only replaced) makes element sharing safe: each
        clone gets its own history *lists*, so replicas diverge freely.
        Cloning a prepared base graph is how a deployment hands every
        replica the same initial state without re-sorting and re-boxing
        the base adjacency N times.
        """
        g = MultiVersionGraph.__new__(MultiVersionGraph)
        g._hist = {
            v: (tss[:], arrs[:], tups[:], sets_[:])
            for v, (tss, arrs, tups, sets_) in self._hist.items()
        }
        g._version = self._version
        g.update_cost_per_degree = self.update_cost_per_degree
        g.update_cost_base = self.update_cost_base
        g.edges_applied = self.edges_applied
        g._fp_ts = self._fp_ts[:]
        g._fp = self._fp[:]
        g._fp_min = self._fp_min
        return g

    # ------------------------------------------------------------------ U
    def apply(self, ts: int, payload) -> float:
        if ts <= self._version:
            raise StoreError(
                f"non-monotonic graph update ts={ts} <= {self._version}"
            )
        ops = payload if isinstance(payload, list) else [payload]
        cost = 0.0
        for op in ops:
            kind, u, v = op
            if u == v:
                continue
            if kind == "add":
                cost += self._mutate(ts, u, v, add=True)
                cost += self._mutate(ts, v, u, add=True)
            elif kind == "del":
                cost += self._mutate(ts, u, v, add=False)
                cost += self._mutate(ts, v, u, add=False)
            else:
                raise StoreError(f"unknown graph op {kind!r}")
            self.edges_applied += 1
        self._version = ts
        self._fp_ts.append(ts)
        self._fp.append(
            hashlib.sha256(self._fp[-1] + repr(ops).encode()).digest()
        )
        return cost

    def _mutate(self, ts: int, vertex: int, nbr: int, add: bool) -> float:
        tss, arrs, tups, sets = self._hist.setdefault(
            vertex, ([], [], [], [])
        )
        current = arrs[-1] if arrs else _EMPTY
        idx = int(np.searchsorted(current, nbr))
        present = idx < len(current) and current[idx] == nbr
        # list-surgery instead of np.insert/np.delete: avoids numpy's
        # axis-normalization machinery on this per-update hot path while
        # producing the identical sorted array
        ordered = current.tolist()
        if add and not present:
            ordered.insert(idx, int(nbr))
        elif not add and present:
            del ordered[idx]
        else:
            return 0.0  # idempotent no-op
        new = np.fromiter(ordered, dtype=np.int64, count=len(ordered))
        if tss and tss[-1] == ts:
            arrs[-1] = new
            tups[-1] = tuple(ordered)
            sets[-1] = frozenset(ordered)
        else:
            tss.append(ts)
            arrs.append(new)
            tups.append(tuple(ordered))
            sets.append(frozenset(ordered))
        return self.update_cost_base + self.update_cost_per_degree * len(new)

    # -------------------------------------------------------------- reads
    def snapshot(self, ts: int) -> "GraphView":
        return GraphView(self, ts)

    def state_fingerprint_at(self, ts: int) -> Optional[bytes]:
        """Content fingerprint of the graph state visible at ``ts``.

        Equal fingerprints imply bit-identical adjacency state (same base
        edges, same applied op sequence).  Returns ``None`` when the
        state at ``ts`` is not exactly reconstructible (pre-base reads,
        or versions rewritten by :meth:`compact`) — callers must then
        skip caching, never guess.
        """
        if ts < self._fp_min:
            return None
        idx = bisect_right(self._fp_ts, ts) - 1
        if idx < 0:
            return None
        return self._fp[idx]

    def neighbors_at(self, vertex: int, ts: int) -> np.ndarray:
        entry = self._hist.get(vertex)
        if entry is None:
            return _EMPTY
        tss = entry[0]
        idx = bisect_right(tss, ts) - 1
        if idx < 0:
            return _EMPTY
        return entry[1][idx]

    def adjacency_at(
        self, vertex: int, ts: int
    ) -> tuple[tuple[int, ...], frozenset[int]]:
        """(sorted tuple, frozenset) view of ``vertex``'s neighborhood at
        ``ts`` — Python ints, no numpy boxing on the matcher hot path."""
        entry = self._hist.get(vertex)
        if entry is None:
            return _EMPTY_ADJ
        tss = entry[0]
        idx = bisect_right(tss, ts) - 1
        if idx < 0:
            return _EMPTY_ADJ
        return entry[2][idx], entry[3][idx]

    def vertices(self) -> Iterator[int]:
        """All vertices ever seen (across versions)."""
        return iter(self._hist)

    def compact(self, min_ts: int) -> int:
        """Drop per-vertex versions older than ``min_ts``.

        Snapshots at ``ts >= min_ts`` stay exact; older snapshots resolve
        to the oldest retained version.  Call once no in-flight task is
        pinned below ``min_ts`` (the coordinator knows the lowest live
        timestamp).  Returns the number of versions discarded.
        """
        dropped = 0
        if min_ts > self._fp_min:
            self._fp_min = min_ts
        for tss, arrs, tups, sets in self._hist.values():
            idx = bisect_right(tss, min_ts) - 1
            if idx > 0:
                del tss[:idx]
                del arrs[:idx]
                del tups[:idx]
                del sets[:idx]
                dropped += idx
        return dropped

    def version_count(self) -> int:
        """Total retained per-vertex versions (compaction telemetry)."""
        return sum(len(entry[0]) for entry in self._hist.values())


class GraphView:
    """Read view of the graph pinned at a timestamp (stable under later
    updates — COW guarantees old arrays are never mutated in place)."""

    __slots__ = ("_graph", "ts")

    def __init__(self, graph: MultiVersionGraph, ts: int) -> None:
        self._graph = graph
        self.ts = ts

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted neighbor array of ``vertex`` at this version."""
        return self._graph.neighbors_at(vertex, self.ts)

    def adjacency(self, vertex: int) -> tuple[tuple[int, ...], frozenset[int]]:
        """(sorted tuple, frozenset) of the neighborhood — the matcher's
        allocation-free view of the same data as :meth:`neighbors`."""
        return self._graph.adjacency_at(vertex, self.ts)

    def neighbor_set(self, vertex: int) -> frozenset[int]:
        """Frozenset of the neighborhood at this version."""
        return self._graph.adjacency_at(vertex, self.ts)[1]

    def fingerprint(self) -> Optional[bytes]:
        """Content fingerprint of this snapshot (``None`` = uncacheable);
        see :meth:`MultiVersionGraph.state_fingerprint_at`."""
        return self._graph.state_fingerprint_at(self.ts)

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._graph.adjacency_at(u, self.ts)[1]

    def vertices(self) -> Iterator[int]:
        return self._graph.vertices()

    def edge_count(self) -> int:
        """Number of edges at this version (O(V) over version histories)."""
        return sum(len(self.neighbors(v)) for v in self.vertices()) // 2
