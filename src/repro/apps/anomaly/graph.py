"""Multiversioned dynamic graph — the network state of Anomaly Detection.

The paper's use case maintains "an up-to-date version of the network
graph using a continuous stream of link updates" in a multiversioned
data store (Fig 1).  We implement copy-on-write per-vertex adjacency:
each vertex keeps a version history of sorted numpy neighbor arrays, so
a snapshot read at timestamp ``ts`` is a binary search per vertex and a
pattern-matching task pinned to ``ts`` sees a stable graph while newer
updates keep applying — exactly the snapshot isolation Sec 5 requires.

Sorted arrays are deliberate (see the hpc-parallel guides): candidate
generation in the matcher is ``numpy.intersect1d`` over sorted
neighborhoods, the vectorized inner loop of every pattern-matching
system.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator

import numpy as np

from repro.errors import StoreError
from repro.store.state_machine import VersionedState

__all__ = ["MultiVersionGraph", "GraphView"]

_EMPTY = np.empty(0, dtype=np.int64)


class MultiVersionGraph(VersionedState):
    """Undirected graph with per-vertex copy-on-write version histories.

    Updates are ``("add", u, v)`` / ``("del", u, v)`` tuples or lists
    thereof.  The base graph (version 0) is loaded at construction.
    """

    def __init__(
        self,
        base_edges: Iterable[tuple[int, int]] = (),
        update_cost_per_degree: float = 5e-9,
        update_cost_base: float = 1e-6,
    ) -> None:
        self._hist: dict[int, tuple[list[int], list[np.ndarray]]] = {}
        self._version = 0
        self.update_cost_per_degree = update_cost_per_degree
        self.update_cost_base = update_cost_base
        self.edges_applied = 0
        base: dict[int, set[int]] = {}
        for u, v in base_edges:
            if u == v:
                continue
            base.setdefault(u, set()).add(v)
            base.setdefault(v, set()).add(u)
        for vertex, nbrs in base.items():
            arr = np.fromiter(sorted(nbrs), dtype=np.int64, count=len(nbrs))
            self._hist[vertex] = ([0], [arr])

    @property
    def version(self) -> int:
        """Highest applied update timestamp."""
        return self._version

    # ------------------------------------------------------------------ U
    def apply(self, ts: int, payload) -> float:
        if ts <= self._version:
            raise StoreError(
                f"non-monotonic graph update ts={ts} <= {self._version}"
            )
        ops = payload if isinstance(payload, list) else [payload]
        cost = 0.0
        for op in ops:
            kind, u, v = op
            if u == v:
                continue
            if kind == "add":
                cost += self._mutate(ts, u, v, add=True)
                cost += self._mutate(ts, v, u, add=True)
            elif kind == "del":
                cost += self._mutate(ts, u, v, add=False)
                cost += self._mutate(ts, v, u, add=False)
            else:
                raise StoreError(f"unknown graph op {kind!r}")
            self.edges_applied += 1
        self._version = ts
        return cost

    def _mutate(self, ts: int, vertex: int, nbr: int, add: bool) -> float:
        tss, arrs = self._hist.setdefault(vertex, ([], []))
        current = arrs[-1] if arrs else _EMPTY
        idx = int(np.searchsorted(current, nbr))
        present = idx < len(current) and current[idx] == nbr
        if add and not present:
            new = np.insert(current, idx, nbr)
        elif not add and present:
            new = np.delete(current, idx)
        else:
            return 0.0  # idempotent no-op
        if tss and tss[-1] == ts:
            arrs[-1] = new
        else:
            tss.append(ts)
            arrs.append(new)
        return self.update_cost_base + self.update_cost_per_degree * len(new)

    # -------------------------------------------------------------- reads
    def snapshot(self, ts: int) -> "GraphView":
        return GraphView(self, ts)

    def neighbors_at(self, vertex: int, ts: int) -> np.ndarray:
        entry = self._hist.get(vertex)
        if entry is None:
            return _EMPTY
        tss, arrs = entry
        idx = bisect_right(tss, ts) - 1
        if idx < 0:
            return _EMPTY
        return arrs[idx]

    def vertices(self) -> Iterator[int]:
        """All vertices ever seen (across versions)."""
        return iter(self._hist)

    def compact(self, min_ts: int) -> int:
        """Drop per-vertex versions older than ``min_ts``.

        Snapshots at ``ts >= min_ts`` stay exact; older snapshots resolve
        to the oldest retained version.  Call once no in-flight task is
        pinned below ``min_ts`` (the coordinator knows the lowest live
        timestamp).  Returns the number of versions discarded.
        """
        dropped = 0
        for tss, arrs in self._hist.values():
            idx = bisect_right(tss, min_ts) - 1
            if idx > 0:
                del tss[:idx]
                del arrs[:idx]
                dropped += idx
        return dropped

    def version_count(self) -> int:
        """Total retained per-vertex versions (compaction telemetry)."""
        return sum(len(tss) for tss, _ in self._hist.values())


class GraphView:
    """Read view of the graph pinned at a timestamp (stable under later
    updates — COW guarantees old arrays are never mutated in place)."""

    __slots__ = ("_graph", "ts")

    def __init__(self, graph: MultiVersionGraph, ts: int) -> None:
        self._graph = graph
        self.ts = ts

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted neighbor array of ``vertex`` at this version."""
        return self._graph.neighbors_at(vertex, self.ts)

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        idx = int(np.searchsorted(nbrs, v))
        return idx < len(nbrs) and nbrs[idx] == v

    def vertices(self) -> Iterator[int]:
        return self._graph.vertices()

    def edge_count(self) -> int:
        """Number of edges at this version (O(V) over version histories)."""
        return sum(len(self.neighbors(v)) for v in self.vertices()) // 2
