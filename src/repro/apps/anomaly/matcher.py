"""Edge-anchored subgraph matching engine.

Anomaly Detection computes, per link update (u, v), every instance of
the anomaly pattern that contains the new link (Fig 1's
``detectAnomaly``).  The matcher performs classic backtracking over a
connectivity-respecting matching order with sorted-array candidate
intersection (``np.intersect1d``), and emits each instance once in
canonical form, so the record stream is sorted — giving the
``happens_before`` prefix order for free.

Costs are *measured*, not assumed: the matcher counts candidate-
extension steps and the simulated CPU charge is ``steps × step_cost``,
so expensive updates (dense neighborhoods) really cost more, matching
the heterogeneity the paper's timeout calibration responds to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.anomaly.graph import GraphView
from repro.apps.anomaly.patterns import Pattern

__all__ = ["EdgeAnchoredMatcher", "MatchOutput", "CountOutput"]


@dataclass(frozen=True)
class MatchOutput:
    """Sorted canonical match tuples plus the work counter."""

    matches: tuple[tuple[int, ...], ...]
    steps: int


@dataclass(frozen=True)
class CountOutput:
    """Exact |matches| plus the (smaller) counting work counter."""

    count: int
    steps: int


class EdgeAnchoredMatcher:
    """Enumerates/counts pattern instances containing a given edge.

    Parameters
    ----------
    pattern:
        The anomaly pattern.
    step_cost:
        Simulated seconds per extension step (executor side).
    count_discount:
        Multiplier on counting cost, modeling the paper's
        inclusion-exclusion / subgraph-morphing counting optimizations
        that are "orders of magnitude faster than matching each
        individual subgraph" (Sec 4.4).  For cliques the count is
        computed by a genuinely cheaper specialized routine as well.
    """

    def __init__(
        self,
        pattern: Pattern,
        step_cost: float = 2e-7,
        count_discount: float = 0.1,
    ) -> None:
        self.pattern = pattern
        self.step_cost = step_cost
        self.count_discount = count_discount
        self._is_clique = pattern.edge_count == (
            pattern.size * (pattern.size - 1) // 2
        )
        # anchor plans: one directed pattern edge per automorphism orbit
        # (symmetry breaking), with the extension order for each
        self._plans: list[tuple[int, int, list[int]]] = [
            (a, b, self._anchored_order(a, b))
            for a, b in pattern.directed_edge_orbits()
        ]

    def _anchored_order(self, a: int, b: int) -> list[int]:
        order = [a, b]
        remaining = set(range(self.pattern.size)) - {a, b}
        degs = {v: len(self.pattern.neighbors(v)) for v in remaining}
        while remaining:
            connected = [
                v
                for v in remaining
                if any(self.pattern.has_edge(v, u) for u in order)
            ]
            pool = connected or sorted(remaining)
            nxt = max(pool, key=lambda v: (degs[v], -v))
            order.append(nxt)
            remaining.discard(nxt)
        return order[2:]

    # ------------------------------------------------------------ enumerate
    def enumerate(self, view: GraphView, u: int, v: int) -> MatchOutput:
        """All canonical instances containing edge (u, v) at ``view``."""
        if not view.has_edge(u, v):
            return MatchOutput(matches=(), steps=1)
        if self._is_clique:
            return self._enumerate_clique(view, u, v)
        found: set[tuple[int, ...]] = set()
        steps = 0
        for a, b, order in self._plans:
            mapping = {a: u, b: v}
            steps += self._extend(view, order, 0, mapping, found)
        matches = tuple(sorted(found))
        return MatchOutput(matches=matches, steps=max(1, steps))

    def _enumerate_clique(self, view: GraphView, u: int, v: int) -> MatchOutput:
        """k-cliques containing (u, v): (k-2)-cliques inside N(u)∩N(v),
        enumerated with increasing vertex ids (no symmetric duplicates)."""
        k = self.pattern.size
        common = np.intersect1d(
            view.neighbors(u), view.neighbors(v), assume_unique=True
        )
        base = tuple(sorted((u, v)))
        steps = 1 + len(common)
        if k == 2:
            return MatchOutput(matches=(base,), steps=steps)
        adj = {
            int(c): np.intersect1d(
                view.neighbors(int(c)), common, assume_unique=True
            )
            for c in common
        }
        steps += len(common)
        found: list[tuple[int, ...]] = []

        def grow(prefix: list[int], cands: np.ndarray, left: int) -> None:
            nonlocal steps
            if left == 0:
                found.append(tuple(sorted(base + tuple(prefix))))
                return
            for w in cands:
                wi = int(w)
                steps += 1
                if left == 1:
                    found.append(tuple(sorted(base + tuple(prefix) + (wi,))))
                    continue
                nxt = np.intersect1d(
                    cands[cands > wi], adj[wi], assume_unique=True
                )
                if len(nxt) >= left - 1:
                    grow(prefix + [wi], nxt, left - 1)

        grow([], common, k - 2)
        return MatchOutput(matches=tuple(sorted(found)), steps=max(1, steps))

    def _extend(
        self,
        view: GraphView,
        order: list[int],
        depth: int,
        mapping: dict[int, int],
        found: set[tuple[int, ...]],
    ) -> int:
        if depth == len(order):
            match = tuple(mapping[i] for i in range(self.pattern.size))
            found.add(self.pattern.canonical_match(match))
            return 1
        w = order[depth]
        constraint_sets = [
            view.neighbors(mapping[p])
            for p in self.pattern.neighbors(w)
            if p in mapping
        ]
        if not constraint_sets:
            return 1  # unreachable for connected patterns; defensive
        candidates = constraint_sets[0]
        for other in constraint_sets[1:]:
            candidates = np.intersect1d(candidates, other, assume_unique=True)
            if len(candidates) == 0:
                return 1
        used = set(mapping.values())
        steps = 1
        for cand in candidates:
            c = int(cand)
            if c in used:
                continue
            mapping[w] = c
            steps += self._extend(view, order, depth + 1, mapping, found)
            del mapping[w]
        return steps

    # ---------------------------------------------------------------- count
    def count(self, view: GraphView, u: int, v: int) -> CountOutput:
        """Exact count of instances containing (u, v), the cheap way."""
        if not view.has_edge(u, v):
            return CountOutput(count=0, steps=1)
        if self._is_clique:
            out = self._count_clique(view, u, v)
            raw_steps = out.steps
            count = out.count
        else:
            enum = self.enumerate(view, u, v)
            raw_steps = enum.steps
            count = len(enum.matches)
        # the count is exact; the cost model applies the discount to model
        # the paper's counting optimizations (inclusion-exclusion [68],
        # subgraph morphing [45]) being "orders of magnitude faster than
        # matching each individual subgraph" (Sec 4.4)
        return CountOutput(
            count=count,
            steps=max(1, int(raw_steps * self.count_discount)),
        )

    def _count_clique(self, view: GraphView, u: int, v: int) -> CountOutput:
        """k-cliques containing (u,v) = (k-2)-cliques inside N(u)∩N(v) —
        the standard counting specialization, genuinely cheaper."""
        k = self.pattern.size
        common = np.intersect1d(
            view.neighbors(u), view.neighbors(v), assume_unique=True
        )
        need = k - 2
        steps = 1 + len(common)
        if need == 0:
            return CountOutput(count=1, steps=steps)
        adj = {
            int(c): np.intersect1d(
                view.neighbors(int(c)), common, assume_unique=True
            )
            for c in common
        }
        steps += len(common)

        def count_cliques(cands: np.ndarray, left: int) -> int:
            """(left)-cliques in ``cands`` with increasing vertex ids —
            each counted exactly once."""
            nonlocal steps
            if left == 1:
                return len(cands)
            total = 0
            for w in cands:
                wi = int(w)
                steps += 1
                nxt = np.intersect1d(
                    cands[cands > wi], adj[wi], assume_unique=True
                )
                if len(nxt) >= left - 1:
                    total += count_cliques(nxt, left - 1)
            return total

        return CountOutput(count=count_cliques(common, need), steps=steps)

    # ------------------------------------------------------------ validity
    def is_instance(self, view: GraphView, match: tuple[int, ...]) -> bool:
        """isSubgraph ∧ isMatch: distinct vertices, canonical form, every
        pattern edge present in the graph at this version."""
        if len(match) != self.pattern.size or len(set(match)) != len(match):
            return False
        if not self.pattern.is_canonical(match):
            return False
        return all(
            view.has_edge(match[a], match[b]) for a, b in self.pattern.edges
        )

    def contains_link(self, match: tuple[int, ...], u: int, v: int) -> bool:
        """r.links().contains(link(t)): some pattern edge maps onto (u,v)."""
        return any(
            {match[a], match[b]} == {u, v} for a, b in self.pattern.edges
        )
