"""Edge-anchored subgraph matching engine.

Anomaly Detection computes, per link update (u, v), every instance of
the anomaly pattern that contains the new link (Fig 1's
``detectAnomaly``).  The matcher performs classic backtracking over a
connectivity-respecting matching order with sorted-neighborhood
candidate intersection, and emits each instance once in canonical form,
so the record stream is sorted — giving the ``happens_before`` prefix
order for free.

The inner loop works on the graph's ``(tuple, frozenset)`` adjacency
views (Python ints, no numpy boxing): candidate generation intersects
the smallest constraint set against the others with plain set
membership, which for the ≤6-vertex patterns and the bench-scale
neighborhoods beats ``np.intersect1d``'s per-call overhead by a wide
margin while producing the identical candidate sets.

Costs are *measured*, not assumed: the matcher counts candidate-
extension steps and the simulated CPU charge is ``steps × step_cost``,
so expensive updates (dense neighborhoods) really cost more, matching
the heterogeneity the paper's timeout calibration responds to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.anomaly.graph import GraphView
from repro.apps.anomaly.patterns import Pattern

__all__ = ["EdgeAnchoredMatcher", "MatchOutput", "CountOutput"]


@dataclass(frozen=True)
class MatchOutput:
    """Sorted canonical match tuples plus the work counter."""

    matches: tuple[tuple[int, ...], ...]
    steps: int


@dataclass(frozen=True)
class CountOutput:
    """Exact |matches| plus the (smaller) counting work counter."""

    count: int
    steps: int


class EdgeAnchoredMatcher:
    """Enumerates/counts pattern instances containing a given edge.

    Parameters
    ----------
    pattern:
        The anomaly pattern.
    step_cost:
        Simulated seconds per extension step (executor side).
    count_discount:
        Multiplier on counting cost, modeling the paper's
        inclusion-exclusion / subgraph-morphing counting optimizations
        that are "orders of magnitude faster than matching each
        individual subgraph" (Sec 4.4).  For cliques the count is
        computed by a genuinely cheaper specialized routine as well.
    """

    def __init__(
        self,
        pattern: Pattern,
        step_cost: float = 2e-7,
        count_discount: float = 0.1,
    ) -> None:
        self.pattern = pattern
        self.step_cost = step_cost
        self.count_discount = count_discount
        self._is_clique = pattern.edge_count == (
            pattern.size * (pattern.size - 1) // 2
        )
        # anchor plans: one directed pattern edge per automorphism orbit
        # (symmetry breaking), with the extension order for each and, per
        # depth, the already-placed pattern vertices constraining the
        # candidate set (static per plan — precomputed once)
        self._plans: list[
            tuple[int, int, list[int], list[tuple[int, ...]]]
        ] = []
        for a, b in pattern.directed_edge_orbits():
            order = self._anchored_order(a, b)
            placed = {a, b}
            constraints: list[tuple[int, ...]] = []
            for w in order:
                constraints.append(
                    tuple(p for p in pattern.neighbors(w) if p in placed)
                )
                placed.add(w)
            self._plans.append((a, b, order, constraints))
        # cross-replica memo: enumerate/count are pure functions of
        # (graph content, anchor edge), and replicated protocols make
        # every replica compute the same answers on the same state.  The
        # real system pays that cost per replica; the simulator need not
        # — results (including the ``steps`` work counter feeding the
        # CPU charge) are identical, so the DES timeline is unchanged.
        # Keyed by the graph's content fingerprint chain (None =
        # uncacheable, e.g. post-compaction reads), which distinguishes
        # divergent Byzantine states by construction.
        self._enum_memo: dict[tuple, MatchOutput] = {}
        self._count_memo: dict[tuple, CountOutput] = {}

    def _anchored_order(self, a: int, b: int) -> list[int]:
        order = [a, b]
        remaining = set(range(self.pattern.size)) - {a, b}
        degs = {v: len(self.pattern.neighbors(v)) for v in remaining}
        while remaining:
            connected = [
                v
                for v in remaining
                if any(self.pattern.has_edge(v, u) for u in order)
            ]
            pool = connected or sorted(remaining)
            nxt = max(pool, key=lambda v: (degs[v], -v))
            order.append(nxt)
            remaining.discard(nxt)
        return order[2:]

    # ------------------------------------------------------------ enumerate
    def enumerate(self, view: GraphView, u: int, v: int) -> MatchOutput:
        """All canonical instances containing edge (u, v) at ``view``."""
        fp = view.fingerprint()
        if fp is not None:
            key = (fp, u, v)
            hit = self._enum_memo.get(key)
            if hit is not None:
                return hit
        out = self._enumerate_impl(view, u, v)
        if fp is not None:
            self._enum_memo[key] = out
        return out

    def _enumerate_impl(self, view: GraphView, u: int, v: int) -> MatchOutput:
        if not view.has_edge(u, v):
            return MatchOutput(matches=(), steps=1)
        if self._is_clique:
            return self._enumerate_clique(view, u, v)
        found: set[tuple[int, ...]] = set()
        steps = 0
        # per-call adjacency memo: plans revisit the same graph vertices
        # many times, so the (tuple, set) views are fetched once each
        adj_cache: dict[int, tuple[tuple[int, ...], frozenset[int]]] = {}
        for a, b, order, constraints in self._plans:
            mapping = {a: u, b: v}
            steps += self._extend(
                view, adj_cache, order, constraints, 0, mapping, {u, v}, found
            )
        matches = tuple(sorted(found))
        return MatchOutput(matches=matches, steps=max(1, steps))

    def _common_neighbors(self, view: GraphView, u: int, v: int) -> list[int]:
        """Sorted common neighborhood of (u, v), iterating the smaller."""
        nu, su = view.adjacency(u)
        nv, sv = view.adjacency(v)
        if len(nu) <= len(nv):
            return [x for x in nu if x in sv]
        return [x for x in nv if x in su]

    def _enumerate_clique(self, view: GraphView, u: int, v: int) -> MatchOutput:
        """k-cliques containing (u, v): (k-2)-cliques inside N(u)∩N(v),
        enumerated with increasing vertex ids (no symmetric duplicates)."""
        k = self.pattern.size
        common = self._common_neighbors(view, u, v)
        base = tuple(sorted((u, v)))
        steps = 1 + len(common)
        if k == 2:
            return MatchOutput(matches=(base,), steps=steps)
        adj = {c: view.neighbor_set(c) for c in common}
        steps += len(common)
        found: list[tuple[int, ...]] = []

        def grow(prefix: list[int], cands: list[int], left: int) -> None:
            nonlocal steps
            if left == 0:
                found.append(tuple(sorted(base + tuple(prefix))))
                return
            for i, wi in enumerate(cands):
                steps += 1
                if left == 1:
                    found.append(tuple(sorted(base + tuple(prefix) + (wi,))))
                    continue
                aw = adj[wi]
                # cands is sorted ascending, so the > wi suffix is a slice
                nxt = [x for x in cands[i + 1:] if x in aw]
                if len(nxt) >= left - 1:
                    grow(prefix + [wi], nxt, left - 1)

        grow([], common, k - 2)
        return MatchOutput(matches=tuple(sorted(found)), steps=max(1, steps))

    def _extend(
        self,
        view: GraphView,
        adj_cache: dict[int, tuple[tuple[int, ...], frozenset[int]]],
        order: list[int],
        constraints: list[tuple[int, ...]],
        depth: int,
        mapping: dict[int, int],
        used: set[int],
        found: set[tuple[int, ...]],
    ) -> int:
        if depth == len(order):
            match = tuple(mapping[i] for i in range(self.pattern.size))
            found.add(self.pattern.canonical_match(match))
            return 1
        cpos = constraints[depth]
        if not cpos:
            return 1  # unreachable for connected patterns; defensive
        cache_get = adj_cache.get
        if len(cpos) == 1:
            p = mapping[cpos[0]]
            entry = cache_get(p)
            if entry is None:
                entry = adj_cache[p] = view.adjacency(p)
            candidates = entry[0]
        else:
            sets = []
            for cp in cpos:
                p = mapping[cp]
                entry = cache_get(p)
                if entry is None:
                    entry = adj_cache[p] = view.adjacency(p)
                sets.append(entry[1])
            sets.sort(key=len)
            candidates = sets[0]
            for s in sets[1:]:
                candidates = candidates & s
                if not candidates:
                    return 1
        w = order[depth]
        # ``used`` is threaded through the recursion (add before descend,
        # remove after) instead of rebuilt from mapping.values() per call
        # — identical membership at every depth, no per-call set alloc
        steps = 1
        for c in candidates:
            if c in used:
                continue
            mapping[w] = c
            used.add(c)
            steps += self._extend(
                view,
                adj_cache,
                order,
                constraints,
                depth + 1,
                mapping,
                used,
                found,
            )
            used.discard(c)
            del mapping[w]
        return steps

    # ---------------------------------------------------------------- count
    def count(self, view: GraphView, u: int, v: int) -> CountOutput:
        """Exact count of instances containing (u, v), the cheap way."""
        fp = view.fingerprint()
        if fp is not None:
            key = (fp, u, v)
            hit = self._count_memo.get(key)
            if hit is not None:
                return hit
        out = self._count_impl(view, u, v)
        if fp is not None:
            self._count_memo[key] = out
        return out

    def _count_impl(self, view: GraphView, u: int, v: int) -> CountOutput:
        if not view.has_edge(u, v):
            return CountOutput(count=0, steps=1)
        if self._is_clique:
            out = self._count_clique(view, u, v)
            raw_steps = out.steps
            count = out.count
        else:
            enum = self.enumerate(view, u, v)
            raw_steps = enum.steps
            count = len(enum.matches)
        # the count is exact; the cost model applies the discount to model
        # the paper's counting optimizations (inclusion-exclusion [68],
        # subgraph morphing [45]) being "orders of magnitude faster than
        # matching each individual subgraph" (Sec 4.4)
        return CountOutput(
            count=count,
            steps=max(1, int(raw_steps * self.count_discount)),
        )

    def _count_clique(self, view: GraphView, u: int, v: int) -> CountOutput:
        """k-cliques containing (u,v) = (k-2)-cliques inside N(u)∩N(v) —
        the standard counting specialization, genuinely cheaper."""
        k = self.pattern.size
        common = self._common_neighbors(view, u, v)
        need = k - 2
        steps = 1 + len(common)
        if need == 0:
            return CountOutput(count=1, steps=steps)
        adj = {c: view.neighbor_set(c) for c in common}
        steps += len(common)

        def count_cliques(cands: list[int], left: int) -> int:
            """(left)-cliques in ``cands`` with increasing vertex ids —
            each counted exactly once."""
            nonlocal steps
            if left == 1:
                return len(cands)
            total = 0
            for i, wi in enumerate(cands):
                steps += 1
                aw = adj[wi]
                nxt = [x for x in cands[i + 1:] if x in aw]
                if len(nxt) >= left - 1:
                    total += count_cliques(nxt, left - 1)
            return total

        return CountOutput(count=count_cliques(common, need), steps=steps)

    # ------------------------------------------------------------ validity
    def is_instance(self, view: GraphView, match: tuple[int, ...]) -> bool:
        """isSubgraph ∧ isMatch: distinct vertices, canonical form, every
        pattern edge present in the graph at this version."""
        if len(match) != self.pattern.size or len(set(match)) != len(match):
            return False
        if not self.pattern.is_canonical(match):
            return False
        return all(
            view.has_edge(match[a], match[b]) for a, b in self.pattern.edges
        )

    def contains_link(self, match: tuple[int, ...], u: int, v: int) -> bool:
        """r.links().contains(link(t)): some pattern edge maps onto (u,v)."""
        return any(
            {match[a], match[b]} == {u, v} for a, b in self.pattern.edges
        )
