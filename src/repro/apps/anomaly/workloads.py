"""Synthetic graph generators and the paper's workload mixes.

The paper evaluates on Orkut (3M vertices) and Amazon Products; at
simulation scale we substitute power-law graphs with matching *shape*
knobs — the workloads are defined by their CPU-cost / output-size ratio
(Sec 7.2), which the pattern choice controls:

* **MM** (medium CPU, medium output)  — dense size-6 pattern;
* **LH** (low CPU, high output)       — 3-hop paths;
* **HL** (high CPU, low output)       — 6-cliques.

``power_law_graph`` is a Barabási–Albert-style preferential-attachment
generator seeded for reproducibility; ``link_update_stream`` produces
the paper's "1K tasks per second" style update streams, biased toward
dense regions so pattern matches actually occur.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.apps.anomaly.app import make_link_task
from repro.core.tasks import Task
from repro.errors import BenchmarkError

__all__ = ["power_law_graph", "link_update_stream", "anomaly_workload"]


def power_law_graph(
    n: int, m: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Barabási–Albert preferential attachment: n vertices, m edges each.

    Returns the edge list; degree distribution is power-law, giving the
    dense cores where clique-like patterns live (the reason the paper's
    Orkut queries are expensive).
    """
    if n <= m:
        raise BenchmarkError(f"need n > m (n={n}, m={m})")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    # seed clique of m+1 vertices so early attachments have targets
    targets: list[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v))
            targets.extend((u, v))
    for u in range(m + 1, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            # preferential attachment: sample endpoints of existing edges
            chosen.add(int(targets[rng.integers(0, len(targets))]))
        for v in chosen:
            edges.append((u, v))
            targets.extend((u, v))
    return edges


def link_update_stream(
    base_edges: list[tuple[int, int]],
    n_tasks: int,
    rate: float,
    seed: int = 0,
    dense_bias: float = 0.7,
    start_time: float = 0.0,
    max_degree: Optional[int] = None,
) -> Iterator[tuple[float, Task]]:
    """Stream of link-insertion tasks at ``rate`` tasks/second.

    With probability ``dense_bias`` a new link connects two endpoints of
    existing edges (closing wedges → creating pattern instances);
    otherwise it is uniform random.  Links are fresh (not in the base
    graph), mimicking the paper's continuous link-update feed.

    ``max_degree`` throttles links into already-saturated hubs: without
    it a long stream keeps densifying one core until single tasks carry
    an unbounded fraction of the total work, which makes capacity
    measurements hostage to one straggler.
    """
    rng = np.random.default_rng(seed)
    existing = set((min(u, v), max(u, v)) for u, v in base_edges)
    degree: dict[int, int] = {}
    for a, b in existing:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    endpoints = np.array(
        [x for e in base_edges for x in e], dtype=np.int64
    )
    n_vertices = int(endpoints.max()) + 1 if len(endpoints) else 2
    period = 1.0 / rate
    made = 0
    attempts = 0
    while made < n_tasks:
        attempts += 1
        if attempts > 100 * n_tasks + 100:
            raise BenchmarkError("could not generate enough fresh links")
        if rng.random() < dense_bias and len(endpoints):
            u = int(endpoints[rng.integers(0, len(endpoints))])
            v = int(endpoints[rng.integers(0, len(endpoints))])
        else:
            u = int(rng.integers(0, n_vertices))
            v = int(rng.integers(0, n_vertices))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing:
            continue
        if max_degree is not None and (
            degree.get(u, 0) >= max_degree or degree.get(v, 0) >= max_degree
        ):
            continue
        existing.add(key)
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
        at = start_time + made * period
        yield at, make_link_task(made, u, v, op="add", compute=True)
        made += 1


def anomaly_workload(
    workload: str,
    n_vertices: int = 300,
    attach: int = 8,
    seed: int = 0,
):
    """Build (base_edges, pattern) for a named paper workload.

    ``workload`` ∈ {"MM", "LH", "HL", "fig5b"}; see module docstring.
    """
    from repro.apps.anomaly.patterns import clique, clique_minus, dense_six, path

    base = power_law_graph(n_vertices, attach, seed=seed)
    patterns = {
        "MM": dense_six(),
        "LH": path(3),
        "HL": clique(6),
        "fig5b": clique_minus(6, 2),
    }
    if workload not in patterns:
        raise BenchmarkError(f"unknown workload {workload!r}")
    return base, patterns[workload]
