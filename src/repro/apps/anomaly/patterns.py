"""Pattern descriptions for subgraph matching.

A :class:`Pattern` is a small connected graph on vertices ``0..k-1``.
Matches are emitted in a *canonical form* — the lexicographically
smallest vertex tuple among all automorphic images — so each subgraph
instance appears exactly once and the output stream is totally ordered
(the Task-Ordered property; "prefix-ordering is guaranteed by most
pattern matching systems", Algorithm 2).  Automorphisms are precomputed
by brute force, fine for the ≤6-vertex patterns the paper evaluates.

Factories cover the paper's queries: ``clique(6)`` (HL), a dense size-6
pattern (MM), 6-cliques missing 2 edges (Fig 5b), and 3-hop paths (LH).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from operator import itemgetter
from typing import FrozenSet

from repro.errors import ApplicationError

__all__ = ["Pattern", "clique", "clique_minus", "cycle", "dense_six", "path", "star"]


@dataclass(frozen=True)
class Pattern:
    """A connected pattern graph on vertices 0..size-1."""

    size: int
    edges: FrozenSet[tuple[int, int]]
    name: str = "pattern"

    @staticmethod
    def from_edges(size: int, edges, name: str = "pattern") -> "Pattern":
        norm = frozenset(
            (min(u, v), max(u, v)) for u, v in edges if u != v
        )
        for u, v in norm:
            if not (0 <= u < size and 0 <= v < size):
                raise ApplicationError(f"edge ({u},{v}) outside 0..{size - 1}")
        pat = Pattern(size=size, edges=norm, name=name)
        if size > 1 and not pat._connected():
            raise ApplicationError("pattern must be connected")
        return pat

    def _connected(self) -> bool:
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for a, b in self.edges:
                for x, y in ((a, b), (b, a)):
                    if x == u and y not in seen:
                        seen.add(y)
                        frontier.append(y)
        return len(seen) == self.size

    # ------------------------------------------------------------- queries
    def has_edge(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self.edges

    def neighbors(self, a: int) -> tuple[int, ...]:
        return tuple(
            sorted(
                y
                for u, v in self.edges
                for x, y in ((u, v), (v, u))
                if x == a
            )
        )

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    # -------------------------------------------------------- automorphisms
    def automorphisms(self) -> list[tuple[int, ...]]:
        """All vertex permutations preserving the edge set (cached)."""
        cached = getattr(self, "_autos", None)
        if cached is not None:
            return cached
        autos = []
        for perm in permutations(range(self.size)):
            if all(
                ((min(perm[u], perm[v]), max(perm[u], perm[v])) in self.edges)
                for u, v in self.edges
            ):
                autos.append(perm)
        object.__setattr__(self, "_autos", autos)
        return autos

    def canonical_match(self, match: tuple[int, ...]) -> tuple[int, ...]:
        """Lexicographically smallest automorphic image of a match tuple.

        Memoized per pattern: the matcher rediscovers the same instance
        from several anchors and the verifier re-canonicalizes every
        record, so repeats dominate.  The cache is cleared if it ever
        grows past a million entries (bench-scale runs stay far below).
        """
        cache = getattr(self, "_canon_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_canon_cache", cache)
        best = cache.get(match)
        if best is None:
            getters = getattr(self, "_canon_getters", None)
            if getters is None:
                # itemgetter builds each automorphic image in C; the
                # identity permutation is skipped (its image == match)
                identity = tuple(range(self.size))
                getters = [
                    itemgetter(*perm)
                    for perm in self.automorphisms()
                    if perm != identity
                ] if self.size > 1 else []
                object.__setattr__(self, "_canon_getters", getters)
            best = match
            for g in getters:
                image = g(match)
                if image < best:
                    best = image
            if len(cache) > 1_000_000:
                cache.clear()
            cache[match] = best
        return best

    def is_canonical(self, match: tuple[int, ...]) -> bool:
        return match == self.canonical_match(match)

    def directed_edge_orbits(self) -> list[tuple[int, int]]:
        """One representative per orbit of the automorphism group acting
        on directed edges.

        Anchoring the matcher on one directed edge per orbit (instead of
        every directed edge) finds every instance while skipping
        symmetric duplicates — for a k-clique all k(k-1) directed edges
        collapse to a single anchor.  This is the symmetry-breaking idea
        of pattern-aware matchers like Peregrine [44] / GraphPi [68].
        """
        directed = [
            d
            for u, v in sorted(self.edges)
            for d in ((u, v), (v, u))
        ]
        seen: set[tuple[int, int]] = set()
        reps: list[tuple[int, int]] = []
        for d in directed:
            if d in seen:
                continue
            reps.append(d)
            for perm in self.automorphisms():
                seen.add((perm[d[0]], perm[d[1]]))
        return reps

    # ------------------------------------------------------ matching order
    def matching_order(self) -> list[int]:
        """Vertex elimination order: degree-descending, connectivity-first
        (every vertex after the first is adjacent to an earlier one)."""
        degs = {v: len(self.neighbors(v)) for v in range(self.size)}
        order = [max(degs, key=lambda v: (degs[v], -v))]
        remaining = set(range(self.size)) - set(order)
        while remaining:
            connected = [
                v
                for v in remaining
                if any(self.has_edge(v, u) for u in order)
            ]
            pool = connected or sorted(remaining)
            nxt = max(pool, key=lambda v: (degs[v], -v))
            order.append(nxt)
            remaining.discard(nxt)
        return order


def clique(k: int, name: str | None = None) -> Pattern:
    """K_k — the paper's HL query is ``clique(6)`` on Orkut."""
    return Pattern.from_edges(
        k, combinations(range(k), 2), name=name or f"{k}-clique"
    )


def clique_minus(k: int, missing: int, name: str | None = None) -> Pattern:
    """K_k with ``missing`` edges removed (Fig 5b uses k=6, missing=2).

    Edges are removed deterministically: the last ``missing`` pairs in
    lexicographic order, keeping the pattern connected.
    """
    all_edges = list(combinations(range(k), 2))
    kept = all_edges[: len(all_edges) - missing]
    return Pattern.from_edges(
        k, kept, name=name or f"{k}-clique-minus-{missing}"
    )


def path(hops: int, name: str | None = None) -> Pattern:
    """A simple path with ``hops`` edges (LH: 3-hop paths)."""
    return Pattern.from_edges(
        hops + 1,
        [(i, i + 1) for i in range(hops)],
        name=name or f"{hops}-hop-path",
    )


def star(leaves: int, name: str | None = None) -> Pattern:
    """A star: vertex 0 joined to ``leaves`` leaves (hub-and-spoke
    anomalies, e.g. scanning hosts in network telemetry)."""
    return Pattern.from_edges(
        leaves + 1,
        [(0, i) for i in range(1, leaves + 1)],
        name=name or f"{leaves}-star",
    )


def cycle(k: int, name: str | None = None) -> Pattern:
    """A simple k-cycle (routing-loop / money-cycle anomalies)."""
    return Pattern.from_edges(
        k,
        [(i, (i + 1) % k) for i in range(k)],
        name=name or f"{k}-cycle",
    )


def dense_six(name: str = "dense-size-6") -> Pattern:
    """The MM query: a dense 6-vertex pattern — K6 minus a perfect
    matching pair (two *independent* missing edges), distinct from
    ``clique_minus(6, 2)`` whose missing edges share a vertex."""
    edges = set(combinations(range(6), 2)) - {(0, 1), (2, 3)}
    return Pattern.from_edges(6, edges, name=name)
