"""Anomaly Detection: streaming pattern matching on a dynamic network."""

from repro.apps.anomaly.app import AnomalyApp, make_link_task
from repro.apps.anomaly.graph import GraphView, MultiVersionGraph
from repro.apps.anomaly.matcher import (
    CountOutput,
    EdgeAnchoredMatcher,
    MatchOutput,
)
from repro.apps.anomaly.patterns import (
    Pattern,
    clique,
    clique_minus,
    cycle,
    dense_six,
    path,
    star,
)
from repro.apps.anomaly.workloads import (
    anomaly_workload,
    link_update_stream,
    power_law_graph,
)

__all__ = [
    "AnomalyApp",
    "CountOutput",
    "EdgeAnchoredMatcher",
    "GraphView",
    "MatchOutput",
    "MultiVersionGraph",
    "Pattern",
    "anomaly_workload",
    "clique",
    "clique_minus",
    "cycle",
    "dense_six",
    "link_update_stream",
    "make_link_task",
    "path",
    "power_law_graph",
    "star",
]
