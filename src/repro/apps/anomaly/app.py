"""Anomaly Detection as a verifiable application (the paper's use case).

Tasks carry link updates; the computation lists every instance of the
anomaly pattern containing the new link at the post-update version of the
network (Fig 1).  The verification operators are exactly Algorithm 2:

* ``is_valid``       — record is a subgraph of the network, matches the
  pattern, and contains the updated link;
* ``happens_before`` — prefix (lexicographic) ordering of match tuples;
* ``output_size``    — exact counting via the specialized/discounted
  counting routines, far cheaper than enumeration.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.anomaly.graph import GraphView, MultiVersionGraph
from repro.apps.anomaly.matcher import EdgeAnchoredMatcher
from repro.apps.anomaly.patterns import Pattern
from repro.core.api import ComputeResult, CountResult, VerifiableApplication
from repro.core.tasks import Opcode, Record, Task

__all__ = ["AnomalyApp", "make_link_task"]


def make_link_task(
    i: int,
    u: int,
    v: int,
    op: str = "add",
    compute: bool = True,
) -> Task:
    """A link-update task; ``compute=True`` also requests pattern
    matching around the link (the anomaly query)."""
    opcode = Opcode.BOTH if (compute and op == "add") else Opcode.UPDATE
    return Task(
        task_id=f"link{i}",
        opcode=opcode,
        update_payload=(op, u, v),
        compute_payload={"edge": [u, v]} if opcode.has_compute else None,
        size_bytes=48,
    )


class AnomalyApp(VerifiableApplication):
    """Streaming pattern matching over a dynamic network graph.

    Parameters
    ----------
    base_edges:
        Initial network (version 0).
    pattern:
        The anomaly pattern to match.
    step_cost:
        Simulated seconds per matcher extension step.  The paper's C++
        engine explores ~10⁷ extensions/sec/core; the default models
        that (1e-7 s/step).
    count_discount:
        Cost multiplier for counting-based verification (Sec 4.4).
    verify_step_cost:
        Simulated seconds to validate one record (adjacency checks are
        |E(p)| sorted lookups — cheap and independent of graph size).
    record_bytes:
        Wire size of one match record (k vertex ids + framing).
    """

    name = "anomaly-detection"

    def __init__(
        self,
        base_edges,
        pattern: Pattern,
        step_cost: float = 1e-7,
        count_discount: float = 0.1,
        verify_step_cost: float = 1e-6,
        record_bytes: Optional[int] = None,
    ) -> None:
        self.base_edges = list(base_edges)
        self.pattern = pattern
        self.matcher = EdgeAnchoredMatcher(
            pattern, step_cost=step_cost, count_discount=count_discount
        )
        self.step_cost = step_cost
        self.verify_step_cost = verify_step_cost
        self.record_bytes = record_bytes or (8 * pattern.size + 16)
        self._state_template: Optional[MultiVersionGraph] = None

    # ----------------------------------------------------------------- state
    def initial_state(self) -> MultiVersionGraph:
        # built once, cloned per replica: every replica starts from the
        # identical base state either way, but sorting + boxing the base
        # adjacency happens once per deployment instead of once per node
        if self._state_template is None:
            self._state_template = MultiVersionGraph(self.base_edges)
        return self._state_template.clone()

    # ------------------------------------------------------------------- T
    def valid_task(self, task: Task) -> bool:
        if task.opcode.has_update:
            payload = task.update_payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] not in ("add", "del")
                or not isinstance(payload[1], int)
                or not isinstance(payload[2], int)
                or payload[1] == payload[2]
            ):
                return False
        if task.opcode.has_compute:
            cp = task.compute_payload
            if not isinstance(cp, dict) or "edge" not in cp:
                return False
            edge = cp["edge"]
            if len(edge) != 2 or edge[0] == edge[1]:
                return False
        return True

    # ------------------------------------------------------------------- A
    def compute(self, view: GraphView, task: Task) -> ComputeResult:
        u, v = task.compute_payload["edge"]
        out = self.matcher.enumerate(view, u, v)
        records = tuple(
            Record(key=m, size_bytes=self.record_bytes) for m in out.matches
        )
        return ComputeResult(records=records, cost=out.steps * self.step_cost)

    # ------------------------------------------------- verification operators
    def is_valid(self, view: GraphView, record: Record, task: Task) -> bool:
        if record.data is not None:
            # A(s, t) records are match tuples with no payload; anything
            # in ``data`` is not a member (r ∈ A(s, t) is on the whole
            # record, or a corrupted-but-valid-key record slips through)
            return False
        match = record.key
        if not isinstance(match, tuple) or not all(
            isinstance(x, int) for x in match
        ):
            return False
        u, v = task.compute_payload["edge"]
        return self.matcher.is_instance(view, match) and (
            self.matcher.contains_link(match, u, v)
        )

    def output_size(self, view: GraphView, task: Task) -> CountResult:
        u, v = task.compute_payload["edge"]
        out = self.matcher.count(view, u, v)
        return CountResult(count=out.count, cost=out.steps * self.step_cost)

    def verify_record_cost(self, record: Record) -> float:
        return self.verify_step_cost
