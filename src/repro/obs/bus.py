"""Per-deployment event bus with pluggable sinks.

The bus is the observability spine: every layer (kernel, CPU banks,
network, consensus, protocol roles) emits :mod:`repro.obs.events` through
the simulator's bus instead of hand-threaded callbacks.  Sinks subscribe
by *category*; :meth:`EventBus.wants` is the O(1) guard that hot paths
check **before constructing an event**, so a run with no sinks (or none
interested in a category) pays one set-membership test per emission site
and allocates nothing.

Determinism: sinks are invoked synchronously, in attach order, from the
emitting call site.  Sinks must not schedule simulator events or consume
RNG — the bus is strictly read-only with respect to the simulation, which
is what keeps traced and untraced runs bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ObservabilityError
from repro.obs.events import CATEGORY_CPU, CATEGORY_KERNEL, CATEGORY_NET

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import TraceEvent

__all__ = ["Sink", "EventBus"]


class Sink:
    """Base class for event consumers.

    Subclasses set :attr:`categories` to the frozenset of categories they
    want (``None`` subscribes to everything) and implement :meth:`handle`.
    """

    #: Categories this sink subscribes to; ``None`` means all.
    categories: Optional[frozenset[str]] = None

    def handle(self, event: "TraceEvent") -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by :meth:`EventBus.close`."""


class EventBus:
    """Routes trace events to attached sinks, filtered by category."""

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self._want_all = False
        self._wanted: frozenset[str] = frozenset()
        # per-category dispatch list, built lazily by emit(); invalidated
        # on every attach/detach
        self._routes: dict[str, list[Sink]] = {}
        # hot-path guards: the kernel fires one potential emission per DES
        # event and the network/CPU banks one per send/job, so their
        # wants() results are precomputed as plain attribute reads,
        # invalidated on every attach/detach.  Zero-sink runs then skip
        # even the guard set lookup on those paths.
        self._want_kernel = False
        self._want_net = False
        self._want_cpu = False

    # -------------------------------------------------------------- plumbing
    def _rebuild(self) -> None:
        self._want_all = any(s.categories is None for s in self._sinks)
        wanted: set[str] = set()
        for s in self._sinks:
            if s.categories is not None:
                wanted |= s.categories
        self._wanted = frozenset(wanted)
        self._routes = {}
        want_all = self._want_all
        self._want_kernel = want_all or CATEGORY_KERNEL in wanted
        self._want_net = want_all or CATEGORY_NET in wanted
        self._want_cpu = want_all or CATEGORY_CPU in wanted

    def attach(self, sink: Sink) -> Sink:
        """Attach a sink; emission order follows attach order."""
        if sink in self._sinks:
            raise ObservabilityError("sink already attached")
        self._sinks.append(sink)
        self._rebuild()
        return sink

    def detach(self, sink: Sink) -> None:
        """Detach a previously attached sink (does not close it)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            raise ObservabilityError("sink not attached") from None
        self._rebuild()

    def close(self) -> None:
        """Detach and close every sink."""
        sinks, self._sinks = self._sinks, []
        self._rebuild()
        for s in sinks:
            s.close()

    @property
    def sinks(self) -> tuple[Sink, ...]:
        """Attached sinks, in attach (= emission) order."""
        return tuple(self._sinks)

    # -------------------------------------------------------------- emission
    def wants(self, category: str) -> bool:
        """Cheap guard: is any sink interested in ``category``?

        Hot paths call this before constructing the event, so tracing that
        nobody listens to costs one set lookup and zero allocations.
        """
        return self._want_all or category in self._wanted

    def emit(self, event: "TraceEvent") -> None:
        """Deliver ``event`` to every subscribed sink, in attach order."""
        cat = event.category
        route = self._routes.get(cat)
        if route is None:
            route = self._routes[cat] = [
                s
                for s in self._sinks
                if s.categories is None or cat in s.categories
            ]
        for s in route:
            s.handle(event)
