"""Typed trace events for the observability bus.

Every event carries the simulated ``time`` it happened at and the ``pid``
of the emitting process ("kernel" for kernel-level events).  Events are
grouped into *categories* — the unit of sink subscription and of the
cheap :meth:`~repro.obs.bus.EventBus.wants` check that guards hot paths:

========== ==================================================================
category   events
========== ==================================================================
task       TaskSubmitted, TaskLinearized, TaskAssigned, TaskReassigned,
           TaskFallback, TaskCompleted, TaskOutcome, RecordsAccepted,
           TaskAdmitted, TaskDeferred, TaskRejected
chunk      ChunkEmitted, ChunkVerified, ChunkAccepted
consensus  ConsensusCommit, ViewChange
fault      FaultDetected, RoleSwitch, LeaderElection, EquivocationReported
cpu        CpuSpan, CpuCancel
net        LinkTransfer
kernel     KernelEventFired
replay     ReplayInput, ReplayEffect
adversary  AdversaryPhase, AdversaryAction, AdversaryTrigger
gateway    GatewayConnected, GatewayClosed, GatewayAdmission
========== ==================================================================

Events are plain frozen dataclasses of JSON-serializable primitives, so
any sink can persist them without custom encoders (:meth:`as_dict`).
Emission sites never schedule simulator events or consume RNG — tracing
is behavior-neutral by construction.  The ``adversary`` category is the
one deliberate exception to *observational* neutrality: those events
record the campaign engine's own interventions (which perturb the run,
by design), but emitting them still consumes no RNG and the events
themselves schedule nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar

__all__ = [
    "CATEGORY_TASK",
    "CATEGORY_CHUNK",
    "CATEGORY_CONSENSUS",
    "CATEGORY_FAULT",
    "CATEGORY_CPU",
    "CATEGORY_NET",
    "CATEGORY_KERNEL",
    "CATEGORY_REPLAY",
    "CATEGORY_ADVERSARY",
    "CATEGORY_GATEWAY",
    "ALL_CATEGORIES",
    "TraceEvent",
    "TaskSubmitted",
    "TaskLinearized",
    "TaskAssigned",
    "TaskReassigned",
    "TaskFallback",
    "TaskCompleted",
    "TaskOutcome",
    "TaskAdmitted",
    "TaskDeferred",
    "TaskRejected",
    "RecordsAccepted",
    "ChunkEmitted",
    "ChunkVerified",
    "ChunkAccepted",
    "ConsensusCommit",
    "ViewChange",
    "FaultDetected",
    "RoleSwitch",
    "LeaderElection",
    "EquivocationReported",
    "CpuSpan",
    "CpuCancel",
    "LinkTransfer",
    "KernelEventFired",
    "ReplayInput",
    "ReplayEffect",
    "AdversaryPhase",
    "AdversaryAction",
    "AdversaryTrigger",
    "GatewayConnected",
    "GatewayClosed",
    "GatewayAdmission",
]

CATEGORY_TASK = "task"
CATEGORY_CHUNK = "chunk"
CATEGORY_CONSENSUS = "consensus"
CATEGORY_FAULT = "fault"
CATEGORY_CPU = "cpu"
CATEGORY_NET = "net"
CATEGORY_KERNEL = "kernel"
CATEGORY_REPLAY = "replay"
CATEGORY_ADVERSARY = "adversary"
CATEGORY_GATEWAY = "gateway"

ALL_CATEGORIES = frozenset(
    {
        CATEGORY_TASK,
        CATEGORY_CHUNK,
        CATEGORY_CONSENSUS,
        CATEGORY_FAULT,
        CATEGORY_CPU,
        CATEGORY_NET,
        CATEGORY_KERNEL,
        CATEGORY_REPLAY,
        CATEGORY_ADVERSARY,
        CATEGORY_GATEWAY,
    }
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base trace event: simulated timestamp plus emitting process id."""

    category: ClassVar[str] = ""
    kind: ClassVar[str] = ""

    time: float
    pid: str

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-serializable view, with ``kind``/``cat`` discriminators."""
        d: dict[str, Any] = {"kind": self.kind, "cat": self.category}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d


# ------------------------------------------------------------------ task
@dataclass(frozen=True, slots=True)
class TaskSubmitted(TraceEvent):
    """IP handed a task to the coordinator cluster."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-submitted"

    task_id: str


@dataclass(frozen=True, slots=True)
class TaskLinearized(TraceEvent):
    """VP_CO consensus assigned the task its linearization timestamp."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-linearized"

    task_id: str
    timestamp: int


@dataclass(frozen=True, slots=True)
class TaskAssigned(TraceEvent):
    """Coordinator dispatched a task to an executor."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-assigned"

    task_id: str
    executor: str
    attempt: int


@dataclass(frozen=True, slots=True)
class TaskReassigned(TraceEvent):
    """VP_CO speculatively reassigned a task (timeout or blacklist)."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-reassigned"

    task_id: str
    attempt: int


@dataclass(frozen=True, slots=True)
class TaskFallback(TraceEvent):
    """A task fell back to execution by a verifier sub-cluster."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-fallback"

    task_id: str


@dataclass(frozen=True, slots=True)
class TaskCompleted(TraceEvent):
    """An OP saw the final verified chunk of a task."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-completed"

    task_id: str


@dataclass(frozen=True, slots=True)
class TaskOutcome(TraceEvent):
    """Tenant-tagged completion: OP-side SLO record for one task.

    Emitted *in addition to* :class:`TaskCompleted`, and only for tasks
    carrying a tenant (i.e. multi-tenant/open-loop runs) — legacy traces
    never contain it, keeping golden fixtures byte-identical.
    """

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-outcome"

    task_id: str
    tenant: str
    submitted_at: float


@dataclass(frozen=True, slots=True)
class TaskAdmitted(TraceEvent):
    """IP admission control forwarded a task into the pipeline.

    Only emitted when admission control is configured
    (``OsirisConfig.admission_queue`` / ``admission_rate``).
    """

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-admitted"

    task_id: str
    tenant: str


@dataclass(frozen=True, slots=True)
class TaskDeferred(TraceEvent):
    """IP admission control queued a task behind the drain rate."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-deferred"

    task_id: str
    tenant: str
    queue_depth: int


@dataclass(frozen=True, slots=True)
class TaskRejected(TraceEvent):
    """IP admission control shed a task (ingress queue full)."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "task-rejected"

    task_id: str
    tenant: str


@dataclass(frozen=True, slots=True)
class RecordsAccepted(TraceEvent):
    """An OP accepted ``count`` verified output records."""

    category: ClassVar[str] = CATEGORY_TASK
    kind: ClassVar[str] = "records-accepted"

    task_id: str
    count: int


# ----------------------------------------------------------------- chunk
@dataclass(frozen=True, slots=True)
class ChunkEmitted(TraceEvent):
    """An execution engine streamed out one output chunk."""

    category: ClassVar[str] = CATEGORY_CHUNK
    kind: ClassVar[str] = "chunk-emitted"

    task_id: str
    index: int
    records: int
    nbytes: int
    final: bool


@dataclass(frozen=True, slots=True)
class ChunkVerified(TraceEvent):
    """A verifier judged a chunk correct and voted for acceptance."""

    category: ClassVar[str] = CATEGORY_CHUNK
    kind: ClassVar[str] = "chunk-verified"

    task_id: str
    index: int
    records: int


@dataclass(frozen=True, slots=True)
class ChunkAccepted(TraceEvent):
    """An OP collected an acceptance quorum for a chunk."""

    category: ClassVar[str] = CATEGORY_CHUNK
    kind: ClassVar[str] = "chunk-accepted"

    task_id: str
    index: int
    records: int


# ------------------------------------------------------------- consensus
@dataclass(frozen=True, slots=True)
class ConsensusCommit(TraceEvent):
    """A consensus member committed entries up to ``seq``."""

    category: ClassVar[str] = CATEGORY_CONSENSUS
    kind: ClassVar[str] = "consensus-commit"

    seq: int
    batch: int


@dataclass(frozen=True, slots=True)
class ViewChange(TraceEvent):
    """A consensus member entered a new view."""

    category: ClassVar[str] = CATEGORY_CONSENSUS
    kind: ClassVar[str] = "view-change"

    view: int


# ----------------------------------------------------------------- fault
@dataclass(frozen=True, slots=True)
class FaultDetected(TraceEvent):
    """A verifier proved a process faulty (``reason`` names the check)."""

    category: ClassVar[str] = CATEGORY_FAULT
    kind: ClassVar[str] = "fault-detected"

    reason: str
    culprit: str


@dataclass(frozen=True, slots=True)
class RoleSwitch(TraceEvent):
    """A verifier sub-cluster switched between verifier/executor roles."""

    category: ClassVar[str] = CATEGORY_FAULT
    kind: ClassVar[str] = "role-switch"

    vp_index: int
    to_executor: bool


@dataclass(frozen=True, slots=True)
class LeaderElection(TraceEvent):
    """A sub-cluster elected a new leader after a negligence report."""

    category: ClassVar[str] = CATEGORY_FAULT
    kind: ClassVar[str] = "leader-election"

    vp_index: int
    term: int


@dataclass(frozen=True, slots=True)
class EquivocationReported(TraceEvent):
    """An OP reported a partially-delivered chunk digest set."""

    category: ClassVar[str] = CATEGORY_FAULT
    kind: ClassVar[str] = "equivocation-reported"

    task_id: str
    index: int


# ------------------------------------------------------------------- cpu
@dataclass(frozen=True, slots=True)
class CpuSpan(TraceEvent):
    """One job occupying one core of a CPU bank from ``time`` to ``end``."""

    category: ClassVar[str] = CATEGORY_CPU
    kind: ClassVar[str] = "cpu-span"

    bank: str
    core: int
    end: float


@dataclass(frozen=True, slots=True)
class CpuCancel(TraceEvent):
    """A pending job was cancelled; its span's unrun tail (``reclaimed``
    seconds before ``end``) was released back to the core."""

    category: ClassVar[str] = CATEGORY_CPU
    kind: ClassVar[str] = "cpu-cancel"

    bank: str
    core: int
    end: float
    reclaimed: float


# ------------------------------------------------------------------- net
@dataclass(frozen=True, slots=True)
class LinkTransfer(TraceEvent):
    """One message crossing a link; ``pid`` is the sender."""

    category: ClassVar[str] = CATEGORY_NET
    kind: ClassVar[str] = "link-transfer"

    dst: str
    nbytes: int
    msg_type: str
    deliver_at: float
    neq: bool


# ---------------------------------------------------------------- kernel
@dataclass(frozen=True, slots=True)
class KernelEventFired(TraceEvent):
    """The DES kernel fired its ``count``-th event."""

    category: ClassVar[str] = CATEGORY_KERNEL
    kind: ClassVar[str] = "kernel-event-fired"

    count: int


# ------------------------------------------------------------- adversary
@dataclass(frozen=True, slots=True)
class AdversaryPhase(TraceEvent):
    """A campaign phase became active (its actions follow immediately)."""

    category: ClassVar[str] = CATEGORY_ADVERSARY
    kind: ClassVar[str] = "adversary-phase"

    campaign: str
    phase: str


@dataclass(frozen=True, slots=True)
class AdversaryAction(TraceEvent):
    """The campaign engine set/cleared a fault strategy on ``target``."""

    category: ClassVar[str] = CATEGORY_ADVERSARY
    kind: ClassVar[str] = "adversary-action"

    campaign: str
    op: str
    target: str
    role: str
    fault: str


@dataclass(frozen=True, slots=True)
class AdversaryTrigger(TraceEvent):
    """An adaptive trigger matched a protocol event and fired."""

    category: ClassVar[str] = CATEGORY_ADVERSARY
    kind: ClassVar[str] = "adversary-trigger"

    campaign: str
    trigger: str
    on: str


# --------------------------------------------------------------- gateway
@dataclass(frozen=True, slots=True)
class GatewayConnected(TraceEvent):
    """A client connection was accepted by the serve gateway.

    ``pid`` is the gateway's own id; ``conn`` is the gateway-assigned
    connection id the client's tasks are tracked under.
    """

    category: ClassVar[str] = CATEGORY_GATEWAY
    kind: ClassVar[str] = "gateway-connected"

    conn: str
    peer: str


@dataclass(frozen=True, slots=True)
class GatewayClosed(TraceEvent):
    """A client connection ended; ``submitted`` tasks were sent on it."""

    category: ClassVar[str] = CATEGORY_GATEWAY
    kind: ClassVar[str] = "gateway-closed"

    conn: str
    submitted: int


@dataclass(frozen=True, slots=True)
class GatewayAdmission(TraceEvent):
    """The gateway's admission control decided one submitted task.

    ``status`` is the backpressure reply sent to the client —
    ``admitted``, ``deferred`` (queued behind the drain rate) or
    ``rejected`` (ingress queue full, task shed).
    """

    category: ClassVar[str] = CATEGORY_GATEWAY
    kind: ClassVar[str] = "gateway-admission"

    task_id: str
    tenant: str
    status: str
    queue_depth: int


# ---------------------------------------------------------------- replay
@dataclass(frozen=True, slots=True)
class ReplayInput(TraceEvent):
    """One input consumed by a capture-enabled core (see
    :mod:`repro.runtime.replay`): a delivered message (``ref`` holds the
    codec-encoded wire form), a timer fire (``ref`` is the timer name),
    a job/ctrl-job completion (``ref`` is the core-assigned job id), a
    streaming milestone (``"jobid:index"``) or a raw scheduled callback
    (``ref`` is the sched id)."""

    category: ClassVar[str] = CATEGORY_REPLAY
    kind: ClassVar[str] = "replay-input"

    input_kind: str
    ref: str


@dataclass(frozen=True, slots=True)
class ReplayEffect(TraceEvent):
    """Signature of one effect a capture-enabled core performed."""

    category: ClassVar[str] = CATEGORY_REPLAY
    kind: ClassVar[str] = "replay-effect"

    signature: str
