"""Concrete sinks for the observability bus.

* :class:`CollectorSink` — in-memory list, mostly for tests and ad hoc
  analysis.
* :class:`JsonlTraceSink` — one JSON object per line, in emission order.
  Byte-identical across same-seed runs (the determinism contract of the
  bus), so traces can be diffed directly.
* :class:`ChromeTraceSink` — Chrome ``trace_event`` JSON loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``: CPU spans
  as complete ("X") slices on one track per (process, bank, core), link
  transfers as async ("b"/"e") pairs, everything else as instant ("i")
  markers.  Timestamps are microseconds of simulated time.

``MetricsHub`` (:mod:`repro.core.metrics`) is the fourth sink, kept in
``repro.core`` because the benchmark query API lives there.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.bus import Sink
from repro.obs.events import (
    ChunkAccepted,
    ChunkEmitted,
    ChunkVerified,
    ConsensusCommit,
    CpuSpan,
    EquivocationReported,
    FaultDetected,
    KernelEventFired,
    LeaderElection,
    LinkTransfer,
    RecordsAccepted,
    RoleSwitch,
    TaskAssigned,
    TaskCompleted,
    TaskFallback,
    TaskLinearized,
    TaskReassigned,
    TaskSubmitted,
    TraceEvent,
    ViewChange,
)

__all__ = ["CollectorSink", "JsonlTraceSink", "ChromeTraceSink"]


class CollectorSink(Sink):
    """Collects events into :attr:`events`, optionally category-filtered."""

    def __init__(self, categories: Optional[frozenset[str]] = None) -> None:
        self.categories = categories
        self.events: list[TraceEvent] = []

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of(self, event_type: type) -> list[TraceEvent]:
        """Collected events of one concrete type, in emission order."""
        return [e for e in self.events if type(e) is event_type]


class JsonlTraceSink(Sink):
    """Writes every event as one JSON line, in emission order.

    ``json.dumps`` with sorted keys and ``repr``-based float formatting
    makes the output a pure function of the event stream, so two
    same-seed runs produce byte-identical files.
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        categories: Optional[frozenset[str]] = None,
    ) -> None:
        self.categories = categories
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self.event_count = 0

    def handle(self, event: TraceEvent) -> None:
        self._fh.write(
            json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))
        )
        self._fh.write("\n")
        self.event_count += 1

    def close(self) -> None:
        if self._owns_fh and not self._fh.closed:
            self._fh.close()


def _us(t: float) -> float:
    """Simulated seconds → trace_event microseconds (µs granularity)."""
    return round(t * 1e6, 3)


class ChromeTraceSink(Sink):
    """Exports a Chrome ``trace_event`` JSON timeline.

    The trace groups tracks into synthetic "processes": each simulated
    process gets a trace-pid with one thread per (CPU bank, core); links
    and cluster-level markers get trace-pids of their own.  Buffered in
    memory; the file is written on :meth:`close` (or :meth:`write`).
    """

    #: Synthetic trace-process for link transfers.
    LINKS = "links"
    #: Synthetic trace-process for cluster-level instant markers.
    CLUSTER = "cluster"

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: list[dict] = []
        self._meta: list[dict] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}
        self._async_id = 0
        self._written = False

    # ------------------------------------------------------------- id pools
    def _pid(self, name: str) -> int:
        """Integer trace-pid for a named group, assigned first-seen."""
        if name not in self._pids:
            pid = len(self._pids) + 1
            self._pids[name] = pid
            self._meta.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return self._pids[name]

    def _tid(self, group: str, thread: str) -> int:
        """Integer trace-tid within ``group``, assigned first-seen."""
        key = (group, thread)
        if key not in self._tids:
            tid = sum(1 for g, _ in self._tids if g == group) + 1
            self._tids[key] = tid
            self._meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": self._pid(group),
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return self._tids[key]

    # -------------------------------------------------------------- helpers
    def _complete(
        self, group: str, thread: str, name: str, start: float, end: float, args: dict
    ) -> None:
        self._events.append(
            {
                "ph": "X",
                "name": name,
                "cat": "cpu",
                "ts": _us(start),
                "dur": _us(end - start),
                "pid": self._pid(group),
                "tid": self._tid(group, thread),
                "args": args,
            }
        )

    def _async_span(
        self, name: str, cat: str, start: float, end: float, args: dict
    ) -> None:
        self._async_id += 1
        base = {
            "name": name,
            "cat": cat,
            "id": self._async_id,
            "pid": self._pid(self.LINKS),
            "tid": self._tid(self.LINKS, "transfers"),
        }
        self._events.append({**base, "ph": "b", "ts": _us(start), "args": args})
        self._events.append({**base, "ph": "e", "ts": _us(end)})

    def _instant(
        self, group: str, thread: str, name: str, cat: str, time: float, args: dict
    ) -> None:
        self._events.append(
            {
                "ph": "i",
                "s": "t",
                "name": name,
                "cat": cat,
                "ts": _us(time),
                "pid": self._pid(group),
                "tid": self._tid(group, thread),
                "args": args,
            }
        )

    # --------------------------------------------------------------- handle
    def handle(self, event: TraceEvent) -> None:
        args = event.as_dict()
        if isinstance(event, CpuSpan):
            self._complete(
                event.pid or "?",
                f"{event.bank}{event.core}",
                event.bank,
                event.time,
                event.end,
                args,
            )
        elif isinstance(event, LinkTransfer):
            self._async_span(
                f"{event.pid}→{event.dst} {event.msg_type}",
                "net",
                event.time,
                event.deliver_at,
                args,
            )
        elif isinstance(event, KernelEventFired):
            pass  # far too dense for a timeline; JSONL keeps them
        else:
            group, thread, name = self._locate(event)
            self._instant(group, thread, name, event.category, event.time, args)

    def _locate(self, event: TraceEvent) -> tuple[str, str, str]:
        """(group, thread, display name) for an instant marker."""
        kind = event.kind
        if isinstance(event, FaultDetected):
            return self.CLUSTER, "faults", f"{kind}:{event.culprit}"
        if isinstance(event, (RoleSwitch, LeaderElection)):
            return self.CLUSTER, "faults", f"{kind}:vp{event.vp_index}"
        if isinstance(event, EquivocationReported):
            return self.CLUSTER, "faults", f"{kind}:{event.task_id}"
        if isinstance(event, (ConsensusCommit, ViewChange)):
            return event.pid, "consensus", kind
        if isinstance(
            event,
            (
                TaskSubmitted,
                TaskLinearized,
                TaskAssigned,
                TaskReassigned,
                TaskFallback,
                TaskCompleted,
            ),
        ):
            return self.CLUSTER, "tasks", f"{kind}:{event.task_id}"
        if isinstance(event, RecordsAccepted):
            return event.pid, "output", kind
        if isinstance(event, (ChunkEmitted, ChunkVerified, ChunkAccepted)):
            return event.pid, "chunks", f"{kind}:{event.task_id}#{event.index}"
        return event.pid or self.CLUSTER, "misc", kind

    # ---------------------------------------------------------------- output
    def trace_dict(self) -> dict:
        """The full trace document (metadata first, then events)."""
        return {
            "traceEvents": self._meta + self._events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs.ChromeTraceSink"},
        }

    def write(self) -> None:
        """Write the trace file now (idempotent)."""
        if self._written:
            return
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(self.trace_dict(), fh, sort_keys=True)
        self._written = True

    def close(self) -> None:
        try:
            self.write()
        except OSError as exc:  # pragma: no cover - disk failure path
            raise ObservabilityError(f"cannot write trace: {exc}") from exc
