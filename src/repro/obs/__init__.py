"""Structured observability: typed trace events, bus, and sinks.

This package is the instrumentation spine of the reproduction.  The DES
kernel owns one :class:`EventBus` per deployment (``sim.bus``); every
layer emits typed :mod:`~repro.obs.events` through it, guarded by the
O(1) :meth:`EventBus.wants` check so untraced runs pay (almost) nothing.
``MetricsHub`` consumes the same stream as a sink, as do the JSONL and
Chrome ``trace_event`` exporters.
"""

from repro.obs.bus import EventBus, Sink
from repro.obs.events import (
    ALL_CATEGORIES,
    CATEGORY_CHUNK,
    CATEGORY_CONSENSUS,
    CATEGORY_CPU,
    CATEGORY_FAULT,
    CATEGORY_KERNEL,
    CATEGORY_NET,
    CATEGORY_REPLAY,
    CATEGORY_TASK,
    ChunkAccepted,
    ChunkEmitted,
    ChunkVerified,
    ConsensusCommit,
    CpuSpan,
    EquivocationReported,
    FaultDetected,
    KernelEventFired,
    LeaderElection,
    LinkTransfer,
    RecordsAccepted,
    ReplayEffect,
    ReplayInput,
    RoleSwitch,
    TaskAssigned,
    TaskCompleted,
    TaskFallback,
    TaskLinearized,
    TaskReassigned,
    TaskSubmitted,
    TraceEvent,
    ViewChange,
)
from repro.obs.sinks import ChromeTraceSink, CollectorSink, JsonlTraceSink

__all__ = [
    "EventBus",
    "Sink",
    "CollectorSink",
    "JsonlTraceSink",
    "ChromeTraceSink",
    "TraceEvent",
    "ALL_CATEGORIES",
    "CATEGORY_TASK",
    "CATEGORY_CHUNK",
    "CATEGORY_CONSENSUS",
    "CATEGORY_FAULT",
    "CATEGORY_CPU",
    "CATEGORY_NET",
    "CATEGORY_KERNEL",
    "CATEGORY_REPLAY",
    "TaskSubmitted",
    "TaskLinearized",
    "TaskAssigned",
    "TaskReassigned",
    "TaskFallback",
    "TaskCompleted",
    "RecordsAccepted",
    "ChunkEmitted",
    "ChunkVerified",
    "ChunkAccepted",
    "ConsensusCommit",
    "ViewChange",
    "FaultDetected",
    "RoleSwitch",
    "LeaderElection",
    "EquivocationReported",
    "CpuSpan",
    "LinkTransfer",
    "KernelEventFired",
    "ReplayInput",
    "ReplayEffect",
]
