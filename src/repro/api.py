"""Unified deployment façade: one frozen spec, one build path, one runner.

Historically each entry point grew its own kwargs plumbing — the builder
took three per-role fault dicts, every scenario runner re-declared
``seed``/``deadline``/``sinks``/``sanitize``, and the sweep engine
translated its points into those kwargs by hand.  This module replaces
all of that with a single value type:

* :class:`DeploymentSpec` — everything one run depends on (system,
  workload, topology, config overrides, faults *or* an adversary
  campaign, sinks, sanitizer), as one frozen dataclass.
* :func:`build` — spec → wired :class:`~repro.runtime.deploy.OsirisCluster`
  (campaign installed, sinks attached, not yet started).
* :func:`run` — spec → measured
  :class:`~repro.bench.scenarios.ScenarioResult`, for OsirisBFT and both
  baselines.
* :func:`serve` — spec (``backend="live"``) → started
  :class:`~repro.serve.Gateway`: the deployment runs as real OS
  processes behind a TCP socket accepting client-submitted tasks, with
  admission control enforced at the gateway edge.
* :func:`normalize_faults` — the one helper that turns *any* accepted
  fault argument (legacy pid→strategy mapping, per-role dicts, a
  :class:`~repro.adversary.campaign.Campaign`, campaign JSON) into a
  :class:`FaultPlan`.

The legacy per-system entry points (``run_osiris``/``run_zft``/
``run_rcp``) are gone; every caller builds a spec.  Results are
bit-identical to the shim era (the golden-trace tests pin this).
"""

from __future__ import annotations

import numbers
from dataclasses import asdict, dataclass, replace
from typing import Any, Iterable, Mapping, Optional

from repro.adversary.campaign import Campaign
from repro.bench.scenarios import BENCH_BANDWIDTH, ScenarioResult
from repro.bench.workloads import WORKLOADS, BenchWorkload, TenantTaggedSource
from repro.core.config import OsirisConfig
from repro.core.faults import ExecutorFault, OutputFault, VerifierFault
from repro.errors import BenchmarkError

__all__ = [
    "DeploymentSpec",
    "FaultPlan",
    "normalize_faults",
    "build",
    "run",
    "serve",
]

_SCALARS = (str, int, float, bool, type(None))


def _kv(params: Mapping[str, Any] | Iterable | None) -> tuple[tuple[str, Any], ...]:
    """Normalize a params mapping to a sorted, hashable kv-tuple of
    JSON scalars (mirrors :func:`repro.exp.spec.kv`, redeclared here to
    keep this module import-light)."""
    if not params:
        return ()
    items = dict(params)
    out = []
    for key in sorted(items):
        value = items[key]
        if not isinstance(value, _SCALARS):
            raise BenchmarkError(
                f"spec param {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        out.append((str(key), value))
    return tuple(out)


# -------------------------------------------------------------- fault plans
@dataclass(frozen=True)
class FaultPlan:
    """Normalized fault configuration: per-role static strategy maps plus
    an optional adversary campaign.  Produced by :func:`normalize_faults`;
    everything downstream consumes this, never the raw argument."""

    executors: tuple[tuple[str, ExecutorFault], ...] = ()
    verifiers: tuple[tuple[str, VerifierFault], ...] = ()
    outputs: tuple[tuple[str, OutputFault], ...] = ()
    campaign: Optional[Campaign] = None

    @property
    def empty(self) -> bool:
        return (
            not self.executors
            and not self.verifiers
            and not self.outputs
            and self.campaign is None
        )

    def executor_map(self) -> dict[str, ExecutorFault]:
        return dict(self.executors)

    def verifier_map(self) -> dict[str, VerifierFault]:
        return dict(self.verifiers)

    def output_map(self) -> dict[str, OutputFault]:
        return dict(self.outputs)


def _route(mapping: Mapping[str, Any]) -> tuple[dict, dict, dict]:
    """Split a legacy pid→strategy mapping by strategy role."""
    executors: dict[str, ExecutorFault] = {}
    verifiers: dict[str, VerifierFault] = {}
    outputs: dict[str, OutputFault] = {}
    for pid, strategy in mapping.items():
        if isinstance(strategy, ExecutorFault):
            executors[pid] = strategy
        elif isinstance(strategy, VerifierFault):
            verifiers[pid] = strategy
        elif isinstance(strategy, OutputFault):
            outputs[pid] = strategy
        else:
            raise BenchmarkError(
                f"fault for {pid!r} must be an Executor/Verifier/Output "
                f"fault strategy, got {type(strategy).__name__}"
            )
    return executors, verifiers, outputs


def normalize_faults(
    faults: Any = None,
    *,
    executors: Optional[Mapping[str, ExecutorFault]] = None,
    verifiers: Optional[Mapping[str, VerifierFault]] = None,
    outputs: Optional[Mapping[str, OutputFault]] = None,
) -> FaultPlan:
    """Turn any accepted fault argument into a :class:`FaultPlan`.

    ``faults`` may be ``None``, an existing plan, a
    :class:`~repro.adversary.campaign.Campaign` (or its canonical JSON
    string), or the legacy pid→strategy mapping — strategies are routed
    to their role by type.  The keyword role maps carry the builder's
    legacy per-role dicts; on a pid collision they win over ``faults``.
    """
    campaign: Optional[Campaign] = None
    f_exec: dict = {}
    f_verif: dict = {}
    f_out: dict = {}
    if isinstance(faults, FaultPlan):
        campaign = faults.campaign
        f_exec = faults.executor_map()
        f_verif = faults.verifier_map()
        f_out = faults.output_map()
    elif isinstance(faults, Campaign):
        campaign = faults
    elif isinstance(faults, str):
        campaign = Campaign.from_json(faults)
    elif isinstance(faults, Mapping):
        f_exec, f_verif, f_out = _route(faults)
    elif faults is not None:
        raise BenchmarkError(
            f"faults must be a mapping, Campaign, campaign JSON or "
            f"FaultPlan, got {type(faults).__name__}"
        )
    f_exec.update(executors or {})
    f_verif.update(verifiers or {})
    f_out.update(outputs or {})
    return FaultPlan(
        executors=tuple(sorted(f_exec.items())),
        verifiers=tuple(sorted(f_verif.items())),
        outputs=tuple(sorted(f_out.items())),
        campaign=campaign,
    )


# -------------------------------------------------------------------- spec
@dataclass(frozen=True)
class DeploymentSpec:
    """One deployment + workload + adversary + instrumentation, frozen.

    ``workload`` is either a live :class:`~repro.bench.workloads.BenchWorkload`
    or a factory name from the workload registry (then ``workload_params``
    are its kwargs — the fully-serializable form :mod:`repro.exp` points
    use).  ``config`` holds :class:`~repro.core.config.OsirisConfig`
    overrides as a kv-tuple; unset keys get the scenario defaults
    (``chunk_bytes`` from the workload, ``suspect_timeout=60``, one core
    per node).  ``faults`` accepts anything :func:`normalize_faults`
    does and is normalized at construction.  ``duration`` switches from
    drain-to-completion (with ``deadline`` enforcement) to a
    fixed-duration streaming run — the Fig 7a shape.  ``sinks`` are live
    bus sinks attached after build, before start; they (and live
    workloads/strategies) are excluded from serialization.
    """

    workload: Any
    n: int
    system: str = "osiris"
    workload_params: tuple[tuple[str, Any], ...] = ()
    f: int = 1
    k: Optional[int] = None
    seed: int = 0
    deadline: float = 600.0
    duration: Optional[float] = None
    bandwidth: Optional[float] = None
    config: tuple[tuple[str, Any], ...] = ()
    faults: Any = None
    sinks: tuple = ()
    capture: tuple[str, ...] = ()
    sanitize: bool = False
    backend: str = "des"
    #: number of independent IP→OP pipelines over the shared verifier
    #: fleet; >1 requires the OsirisBFT DES backend
    shards: int = 1
    #: tenants>1 round-robin-tags the workload's tasks (``t0``..``tN-1``)
    #: so results carry per-tenant SLO breakdowns; tasks route to shards
    #: by tenant-key hash
    tenants: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.system not in ("osiris", "zft", "rcp"):
            raise BenchmarkError(
                f"unknown system {self.system!r}; "
                f"expected 'osiris', 'zft' or 'rcp'"
            )
        if self.backend not in ("des", "live"):
            raise BenchmarkError(
                f"unknown backend {self.backend!r}; expected 'des' "
                f"(discrete-event simulation) or 'live' (OS processes)"
            )
        if self.n < 1:
            raise BenchmarkError(f"cluster size must be >=1, got {self.n}")
        if self.duration is not None and self.duration <= 0:
            raise BenchmarkError(
                f"duration must be positive, got {self.duration}"
            )
        if self.shards < 1:
            raise BenchmarkError(f"shards must be >=1, got {self.shards}")
        if self.tenants < 1:
            raise BenchmarkError(f"tenants must be >=1, got {self.tenants}")
        if self.shards > 1 or self.tenants > 1:
            # sharded routing and tenant SLO accounting ride OsirisBFT's
            # verified-output metadata; baselines would silently drop
            # both, so they fail loudly instead
            if self.system != "osiris":
                raise BenchmarkError(
                    f"shards/tenants are OsirisBFT-only "
                    f"(spec targets {self.system!r})"
                )
        object.__setattr__(self, "workload_params", _kv(self.workload_params))
        object.__setattr__(self, "config", _kv(self.config))
        object.__setattr__(self, "faults", normalize_faults(self.faults))
        object.__setattr__(self, "sinks", tuple(self.sinks))
        object.__setattr__(self, "capture", tuple(self.capture))
        if self.system != "osiris":
            plan: FaultPlan = self.faults
            if plan.executors or plan.verifiers or plan.outputs or plan.campaign:
                raise BenchmarkError(
                    f"faults/campaigns are OsirisBFT-only "
                    f"(spec targets {self.system!r})"
                )
        if self.backend == "live":
            # every unsupported combination fails here, loudly — a live
            # deployment that silently dropped a feature would hang or
            # mis-measure instead of erroring
            if self.system != "osiris":
                raise BenchmarkError(
                    f"backend='live' hosts OsirisBFT only "
                    f"(spec targets {self.system!r}); baselines are DES-only"
                )
            if self.capture:
                raise BenchmarkError(
                    "replay capture needs the deterministic DES backend; "
                    "drop capture= or use backend='des'"
                )
            plan: FaultPlan = self.faults
            if plan.campaign is not None and plan.campaign.triggers:
                raise BenchmarkError(
                    "trigger campaigns need synchronous bus reentry and are "
                    "DES-only; live runs support timed phases"
                )

    # ------------------------------------------------------------- helpers
    @property
    def campaign(self) -> Optional[Campaign]:
        return self.faults.campaign

    def with_(self, **changes) -> "DeploymentSpec":
        return replace(self, **changes)

    def resolve_workload(self) -> BenchWorkload:
        """Instantiate the workload (registry lookup for named specs);
        ``tenants > 1`` wraps the task source so untagged tasks get
        round-robin tenant keys."""
        if isinstance(self.workload, BenchWorkload):
            wl = self.workload
        else:
            factory = WORKLOADS.get(self.workload)
            if factory is None:
                raise BenchmarkError(
                    f"unknown workload {self.workload!r}; "
                    f"registered: {sorted(WORKLOADS)}"
                )
            wl = factory(**dict(self.workload_params))
        if self.tenants > 1 and not isinstance(wl.source, TenantTaggedSource):
            wl = replace(
                wl, source=TenantTaggedSource(wl.source, self.tenants)
            )
        return wl

    def descriptor(self) -> dict[str, Any]:
        """Canonical JSON-able form.  Requires the fully-declarative
        shape: a named workload and no live fault strategies (campaigns
        serialize fine).  ``sinks``/``label`` are excluded."""
        if not isinstance(self.workload, str):
            raise BenchmarkError(
                "only specs with a registry-named workload are serializable"
            )
        plan: FaultPlan = self.faults
        if plan.executors or plan.verifiers or plan.outputs:
            raise BenchmarkError(
                "specs carrying live fault strategies are not serializable; "
                "express the adversary as a Campaign"
            )
        return {
            "system": self.system,
            "backend": self.backend,
            "workload": self.workload,
            "workload_params": [list(p) for p in self.workload_params],
            "n": self.n,
            "f": self.f,
            "k": self.k,
            "seed": self.seed,
            "deadline": self.deadline,
            "duration": self.duration,
            "bandwidth": self.bandwidth,
            "config": [list(p) for p in self.config],
            "campaign": plan.campaign.to_json() if plan.campaign else "",
            "sanitize": self.sanitize,
            "shards": self.shards,
            "tenants": self.tenants,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "DeploymentSpec":
        return cls(
            workload=d["workload"],
            n=d["n"],
            system=d.get("system", "osiris"),
            workload_params=tuple(
                (k, v) for k, v in d.get("workload_params", ())
            ),
            f=d.get("f", 1),
            k=d.get("k"),
            seed=d.get("seed", 0),
            deadline=d.get("deadline", 600.0),
            duration=d.get("duration"),
            bandwidth=d.get("bandwidth"),
            config=tuple((k, v) for k, v in d.get("config", ())),
            faults=d.get("campaign") or None,
            sanitize=d.get("sanitize", False),
            backend=d.get("backend", "des"),
            shards=d.get("shards", 1),
            tenants=d.get("tenants", 1),
            label=d.get("label", ""),
        )


# ------------------------------------------------------------------- build
def _osiris_config(spec: DeploymentSpec, workload: BenchWorkload) -> OsirisConfig:
    """Scenario-default config overlaid with the spec's overrides (the
    long base timeout keeps graceful burst runs free of reassignment
    churn; failure specs override it)."""
    base = dict(
        f=spec.f,
        chunk_bytes=workload.chunk_bytes,
        suspect_timeout=60.0,
        cores_per_node=1,
    )
    base.update(dict(spec.config))
    return OsirisConfig(**base)


def build(spec: DeploymentSpec, **build_extra):
    """Build (don't start) the deployment a spec describes.

    ``backend="des"`` (the default) returns a wired
    :class:`~repro.runtime.deploy.OsirisCluster`: the campaign (if any)
    is installed — its phase timers scheduled, its trigger sink and a
    :class:`~repro.adversary.recovery.RecoverySink` attached — and the
    spec's sinks are attached last.  ``build_extra`` passes through to
    the low-level builder (``synchrony``, ``n_inputs``, ``n_outputs``).

    ``backend="live"`` returns an unstarted
    :class:`~repro.live.runtime.LiveRuntime` built from the same
    :class:`~repro.runtime.plan.ClusterPlan`; ``build_extra`` accepts
    ``time_scale`` (wall seconds per simulated second).
    """
    if spec.system != "osiris":
        raise BenchmarkError(
            f"build() wires OsirisBFT deployments only; use run() for "
            f"{spec.system!r}"
        )
    if spec.backend == "live":
        return _build_live(spec, **build_extra)
    from repro.runtime.deploy import build_osiris_cluster

    workload = spec.resolve_workload()
    cluster = build_osiris_cluster(
        workload.app,
        workload=workload.stream,
        n_workers=spec.n,
        shards=spec.shards,
        k=spec.k,
        seed=spec.seed,
        config=_osiris_config(spec, workload),
        bandwidth=(
            spec.bandwidth if spec.bandwidth is not None else BENCH_BANDWIDTH
        ),
        faults=spec.faults,
        capture=spec.capture,
        sanitize=spec.sanitize,
        **build_extra,
    )
    for sink in spec.sinks:
        cluster.bus.attach(sink)
    return cluster


def _build_live(spec: DeploymentSpec, time_scale: float = 0.25, **extra):
    """Plan the deployment and wrap it in an unstarted LiveRuntime."""
    if extra:
        raise BenchmarkError(
            f"backend='live' accepts only time_scale as a builder "
            f"override, got {sorted(extra)}"
        )
    from repro.live.runtime import LiveRuntime
    from repro.runtime.plan import plan_osiris_cluster

    workload = spec.resolve_workload()
    plan = plan_osiris_cluster(
        n_workers=spec.n,
        k=spec.k,
        seed=spec.seed,
        config=_osiris_config(spec, workload),
        bandwidth=(
            spec.bandwidth if spec.bandwidth is not None else BENCH_BANDWIDTH
        ),
        faults=spec.faults,
        capture=spec.capture,
        sanitize=spec.sanitize,
        shards=spec.shards,
    )
    return LiveRuntime(
        plan,
        workload.app,
        workload=workload,
        sinks=spec.sinks,
        time_scale=time_scale,
    )


# --------------------------------------------------------------------- run
def _drive(cluster, spec: DeploymentSpec, workload: BenchWorkload) -> None:
    """Start and advance the deployment: fixed-duration streaming when
    ``duration`` is set, drain-to-completion with deadline otherwise."""
    cluster.start()
    if spec.duration is not None:
        cluster.sim.run(until=spec.duration)
        return
    _run_to_completion(cluster.sim, cluster.metrics, workload, spec.deadline)


def _run_to_completion(sim, metrics, workload: BenchWorkload, deadline: float):
    """Advance until every compute task completed (or the deadline)."""
    target = workload.n_compute_tasks
    step = 1.0
    while sim.now < deadline:
        sim.run(until=min(sim.now + step, deadline))
        if metrics.tasks_completed >= target and sim.drained():
            return
        if metrics.tasks_completed >= target:
            return
        if sim.drained():
            return
    if metrics.tasks_completed < target:
        raise BenchmarkError(
            f"scenario missed deadline: {metrics.tasks_completed}/{target} "
            f"tasks by t={deadline}"
        )


def _finish(
    system, n, f, metrics, net, busy_fn, cores, extra=None,
    horizon=0.0, output_pids=(),
    sanitizer_violations=None, recovery=None,
):
    sharded = len(output_pids) > 1
    if metrics.completion_times:
        makespan = max(metrics.completion_times)
        # tail-insensitive: heavy-tailed task costs must not let one
        # straggler define a burst's capacity measurement
        throughput = metrics.p90_throughput()
        active = metrics.time_to_fraction(0.9)
        if active > 0 and net is not None:
            # the legacy single-pipeline figure is op0's link; sharded
            # runs report the aggregate over every output pipeline
            pids = output_pids if sharded else ("op0",)
            op_bw = sum(
                net.nic(pid).ingress_meter.mean_rate(0.0, active)
                for pid in pids
            )
        else:
            op_bw = 0.0
    else:
        makespan = 0.0
        active = 0.0
        throughput = 0.0
        op_bw = 0.0
    busy, n_exec = busy_fn()
    window = active if active > 0 else makespan
    util = (
        busy / (window * cores * max(n_exec, 1)) if window > 0 else 0.0
    )
    return ScenarioResult(
        system=system,
        n=n,
        f=f,
        throughput=throughput,
        records=metrics.records_accepted,
        tasks_completed=metrics.tasks_completed,
        makespan=makespan,
        mean_latency=metrics.mean_latency(),
        p99_latency=metrics.latency_percentile(99),
        op_bandwidth=op_bw,
        executor_utilization=min(1.0, util),
        peak_throughput=metrics.peak_throughput(),
        p50_latency=metrics.slo_percentile(50.0),
        p999_latency=metrics.slo_percentile(99.9),
        goodput=(
            metrics.records_accepted / horizon if horizon > 0 else 0.0
        ),
        per_tenant=metrics.per_tenant(),
        per_shard=metrics.per_shard() if sharded else {},
        sanitizer_violations=sanitizer_violations,
        recovery=recovery,
        extra=extra or {},
    )


def _attach_sanitizer(cluster):
    """Attach a substrate sanitizer to an already-built baseline cluster
    (the osiris builder wires its own via ``sanitize=True``).  No link
    or CPU events fire before ``cluster.start()``, so the shadows still
    observe the run from birth."""
    from repro.check.sanitizer import Sanitizer  # lazy: optional layer

    sanitizer = Sanitizer(cluster.net)
    sanitizer.attach(cluster.bus)
    return sanitizer


def _audit_sanitizer(sanitizer, extra: dict, cluster=None) -> Optional[int]:
    """Run the post-run sanitizer audit.  Returns the violation count
    (``None`` when the run was unsanitized) for the result's typed
    ``sanitizer_violations`` field; the live report rides in ``extra``
    for in-process consumers."""
    if sanitizer is None:
        return None
    report = sanitizer.audit(cluster)
    extra["sanitizer_report"] = report
    return len(report.violations)


def _recovery_scalars(report) -> dict:
    """The recovery report's JSON-scalar fields, for the result's typed
    ``recovery`` field (survives serialization: sweep cache, pools)."""
    return {
        key: value
        for key, value in report.to_dict().items()
        if isinstance(value, _SCALARS) or isinstance(value, numbers.Real)
    }


def _fold_recovery(cluster, extra: dict, sanitizer_violations) -> Optional[dict]:
    """Campaign runs: distil the RecoverySink into the result.  Returns
    the scalar summary for the typed ``recovery`` field (``None`` when
    no campaign ran); the live
    :class:`~repro.adversary.recovery.RecoveryReport` rides in
    ``extra["recovery_report"]``."""
    if cluster.recovery is None:
        return None
    report = cluster.recovery.report(
        campaign=cluster.campaign.campaign.name if cluster.campaign else "",
        until=cluster.sim.now,
        sanitizer_violations=sanitizer_violations,
    )
    extra["recovery_report"] = report
    return _recovery_scalars(report)


def _run_osiris(spec: DeploymentSpec, **build_extra) -> ScenarioResult:
    workload = spec.resolve_workload()
    cluster = build(spec.with_(workload=workload), **build_extra)
    _drive(cluster, spec, workload)

    def busy():
        execs = [e for e in cluster.executors]
        verif = cluster.all_verifiers
        busy_total = sum(e.cpu.busy_seconds for e in execs)
        # role-switched verifiers execute too; count their engine work via
        # cpu time (approximation: all their busy time)
        switched = [v for v in verif if v.engine.tasks_executed > 0]
        busy_total += sum(v.cpu.busy_seconds for v in switched)
        return busy_total, len(execs) + len(switched)

    extra = {
        "reassignments": len(cluster.metrics.reassignments),
        "role_switches": len(cluster.metrics.role_switches),
        "faults_detected": len(cluster.metrics.faults_detected),
        "cluster": cluster,
    }
    violations = _audit_sanitizer(cluster.sanitizer, extra, cluster)
    recovery = _fold_recovery(cluster, extra, violations)
    return _finish(
        "OsirisBFT", spec.n, spec.f, cluster.metrics, cluster.net, busy,
        cluster.config.cores_per_node, extra,
        horizon=cluster.sim.now,
        output_pids=tuple(cluster.topo.output_pids),
        sanitizer_violations=violations,
        recovery=recovery,
    )


def _run_live(spec: DeploymentSpec, time_scale: float = 0.25) -> ScenarioResult:
    """Run the spec as real OS processes; same result shape as the DES.

    Timing-derived numbers (throughput, latency, utilization) come from
    the forwarded event stream and the emulated CPU banks — comparable
    in shape, not in value, to DES results.  ``op_bandwidth`` is zero:
    there is no modelled NIC on real queues.
    """
    if spec.shards > 1:
        raise BenchmarkError(
            "a pre-planned workload stream feeds only the primary input "
            "pipeline; sharded live deployments serve client traffic — "
            "use repro.api.serve()"
        )
    workload = spec.resolve_workload()
    rt = _build_live(spec, time_scale=time_scale)
    report = rt.run(
        deadline=spec.deadline,
        duration=spec.duration,
        target_tasks=workload.n_compute_tasks,
    )
    return _fold_live_result(spec, rt, report)


def _fold_live_result(spec: DeploymentSpec, rt, report) -> ScenarioResult:
    """Fold a finished live runtime + its report into a
    :class:`ScenarioResult` — shared by :func:`_run_live` and
    :meth:`repro.serve.Gateway.result`."""
    plan = rt.plan
    executor_pids = set(plan.topo.executor_pids)

    def busy():
        busy_total = sum(
            report.busy_seconds.get(pid, 0.0) for pid in executor_pids
        )
        # role-switched verifiers execute too (same approximation as the
        # DES runner: count all their busy time)
        switched = [
            pid
            for pid in report.tasks_executed
            if pid not in executor_pids and report.tasks_executed[pid] > 0
        ]
        busy_total += sum(report.busy_seconds.get(pid, 0.0) for pid in switched)
        return busy_total, len(executor_pids) + len(switched)

    extra = {
        "backend": "live",
        "commits": report.commits,
        "live_report": report,
        "unhandled_messages": report.unhandled_messages,
        "reassignments": len(rt.metrics.reassignments),
        "role_switches": len(rt.metrics.role_switches),
        "faults_detected": len(rt.metrics.faults_detected),
    }
    violations = None
    if rt.sanitizer_report is not None:
        violations = len(rt.sanitizer_report.violations)
        extra["sanitizer_report"] = rt.sanitizer_report
    recovery_scalars = None
    if rt.recovery is not None:
        recovery = rt.recovery.report(
            campaign=plan.campaign.name if plan.campaign else "",
            until=report.sim_seconds,
            sanitizer_violations=violations,
        )
        extra["recovery_report"] = recovery
        recovery_scalars = _recovery_scalars(recovery)
    return _finish(
        "OsirisBFT", spec.n, spec.f, rt.metrics, None, busy,
        plan.config.cores_per_node, extra,
        horizon=report.sim_seconds,
        output_pids=tuple(plan.topo.output_pids),
        sanitizer_violations=violations,
        recovery=recovery_scalars,
    )


def _baseline_cores(spec: DeploymentSpec) -> int:
    cfg = dict(spec.config)
    cores = cfg.pop("cores_per_node", 1)
    if cfg:
        raise BenchmarkError(
            f"config overrides are OsirisBFT-only (baselines accept just "
            f"cores_per_node); got {sorted(cfg)} for {spec.system!r}"
        )
    return cores


def _run_baseline(spec: DeploymentSpec) -> ScenarioResult:
    workload = spec.resolve_workload()
    cores = _baseline_cores(spec)
    bandwidth = (
        spec.bandwidth if spec.bandwidth is not None else BENCH_BANDWIDTH
    )
    if spec.system == "zft":
        from repro.baselines.zft import build_zft_cluster

        cluster = build_zft_cluster(
            workload.app,
            workload=workload.stream,
            n_workers=spec.n,
            seed=spec.seed,
            bandwidth=bandwidth,
            chunk_bytes=workload.chunk_bytes,
            cores_per_node=cores,
        )
        system, f = "ZFT", 0
    else:
        from repro.baselines.rcp import build_rcp_cluster

        cluster = build_rcp_cluster(
            workload.app,
            workload=workload.stream,
            n_workers=spec.n,
            f=spec.f,
            seed=spec.seed,
            bandwidth=bandwidth,
            chunk_bytes=workload.chunk_bytes,
            cores_per_node=cores,
        )
        system, f = "RCP", spec.f
    sanitizer = _attach_sanitizer(cluster) if spec.sanitize else None
    for sink in spec.sinks:
        cluster.bus.attach(sink)
    _drive(cluster, spec, workload)

    def busy():
        return sum(w.cpu.busy_seconds for w in cluster.workers), len(
            cluster.workers
        )

    extra = {"cluster": cluster}
    violations = _audit_sanitizer(sanitizer, extra)
    return _finish(
        system, spec.n, f, cluster.metrics, cluster.net, busy, cores, extra,
        horizon=cluster.sim.now,
        sanitizer_violations=violations,
    )


def run(spec: DeploymentSpec, **build_extra) -> ScenarioResult:
    """Run the deployment a spec describes; returns the measured result.

    This is the single execution path behind ``repro.exp.run_point``,
    the bench CLI, the fuzz driver and the adversary CLI.  Campaign
    runs additionally report recovery metrics in the result's typed
    ``recovery`` field (the live ``recovery_report`` rides in
    ``result.extra``).
    """
    if spec.backend == "live":
        return _run_live(spec, **build_extra)
    if spec.system == "osiris":
        return _run_osiris(spec, **build_extra)
    if build_extra:
        raise BenchmarkError(
            f"builder overrides are OsirisBFT-only, got {sorted(build_extra)}"
        )
    return _run_baseline(spec)


def serve(
    spec: DeploymentSpec,
    host: str = "127.0.0.1",
    port: int = 0,
    time_scale: float = 0.25,
):
    """Serve a live deployment to real clients over a TCP socket.

    Builds and **starts** a :class:`~repro.serve.Gateway` over the
    deployment ``spec`` describes (``backend="live"`` required; the
    spec's workload supplies the application — client connections
    supply the traffic).  The spec's ``admission_queue`` /
    ``admission_rate`` config knobs are enforced once, at the gateway
    edge, with explicit backpressure replies to clients; ``shards > 1``
    fans client tasks out tenant-keyed across independent input→output
    pipelines.  The caller owns the lifecycle::

        with api.serve(spec, port=0) as gw:
            client = repro.serve.Client(*gw.address)
            ...
        result = gw.result()   # same shape as api.run(spec)

    ``port=0`` binds an ephemeral port; the bound address is
    ``gateway.address``.
    """
    from repro.serve.gateway import Gateway

    if spec.backend != "live":
        raise BenchmarkError(
            "serve() fronts real OS processes; build the spec with "
            "backend='live' (the DES backend has no sockets to serve)"
        )
    return Gateway(spec, host=host, port=port, time_scale=time_scale).start()


def config_overrides(config: Optional[OsirisConfig]) -> tuple:
    """Express a full :class:`~repro.core.config.OsirisConfig` object as
    a spec ``config`` kv-tuple (the bench CLI uses this to map
    file-loaded config objects onto specs)."""
    if config is None:
        return ()
    return _kv(asdict(config))
