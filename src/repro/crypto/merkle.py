"""Merkle trees over record chunks.

The paper sends a flat digest σ(C) per chunk.  As an extension (used by
the chunking-granularity ablation bench), verifiers can instead commit to
a Merkle root so that an output process that received a corrupted chunk
can identify *which* record ranges disagree without re-fetching the whole
chunk.  Correctness of the core protocol never depends on this module.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

from repro.crypto.digest import canonical_bytes
from repro.errors import CryptoError

__all__ = ["MerkleTree", "merkle_root", "verify_inclusion"]


def _leaf_hash(value: Any) -> bytes:
    return hashlib.sha256(b"\x00" + canonical_bytes(value)).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


class MerkleTree:
    """Binary Merkle tree over a sequence of records.

    Leaves are hashed with a domain-separation prefix distinct from inner
    nodes, closing the classic second-preimage confusion between leaves
    and internal nodes.
    """

    def __init__(self, items: Sequence[Any]) -> None:
        if len(items) == 0:
            raise CryptoError("MerkleTree over empty sequence")
        level = [_leaf_hash(item) for item in items]
        self._levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                left = level[i]
                right = level[i + 1] if i + 1 < len(level) else left
                nxt.append(_node_hash(left, right))
            level = nxt
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        """The Merkle root committing to all records."""
        return self._levels[-1][0]

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self._levels[0])

    def proof(self, index: int) -> list[tuple[bool, bytes]]:
        """Inclusion proof for leaf ``index`` as (is_right_sibling, hash)."""
        if not 0 <= index < self.size:
            raise CryptoError(f"leaf index {index} out of range")
        path: list[tuple[bool, bytes]] = []
        for level in self._levels[:-1]:
            sib = index ^ 1
            if sib >= len(level):
                sib = index
            path.append((sib > index, level[sib]))
            index //= 2
        return path


def merkle_root(items: Sequence[Any]) -> bytes:
    """Convenience: root over ``items``."""
    return MerkleTree(items).root


def verify_inclusion(
    item: Any, proof: list[tuple[bool, bytes]], root: bytes
) -> bool:
    """Check an inclusion proof produced by :meth:`MerkleTree.proof`."""
    acc = _leaf_hash(item)
    for is_right, sibling in proof:
        acc = _node_hash(acc, sibling) if is_right else _node_hash(sibling, acc)
    return acc == root
