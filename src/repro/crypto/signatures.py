"""Digital signatures with structurally-enforced unforgeability.

The paper assumes adversaries "cannot break cryptographic primitives like
digital signatures", so "by authenticating all communication, correct
processes cannot be impersonated" (Sec 3).  Running offline we do not need
real asymmetric crypto — we need the *property*.  We enforce it
structurally:

* A :class:`KeyRegistry` mints one :class:`Signer` per process id.  The
  signer object is the private key; signing computes an HMAC over the
  canonical digest of the payload with a per-process secret.
* Verification goes through the registry (the "public key infrastructure")
  and never exposes secrets.
* Byzantine process implementations in this repo only ever hold *their
  own* signer, so they can lie about content but cannot forge another
  process's signature — exactly the paper's adversary.

This mirrors how the C++ implementation dedicates CPU to cryptography:
:func:`sign_cost` / :func:`verify_cost` provide the simulated CPU charge.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.digest import canonical_bytes
from repro.errors import CryptoError

__all__ = [
    "KeyRegistry",
    "Signature",
    "Signer",
    "SIGN_COST",
    "VERIFY_COST",
    "sign_cost",
    "verify_cost",
]

#: Simulated CPU seconds to produce one signature (ballpark of Ed25519 on a
#: server core: ~20 µs sign, ~60 µs verify).
SIGN_COST = 20e-6
VERIFY_COST = 60e-6


def sign_cost(count: int = 1) -> float:
    """Simulated CPU cost of producing ``count`` signatures."""
    return SIGN_COST * count


def verify_cost(count: int = 1) -> float:
    """Simulated CPU cost of verifying ``count`` signatures."""
    return VERIFY_COST * count


@dataclass(frozen=True)
class Signature:
    """A signature: the claimed signer id plus the MAC bytes."""

    signer: str
    mac: bytes

    def canonical(self) -> list:
        return [self.signer, self.mac]


class Signer:
    """Private signing capability for one process id."""

    __slots__ = ("pid", "_secret")

    def __init__(self, pid: str, secret: bytes) -> None:
        self.pid = pid
        self._secret = secret

    def sign(self, payload: Any) -> Signature:
        """Sign the canonical form of ``payload``."""
        mac = hmac.new(
            self._secret, canonical_bytes(payload), hashlib.sha256
        ).digest()
        return Signature(self.pid, mac)


class KeyRegistry:
    """Mints signers and verifies signatures — the trusted PKI root.

    One registry exists per deployment; it is part of the substrate, not a
    process, so it cannot be Byzantine (matching the standard PKI
    assumption).
    """

    def __init__(self, seed: bytes = b"osiris") -> None:
        self._seed = seed
        self._secrets: dict[str, bytes] = {}
        self._issued: set[str] = set()
        # (signer, payload bytes) -> MAC.  The MAC is a pure function of
        # that pair, and broadcast protocols make every receiver verify
        # the same signature over the same bytes — the registry computes
        # it once.  Keyed by content, never by object identity, so
        # tampered payloads can never alias a cached entry.
        self._mac_cache: dict[tuple[str, bytes], bytes] = {}

    def register(self, pid: str) -> Signer:
        """Create the signer for ``pid``.  Each pid can be issued once."""
        if pid in self._issued:
            raise CryptoError(f"signer for {pid!r} already issued")
        self._issued.add(pid)
        secret = hashlib.sha256(self._seed + pid.encode()).digest()
        self._secrets[pid] = secret
        return Signer(pid, secret)

    def provision(self, pid: str) -> None:
        """Install ``pid``'s verification material without issuing its
        signer.  Key derivation is deterministic per (seed, pid), so
        every process of a live deployment can provision the same PKI
        view independently — the distributed analogue of sharing one
        registry object — while the one-issuance guard still keeps each
        private signer local to the process that registers it."""
        if pid not in self._secrets:
            self._secrets[pid] = hashlib.sha256(
                self._seed + pid.encode()
            ).digest()

    def known(self, pid: str) -> bool:
        """Whether ``pid`` has a registered key."""
        return pid in self._secrets

    def verify(self, payload: Any, sig: Signature) -> bool:
        """Check that ``sig`` is a valid signature over ``payload``.

        Returns ``False`` (never raises) for unknown signers or bad MACs —
        a forged signature is a runtime condition protocols must survive.
        """
        secret = self._secrets.get(sig.signer)
        if secret is None:
            return False
        pb = canonical_bytes(payload)
        key = (sig.signer, pb)
        expected = self._mac_cache.get(key)
        if expected is None:
            expected = self._mac_cache[key] = hmac.new(
                secret, pb, hashlib.sha256
            ).digest()
        return hmac.compare_digest(expected, sig.mac)

    def verify_quorum(
        self, payload: Any, sigs: list[Signature], group: set[str], need: int
    ) -> bool:
        """Check ``payload`` carries ``need`` valid signatures from distinct
        members of ``group`` — the f+1-of-VP_CO pattern used throughout the
        task flow."""
        seen: set[str] = set()
        for sig in sigs:
            if sig.signer in group and sig.signer not in seen:
                if self.verify(payload, sig):
                    seen.add(sig.signer)
                    if len(seen) >= need:
                        return True
        return False
