"""Cryptographic substrate: digests, signatures, Merkle commitments.

Real hash functions (SHA-256/HMAC) with structurally-enforced key
ownership stand in for the paper's Ed25519-style signatures; simulated
CPU costs (:data:`~repro.crypto.signatures.SIGN_COST`,
:data:`~repro.crypto.signatures.VERIFY_COST`) charge the protocol for
crypto work like the C++ implementation's dedicated crypto cores.
"""

from repro.crypto.digest import canonical_bytes, digest, digest_hex
from repro.crypto.merkle import MerkleTree, merkle_root, verify_inclusion
from repro.crypto.signatures import (
    SIGN_COST,
    VERIFY_COST,
    KeyRegistry,
    Signature,
    Signer,
    sign_cost,
    verify_cost,
)

__all__ = [
    "KeyRegistry",
    "MerkleTree",
    "SIGN_COST",
    "Signature",
    "Signer",
    "VERIFY_COST",
    "canonical_bytes",
    "digest",
    "digest_hex",
    "merkle_root",
    "sign_cost",
    "verify_cost",
    "verify_inclusion",
]
