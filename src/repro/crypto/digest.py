"""Cryptographic digests over canonically-serialized Python values.

Chunk digests (``σ(C)`` in the paper) and signature payloads both need a
stable byte representation of protocol objects.  We canonicalize with a
small recursive encoder rather than ``pickle`` because pickle output is
not guaranteed stable across interpreter runs, and digest stability is a
correctness requirement here: an output process accepts a chunk only when
f+1 verifiers produced *matching* digests.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

import numpy as np

from repro.errors import CryptoError

__all__ = ["canonical_bytes", "digest", "digest_hex"]

_FLOAT = struct.Struct("!d")
_INT = struct.Struct("!q")


def _encode(value: Any, out: list[bytes]) -> None:
    # exact-type fast paths for the overwhelmingly common cases (record
    # tuples of small ints, strings); byte output is identical to the
    # general chain below, which still handles numpy scalars/subclasses
    t = type(value)
    if t is int:
        if -(2**63) <= value < 2**63:
            out.append(b"i")
            out.append(_INT.pack(value))
        else:
            enc = str(value).encode()
            out.append(b"I" + _INT.pack(len(enc)))
            out.append(enc)
        return
    if t is tuple or t is list:
        out.append(b"l" + _INT.pack(len(value)))
        # int items (record keys, sequence numbers) are encoded inline —
        # byte-identical to the recursive call, minus the call overhead
        # on the dominant container-of-small-ints shape
        for item in value:
            if type(item) is int and -(2**63) <= item < 2**63:
                out.append(b"i")
                out.append(_INT.pack(item))
            else:
                _encode(item, out)
        return
    if t is str:
        enc = value.encode("utf-8")
        out.append(b"s" + _INT.pack(len(enc)))
        out.append(enc)
        return
    if t is float:
        out.append(b"f")
        out.append(_FLOAT.pack(value))
        return
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, (int, np.integer)):
        v = int(value)
        if -(2**63) <= v < 2**63:
            out.append(b"i")
            out.append(_INT.pack(v))
        else:
            enc = str(v).encode()
            out.append(b"I" + _INT.pack(len(enc)))
            out.append(enc)
    elif isinstance(value, (float, np.floating)):
        out.append(b"f")
        out.append(_FLOAT.pack(float(value)))
    elif isinstance(value, str):
        enc = value.encode("utf-8")
        out.append(b"s" + _INT.pack(len(enc)))
        out.append(enc)
    elif isinstance(value, bytes):
        out.append(b"b" + _INT.pack(len(value)))
        out.append(value)
    elif isinstance(value, (list, tuple)):
        out.append(b"l" + _INT.pack(len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise CryptoError(
                "dict keys must be orderable for canonical encoding"
            ) from exc
        out.append(b"d" + _INT.pack(len(items)))
        for k, v in items:
            _encode(k, out)
            _encode(v, out)
    elif isinstance(value, frozenset):
        _encode(sorted(value), out)
        out.append(b"S")
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        out.append(b"a")
        _encode(str(arr.dtype), out)
        _encode(list(arr.shape), out)
        out.append(arr.tobytes())
    elif hasattr(value, "canonical"):
        # Protocol objects expose `canonical()` returning plain containers.
        out.append(b"o")
        _encode(type(value).__name__, out)
        _encode(value.canonical(), out)
    else:
        raise CryptoError(
            f"cannot canonically encode {type(value).__name__}: {value!r}"
        )


def canonical_bytes(value: Any) -> bytes:
    """Serialize a value to its canonical byte form (stable across runs)."""
    out: list[bytes] = []
    _encode(value, out)
    return b"".join(out)


def digest(value: Any) -> bytes:
    """SHA-256 digest of the canonical serialization of ``value``."""
    return hashlib.sha256(canonical_bytes(value)).digest()


def digest_hex(value: Any) -> str:
    """Hex form of :func:`digest`, convenient for logs and assertions."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
