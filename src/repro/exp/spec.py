"""Sweep vocabulary: points and specs.

A :class:`Point` is a *value*: a frozen, hashable, JSON-serializable
description of one scenario run.  Everything a run depends on is in the
point — system, workload factory name + parameters, cluster size, fault
level, seeds, deadline, bandwidth, config overrides, injected faults —
so two equal points always produce byte-identical results on the
deterministic DES, which is what makes content-addressed caching and
multiprocess fan-out safe.

A :class:`SweepSpec` is a named ordered tuple of points.  The
:meth:`SweepSpec.grid` constructor reproduces the benchmark harness's
canonical iteration order (sizes outer, systems inner, RCP skipped below
n=3 because it needs 2f+1 workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import BenchmarkError

__all__ = ["Point", "SweepSpec", "SYSTEMS", "kv"]

#: Systems the runner knows how to launch, in canonical sweep order.
SYSTEMS = ("zft", "osiris", "rcp")

_SCALARS = (str, int, float, bool, type(None))


def kv(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Normalize a params mapping to a sorted, hashable kv-tuple.

    Values must be JSON scalars (the point must stay serializable and
    content-addressable); raises :class:`BenchmarkError` otherwise.
    """
    if not params:
        return ()
    items = []
    for key in sorted(params):
        value = params[key]
        if not isinstance(value, _SCALARS):
            raise BenchmarkError(
                f"sweep param {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        items.append((str(key), value))
    return tuple(items)


@dataclass(frozen=True)
class Point:
    """One scenario run, fully described.

    ``workload`` names a factory in the runner's workload registry and
    ``workload_params`` are its keyword arguments.  ``config`` holds
    :class:`~repro.core.config.OsirisConfig` overrides (OsirisBFT only).
    ``executor_faults`` / ``verifier_faults`` are ``(pid, kind, params)``
    triples resolved against the runner's fault registry.  ``campaign``
    carries an adversary campaign in its canonical JSON form
    (:meth:`repro.adversary.Campaign.to_json`; empty = none) and
    ``duration`` switches the run to fixed-duration streaming — both
    ride inside the descriptor, so campaign runs sweep and cache like
    any other point.
    """

    system: str
    workload: str
    n: int
    workload_params: tuple[tuple[str, Any], ...] = ()
    f: int = 1
    k: int | None = None
    seed: int = 0
    deadline: float = 600.0
    duration: float | None = None
    bandwidth: float | None = None
    config: tuple[tuple[str, Any], ...] = ()
    executor_faults: tuple[
        tuple[str, str, tuple[tuple[str, Any], ...]], ...
    ] = ()
    verifier_faults: tuple[
        tuple[str, str, tuple[tuple[str, Any], ...]], ...
    ] = ()
    campaign: str = ""
    #: independent IP→OP pipelines over the shared verifier fleet
    #: (OsirisBFT only; 1 = the classic single-pipeline layout)
    shards: int = 1
    #: >1 round-robin-tags tasks with tenant keys for per-tenant SLOs
    tenants: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise BenchmarkError(
                f"unknown system {self.system!r}; expected one of {SYSTEMS}"
            )
        if self.n < 1:
            raise BenchmarkError(f"cluster size must be >=1, got {self.n}")
        if self.shards < 1:
            raise BenchmarkError(f"shards must be >=1, got {self.shards}")
        if self.tenants < 1:
            raise BenchmarkError(f"tenants must be >=1, got {self.tenants}")

    # ------------------------------------------------------------- identity
    def descriptor(self) -> dict[str, Any]:
        """Canonical JSON-able form — the cache identity of this point.

        ``label`` is presentation-only and deliberately excluded so a
        relabelled point still hits the cache.
        """
        return {
            "system": self.system,
            "workload": self.workload,
            "workload_params": [list(p) for p in self.workload_params],
            "n": self.n,
            "f": self.f,
            "k": self.k,
            "seed": self.seed,
            "deadline": self.deadline,
            "duration": self.duration,
            "bandwidth": self.bandwidth,
            "config": [list(p) for p in self.config],
            "executor_faults": [
                [pid, kind, [list(p) for p in params]]
                for pid, kind, params in self.executor_faults
            ],
            "verifier_faults": [
                [pid, kind, [list(p) for p in params]]
                for pid, kind, params in self.verifier_faults
            ],
            "campaign": self.campaign,
            "shards": self.shards,
            "tenants": self.tenants,
        }

    def to_dict(self) -> dict[str, Any]:
        """Descriptor plus the presentation label (artifact form)."""
        d = self.descriptor()
        d["label"] = self.label
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Point":
        return cls(
            system=d["system"],
            workload=d["workload"],
            workload_params=tuple(
                (k, v) for k, v in d.get("workload_params", ())
            ),
            n=d["n"],
            f=d.get("f", 1),
            k=d.get("k"),
            seed=d.get("seed", 0),
            deadline=d.get("deadline", 600.0),
            duration=d.get("duration"),
            bandwidth=d.get("bandwidth"),
            config=tuple((k, v) for k, v in d.get("config", ())),
            executor_faults=tuple(
                (pid, kind, tuple((k, v) for k, v in params))
                for pid, kind, params in d.get("executor_faults", ())
            ),
            verifier_faults=tuple(
                (pid, kind, tuple((k, v) for k, v in params))
                for pid, kind, params in d.get("verifier_faults", ())
            ),
            campaign=d.get("campaign", ""),
            shards=d.get("shards", 1),
            tenants=d.get("tenants", 1),
            label=d.get("label", ""),
        )

    def with_label(self, label: str) -> "Point":
        return replace(self, label=label)


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered experiment sweep."""

    name: str
    points: tuple[Point, ...] = field(default_factory=tuple)

    @classmethod
    def grid(
        cls,
        name: str,
        workload: str,
        workload_params: Mapping[str, Any] | None,
        sizes: Sequence[int],
        systems: Sequence[str] = SYSTEMS,
        f: int = 1,
        seed: int = 0,
        deadline: float = 600.0,
        config: Mapping[str, Any] | None = None,
    ) -> "SweepSpec":
        """The canonical size × system grid: sizes outer, systems inner
        (in the given order), RCP dropped below n=3 (needs 2f+1 nodes)."""
        wp = kv(workload_params)
        cfg = kv(config)
        points: list[Point] = []
        for n in sizes:
            for system in systems:
                if system == "rcp" and n < 3:
                    continue
                points.append(
                    Point(
                        system=system,
                        workload=workload,
                        workload_params=wp,
                        n=n,
                        f=f,
                        seed=seed,
                        deadline=deadline,
                        config=cfg if system == "osiris" else (),
                        label=f"{system}-n{n}",
                    )
                )
        return cls(name=name, points=tuple(points))

    @classmethod
    def of(cls, name: str, points: Iterable[Point]) -> "SweepSpec":
        return cls(name=name, points=tuple(points))

    def __len__(self) -> int:
        return len(self.points)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "points": [p.to_dict() for p in self.points],
        }
