"""Content-addressed result cache for sweep points.

A point's cache key is the SHA-256 of its canonical descriptor (see
:meth:`repro.exp.spec.Point.descriptor`) combined with the *code
version* — a digest over every ``.py`` file under ``src/repro``.  Any
edit to the simulator, protocol, apps, or harness changes the code
version and invalidates every entry at once; identical points on
identical code hit.  This is sound because scenario runs are
deterministic functions of (point, code).

Entries are small JSON files under ``$REPRO_EXP_CACHE_DIR`` (default
``~/.cache/repro-exp``), sharded by key prefix, written atomically so a
killed run never leaves a torn entry and concurrent pool workers never
observe partial writes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "code_version", "default_cache_dir"]

_ENV_VAR = "REPRO_EXP_CACHE_DIR"

_code_version_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_EXP_CACHE_DIR`` or ``~/.cache/repro-exp``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-exp"


def code_version() -> str:
    """SHA-256 over every ``.py`` file under ``src/repro`` (this tree).

    Files are folded in sorted relative-path order, each prefixed by its
    path and length, so renames and content changes both invalidate.
    Computed once per process (the tree cannot change mid-run).
    """
    global _code_version_cache
    if _code_version_cache is not None:
        return _code_version_cache
    root = Path(__file__).resolve().parent.parent  # src/repro
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        data = path.read_bytes()
        h.update(f"{rel}\x00{len(data)}\x00".encode())
        h.update(data)
    _code_version_cache = h.hexdigest()
    return _code_version_cache


def point_key(descriptor: dict[str, Any], version: str) -> str:
    """Content address of a point under a given code version."""
    blob = json.dumps(
        {"code_version": version, "point": descriptor},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Filesystem-backed point-result cache.

    ``get``/``put`` are safe under concurrent readers and writers: puts
    go through a temp file + ``os.replace`` (atomic on POSIX), and a
    corrupt or unreadable entry is treated as a miss.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
