"""Sweep execution: serial, multiprocess, cached — always bit-identical.

Each :class:`~repro.exp.spec.Point` names everything its run depends on,
and the DES is deterministic, so a point's result is a pure function of
(point, code version).  That gives three interchangeable execution
paths — run it here, run it in a pool worker, or read it from the
content-addressed cache — all yielding the same
:class:`~repro.bench.scenarios.ScenarioResult` bit for bit.  The serial
path deliberately round-trips results through the same dict form the
pool and the cache use, so switching ``--jobs`` or enabling the cache
can never change a figure.

``live=True`` runs serially without cache or serialization and keeps
the full result (including the live cluster object in ``extra``) — for
benchmarks that inspect cluster internals after the run.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro import api
from repro.bench.scenarios import ScenarioResult
from repro.bench.workloads import WORKLOADS, BenchWorkload
from repro.core.faults import EXECUTOR_FAULTS, VERIFIER_FAULTS, make_fault
from repro.errors import BenchmarkError
from repro.exp.cache import ResultCache, code_version, point_key
from repro.exp.spec import Point, SweepSpec

__all__ = [
    "EXECUTOR_FAULTS",
    "VERIFIER_FAULTS",
    "WORKLOADS",
    "PointOutcome",
    "SweepOutcome",
    "build_workload",
    "execute_point",
    "point_spec",
    "run_point",
    "run_sweep",
]


def build_workload(point: Point) -> BenchWorkload:
    """Instantiate the point's workload from the factory registry."""
    factory = WORKLOADS.get(point.workload)
    if factory is None:
        raise BenchmarkError(
            f"unknown workload {point.workload!r}; "
            f"registered: {sorted(WORKLOADS)}"
        )
    return factory(**dict(point.workload_params))


def _faults(specs, role: str) -> dict:
    out = {}
    for pid, kind, params in specs:
        try:
            out[pid] = make_fault(role, kind, dict(params))
        except ValueError as exc:
            raise BenchmarkError(str(exc)) from exc
    return out


def point_spec(point: Point, sanitize: bool = False) -> api.DeploymentSpec:
    """Translate a point into the :class:`repro.api.DeploymentSpec` that
    runs it — the single construction path shared with the benchmark
    shims, the fuzz driver and the adversary CLI."""
    if point.system != "osiris" and (
        point.executor_faults or point.verifier_faults or point.config
        or point.campaign
    ):
        raise BenchmarkError(
            f"faults/config overrides are OsirisBFT-only "
            f"(point targets {point.system!r})"
        )
    faults = api.FaultPlan()
    if point.executor_faults or point.verifier_faults or point.campaign:
        from repro.adversary.campaign import Campaign

        faults = api.normalize_faults(
            Campaign.from_json(point.campaign) if point.campaign else None,
            executors=_faults(point.executor_faults, "executor"),
            verifiers=_faults(point.verifier_faults, "verifier"),
        )
    return api.DeploymentSpec(
        workload=point.workload,
        n=point.n,
        system=point.system,
        workload_params=point.workload_params,
        f=point.f,
        k=point.k,
        seed=point.seed,
        deadline=point.deadline,
        duration=point.duration,
        bandwidth=point.bandwidth,
        config=point.config,
        faults=faults,
        sanitize=sanitize,
        shards=point.shards,
        tenants=point.tenants,
        label=point.label,
    )


def run_point(point: Point, sanitize: bool = False) -> ScenarioResult:
    """Run one point on this process's DES; returns the live result.

    ``sanitize=True`` attaches the :mod:`repro.check` substrate sanitizer
    (observational only — the trace and every measured number stay
    bit-identical) and reports violations in ``extra``.  It is a
    per-invocation knob, deliberately NOT part of the point descriptor:
    cached payloads are the same either way, and the fuzz driver calls
    this directly, bypassing the cache.
    """
    return api.run(point_spec(point, sanitize=sanitize))


def execute_point(point: Point) -> dict:
    """Run a point and return its serialized payload (pool-safe).

    This is the unit of work shipped to pool workers and stored in the
    cache: ``{"result": <ScenarioResult dict>, "wall_seconds": float}``.
    """
    start = time.perf_counter()
    result = run_point(point)
    wall = time.perf_counter() - start
    return {"result": result.to_dict(), "wall_seconds": wall}


@dataclass
class PointOutcome:
    """One executed (or cache-served) point."""

    point: Point
    result: ScenarioResult
    wall_seconds: float  # compute time when the result was produced
    cached: bool


@dataclass
class SweepOutcome:
    """A completed sweep: per-point outcomes plus provenance."""

    spec: SweepSpec
    code_version: str
    jobs: int
    wall_seconds: float  # this invocation's wall clock
    outcomes: list[PointOutcome]

    @property
    def results(self) -> list[ScenarioResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    def by(self, key: Callable[[Point], object] = None) -> dict:
        """Results keyed by ``key(point)`` (default: ``(system, n)``)."""
        if key is None:
            key = lambda p: (p.system, p.n)  # noqa: E731
        return {key(o.point): o.result for o in self.outcomes}


def _pool(jobs: int):
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return ctx.Pool(processes=jobs)


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    live: bool = False,
) -> SweepOutcome:
    """Execute every point of ``spec``; results are independent of
    ``jobs`` and of cache state.

    Points already in ``cache`` (same descriptor, same code version) are
    served from it; the rest run serially (``jobs=1``) or on a
    ``multiprocessing`` pool, in either case producing the same payloads.
    ``live=True`` skips cache and serialization entirely and keeps live
    results (cluster handles in ``extra`` survive) — always serial.
    """
    if jobs < 1:
        raise BenchmarkError(f"jobs must be >=1, got {jobs}")
    start = time.perf_counter()
    if live:
        outcomes = []
        for point in spec.points:
            p0 = time.perf_counter()
            result = run_point(point)
            outcomes.append(
                PointOutcome(point, result, time.perf_counter() - p0, False)
            )
        return SweepOutcome(
            spec=spec,
            code_version=code_version(),
            jobs=1,
            wall_seconds=time.perf_counter() - start,
            outcomes=outcomes,
        )

    version = code_version()
    keys = [point_key(p.descriptor(), version) for p in spec.points]
    payloads: dict[int, tuple[dict, bool]] = {}
    todo: list[int] = []
    for i, key in enumerate(keys):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            payloads[i] = (hit, True)
        else:
            todo.append(i)

    if todo:
        pending = [spec.points[i] for i in todo]
        if jobs > 1 and len(pending) > 1:
            with _pool(min(jobs, len(pending))) as pool:
                fresh = pool.map(execute_point, pending)
        else:
            fresh = [execute_point(p) for p in pending]
        for i, payload in zip(todo, fresh):
            payloads[i] = (payload, False)
            if cache is not None:
                cache.put(keys[i], payload)

    outcomes = [
        PointOutcome(
            point=spec.points[i],
            result=ScenarioResult.from_dict(payloads[i][0]["result"]),
            wall_seconds=payloads[i][0]["wall_seconds"],
            cached=payloads[i][1],
        )
        for i in range(len(spec.points))
    ]
    return SweepOutcome(
        spec=spec,
        code_version=version,
        jobs=jobs,
        wall_seconds=time.perf_counter() - start,
        outcomes=outcomes,
    )
