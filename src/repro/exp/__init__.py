"""Declarative experiment sweeps: specs, a runner, and a result cache.

``repro.exp`` turns the benchmark harness's ad-hoc nested loops into
data: a :class:`~repro.exp.spec.SweepSpec` is a named, ordered tuple of
:class:`~repro.exp.spec.Point` objects — each one fully describing a
single deterministic scenario run (system × cluster size × fault level ×
workload × seed × config overrides).  The runner executes points
serially or fanned out over a ``multiprocessing`` pool with bit-identical
results, and a content-addressed cache keyed on the point descriptor
plus the repro code version makes re-runs instant.
"""

from repro.exp.cache import ResultCache, code_version, default_cache_dir
from repro.exp.runner import PointOutcome, SweepOutcome, execute_point, run_sweep
from repro.exp.spec import Point, SweepSpec

__all__ = [
    "Point",
    "SweepSpec",
    "PointOutcome",
    "SweepOutcome",
    "ResultCache",
    "code_version",
    "default_cache_dir",
    "execute_point",
    "run_sweep",
]
