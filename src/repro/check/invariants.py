"""Shared post-run safety-invariant evaluation (Theorem 6.3).

One implementation serves two drivers:

* the DES :class:`~repro.check.conservation.ConservationSink` delegates
  its post-run cluster audit here (its event-stream counter
  cross-checks stay in the sink, since only the sink sees the trace);
* the bounded interleaving explorer (:mod:`repro.mc`) evaluates the
  exact same invariants in every reachable terminal state of a small
  model, so a finding from either driver means the same thing.

``cluster`` is duck-typed — it needs ``.topo``, ``.app``,
``.coordinators`` (coordinator cores with the replicated task table)
and ``.outputs`` (OutputProcess cores) — satisfied both by the DES
``OsirisCluster`` and by :mod:`repro.mc`'s in-memory deployments.

Invariant names are stable and shared with the live checkers:

* ``committed-equivocation`` — two quorum-endorsed digests with data
  present in one chunk slot, or two OPs committing different digests
  for the same slot;
* ``accept-without-quorum`` — an accepted slot with no quorum-endorsed
  digest whose chunk data is present;
* ``accept-conservation`` — an OP's acceptance counters disagree with
  its accepted-slot state.  This is the *structural* exactly-once
  commit check: unlike the sink's event-stream double-accept check it
  needs no trace, and it holds in a state regardless of which schedule
  reached it — which is what makes it usable under the explorer's
  state-fingerprint merging;
* ``completion-without-accept`` — a task marked completed whose slots
  ``0..final_index`` are not all accepted;
* ``output-failure`` — a completed compute task whose committed records
  do not classify as ``OutputFailure.NONE`` against A(s, t) recomputed
  from the coordinator's replica at the task's snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.failure_model import OutputFailure, classify_output

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.report import SanitizerReport

__all__ = ["audit_safety"]


def audit_safety(cluster, report: "SanitizerReport") -> None:
    """Audit an OsirisBFT deployment's output safety end to end.

    Appends one :class:`~repro.check.report.Violation` per finding to
    ``report`` and bumps ``report.outputs_recomputed`` for every task
    whose committed output was recomputed and classified.
    """
    expected_cache: dict[str, tuple] = {}
    coordinator = cluster.coordinators[0]
    # (task_id, index) -> committed digest, for cross-OP agreement
    committed: dict[tuple[str, int], bytes] = {}

    for op in cluster.outputs:
        accepted_slots = 0
        winner_records = 0
        # counter comparison is only meaningful when every accepted slot
        # has exactly one derivable winner; otherwise a sharper
        # violation was already reported above
        countable = True
        for task_id, ot in op._tasks.items():
            accepted_slots += len(ot.accepted)
            if ot.vp_index < 0:
                if ot.accepted:
                    countable = False
                continue
            quorum = cluster.topo.cluster(ot.vp_index).quorum
            winners_by_index: dict[int, bytes] = {}
            for index, slot in ot.slots.items():
                winners = [
                    sigma
                    for sigma, endorsers in slot.endorsements.items()
                    if len(endorsers) >= quorum and sigma in slot.data
                ]
                if len(winners) > 1:
                    report.add(
                        "committed-equivocation",
                        op.pid,
                        -1.0,
                        f"task {task_id}#{index}: {len(winners)} "
                        f"distinct digests each hold a quorum — "
                        f"sub-cluster VP{ot.vp_index} committed to "
                        f"conflicting chunks",
                    )
                    countable = False
                    continue
                if index in ot.accepted:
                    if not winners:
                        report.add(
                            "accept-without-quorum",
                            op.pid,
                            -1.0,
                            f"task {task_id}#{index} accepted but no "
                            f"digest holds a quorum of {quorum} with "
                            f"data present",
                        )
                        countable = False
                        continue
                    sigma = winners[0]
                    winners_by_index[index] = sigma
                    winner_records += len(slot.data[sigma].records)
                    prev = committed.get((task_id, index))
                    if prev is not None and prev != sigma:
                        report.add(
                            "committed-equivocation",
                            op.pid,
                            -1.0,
                            f"task {task_id}#{index}: this OP "
                            f"committed a different digest than "
                            f"another OP",
                        )
                    committed[(task_id, index)] = sigma

            if ot.completed and (
                ot.final_index is None
                or any(
                    i not in ot.accepted for i in range(ot.final_index + 1)
                )
            ):
                report.add(
                    "completion-without-accept",
                    op.pid,
                    -1.0,
                    f"task {task_id} completed with accepted="
                    f"{sorted(ot.accepted)} but final_index="
                    f"{ot.final_index}",
                )

            _audit_output(
                cluster, coordinator, op, task_id, ot, winners_by_index,
                expected_cache, report,
            )

        if countable:
            if op.chunks_accepted != accepted_slots:
                report.add(
                    "accept-conservation",
                    op.pid,
                    -1.0,
                    f"counter chunks_accepted={op.chunks_accepted} but "
                    f"{accepted_slots} slot(s) are marked accepted",
                )
            if op.records_accepted != winner_records:
                report.add(
                    "accept-conservation",
                    op.pid,
                    -1.0,
                    f"counter records_accepted={op.records_accepted} "
                    f"but the accepted winner chunks hold "
                    f"{winner_records} record(s)",
                )


def _audit_output(
    cluster, coordinator, op, task_id, ot, winners_by_index,
    expected_cache, report,
) -> None:
    """Recompute A(s, t) and classify the committed record sequence."""
    if not ot.completed:
        return
    entry = coordinator.outstanding.get(task_id)
    if entry is None:
        return
    task = entry.task
    if not task.opcode.has_compute or task.timestamp < 0:
        return
    observed: list = []
    for index in sorted(ot.accepted):
        sigma = winners_by_index.get(index)
        if sigma is None:
            return  # already reported above; classification would lie
        observed.extend(ot.slots[index].data[sigma].records)
    if task_id not in expected_cache:
        view = coordinator.store.view(task.timestamp)
        expected_cache[task_id] = cluster.app.compute(view, task).records
    expected = expected_cache[task_id]
    report.outputs_recomputed += 1
    failure = classify_output(observed, expected)
    if failure != OutputFailure.NONE:
        report.add(
            "output-failure",
            op.pid,
            -1.0,
            f"task {task_id} committed output classifies as "
            f"{failure!r} against A(s, t) recomputed at ts="
            f"{task.timestamp} ({len(observed)} observed vs "
            f"{len(expected)} expected records)",
        )
