"""CPU-bank invariants: span geometry live, conservation post-run.

A :class:`~repro.sim.cpu.CpuBank` emits one ``CpuSpan`` per nonzero-cost
job and one ``CpuCancel`` when a pending job's unrun tail is reclaimed.
This sink reconstructs per-core occupancy from those events and enforces:

* **core-overlap** — spans on one core never overlap (a core runs one
  job at a time; the M/G/c model is exact, not stochastic);
* **core-range** — emitted core indices stay below the bank's ``cores``
  (occupancy can never exceed the core count);
* **cancel-unmatched** — every ``CpuCancel`` truncates exactly one
  previously emitted span of the same (pid, bank, core, end);
* **span-sum** — once a bank drains, ``busy_seconds`` equals the summed
  durations of its (truncation-adjusted) spans: every charged
  core-second appears in the trace exactly once, cancelled jobs
  contributing only their consumed prefix;
* **cpu-conservation** — the bank's own ledger balances:
  ``busy_seconds == completed_seconds + cancelled_busy_seconds`` when no
  job is outstanding.  This is the invariant that catches the historical
  cancellation leak, where a cancelled job's full cost stayed charged.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.obs.bus import Sink
from repro.obs.events import CATEGORY_CPU, CpuCancel, CpuSpan, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.report import SanitizerReport
    from repro.sim.cpu import CpuBank

__all__ = ["CpuInvariantSink"]


class CpuInvariantSink(Sink):
    """Reconstructs per-core schedules from cpu trace events."""

    categories = frozenset({CATEGORY_CPU})

    def __init__(self, report: "SanitizerReport") -> None:
        self.report = report
        # (pid, bank) -> core -> [ [start, end], ... ] in emission order;
        # entries are mutable so a CpuCancel can truncate its span
        self._spans: dict[tuple[str, str], dict[int, list[list[float]]]] = {}
        self.cancels_seen = 0

    # ----------------------------------------------------------- live checks
    def handle(self, event: TraceEvent) -> None:
        if isinstance(event, CpuSpan):
            self.report.spans_checked += 1
            per_core = self._spans.setdefault((event.pid, event.bank), {})
            spans = per_core.setdefault(event.core, [])
            if spans and event.time < spans[-1][1]:
                self.report.add(
                    "core-overlap",
                    event.pid,
                    event.time,
                    f"bank {event.bank!r} core {event.core} span starts at "
                    f"{event.time!r} before previous span ends at "
                    f"{spans[-1][1]!r}",
                )
            spans.append([event.time, event.end])
        elif isinstance(event, CpuCancel):
            self.cancels_seen += 1
            spans = self._spans.get((event.pid, event.bank), {}).get(
                event.core, []
            )
            # the cancelled job is the one whose span ends at the
            # cancelled completion time; search back since it is recent.
            # A queued job can be cancelled before its start (full
            # reclaim), so the cancel time may precede the span.
            for span in reversed(spans):
                if span[1] == event.end:
                    consumed_end = event.time if event.time < span[1] else span[1]
                    span[1] = span[0] if consumed_end < span[0] else consumed_end
                    break
            else:
                self.report.add(
                    "cancel-unmatched",
                    event.pid,
                    event.time,
                    f"bank {event.bank!r} core {event.core} cancel of span "
                    f"ending {event.end!r} matches no emitted span",
                )

    # -------------------------------------------------------- post-run audit
    def audit_bank(self, pid: str, bank: "CpuBank", drained: bool = True) -> None:
        """Balance one bank's ledger against its reconstructed spans.

        ``drained`` says whether the simulator ran out of events before
        the audit.  A drained simulator cannot have pending jobs, so any
        job neither completed nor cancelled is a leak; an undrained one
        (deadline-bounded run) legitimately has jobs in flight, and the
        ledger checks are skipped for banks that do.
        """
        report = self.report
        report.banks_audited += 1
        per_core = self._spans.get((pid, bank.name), {})
        for core in per_core:
            if not (0 <= core < bank.cores):
                report.add(
                    "core-range",
                    pid,
                    -1.0,
                    f"bank {bank.name!r} emitted spans on core {core} but "
                    f"has only {bank.cores} cores",
                )
        outstanding = bank.jobs_done - bank.jobs_completed - bank.jobs_cancelled
        if outstanding < 0:
            report.add(
                "cpu-conservation",
                pid,
                -1.0,
                f"bank {bank.name!r} completed+cancelled "
                f"({bank.jobs_completed}+{bank.jobs_cancelled}) exceeds "
                f"jobs submitted ({bank.jobs_done})",
            )
            return
        if outstanding > 0:
            if drained:
                report.add(
                    "cpu-conservation",
                    pid,
                    -1.0,
                    f"bank {bank.name!r} has {outstanding} job(s) neither "
                    f"completed nor cancelled after the simulator drained "
                    f"(a cancellation bypassed the bank's rollback)",
                )
            # jobs still queued at audit time (deadline-bounded run):
            # the ledger cannot balance yet, skip the drained-only checks
            return
        ledger = bank.completed_seconds + bank.cancelled_busy_seconds
        if not math.isclose(
            bank.busy_seconds, ledger, rel_tol=1e-9, abs_tol=1e-9
        ):
            report.add(
                "cpu-conservation",
                pid,
                -1.0,
                f"bank {bank.name!r} busy_seconds {bank.busy_seconds!r} != "
                f"completed {bank.completed_seconds!r} + consumed-by-"
                f"cancelled {bank.cancelled_busy_seconds!r} (a cancelled "
                f"job's unrun tail stayed charged, or work went missing)",
            )
        span_sum = sum(
            end - start
            for spans in per_core.values()
            for start, end in spans
        )
        if not math.isclose(
            span_sum, bank.busy_seconds, rel_tol=1e-9, abs_tol=1e-9
        ):
            report.add(
                "span-sum",
                pid,
                -1.0,
                f"bank {bank.name!r} traced span seconds {span_sum!r} != "
                f"busy_seconds {bank.busy_seconds!r}",
            )
