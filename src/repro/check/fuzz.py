"""Randomized sanitizer sweeps over the scenario space.

The sanitizer's invariants hold on *every* run, so any randomized
point is a test: draw seeds, cluster shapes, workloads and fault mixes,
run each point with ``sanitize=True``, and flag the ones whose report
comes back non-empty (or that crash outright).  A failing point is then
*shrunk* — faults dropped, config overrides cleared, the workload and
cluster halved — to the smallest point that still reproduces, which is
what gets reported (and what a regression test should pin).

Determinism: the sweep is a pure function of ``(budget, seed)`` — point
generation uses one ``random.Random(seed)`` stream and the DES itself is
seeded from each point — so a CI failure replays locally with the same
two numbers.

Entry points: :func:`run_fuzz` (library) and ``python -m repro.check
fuzz --budget N --seed S`` (CLI, exits non-zero on failures).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.adversary.campaign import Action, Campaign, FaultSpec, Phase, Trigger
from repro.errors import BenchmarkError, ProtocolError
from repro.exp.runner import run_point
from repro.exp.spec import Point, kv

__all__ = [
    "FuzzFailure",
    "FuzzOutcome",
    "generate_campaign",
    "generate_point",
    "run_fuzz",
    "shrink_point",
]

#: Cap on extra runs spent shrinking one failing point.
MAX_SHRINK_RUNS = 24

_EXEC_FAULT_KINDS = (
    "silent",
    "slow",
    "corrupt-record",
    "fabricate-record",
    "duplicate-record",
    "omit-record",
    "equivocate-chunks",
)
_VERIF_FAULT_KINDS = ("negligent-leader", "bogus-digest")

#: Trigger kinds the random campaigns subscribe to.  ``task-assigned``
#: carries an ``executor`` field, so its triggers can target the very
#: process the event names (the adaptive "turncoat" shape).
_TRIGGER_KINDS = ("chunk-accepted", "task-assigned")


def generate_campaign(rng: random.Random, n_exec: int, k: int) -> Campaign:
    """Draw one random-but-valid adversary campaign.

    Phases target executor selectors (plus ``cluster:1`` verifiers when a
    second sub-cluster exists); roughly a third of campaigns add an
    adaptive trigger, and some add a remission (``clear``) phase — so the
    fuzz sweep exercises the engine's set/clear/trigger paths, not just
    deployment-time injection.
    """

    def exec_action() -> Action:
        selector = rng.choice(
            ["executors", f"executors[:{max(1, n_exec // 2)}]"]
            + [f"e{i}" for i in range(n_exec)]
        )
        return Action(
            op="set",
            select=selector,
            fault=FaultSpec(
                role="executor", kind=rng.choice(_EXEC_FAULT_KINDS)
            ),
        )

    phases = [
        Phase(at=rng.choice((0.0, 0.5, 2.0, 5.0)), actions=(exec_action(),))
    ]
    if k >= 2 and rng.random() < 0.3:
        phases.append(
            Phase(
                at=rng.choice((0.0, 1.0, 3.0)),
                actions=(
                    Action(
                        op="set",
                        select="cluster:1[:1]",
                        fault=FaultSpec(
                            role="verifier",
                            kind=rng.choice(_VERIF_FAULT_KINDS),
                        ),
                    ),
                ),
            )
        )
    if rng.random() < 0.3:
        phases.append(
            Phase(
                at=rng.choice((4.0, 8.0)),
                name="remission",
                actions=(Action(op="clear", select="executors"),),
            )
        )
    triggers = ()
    if rng.random() < 0.35:
        on = rng.choice(_TRIGGER_KINDS)
        select = "event:executor" if on == "task-assigned" else (
            f"e{rng.randrange(n_exec)}"
        )
        triggers = (
            Trigger(
                on=on,
                once=True,
                after=rng.choice((0.0, 0.5)),
                actions=(
                    Action(
                        op="set",
                        select=select,
                        fault=FaultSpec(
                            role="executor", kind=rng.choice(_EXEC_FAULT_KINDS)
                        ),
                    ),
                ),
            ),
        )
    return Campaign(name="fuzz", phases=tuple(phases), triggers=triggers)


# --------------------------------------------------------------- generation
def generate_point(rng: random.Random) -> Point:
    """Draw one random-but-valid scenario point.

    Sub-cluster size is 2f+1 = 3 (f is pinned at 1 — the substrate
    invariants don't depend on f, and larger quorums just slow the
    sweep).  Verifier faults are only drawn when a second sub-cluster
    exists (n=8, k=2): the fault registry targets non-coordinator
    verifiers, which k=1 deployments don't have.
    """
    system = rng.choices(("osiris", "zft", "rcp"), weights=(70, 15, 15))[0]

    if rng.random() < 0.75:
        workload = "synthetic"
        wparams = {
            "n_tasks": rng.randint(4, 14),
            "records_per_task": rng.randint(3, 12),
            "compute_cost": rng.choice((20e-3, 50e-3, 120e-3)),
            "record_bytes": rng.choice((256, 1024, 4096)),
            "rate": rng.choice((500.0, 2000.0, 8000.0)),
        }
    else:
        workload = "anomaly"
        wparams = {
            "profile": rng.choice(("MM", "LH", "HL")),
            "n_tasks": rng.randint(4, 10),
            "seed": rng.randrange(1 << 12),
        }

    seed = rng.randrange(1 << 16)
    if system != "osiris":
        return Point(
            system=system,
            workload=workload,
            workload_params=kv(wparams),
            n=rng.choice((3, 4, 5, 8)),
            seed=seed,
            label="fuzz",
        )

    k = 2 if rng.random() < 0.3 else 1
    n = 8 if k == 2 else rng.choice((4, 5, 6, 8))
    n_exec = n - 3 * k

    # A quarter of osiris draws are sharded multi-tenant open-loop
    # deployments: tenant-tagged arrivals (Poisson/diurnal/burst-idle)
    # routed by tenant-key hash across two IP→OP pipelines sharing the
    # verifier fleet — the invariants must hold there too.
    shards, tenants = 1, 1
    if rng.random() < 0.25:
        workload = "open_loop"
        wparams = {
            "n_tasks": rng.randint(6, 14),
            "rate": rng.choice((50.0, 200.0)),
            "process": rng.choice(("poisson", "diurnal", "burst_idle")),
            "seed": rng.randrange(1 << 12),
        }
        shards = 2
        tenants = rng.randint(2, 4)

    config: dict = {}
    if rng.random() < 0.4:
        # short suspect timeout: exercises reassignment + CPU cancellation
        config["suspect_timeout"] = rng.choice((2.0, 5.0, 10.0))
    if rng.random() < 0.2:
        config["cores_per_node"] = 2

    executor_faults = []
    if n_exec > 0 and rng.random() < 0.5:
        for pid in rng.sample(
            [f"e{i}" for i in range(n_exec)], k=min(n_exec, rng.randint(1, 2))
        ):
            executor_faults.append(
                (
                    pid,
                    rng.choice(_EXEC_FAULT_KINDS),
                    kv({"activate_at": rng.choice((0.0, 0.5, 2.0))}),
                )
            )

    verifier_faults = []
    if k >= 2 and rng.random() < 0.4:
        pid = f"v{rng.randint(3, 5)}"
        verifier_faults.append(
            (
                pid,
                rng.choice(_VERIF_FAULT_KINDS),
                kv({"activate_at": rng.choice((0.0, 0.5))}),
            )
        )

    # A quarter of osiris points carry a campaign instead of static
    # faults — the engine's scheduling/trigger machinery fuzzes under the
    # same invariants as deployment-time injection.
    campaign = ""
    if n_exec > 0 and rng.random() < 0.25:
        executor_faults, verifier_faults = [], []
        campaign = generate_campaign(rng, n_exec, k).to_json()

    return Point(
        system="osiris",
        workload=workload,
        workload_params=kv(wparams),
        n=n,
        k=k,
        seed=seed,
        config=kv(config),
        executor_faults=tuple(executor_faults),
        verifier_faults=tuple(verifier_faults),
        campaign=campaign,
        shards=shards,
        tenants=tenants,
        label="fuzz",
    )


# ---------------------------------------------------------------- execution
def _check(point: Point) -> tuple[str, frozenset[str], str]:
    """Run one sanitized point.

    Returns ``(status, invariants, detail)`` where status is ``"ok"``,
    ``"inconclusive"`` (deadline miss — the run didn't finish, so the
    drained-state audits don't apply), ``"violation"`` or ``"crash"``.
    """
    try:
        result = run_point(point, sanitize=True)
    except BenchmarkError:
        return ("inconclusive", frozenset(), "deadline miss")
    except ProtocolError as exc:
        # invalid shape (can happen for shrink candidates): not a repro
        return ("inconclusive", frozenset(), f"invalid: {exc}")
    except Exception as exc:  # noqa: BLE001 - a crash IS a fuzz finding
        return (
            "crash",
            frozenset({type(exc).__name__}),
            f"{type(exc).__name__}: {exc}",
        )
    report = result.extra.get("sanitizer_report")
    if report is None or report.ok:
        return ("ok", frozenset(), "")
    return (
        "violation",
        frozenset(report.invariants_hit()),
        report.summary(),
    )


# ---------------------------------------------------------------- shrinking
def _candidates(point: Point):
    """Simpler variants of ``point``, most aggressive first."""
    if point.campaign:
        campaign = Campaign.from_json(point.campaign)
        yield replace(point, campaign="")
        if campaign.triggers:
            for i in range(len(campaign.triggers)):
                trimmed = replace(
                    campaign,
                    triggers=campaign.triggers[:i] + campaign.triggers[i + 1 :],
                )
                yield replace(point, campaign=trimmed.to_json())
        if len(campaign.phases) > 1:
            for i in range(len(campaign.phases)):
                trimmed = replace(
                    campaign,
                    phases=campaign.phases[:i] + campaign.phases[i + 1 :],
                )
                yield replace(point, campaign=trimmed.to_json())
    for i in range(len(point.executor_faults)):
        faults = point.executor_faults[:i] + point.executor_faults[i + 1 :]
        yield replace(point, executor_faults=faults)
    for i in range(len(point.verifier_faults)):
        faults = point.verifier_faults[:i] + point.verifier_faults[i + 1 :]
        yield replace(point, verifier_faults=faults)
    if point.config:
        yield replace(point, config=())
    # tenancy/sharding shrink before any topology shrink: a violation
    # that persists on the classic single-pipeline layout is the simpler
    # reproducer
    if point.tenants > 1:
        yield replace(point, tenants=1)
    if point.shards > 1:
        yield replace(point, shards=1)
    wp = dict(point.workload_params)
    n_tasks = wp.get("n_tasks")
    if isinstance(n_tasks, int) and n_tasks > 2:
        yield replace(
            point, workload_params=kv({**wp, "n_tasks": max(2, n_tasks // 2)})
        )
    if point.system == "osiris":
        # n/k shrinks are skipped while a campaign remains: its selectors
        # may name specific pids or sub-clusters that a smaller topology
        # no longer has (the drop-campaign candidate unlocks them)
        floor = 3 * (point.k or 1) + (1 if point.executor_faults else 0)
        if point.n > floor and not point.campaign:
            yield replace(point, n=max(floor, point.n // 2))
        if (
            (point.k or 1) > 1
            and not point.verifier_faults
            and not point.campaign
        ):
            yield replace(point, k=1, n=min(point.n, 5))
    elif point.n > 3:
        yield replace(point, n=3)


def shrink_point(
    point: Point,
    invariants: frozenset[str],
    max_runs: int = MAX_SHRINK_RUNS,
) -> tuple[Point, int]:
    """Greedily minimize a failing point.

    A candidate is accepted when it still fails with an overlapping
    invariant set (same bug, smaller scenario).  Returns the smallest
    reproducer found and the number of extra runs spent.
    """
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in _candidates(point):
            if runs >= max_runs:
                break
            runs += 1
            status, cand_inv, _ = _check(candidate)
            if status in ("violation", "crash") and cand_inv & invariants:
                point, invariants = candidate, cand_inv
                improved = True
                break
    return point, runs


# ------------------------------------------------------------------ driver
@dataclass
class FuzzFailure:
    """One failing point, minimized."""

    point: Point                #: the original failing draw
    shrunk: Point               #: the minimized reproducer
    status: str                 #: "violation" or "crash"
    invariants: frozenset[str]  #: invariant names (or exception type)
    detail: str                 #: report summary / traceback head
    shrink_runs: int

    def to_dict(self) -> dict:
        return {
            "point": self.point.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "status": self.status,
            "invariants": sorted(self.invariants),
            "detail": self.detail,
            "shrink_runs": self.shrink_runs,
        }


@dataclass
class FuzzOutcome:
    """Result of one fuzz sweep."""

    budget: int
    seed: int
    executed: int = 0
    passed: int = 0
    inconclusive: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "executed": self.executed,
            "passed": self.passed,
            "inconclusive": self.inconclusive,
            "failures": [f.to_dict() for f in self.failures],
        }


def run_fuzz(
    budget: int,
    seed: int = 0,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """Run ``budget`` randomized sanitized points; see module docstring."""
    rng = random.Random(seed)
    outcome = FuzzOutcome(budget=budget, seed=seed)
    say = progress or (lambda _msg: None)
    for i in range(budget):
        point = generate_point(rng)
        status, invariants, detail = _check(point)
        outcome.executed += 1
        if status == "ok":
            outcome.passed += 1
            say(f"[{i + 1}/{budget}] ok      {point.descriptor()}")
            continue
        if status == "inconclusive":
            outcome.inconclusive += 1
            say(f"[{i + 1}/{budget}] skip    {detail}")
            continue
        say(f"[{i + 1}/{budget}] FAIL    {sorted(invariants)}")
        shrunk, runs = (
            shrink_point(point, invariants) if shrink else (point, 0)
        )
        outcome.failures.append(
            FuzzFailure(
                point=point,
                shrunk=shrunk,
                status=status,
                invariants=invariants,
                detail=detail,
                shrink_runs=runs,
            )
        )
    return outcome
