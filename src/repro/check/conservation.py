"""Record conservation executor→verifier→OP, and equivocation audits.

The paper's safety claim (Theorem 6.3) is that whatever Byzantine
workers do, the *committed* output equals ``A(s, t)`` — every record of
the correct output delivered exactly once, nothing fabricated, nothing
duplicated, nothing dropped.  This checker enforces that end to end:

* live (sink): no chunk slot is accepted twice, no task completes twice
  at one OP, and the two acceptance event streams (``ChunkAccepted`` /
  ``RecordsAccepted``) agree record for record;
* post-run (auditor): each accepted slot has exactly one quorum-endorsed
  digest whose chunk data is present (≥2 would be *committed
  equivocation* within a sub-cluster; 0 means the OP accepted without a
  derivable quorum), accepted digests agree across output processes, OP
  counters match the trace, and — the strongest check — for every
  completed compute task the concatenated accepted records are
  recomputed from the coordinator's replica at the task's snapshot and
  classified with :func:`~repro.core.failure_model.classify_output`,
  which must return ``NONE`` (on honest *and* faulty runs: committed
  output is correct or the protocol is broken).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.failure_model import OutputFailure, classify_output
from repro.obs.bus import Sink
from repro.obs.events import (
    CATEGORY_CHUNK,
    CATEGORY_TASK,
    ChunkAccepted,
    RecordsAccepted,
    TaskCompleted,
    TraceEvent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.report import SanitizerReport

__all__ = ["ConservationSink"]


class ConservationSink(Sink):
    """Tracks acceptance events live; see module docstring."""

    categories = frozenset({CATEGORY_TASK, CATEGORY_CHUNK})

    def __init__(self, report: "SanitizerReport") -> None:
        self.report = report
        self._accepted_slots: set[tuple[str, str, int]] = set()
        self._completed: set[tuple[str, str]] = set()
        # per-OP record totals from the two event streams
        self._chunk_records: dict[str, int] = {}
        self._accept_records: dict[str, int] = {}
        self._chunk_events: dict[str, int] = {}

    # ----------------------------------------------------------- live checks
    def handle(self, event: TraceEvent) -> None:
        if isinstance(event, ChunkAccepted):
            key = (event.pid, event.task_id, event.index)
            if key in self._accepted_slots:
                self.report.add(
                    "double-accept",
                    event.pid,
                    event.time,
                    f"chunk {event.task_id}#{event.index} accepted twice",
                )
            self._accepted_slots.add(key)
            self._chunk_records[event.pid] = (
                self._chunk_records.get(event.pid, 0) + event.records
            )
            self._chunk_events[event.pid] = (
                self._chunk_events.get(event.pid, 0) + 1
            )
        elif isinstance(event, RecordsAccepted):
            self._accept_records[event.pid] = (
                self._accept_records.get(event.pid, 0) + event.count
            )
        elif isinstance(event, TaskCompleted):
            key = (event.pid, event.task_id)
            if key in self._completed:
                self.report.add(
                    "double-complete",
                    event.pid,
                    event.time,
                    f"task {event.task_id} completed twice",
                )
            self._completed.add(key)

    # -------------------------------------------------------- post-run audit
    def audit_cluster(self, cluster) -> None:
        """Audit an OsirisBFT deployment's output processes end to end.

        ``cluster`` is an :class:`~repro.runtime.deploy.OsirisCluster`;
        baseline clusters (no verifier quorum machinery) get only the
        live checks.
        """
        report = self.report
        expected_cache: dict[str, tuple] = {}
        coordinator = cluster.coordinators[0]
        # (task_id, index) -> committed digest, for cross-OP agreement
        committed: dict[tuple[str, int], bytes] = {}

        for op in cluster.outputs:
            if op.records_accepted != self._accept_records.get(op.pid, 0):
                report.add(
                    "records-counter",
                    op.pid,
                    -1.0,
                    f"counter records_accepted={op.records_accepted} but "
                    f"trace sums {self._accept_records.get(op.pid, 0)}",
                )
            if op.chunks_accepted != self._chunk_events.get(op.pid, 0):
                report.add(
                    "chunks-counter",
                    op.pid,
                    -1.0,
                    f"counter chunks_accepted={op.chunks_accepted} but "
                    f"trace has {self._chunk_events.get(op.pid, 0)} "
                    f"ChunkAccepted events",
                )
            if self._chunk_records.get(op.pid, 0) != self._accept_records.get(
                op.pid, 0
            ):
                report.add(
                    "records-counter",
                    op.pid,
                    -1.0,
                    f"ChunkAccepted records sum "
                    f"{self._chunk_records.get(op.pid, 0)} != "
                    f"RecordsAccepted sum "
                    f"{self._accept_records.get(op.pid, 0)}",
                )

            for task_id, ot in op._tasks.items():
                if ot.vp_index < 0:
                    continue
                quorum = cluster.topo.cluster(ot.vp_index).quorum
                winners_by_index: dict[int, bytes] = {}
                for index, slot in ot.slots.items():
                    winners = [
                        sigma
                        for sigma, endorsers in slot.endorsements.items()
                        if len(endorsers) >= quorum and sigma in slot.data
                    ]
                    if len(winners) > 1:
                        report.add(
                            "committed-equivocation",
                            op.pid,
                            -1.0,
                            f"task {task_id}#{index}: {len(winners)} "
                            f"distinct digests each hold a quorum — "
                            f"sub-cluster VP{ot.vp_index} committed to "
                            f"conflicting chunks",
                        )
                        continue
                    if index in ot.accepted:
                        if not winners:
                            report.add(
                                "accept-without-quorum",
                                op.pid,
                                -1.0,
                                f"task {task_id}#{index} accepted but no "
                                f"digest holds a quorum of {quorum} with "
                                f"data present",
                            )
                            continue
                        sigma = winners[0]
                        winners_by_index[index] = sigma
                        prev = committed.get((task_id, index))
                        if prev is not None and prev != sigma:
                            report.add(
                                "committed-equivocation",
                                op.pid,
                                -1.0,
                                f"task {task_id}#{index}: this OP "
                                f"committed a different digest than "
                                f"another OP",
                            )
                        committed[(task_id, index)] = sigma

                self._audit_output(
                    cluster, coordinator, op, task_id, ot, winners_by_index,
                    expected_cache,
                )

    def _audit_output(
        self, cluster, coordinator, op, task_id, ot, winners_by_index,
        expected_cache,
    ) -> None:
        """Recompute A(s, t) and classify the committed record sequence."""
        if not ot.completed:
            return
        entry = coordinator.outstanding.get(task_id)
        if entry is None:
            return
        task = entry.task
        if not task.opcode.has_compute or task.timestamp < 0:
            return
        observed: list = []
        for index in sorted(ot.accepted):
            sigma = winners_by_index.get(index)
            if sigma is None:
                return  # already reported above; classification would lie
            observed.extend(ot.slots[index].data[sigma].records)
        if task_id not in expected_cache:
            view = coordinator.store.view(task.timestamp)
            expected_cache[task_id] = cluster.app.compute(view, task).records
        expected = expected_cache[task_id]
        self.report.outputs_recomputed += 1
        failure = classify_output(observed, expected)
        if failure != OutputFailure.NONE:
            self.report.add(
                "output-failure",
                op.pid,
                -1.0,
                f"task {task_id} committed output classifies as "
                f"{failure!r} against A(s, t) recomputed at ts="
                f"{task.timestamp} ({len(observed)} observed vs "
                f"{len(expected)} expected records)",
            )
