"""Record conservation executor→verifier→OP, and equivocation audits.

The paper's safety claim (Theorem 6.3) is that whatever Byzantine
workers do, the *committed* output equals ``A(s, t)`` — every record of
the correct output delivered exactly once, nothing fabricated, nothing
duplicated, nothing dropped.  This checker enforces that end to end:

* live (sink): no chunk slot is accepted twice, no task completes twice
  at one OP, and the two acceptance event streams (``ChunkAccepted`` /
  ``RecordsAccepted``) agree record for record;
* post-run (auditor): each accepted slot has exactly one quorum-endorsed
  digest whose chunk data is present (≥2 would be *committed
  equivocation* within a sub-cluster; 0 means the OP accepted without a
  derivable quorum), accepted digests agree across output processes, OP
  counters match the trace, and — the strongest check — for every
  completed compute task the concatenated accepted records are
  recomputed from the coordinator's replica at the task's snapshot and
  classified with :func:`~repro.core.failure_model.classify_output`,
  which must return ``NONE`` (on honest *and* faulty runs: committed
  output is correct or the protocol is broken).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.invariants import audit_safety
from repro.obs.bus import Sink
from repro.obs.events import (
    CATEGORY_CHUNK,
    CATEGORY_TASK,
    ChunkAccepted,
    RecordsAccepted,
    TaskCompleted,
    TraceEvent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.report import SanitizerReport

__all__ = ["ConservationSink"]


class ConservationSink(Sink):
    """Tracks acceptance events live; see module docstring."""

    categories = frozenset({CATEGORY_TASK, CATEGORY_CHUNK})

    def __init__(self, report: "SanitizerReport") -> None:
        self.report = report
        self._accepted_slots: set[tuple[str, str, int]] = set()
        self._completed: set[tuple[str, str]] = set()
        # per-OP record totals from the two event streams
        self._chunk_records: dict[str, int] = {}
        self._accept_records: dict[str, int] = {}
        self._chunk_events: dict[str, int] = {}

    # ----------------------------------------------------------- live checks
    def handle(self, event: TraceEvent) -> None:
        if isinstance(event, ChunkAccepted):
            key = (event.pid, event.task_id, event.index)
            if key in self._accepted_slots:
                self.report.add(
                    "double-accept",
                    event.pid,
                    event.time,
                    f"chunk {event.task_id}#{event.index} accepted twice",
                )
            self._accepted_slots.add(key)
            self._chunk_records[event.pid] = (
                self._chunk_records.get(event.pid, 0) + event.records
            )
            self._chunk_events[event.pid] = (
                self._chunk_events.get(event.pid, 0) + 1
            )
        elif isinstance(event, RecordsAccepted):
            self._accept_records[event.pid] = (
                self._accept_records.get(event.pid, 0) + event.count
            )
        elif isinstance(event, TaskCompleted):
            key = (event.pid, event.task_id)
            if key in self._completed:
                self.report.add(
                    "double-complete",
                    event.pid,
                    event.time,
                    f"task {event.task_id} completed twice",
                )
            self._completed.add(key)

    # -------------------------------------------------------- post-run audit
    def audit_cluster(self, cluster) -> None:
        """Audit an OsirisBFT deployment's output processes end to end.

        ``cluster`` is an :class:`~repro.runtime.deploy.OsirisCluster`;
        baseline clusters (no verifier quorum machinery) get only the
        live checks.  The counter-vs-trace cross-checks below need the
        event streams only this sink sees; the trace-free safety
        invariants (quorum endorsement, cross-OP agreement, output
        classification) are shared with the :mod:`repro.mc` explorer
        via :func:`repro.check.invariants.audit_safety`.
        """
        report = self.report
        for op in cluster.outputs:
            if op.records_accepted != self._accept_records.get(op.pid, 0):
                report.add(
                    "records-counter",
                    op.pid,
                    -1.0,
                    f"counter records_accepted={op.records_accepted} but "
                    f"trace sums {self._accept_records.get(op.pid, 0)}",
                )
            if op.chunks_accepted != self._chunk_events.get(op.pid, 0):
                report.add(
                    "chunks-counter",
                    op.pid,
                    -1.0,
                    f"counter chunks_accepted={op.chunks_accepted} but "
                    f"trace has {self._chunk_events.get(op.pid, 0)} "
                    f"ChunkAccepted events",
                )
            if self._chunk_records.get(op.pid, 0) != self._accept_records.get(
                op.pid, 0
            ):
                report.add(
                    "records-counter",
                    op.pid,
                    -1.0,
                    f"ChunkAccepted records sum "
                    f"{self._chunk_records.get(op.pid, 0)} != "
                    f"RecordsAccepted sum "
                    f"{self._accept_records.get(op.pid, 0)}",
                )

        audit_safety(cluster, report)
