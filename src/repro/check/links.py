"""Link-layer invariants, checked live from ``LinkTransfer`` events.

The NIC model (:mod:`repro.net.links`) computes each delivery with a
fixed recurrence over egress/ingress next-free times.  This sink
replays the same recurrence from the emitted trace — same float
operations, same order — so its egress shadow must reproduce the NIC
state *bit for bit*; any divergence means the trace and the model
disagree.  On top of the exact shadow it enforces three laws:

* **full-duplex** — a message's delivery can never precede the end of
  its egress serialization plus one ingress serialization (each side of
  the full-duplex NIC must spend ``size/bandwidth`` on it);
* **fifo-order** — per-(src,dst) delivery times are non-decreasing
  (reliable FIFO links, paper Sec 3);
* **delta-bound** — a message sent after GST is delivered no later than
  a shadow recurrence in which every post-GST propagation latency is
  replaced by Δ (and every pre-GST latency by the model's worst case,
  amplified by the neq factor).  All operations are monotone, so the
  shadow is a true upper bound and a single violation is a genuine
  break of the Δ assumption — e.g. a neq premium that Δ does not cover.

The post-run audit additionally cross-checks the neq-label conservation
(``neq=True`` transfers must equal the sends performed on behalf of
``neq_multicast``) and the :class:`~repro.net.links.ByteMeter` proration
spec on deterministic probe windows.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.obs.bus import Sink
from repro.obs.events import CATEGORY_NET, LinkTransfer, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.report import SanitizerReport
    from repro.net.links import ByteMeter, Network

__all__ = ["LinkInvariantSink"]


def _reference_mean_rate(
    bins: dict[int, int], bin_seconds: float, start: float, end: float
) -> float:
    """The proration spec, written independently of the implementation:
    every populated bin contributes its bytes scaled by the fraction of
    the bin the window covers."""
    total = 0.0
    for idx, count in bins.items():
        b0 = idx * bin_seconds
        overlap = min(end, b0 + bin_seconds) - max(start, b0)
        if overlap > 0:
            total += count * (overlap / bin_seconds)
    return total / (end - start)


class LinkInvariantSink(Sink):
    """Checks every :class:`~repro.obs.events.LinkTransfer` against the
    NIC recurrence; see the module docstring for the invariants."""

    categories = frozenset({CATEGORY_NET})

    def __init__(self, net: "Network", report: "SanitizerReport") -> None:
        self.net = net
        self.report = report
        # exact egress shadow: src -> egress next-free
        self._egress: dict[str, float] = {}
        # Δ-shadow state: dst -> ingress next-free upper bound,
        # (src, dst) -> fifo tail (actual and upper bound)
        self._ingress_ub: dict[str, float] = {}
        self._fifo: dict[tuple[str, str], float] = {}
        self._fifo_ub: dict[tuple[str, str], float] = {}
        self.neq_labeled = 0

    # ----------------------------------------------------------- live checks
    def handle(self, event: TraceEvent) -> None:
        if not isinstance(event, LinkTransfer):
            return
        report = self.report
        report.transfers_checked += 1
        net = self.net
        src, dst = event.pid, event.dst
        tx = event.nbytes / net.bandwidth

        # exact egress reconstruction (same ops/order as Network.send)
        eg_start = self._egress.get(src, 0.0)
        if event.time > eg_start:
            eg_start = event.time
        eg_end = eg_start + tx
        self._egress[src] = eg_end

        if event.deliver_at < eg_end + tx:
            report.add(
                "full-duplex",
                src,
                event.time,
                f"{src}->{dst} delivered at {event.deliver_at!r} before "
                f"egress end {eg_end!r} + tx {tx!r}",
            )

        key = (src, dst)
        last = self._fifo.get(key)
        if last is not None and event.deliver_at < last:
            report.add(
                "fifo-order",
                src,
                event.time,
                f"{src}->{dst} delivery {event.deliver_at!r} precedes "
                f"earlier delivery {last!r}",
            )
        self._fifo[key] = event.deliver_at

        # Δ-bound shadow: replace each latency by its guaranteed bound
        syn = net.synchrony
        post_gst = event.time >= syn.gst
        if post_gst:
            lat_max = syn.delta
        else:
            lat_max = syn.synchronous_bound(event.time)
            if event.neq:
                lat_max *= net.neq_latency_factor
        arrive_ub = eg_end + lat_max
        ing_ub = self._ingress_ub.get(dst, 0.0)
        if arrive_ub > ing_ub:
            ing_ub = arrive_ub
        ing_end_ub = ing_ub + tx
        self._ingress_ub[dst] = ing_end_ub
        deliver_ub = self._fifo_ub.get(key, 0.0)
        if ing_end_ub > deliver_ub:
            deliver_ub = ing_end_ub
        self._fifo_ub[key] = deliver_ub
        if post_gst and event.deliver_at > deliver_ub:
            report.add(
                "delta-bound",
                src,
                event.time,
                f"{src}->{dst} ({event.msg_type}, neq={event.neq}) "
                f"delivered at {event.deliver_at!r} > Δ-implied bound "
                f"{deliver_ub!r} (delta={syn.delta})",
            )

        if event.neq:
            self.neq_labeled += 1

    # -------------------------------------------------------- post-run audit
    def audit(self) -> None:
        """Compare trace-derived shadows against the live network state."""
        net = self.net
        report = self.report
        for pid in net.pids:
            nic = net.nic(pid)
            shadow = self._egress.get(pid, 0.0)
            if shadow != nic.egress_free:
                report.add(
                    "egress-shadow",
                    pid,
                    -1.0,
                    f"trace-reconstructed egress_free {shadow!r} != NIC "
                    f"state {nic.egress_free!r} (traced events do not "
                    f"account for the NIC's occupancy)",
                )
            self._audit_meter(pid, "egress", nic.egress_meter)
            self._audit_meter(pid, "ingress", nic.ingress_meter)
        if self.neq_labeled != net.neq_sends:
            report.add(
                "neq-label",
                "network",
                -1.0,
                f"{self.neq_labeled} transfers labeled neq=True but the "
                f"network performed {net.neq_sends} neq sends (a plain "
                f"send was mislabeled, or vice versa)",
            )

    def _audit_meter(self, pid: str, side: str, meter: "ByteMeter") -> None:
        """Probe ``mean_rate`` on deterministic windows against the
        proration spec; whole-bin summation fails the misaligned probes."""
        bins = meter._bins
        if not bins:
            return
        bs = meter.bin_seconds
        lo, hi = min(bins), max(bins)
        t0, t1 = lo * bs, (hi + 1) * bs
        probes = [
            (t0, t1),  # aligned, full coverage
            (t0 + 0.25 * bs, t1),  # cuts the first (populated) bin
            (t0, t1 - 0.25 * bs),  # cuts the last (populated) bin
            (t0 + 0.25 * bs, t0 + 0.75 * bs),  # inside one bin
        ]
        for start, end in probes:
            if end <= start:
                continue
            got = meter.mean_rate(start, end)
            want = _reference_mean_rate(bins, bs, start, end)
            if not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9):
                self.report.add(
                    "meter-proration",
                    pid,
                    -1.0,
                    f"{side} meter mean_rate({start!r}, {end!r}) = {got!r} "
                    f"but the prorated spec gives {want!r}",
                )
                return  # one probe failure per meter is enough signal
