"""CLI: ``python -m repro.check fuzz --budget N [--seed S] [--json]``.

Subcommands
-----------
``fuzz``
    Run a randomized sanitizer sweep (see :mod:`repro.check.fuzz`).
    Exits 1 if any point fails, printing the minimized reproducer —
    feed it back to ``point`` to replay.
``point``
    Replay one point descriptor (JSON, as printed by ``fuzz``) with the
    sanitizer attached and print the report.  Exits 1 on violations.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check.fuzz import run_fuzz
from repro.errors import BenchmarkError
from repro.exp.runner import run_point
from repro.exp.spec import Point


def _cmd_fuzz(args: argparse.Namespace) -> int:
    progress = None if args.json else lambda msg: print(msg, flush=True)
    outcome = run_fuzz(
        budget=args.budget,
        seed=args.seed,
        shrink=not args.no_shrink,
        progress=progress,
    )
    if args.json:
        json.dump(outcome.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(
            f"fuzz: {outcome.executed} points "
            f"({outcome.passed} ok, {outcome.inconclusive} inconclusive, "
            f"{len(outcome.failures)} failing) seed={outcome.seed}"
        )
        for failure in outcome.failures:
            print(f"\n{failure.status}: {sorted(failure.invariants)}")
            print(failure.detail)
            print("minimized reproducer (run with `python -m repro.check point`):")
            print(json.dumps(failure.shrunk.to_dict()))
    return 0 if outcome.ok else 1


def _cmd_point(args: argparse.Namespace) -> int:
    point = Point.from_dict(json.loads(args.descriptor))
    try:
        result = run_point(point, sanitize=True)
    except BenchmarkError as exc:
        print(f"inconclusive: {exc}")
        return 2
    report = result.extra.get("sanitizer_report")
    if report is None:
        print("no sanitizer report (run did not produce one)")
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Substrate sanitizer sweeps over the DES.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="randomized sanitizer sweep")
    fuzz.add_argument(
        "--budget", type=int, required=True, help="number of points to run"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="sweep seed")
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing points as drawn, without minimizing",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="machine-readable outcome"
    )
    fuzz.set_defaults(fn=_cmd_fuzz)

    point = sub.add_parser(
        "point", help="replay one point descriptor with the sanitizer"
    )
    point.add_argument(
        "descriptor", help="JSON point descriptor (as printed by fuzz)"
    )
    point.set_defaults(fn=_cmd_point)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
