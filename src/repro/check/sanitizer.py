"""The sanitizer bundle: one object wiring all checkers to a deployment.

Usage (the bench runners do this for you via ``sanitize=True``)::

    cluster = build_osiris_cluster(app, workload, sanitize=True)
    ...  # run to completion
    report = cluster.sanitizer.audit(cluster)
    assert report.ok, report.summary()

The sinks are purely observational: they never touch the RNG, never
schedule events and never emit, so a sanitized run produces a trace
byte-identical to a bare one (pinned by the golden-trace test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.check.conservation import ConservationSink
from repro.check.cpu import CpuInvariantSink
from repro.check.links import LinkInvariantSink
from repro.check.report import SanitizerReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.links import Network
    from repro.obs.bus import EventBus

__all__ = ["Sanitizer"]


class Sanitizer:
    """Bundles the link/CPU/conservation checkers over one network."""

    def __init__(self, net: "Network", report: Optional[SanitizerReport] = None) -> None:
        self.net = net
        self.report = report if report is not None else SanitizerReport()
        self.links = LinkInvariantSink(net, self.report)
        self.cpu = CpuInvariantSink(self.report)
        self.conservation = ConservationSink(self.report)
        self._sinks = (self.links, self.cpu, self.conservation)
        self._audited = False

    # ------------------------------------------------------------------ wiring
    def attach(self, bus: "EventBus") -> None:
        """Subscribe every checker.  Attach before the first event fires —
        the shadows must see the run from birth to be exact."""
        for sink in self._sinks:
            bus.attach(sink)

    def detach(self, bus: "EventBus") -> None:
        for sink in self._sinks:
            bus.detach(sink)

    # ------------------------------------------------------------------- audit
    def audit(self, cluster=None) -> SanitizerReport:
        """Run the post-run auditors and return the accumulated report.

        ``cluster`` enables the deployment-level conservation audit when
        it is an OsirisBFT deployment (duck-typed on ``coordinators`` +
        ``outputs``); baselines and bare networks get the link and CPU
        audits only.  Idempotent: a second call returns the same report
        without re-running the auditors (they are not re-entrant — the
        CPU sink truncates its recorded spans in place).
        """
        if self._audited:
            return self.report
        self._audited = True
        self.links.audit()
        drained = self.net.sim.drained()
        for pid in self.net.pids:
            proc = self.net.process(pid)
            for bank in (getattr(proc, "cpu", None), getattr(proc, "ctrl", None)):
                if bank is not None and hasattr(bank, "busy_seconds"):
                    self.cpu.audit_bank(pid, bank, drained=drained)
        if (
            cluster is not None
            and getattr(cluster, "coordinators", None)
            and getattr(cluster, "outputs", None)
        ):
            self.conservation.audit_cluster(cluster)
        return self.report
