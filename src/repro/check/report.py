"""Violation vocabulary shared by every checker."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Violation", "SanitizerReport"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``invariant`` is a stable machine-readable name ("fifo-order",
    "delta-bound", "cpu-conservation", ...); ``pid`` the process (or
    component) it was observed at; ``time`` the simulated time of the
    offending event (-1.0 for post-run audit findings with no single
    event); ``detail`` a human-readable explanation with the numbers.
    """

    invariant: str
    pid: str
    time: float
    detail: str

    def __str__(self) -> str:
        at = f"t={self.time:.6g}" if self.time >= 0 else "post-run"
        return f"[{self.invariant}] {self.pid} {at}: {self.detail}"


@dataclass
class SanitizerReport:
    """Accumulated findings of one sanitized run."""

    violations: list[Violation] = field(default_factory=list)
    #: LinkTransfer events checked.
    transfers_checked: int = 0
    #: CpuSpan events checked.
    spans_checked: int = 0
    #: CPU banks audited post-run.
    banks_audited: int = 0
    #: Tasks whose committed output was recomputed and classified.
    outputs_recomputed: int = 0

    #: Cap on stored violations: a systematically broken substrate would
    #: otherwise flood memory with millions of identical findings.
    MAX_VIOLATIONS = 200

    def add(self, invariant: str, pid: str, time: float, detail: str) -> None:
        if len(self.violations) < self.MAX_VIOLATIONS:
            self.violations.append(Violation(invariant, pid, time, detail))

    @property
    def ok(self) -> bool:
        return not self.violations

    def invariants_hit(self) -> set[str]:
        """Distinct invariant names that fired."""
        return {v.invariant for v in self.violations}

    def summary(self) -> str:
        head = (
            f"sanitizer: {len(self.violations)} violation(s); "
            f"{self.transfers_checked} transfers, "
            f"{self.spans_checked} cpu spans, "
            f"{self.banks_audited} banks, "
            f"{self.outputs_recomputed} outputs recomputed"
        )
        if self.ok:
            return head
        lines = [head]
        lines.extend(f"  {v}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)
