"""Substrate sanitizer: runtime invariant checks over the DES substrate.

OsirisBFT's pitch is correctness-by-checking instead of replication
(PAPER.md) — this package applies the same philosophy to the simulator
itself.  It is "ASan for the substrate": a set of conservation laws the
DES kernel, NIC/link model and CPU banks must obey on *every* run,
enforced by observability-bus sinks (purely observational — no RNG, no
scheduling, so sanitized runs stay bit-identical to bare ones) plus
post-run auditors that compare trace-derived shadows against the live
component state.

Invariants (see DESIGN.md "Substrate sanitizer" for the catalogue):

* **Link** — NIC full-duplex serialization, per-(src,dst) FIFO delivery,
  post-GST Δ-bound compliance including the neq-multicast premium,
  bit-exact egress shadow reconstruction, neq labeling conservation,
  and the ByteMeter proration spec.
* **CPU** — per-core span non-overlap, core indices within ``cores``,
  and the occupancy conservation law ``busy_seconds == completed +
  consumed-by-cancelled`` once a bank drains.
* **Conservation** — every committed record delivered exactly once
  (``classify_output == NONE`` against a post-run recompute), no
  committed equivocation within a slot or across output processes, and
  trace/counter agreement at the OPs.

Entry points: ``Sanitizer`` (attach to a deployment via
``build_osiris_cluster(..., sanitize=True)`` or the bench scenario
runners) and ``python -m repro.check fuzz`` (randomized sweeps with
failing-point shrinking).
"""

from repro.check.conservation import ConservationSink
from repro.check.cpu import CpuInvariantSink
from repro.check.fuzz import FuzzFailure, FuzzOutcome, run_fuzz
from repro.check.links import LinkInvariantSink
from repro.check.report import SanitizerReport, Violation
from repro.check.sanitizer import Sanitizer

__all__ = [
    "ConservationSink",
    "CpuInvariantSink",
    "FuzzFailure",
    "FuzzOutcome",
    "LinkInvariantSink",
    "Sanitizer",
    "SanitizerReport",
    "Violation",
    "run_fuzz",
]
