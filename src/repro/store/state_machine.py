"""Application state-machine interface for the multiversioned data store.

The paper models applications as ⟨U, A⟩ pairs over a global state (Sec
4.1); state management uses multiversioning so concurrent computations
read "well-defined deterministic snapshots" (Sec 5).  The store layer is
generic: applications provide a :class:`VersionedState` whose ``apply``
implements U and whose ``snapshot`` returns a read view pinned to a
logical timestamp.  Versioning strategy (copy-on-write, delta logs...) is
the application's choice; :class:`KVState` is the reference
implementation used by tests and the write-only Fig 5a workload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Any

from repro.errors import StoreError

__all__ = ["VersionedState", "KVState"]


class VersionedState(ABC):
    """State machine with timestamped versions and snapshot reads."""

    @abstractmethod
    def apply(self, ts: int, payload: Any) -> float:
        """Apply one state update (U), advancing to version ``ts``.

        Returns the simulated CPU cost of the update in seconds; the
        hosting process charges it to its CPU bank.  ``ts`` values arrive
        strictly increasing (the store enforces ordering).
        """

    @abstractmethod
    def snapshot(self, ts: int) -> Any:
        """Return a read view of the state as of version ``ts``.

        The view must be stable: later ``apply`` calls must not change
        what the view observes (multiversion isolation).
        """


class KVState(VersionedState):
    """Multiversioned key-value map: the classic learner-style store.

    Every key keeps its full version history as parallel (ts, value)
    lists; a snapshot resolves reads by binary search.  Updates are
    ``("put", key, value)`` or ``("del", key)`` tuples, or a list of such
    tuples for batched writes.
    """

    _TOMBSTONE = object()

    def __init__(self, update_cost: float = 2e-6) -> None:
        self._history: dict[Any, tuple[list[int], list[Any]]] = {}
        self._version = -1
        self.update_cost = update_cost
        self.updates_applied = 0

    @property
    def version(self) -> int:
        """Highest applied timestamp (-1 when pristine)."""
        return self._version

    def apply(self, ts: int, payload: Any) -> float:
        if ts <= self._version:
            raise StoreError(
                f"non-monotonic apply: ts={ts} <= version={self._version}"
            )
        ops = payload if isinstance(payload, list) else [payload]
        for op in ops:
            if op[0] == "put":
                _, key, value = op
                tss, vals = self._history.setdefault(key, ([], []))
                tss.append(ts)
                vals.append(value)
            elif op[0] == "del":
                _, key = op
                tss, vals = self._history.setdefault(key, ([], []))
                tss.append(ts)
                vals.append(self._TOMBSTONE)
            else:
                raise StoreError(f"unknown KV op {op[0]!r}")
        self._version = ts
        self.updates_applied += len(ops)
        return self.update_cost * len(ops)

    def snapshot(self, ts: int) -> "KVSnapshot":
        return KVSnapshot(self, ts)

    def compact(self, min_ts: int) -> int:
        """Drop key versions older than ``min_ts`` (snapshots at or above
        ``min_ts`` stay exact).  Returns versions discarded."""
        dropped = 0
        for tss, vals in self._history.values():
            idx = bisect_right(tss, min_ts) - 1
            if idx > 0:
                del tss[:idx]
                del vals[:idx]
                dropped += idx
        return dropped

    def version_count(self) -> int:
        """Total retained key versions."""
        return sum(len(tss) for tss, _ in self._history.values())

    def _get_at(self, key: Any, ts: int) -> Any:
        entry = self._history.get(key)
        if entry is None:
            return None
        tss, vals = entry
        idx = bisect_right(tss, ts) - 1
        if idx < 0:
            return None
        value = vals[idx]
        return None if value is self._TOMBSTONE else value


class KVSnapshot:
    """Read view of a :class:`KVState` pinned at a timestamp."""

    __slots__ = ("_state", "ts")

    def __init__(self, state: KVState, ts: int) -> None:
        self._state = state
        self.ts = ts

    def get(self, key: Any) -> Any:
        """Value of ``key`` as of this snapshot's timestamp (None if absent)."""
        return self._state._get_at(key, self.ts)

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None
