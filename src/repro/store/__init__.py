"""Multiversioned state management (the paper's learner-style data store).

All worker processes colocate a full replica of the application state
(Sec 2, "State Management"); VP_CO linearizes updates and broadcasts them,
and each replica applies them in timestamp order via
:class:`MultiVersionStore`.
"""

from repro.store.mvstore import MultiVersionStore
from repro.store.state_machine import KVState, VersionedState

__all__ = ["KVState", "MultiVersionStore", "VersionedState"]
