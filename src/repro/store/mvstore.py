"""Multiversioned store replica with in-order update application.

Every worker process (executor or verifier) hosts one
:class:`MultiVersionStore` wrapping the application's
:class:`~repro.store.state_machine.VersionedState`.  The store enforces
the ordering discipline from Lemma 6.1: state updates carry the
monotonically increasing timestamps assigned by VP_CO's consensus, and a
replica receiving timestamp ``k`` before ``k-1`` "simply waits to receive
tasks in order before executing".  Computation tasks pinned to timestamp
``k`` register continuations that fire once version ``k`` is locally
applied ("a correct process receiving f+1 correctly timestamped task
assignments before the corresponding state update simply applies the
state update before performing the computation").
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import StoreError
from repro.store.state_machine import VersionedState

__all__ = ["MultiVersionStore"]


class MultiVersionStore:
    """Orders buffered state updates and gates snapshot reads.

    Parameters
    ----------
    state:
        The application state machine.
    base_ts:
        Timestamp of the initial state; updates must start at
        ``base_ts + 1``.
    """

    def __init__(self, state: VersionedState, base_ts: int = 0) -> None:
        self.state = state
        self._applied_ts = base_ts
        self._pending: dict[int, Any] = {}
        self._waiters: dict[int, list[Callable[[], None]]] = {}
        self.total_apply_cost = 0.0
        self.duplicate_updates = 0

    # ------------------------------------------------------------- ingestion
    @property
    def applied_ts(self) -> int:
        """Highest contiguously applied update timestamp."""
        return self._applied_ts

    @property
    def pending_count(self) -> int:
        """Updates buffered out-of-order, awaiting their predecessors."""
        return len(self._pending)

    def submit(self, ts: int, payload: Any) -> float:
        """Buffer an update and apply every now-contiguous one.

        Returns the CPU cost incurred by the applies triggered by this
        call (the hosting process charges it to its CPU bank).
        Duplicate timestamps are counted and ignored — VP_CO members each
        broadcast every update, so replicas see up to 2f+1 copies.
        """
        if ts <= self._applied_ts or ts in self._pending:
            self.duplicate_updates += 1
            return 0.0
        self._pending[ts] = payload
        cost = 0.0
        while self._applied_ts + 1 in self._pending:
            nxt = self._applied_ts + 1
            body = self._pending.pop(nxt)
            cost += self.state.apply(nxt, body)
            self._applied_ts = nxt
            self._wake(nxt)
        self.total_apply_cost += cost
        return cost

    # ---------------------------------------------------------------- reads
    def ready(self, ts: int) -> bool:
        """Whether version ``ts`` is locally visible."""
        return ts <= self._applied_ts

    def view(self, ts: int) -> Any:
        """Snapshot pinned at ``ts``; requires :meth:`ready`."""
        if not self.ready(ts):
            raise StoreError(
                f"version {ts} not applied yet (at {self._applied_ts})"
            )
        return self.state.snapshot(ts)

    def when_ready(self, ts: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` as soon as version ``ts`` is visible.

        Fires synchronously if already visible — callers must not rely on
        deferred execution.
        """
        if self.ready(ts):
            callback()
        else:
            self._waiters.setdefault(ts, []).append(callback)

    def _wake(self, ts: int) -> None:
        for cb in self._waiters.pop(ts, []):
            cb()
