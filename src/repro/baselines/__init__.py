"""Comparison systems: ZFT (no fault tolerance), RCP (replicated
computation), and Kauri/Basil state-store cost models."""

from repro.baselines.rcp import RcpCluster, build_rcp_cluster, rcp_parallel_tasks
from repro.baselines.store_models import (
    basil_updates_per_sec,
    kauri_updates_per_sec,
)
from repro.baselines.zft import ZftCluster, build_zft_cluster

__all__ = [
    "RcpCluster",
    "ZftCluster",
    "basil_updates_per_sec",
    "build_rcp_cluster",
    "build_zft_cluster",
    "kauri_updates_per_sec",
    "rcp_parallel_tasks",
]
