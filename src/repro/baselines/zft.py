"""ZFT — the zero-fault-tolerance baseline (Sec 7, "Baselines").

"IP sends tasks to a coordinator worker in WP, which distributes the
tasks to other workers who execute A and simply forward the results."
No signatures, no replication, no verification: the performance ceiling
every BFT system is measured against.  The coordinator participates in
execution too, so computation scalability is |WP| (Table 1).

Roles are :class:`~repro.runtime.core.ProtocolCore` state machines; the
builder binds each one to the DES via
:class:`~repro.runtime.des.DesHost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.api import VerifiableApplication
from repro.core.metrics import MetricsHub
from repro.core.tasks import Chunk, Task, chunk_records
from repro.errors import ProtocolError
from repro.net.links import DEFAULT_BANDWIDTH, Network
from repro.net.message import Message
from repro.net.partial_synchrony import SynchronyModel
from repro.obs.bus import EventBus
from repro.obs.events import (
    CATEGORY_TASK,
    RecordsAccepted,
    TaskCompleted,
    TaskSubmitted,
)
from repro.runtime.core import ProtocolCore
from repro.runtime.des import DesHost
from repro.sim.kernel import Simulator
from repro.store.mvstore import MultiVersionStore

__all__ = [
    "ZftSubmit",
    "ZftUpdate",
    "ZftAssign",
    "ZftRecords",
    "ZftWorker",
    "ZftCoordinator",
    "ZftInput",
    "ZftOutput",
    "ZftCluster",
    "build_zft_cluster",
]


@dataclass
class ZftSubmit(Message):
    task: Optional[Task] = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes


@dataclass
class ZftUpdate(Message):
    task: Optional[Task] = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes


@dataclass
class ZftAssign(Message):
    task: Optional[Task] = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes


@dataclass
class ZftRecords(Message):
    chunk: Optional[Chunk] = None

    def payload_bytes(self) -> int:
        return self.chunk.payload_bytes()


def _noop() -> None:
    return None


class ZftWorker(ProtocolCore):
    """Executes tasks on its state replica and forwards records to OP."""

    def __init__(self, pid, app, output_pids, chunk_bytes):
        super().__init__(pid)
        self.app = app
        self.output_pids = output_pids
        self.chunk_bytes = chunk_bytes
        self.store = MultiVersionStore(app.initial_state())
        self.tasks_executed = 0

    def on_ZftUpdate(self, msg: ZftUpdate) -> None:
        cost = self.store.submit(msg.task.timestamp, msg.task.update_payload)
        if cost > 0:
            self.run_job(cost, _noop)

    def on_ZftAssign(self, msg: ZftAssign) -> None:
        task = msg.task
        self.store.when_ready(task.timestamp, lambda: self._execute(task))

    def _execute(self, task: Task) -> None:
        if self.crashed:
            return
        view = self.store.view(task.timestamp)
        result = self.app.compute(view, task)
        self.tasks_executed += 1
        chunks = chunk_records(
            task.task_id, list(result.records), self.chunk_bytes
        )
        k = len(chunks)
        self.run_raw_job(
            result.cost,
            _noop,
            milestones=tuple(
                (result.cost * (i + 1) / k, self._emit, (chunk,))
                for i, chunk in enumerate(chunks)
            ),
        )

    def _emit(self, chunk: Chunk) -> None:
        if self.crashed:
            return
        for op in self.output_pids:
            self.send(op, ZftRecords(chunk=chunk))


class ZftCoordinator(ZftWorker):
    """Linearizes tasks and distributes them round-robin (itself included)."""

    def __init__(self, *args, worker_pids=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.worker_pids = list(worker_pids)
        self._ts = 0
        self._rr = 0

    def on_ZftSubmit(self, msg: ZftSubmit) -> None:
        task = msg.task
        if not self.app.valid_task(task):
            return
        if task.opcode.has_update:
            self._ts += 1
        stamped = task.with_timestamp(self._ts)
        if task.opcode.has_update:
            for pid in self.worker_pids:
                if pid == self.pid:
                    self.on_ZftUpdate(ZftUpdate(task=stamped))
                else:
                    self.send(pid, ZftUpdate(task=stamped))
        if task.opcode.has_compute:
            target = self.worker_pids[self._rr % len(self.worker_pids)]
            self._rr += 1
            if target == self.pid:
                self.on_ZftAssign(ZftAssign(task=stamped))
            else:
                self.send(target, ZftAssign(task=stamped))


class ZftInput(ProtocolCore):
    def __init__(self, pid, coordinator_pid, workload):
        super().__init__(pid)
        self.coordinator_pid = coordinator_pid
        self._workload = iter(workload)

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        try:
            at, task = next(self._workload)
        except StopIteration:
            return
        self.schedule(max(0.0, at - self.now), self._fire, task)

    def _fire(self, task: Task) -> None:
        if not self.crashed:
            if self.wants(CATEGORY_TASK):
                self.emit(
                    TaskSubmitted(
                        time=self.now, pid=self.pid, task_id=task.task_id
                    )
                )
            self.send(self.coordinator_pid, ZftSubmit(task=task))
        self._next()


class ZftOutput(ProtocolCore):
    def __init__(self, pid):
        super().__init__(pid)
        self.records_accepted = 0

    def on_ZftRecords(self, msg: ZftRecords) -> None:
        chunk = msg.chunk
        self.records_accepted += len(chunk.records)
        if self.wants(CATEGORY_TASK):
            self.emit(
                RecordsAccepted(
                    time=self.now,
                    pid=self.pid,
                    task_id=chunk.task_id,
                    count=len(chunk.records),
                )
            )
            if chunk.final:
                self.emit(
                    TaskCompleted(
                        time=self.now, pid=self.pid, task_id=chunk.task_id
                    )
                )


@dataclass
class ZftCluster:
    """Handles to a ZFT deployment."""

    sim: Simulator
    net: Network
    metrics: MetricsHub
    bus: EventBus
    coordinator: ZftCoordinator
    workers: list[ZftWorker]
    inputs: list[ZftInput]
    outputs: list[ZftOutput]

    def start(self) -> None:
        for ip in self.inputs:
            ip.start()

    def run(self, until: float) -> None:
        self.sim.run(until=until)


def build_zft_cluster(
    app: VerifiableApplication,
    workload: Optional[Iterator[tuple[float, Task]]] = None,
    n_workers: int = 8,
    seed: int = 0,
    synchrony: Optional[SynchronyModel] = None,
    bandwidth: float = DEFAULT_BANDWIDTH,
    chunk_bytes: int = 1_000_000,
    cores_per_node: int = 7,
) -> ZftCluster:
    """Wire a ZFT deployment: 1 coordinator + (n-1) plain workers, all
    executing."""
    if n_workers < 1:
        raise ProtocolError("ZFT needs at least one worker")
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=synchrony or SynchronyModel(), bandwidth=bandwidth)
    metrics = MetricsHub()
    sim.bus.attach(metrics)

    def deploy(core, cores):
        net.register(DesHost(sim, net, core, cores=cores))
        return core

    worker_pids = [f"w{i}" for i in range(n_workers)]
    coordinator = ZftCoordinator(
        "w0",
        app,
        ("op0",),
        chunk_bytes,
        worker_pids=worker_pids,
    )
    deploy(coordinator, cores_per_node)
    workers: list[ZftWorker] = [coordinator]
    for pid in worker_pids[1:]:
        w = ZftWorker(pid, app, ("op0",), chunk_bytes)
        deploy(w, cores_per_node)
        workers.append(w)
    ip = ZftInput(
        "ip0", "w0", workload if workload is not None else iter(())
    )
    deploy(ip, 2)
    op = ZftOutput("op0")
    deploy(op, 2)
    return ZftCluster(
        sim=sim,
        net=net,
        metrics=metrics,
        bus=sim.bus,
        coordinator=coordinator,
        workers=workers,
        inputs=[ip],
        outputs=[op],
    )
