"""Kauri and Basil state-update cost models (Fig 5a comparators).

Fig 5a compares write-only state-update throughput of the OsirisBFT
data store against Kauri [59] (tree-based BFT consensus over blocks)
and Basil [70] (BFT transactional key-value store).  The figure's role
in the paper is a sanity check — the fully-replicated store is not the
bottleneck, and it beats both because it "does not incur overheads from
transactional safety (Basil) or hashing blocks (Kauri), while also
leveraging RDMA".

Neither system's full implementation is the paper's contribution, so we
model them as calibrated analytic throughput curves anchored to the
published evaluations (Kauri: thousands of tx/s growing with pipelining
until tree depth costs bite; Basil: transactional OCC whose per-write
crypto/vote cost grows with replica count).  The OsirisBFT store itself
is *measured* on the DES (see ``benchmarks/test_fig5_scalability.py``).
"""

from __future__ import annotations

import math

from repro.errors import BenchmarkError

__all__ = ["kauri_updates_per_sec", "basil_updates_per_sec"]


def kauri_updates_per_sec(
    n: int,
    f: int = 1,
    block_size: int = 128,
    hash_cost: float = 200e-6,
    level_latency: float = 0.9e-3,
    fanout: int = 8,
    pipeline_stages: int = 3,
) -> float:
    """Kauri-style throughput: pipelined tree dissemination of blocks.

    A block of ``block_size`` updates is hashed (``hash_cost`` per
    update) and disseminated down a fanout-``fanout`` tree of depth
    ⌈log_fanout(n)⌉; with ``pipeline_stages``-deep pipelining the block
    interval is the max of hashing time and per-level latency, so
    throughput grows then flattens as depth adds stages — the gentle
    upward curve of the paper's Fig 5a.
    """
    if n < 1:
        raise BenchmarkError("n must be >= 1")
    depth = max(1, math.ceil(math.log(max(n, 2), fanout)))
    hash_time = block_size * hash_cost
    stage_time = level_latency * depth / pipeline_stages
    interval = max(hash_time, stage_time)
    # dissemination parallelism improves slightly with cluster size until
    # the tree deepens
    efficiency = min(1.0, 0.55 + 0.06 * math.log2(max(n, 2)))
    return block_size / interval * efficiency


def basil_updates_per_sec(
    n: int,
    f: int = 1,
    base_crypto: float = 70e-6,
    per_replica_crypto: float = 21e-6,
    vote_latency: float = 0.4e-3,
    parallel_clients: int = 12,
) -> float:
    """Basil-style throughput: OCC transactions with per-write prepare/
    commit vote rounds.

    Every write pays signature work proportional to the replica count it
    must convince (5f+1-style quorums), so per-write latency grows with
    ``n`` and throughput *declines* as the cluster grows — the paper's
    Fig 5a shows Basil below Kauri and falling off.
    """
    if n < 1:
        raise BenchmarkError("n must be >= 1")
    replicas = min(n, 5 * f + 1 + n // 8)
    per_write = base_crypto + per_replica_crypto * replicas + vote_latency
    return parallel_clients / per_write / 10.0
