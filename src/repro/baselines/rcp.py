"""RCP — the replicated-computation baseline (Sec 7, "Baselines").

The RSM philosophy applied to task-parallel processing: WP is divided
into sub-clusters of 2f+1 workers; a designated coordinator sub-cluster
WP_CO linearizes tasks (same consensus algorithm as OsirisBFT, for a
fair comparison) and distributes each computation task to one
sub-cluster, where **every member executes it**.  OP accepts output
only with f+1 matching copies from the same sub-cluster.

Computation scalability is therefore ⌊n/(2f+1)⌋ (Fig 2a) — the
bottleneck OsirisBFT removes.

Roles are :class:`~repro.runtime.core.ProtocolCore` state machines; the
builder binds each one to the DES via
:class:`~repro.runtime.des.DesHost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.consensus.fast_robust import ConsensusClient, ConsensusMember
from repro.core.api import VerifiableApplication
from repro.core.metrics import MetricsHub
from repro.core.tasks import Chunk, Task, chunk_records
from repro.crypto.digest import digest
from repro.crypto.signatures import KeyRegistry, Signer, sign_cost
from repro.errors import ProtocolError
from repro.net.links import DEFAULT_BANDWIDTH, Network
from repro.net.message import Message
from repro.net.partial_synchrony import SynchronyModel
from repro.net.topology import SubCluster
from repro.obs.bus import EventBus
from repro.obs.events import (
    CATEGORY_TASK,
    RecordsAccepted,
    TaskCompleted,
    TaskSubmitted,
)
from repro.runtime.core import ProtocolCore
from repro.runtime.des import DesHost
from repro.sim.kernel import Simulator
from repro.store.mvstore import MultiVersionStore

__all__ = [
    "RcpUpdate",
    "RcpAssign",
    "RcpRecords",
    "RcpDigest",
    "RcpWorker",
    "RcpCoordinator",
    "RcpInput",
    "RcpOutput",
    "RcpCluster",
    "build_rcp_cluster",
    "rcp_parallel_tasks",
]


def rcp_parallel_tasks(n: int, f: int) -> int:
    """Fig 2a's analytic limit: parallel tasks under RSM replication."""
    if f == 0:
        return n
    return n // (2 * f + 1)


@dataclass
class RcpUpdate(Message):
    task: Optional[Task] = None
    sig: object = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes + 64

    def signed_payload(self) -> list:
        return ["rcp-update", self.task.task_id, self.task.timestamp]


@dataclass
class RcpAssign(Message):
    task: Optional[Task] = None
    cluster_index: int = 0
    sig: object = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes + 96

    def signed_payload(self) -> list:
        return [
            "rcp-assign",
            self.task.task_id,
            self.task.timestamp,
            self.cluster_index,
        ]


@dataclass
class RcpRecords(Message):
    cluster_index: int = 0
    chunk: Optional[Chunk] = None
    digest_bytes: bytes = b""

    def payload_bytes(self) -> int:
        return self.chunk.payload_bytes() + 96


@dataclass
class RcpDigest(Message):
    cluster_index: int = 0
    task_id: str = ""
    index: int = 0
    final: bool = False
    digest_bytes: bytes = b""

    def payload_bytes(self) -> int:
        return 96


def _noop() -> None:
    return None


class RcpWorker(ProtocolCore):
    """A sub-cluster member: replicated state + replicated execution."""

    def __init__(
        self,
        pid,
        registry: KeyRegistry,
        signer: Signer,
        app,
        cluster: SubCluster,
        coordinator: SubCluster,
        output_pids,
        chunk_bytes,
    ):
        super().__init__(pid)
        self.registry = registry
        self.signer = signer
        self.app = app
        self.cluster = cluster
        self.coordinator_cluster = coordinator
        self.output_pids = output_pids
        self.chunk_bytes = chunk_bytes
        self.store = MultiVersionStore(app.initial_state())
        self._update_votes: dict[tuple[str, int], set[str]] = {}
        self._assign_votes: dict[str, set[str]] = {}
        self._started: set[str] = set()
        self.tasks_executed = 0

    @property
    def is_primary(self) -> bool:
        """The member that ships full record data to OP (others send
        digests) — same communication optimization as OsirisBFT's leader,
        for a fair comparison."""
        return self.pid == self.cluster.members[0]

    # ---------------------------------------------------------------- state
    def on_RcpUpdate(self, msg: RcpUpdate) -> None:
        if msg.sender not in self.coordinator_cluster.members:
            return
        if msg.sig is None or not self.registry.verify(
            msg.signed_payload(), msg.sig
        ):
            return
        key = (msg.task.task_id, msg.task.timestamp)
        votes = self._update_votes.setdefault(key, set())
        votes.add(msg.sender)
        if len(votes) == self.coordinator_cluster.quorum:
            cost = self.store.submit(
                msg.task.timestamp, msg.task.update_payload
            )
            if cost > 0:
                self.run_job(cost, _noop)

    def apply_update_locally(self, task: Task) -> None:
        cost = self.store.submit(task.timestamp, task.update_payload)
        if cost > 0:
            self.run_job(cost, _noop)

    # -------------------------------------------------------------- compute
    def on_RcpAssign(self, msg: RcpAssign) -> None:
        if msg.cluster_index != self.cluster.index:
            return
        if msg.sender not in self.coordinator_cluster.members:
            return
        if msg.sig is None or not self.registry.verify(
            msg.signed_payload(), msg.sig
        ):
            return
        votes = self._assign_votes.setdefault(msg.task.task_id, set())
        votes.add(msg.sender)
        if (
            len(votes) >= self.coordinator_cluster.quorum
            and msg.task.task_id not in self._started
        ):
            self._started.add(msg.task.task_id)
            task = msg.task
            self.store.when_ready(task.timestamp, lambda: self._execute(task))

    def start_task(self, task: Task) -> None:
        """Local dispatch used by coordinator members for their own
        cluster's assignments."""
        if task.task_id in self._started:
            return
        self._started.add(task.task_id)
        self.store.when_ready(task.timestamp, lambda: self._execute(task))

    def _execute(self, task: Task) -> None:
        if self.crashed:
            return
        view = self.store.view(task.timestamp)
        result = self.app.compute(view, task)
        self.tasks_executed += 1
        chunks = chunk_records(
            task.task_id, list(result.records), self.chunk_bytes
        )
        k = len(chunks)
        self.run_raw_job(
            result.cost,
            _noop,
            milestones=tuple(
                (result.cost * (i + 1) / k, self._emit, (chunk,))
                for i, chunk in enumerate(chunks)
            ),
        )

    def _emit(self, chunk: Chunk) -> None:
        if self.crashed:
            return
        sigma = digest(chunk)
        for op in self.output_pids:
            if self.is_primary:
                self.send(
                    op,
                    RcpRecords(
                        cluster_index=self.cluster.index,
                        chunk=chunk,
                        digest_bytes=sigma,
                    ),
                )
            else:
                self.send(
                    op,
                    RcpDigest(
                        cluster_index=self.cluster.index,
                        task_id=chunk.task_id,
                        index=chunk.index,
                        final=chunk.final,
                        digest_bytes=sigma,
                    ),
                )


class RcpCoordinator(RcpWorker):
    """WP_CO member: consensus + assignment (and execution, when its own
    sub-cluster is the assignment target)."""

    def __init__(self, *args, clusters: list[SubCluster], **kwargs):
        super().__init__(*args, **kwargs)
        self.clusters = clusters
        self._ts = 0
        self._rr = 0
        self.consensus = ConsensusMember(
            host=self,
            registry=self.registry,
            signer=self.signer,
            group=self.coordinator_cluster,
            on_commit=self._on_commit,
            validate=lambda payload: isinstance(payload, Task)
            and self.app.valid_task(payload),
        )

    def _on_commit(self, seq: int, batch: tuple) -> None:
        for _rid, task, _size in batch:
            if task.opcode.has_update:
                self._ts += 1
            stamped = task.with_timestamp(self._ts)
            if task.opcode.has_update:
                msg = RcpUpdate(task=stamped)
                msg.sig = self.signer.sign(msg.signed_payload())
                targets = [
                    m
                    for c in self.clusters
                    for m in c.members
                    if m not in self.coordinator_cluster.members
                ]
                self.apply_update_locally(stamped)
                if targets:
                    self.run_job(
                        sign_cost(1),
                        lambda m=msg, t=tuple(targets): self.multicast(t, m),
                    )
            if task.opcode.has_compute:
                target = self.clusters[self._rr % len(self.clusters)]
                self._rr += 1
                if target.index == self.cluster.index:
                    self.start_task(stamped)
                else:
                    msg = RcpAssign(task=stamped, cluster_index=target.index)
                    msg.sig = self.signer.sign(msg.signed_payload())
                    self.run_job(
                        sign_cost(1),
                        lambda m=msg, t=target.members: self.multicast(t, m),
                    )


@dataclass
class _OutSlot:
    endorsers: dict[bytes, set[str]] = field(default_factory=dict)
    data: dict[bytes, Chunk] = field(default_factory=dict)
    accepted: bool = False


class RcpOutput(ProtocolCore):
    """Accepts a chunk once f+1 members of one sub-cluster agree on it."""

    def __init__(self, pid, clusters: list[SubCluster]):
        super().__init__(pid)
        self.clusters = {c.index: c for c in clusters}
        self._slots: dict[tuple[str, int], _OutSlot] = {}
        self._final: dict[str, int] = {}
        self._accepted: dict[str, set[int]] = {}
        self._completed: set[str] = set()
        self.records_accepted = 0

    def _note(self, msg, task_id, index, final, sigma, chunk=None):
        cluster = self.clusters.get(msg.cluster_index)
        if cluster is None or msg.sender not in cluster.members:
            return
        if task_id in self._completed:
            return
        slot = self._slots.setdefault((task_id, index), _OutSlot())
        if slot.accepted:
            return
        slot.endorsers.setdefault(sigma, set()).add(msg.sender)
        if chunk is not None:
            slot.data[digest(chunk)] = chunk
        if final:
            self._final[task_id] = index
        for sig, who in slot.endorsers.items():
            if len(who) >= cluster.quorum and sig in slot.data:
                slot.accepted = True
                accepted_chunk = slot.data[sig]
                self.records_accepted += len(accepted_chunk.records)
                if self.wants(CATEGORY_TASK):
                    self.emit(
                        RecordsAccepted(
                            time=self.now,
                            pid=self.pid,
                            task_id=task_id,
                            count=len(accepted_chunk.records),
                        )
                    )
                done = self._accepted.setdefault(task_id, set())
                done.add(index)
                fin = self._final.get(task_id)
                if fin is not None and all(
                    i in done for i in range(fin + 1)
                ):
                    self._completed.add(task_id)
                    if self.wants(CATEGORY_TASK):
                        self.emit(
                            TaskCompleted(
                                time=self.now,
                                pid=self.pid,
                                task_id=task_id,
                            )
                        )
                return

    def on_RcpRecords(self, msg: RcpRecords) -> None:
        if msg.chunk is None:
            return
        self._note(
            msg,
            msg.chunk.task_id,
            msg.chunk.index,
            msg.chunk.final,
            msg.digest_bytes,
            chunk=msg.chunk,
        )

    def on_RcpDigest(self, msg: RcpDigest) -> None:
        self._note(
            msg, msg.task_id, msg.index, msg.final, msg.digest_bytes
        )


class RcpInput(ProtocolCore):
    def __init__(self, pid, coordinator: SubCluster, workload):
        super().__init__(pid)
        self.client = ConsensusClient(self, coordinator)
        self._workload = iter(workload)

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        try:
            at, task = next(self._workload)
        except StopIteration:
            return
        self.schedule(max(0.0, at - self.now), self._fire, task)

    def _fire(self, task: Task) -> None:
        if not self.crashed:
            if self.wants(CATEGORY_TASK):
                self.emit(
                    TaskSubmitted(
                        time=self.now, pid=self.pid, task_id=task.task_id
                    )
                )
            self.client.submit(task, size=task.size_bytes)
        self._next()


@dataclass
class RcpCluster:
    """Handles to an RCP deployment."""

    sim: Simulator
    net: Network
    metrics: MetricsHub
    bus: EventBus
    clusters: list[SubCluster]
    workers: list[RcpWorker]
    inputs: list[RcpInput]
    outputs: list[RcpOutput]
    idle_workers: int

    def start(self) -> None:
        for ip in self.inputs:
            ip.start()

    def run(self, until: float) -> None:
        self.sim.run(until=until)


def build_rcp_cluster(
    app: VerifiableApplication,
    workload: Optional[Iterator[tuple[float, Task]]] = None,
    n_workers: int = 9,
    f: int = 1,
    seed: int = 0,
    synchrony: Optional[SynchronyModel] = None,
    bandwidth: float = DEFAULT_BANDWIDTH,
    chunk_bytes: int = 1_000_000,
    cores_per_node: int = 7,
) -> RcpCluster:
    """Wire an RCP deployment: ⌊n/(2f+1)⌋ sub-clusters, leftovers idle."""
    size = 2 * f + 1
    k = n_workers // size
    if k < 1:
        raise ProtocolError(
            f"RCP needs at least {size} workers for f={f}, got {n_workers}"
        )
    sim = Simulator(seed=seed)
    net = Network(sim, synchrony=synchrony or SynchronyModel(), bandwidth=bandwidth)
    registry = KeyRegistry()
    metrics = MetricsHub()
    sim.bus.attach(metrics)

    def deploy(core, cores):
        net.register(DesHost(sim, net, core, cores=cores))
        return core

    clusters = [
        SubCluster(
            index=i,
            members=tuple(f"w{i * size + j}" for j in range(size)),
            f=f,
        )
        for i in range(k)
    ]
    coordinator = clusters[0]
    workers: list[RcpWorker] = []
    for cluster in clusters:
        for pid in cluster.members:
            cls = RcpCoordinator if cluster.index == 0 else RcpWorker
            kwargs = dict(clusters=clusters) if cluster.index == 0 else {}
            w = cls(
                pid,
                registry,
                registry.register(pid),
                app,
                cluster,
                coordinator,
                ("op0",),
                chunk_bytes,
                **kwargs,
            )
            deploy(w, cores_per_node)
            workers.append(w)
    ip = RcpInput(
        "ip0", coordinator,
        workload if workload is not None else iter(()),
    )
    deploy(ip, 2)
    op = RcpOutput("op0", clusters)
    deploy(op, 2)
    return RcpCluster(
        sim=sim,
        net=net,
        metrics=metrics,
        bus=sim.bus,
        clusters=clusters,
        workers=workers,
        inputs=[ip],
        outputs=[op],
        idle_workers=n_workers - k * size,
    )
