"""PBFT-style 3f+1 consensus over plain authenticated channels.

The paper's protocols need 2f+1-member sub-clusters only when a
non-equivocating multicast primitive exists; "for situations where
non-equivocating multicast is not available, OsirisBFT can operate with
3f+1 processes in each sub-cluster" (Sec 3).  This module provides the
matching consensus: the classic three-phase pre-prepare / prepare /
commit pattern of PBFT [19], where the prepare round replaces the
primitive — 2f+1 matching prepares guarantee no conflicting proposal
can also gather a quorum.

The interface mirrors :class:`~repro.consensus.fast_robust.
ConsensusMember` so deployments swap implementations via
``OsirisConfig.non_equivocation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.consensus.messages import CsRequest, CsViewChange
from repro.crypto.digest import digest
from repro.crypto.signatures import KeyRegistry, Signer, sign_cost, verify_cost
from repro.errors import ConsensusError
from repro.net.message import Message
from repro.net.topology import SubCluster
from repro.obs.events import CATEGORY_CONSENSUS, ConsensusCommit, ViewChange
from repro.runtime.core import ProtocolCore

__all__ = ["PbftMember", "PbftPrePrepare", "PbftPrepare", "PbftCommit"]


@dataclass
class PbftPrePrepare(Message):
    view: int = 0
    seq: int = 0
    batch: tuple = ()
    sig: object = None

    def payload_bytes(self) -> int:
        return sum(size for _, _, size in self.batch) + 96

    @staticmethod
    def signed_payload(view: int, seq: int, bd: bytes) -> list:
        return ["pbft-preprepare", view, seq, bd]


@dataclass
class PbftPrepare(Message):
    view: int = 0
    seq: int = 0
    batch_digest: bytes = b""
    sig: object = None

    def payload_bytes(self) -> int:
        return 96

    @staticmethod
    def signed_payload(view: int, seq: int, bd: bytes) -> list:
        return ["pbft-prepare", view, seq, bd]


@dataclass
class PbftCommit(Message):
    view: int = 0
    seq: int = 0
    batch_digest: bytes = b""
    sig: object = None

    def payload_bytes(self) -> int:
        return 96

    @staticmethod
    def signed_payload(view: int, seq: int, bd: bytes) -> list:
        return ["pbft-commit", view, seq, bd]


@dataclass
class _Slot:
    view: int
    batch: tuple
    batch_digest: bytes
    prepares: set[str] = field(default_factory=set)
    commits: set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False


class PbftMember:
    """One member of a 3f+1 consensus group (API-compatible with
    :class:`ConsensusMember`)."""

    def __init__(
        self,
        host: ProtocolCore,
        registry: KeyRegistry,
        signer: Signer,
        group: SubCluster,
        on_commit: Callable[[int, tuple], None],
        validate: Optional[Callable[[Any], bool]] = None,
        batch_delay: float = 0.5e-3,
        base_view_timeout: float = 50e-3,
        max_batch: int = 512,
    ) -> None:
        if len(group.members) < 3 * group.f + 1:
            raise ConsensusError(
                f"PBFT needs 3f+1 members, got {len(group.members)} for f={group.f}"
            )
        if host.pid not in group.members:
            raise ConsensusError(f"{host.pid} not in group")
        self.host = host
        self.registry = registry
        self.signer = signer
        self.group = group
        self.on_commit = on_commit
        self.validate = validate
        self.batch_delay = batch_delay
        self.base_view_timeout = base_view_timeout
        self.max_batch = max_batch

        self.view = 0
        self.committed_seq = 0
        self._next_seq = 1
        self._slots: dict[int, _Slot] = {}
        self._pending: dict[str, tuple[Any, int]] = {}
        self._proposed_ids: set[str] = set()
        self._committed_ids: set[str] = set()
        self._vc_votes: dict[int, dict[str, tuple]] = {}
        self._flush_armed = False
        self.commits = 0

        host.register_handler("CsRequest", self._on_csrequest)
        host.register_handler("PbftPrePrepare", self._on_preprepare)
        host.register_handler("PbftPrepare", self._on_prepare)
        host.register_handler("PbftCommit", self._on_commit_msg)
        host.register_handler("CsViewChange", self._on_viewchange)

    # ----------------------------------------------------------- quorums
    @property
    def prepare_quorum(self) -> int:
        """2f+1 matching prepares (incl. own) certify the proposal."""
        return 2 * self.group.f + 1

    @property
    def commit_quorum(self) -> int:
        return 2 * self.group.f + 1

    @property
    def leader(self) -> str:
        return self.group.leader_at(self.view)

    @property
    def is_leader(self) -> bool:
        return self.leader == self.host.pid

    def _timeout(self) -> float:
        return self.base_view_timeout * (2 ** min(self.view, 10))

    def _multicast(self, msg) -> None:
        for pid in self.group.members:
            if pid != self.host.pid:
                self.host.send(pid, msg)

    # ----------------------------------------------------------- requests
    def submit_local(self, request_id: str, payload: Any, size: int = 0) -> None:
        self._admit(request_id, payload, size)

    def _on_csrequest(self, msg: CsRequest) -> None:
        self._admit(msg.request_id, msg.payload, msg.payload_size)

    def _admit(self, rid: str, payload: Any, size: int) -> None:
        if (
            rid in self._pending
            or rid in self._proposed_ids
            or rid in self._committed_ids
        ):
            return
        if self.validate is not None and not self.validate(payload):
            return
        self._pending[rid] = (payload, size)
        if self.is_leader:
            self._arm_flush()
        self._arm_progress_timer()

    def _reclaim(self, batch: tuple) -> None:
        for rid, payload, size in batch:
            if rid in self._committed_ids or rid in self._pending:
                continue
            self._proposed_ids.discard(rid)
            self._pending[rid] = (payload, size)
        if self._pending and self.is_leader:
            self._arm_flush()

    def _arm_flush(self) -> None:
        if not self._flush_armed:
            self._flush_armed = True
            self.host.set_timer("pbft-flush", self.batch_delay, self._flush)

    def _flush(self) -> None:
        self._flush_armed = False
        if not self.is_leader or not self._pending:
            return
        items = []
        for rid in list(self._pending)[: self.max_batch]:
            payload, size = self._pending.pop(rid)
            items.append((rid, payload, size))
            self._proposed_ids.add(rid)
        seq = self._next_seq
        self._next_seq += 1
        self._propose(self.view, seq, tuple(items))
        if self._pending:
            self._arm_flush()

    def _propose(self, view: int, seq: int, batch: tuple) -> None:
        bd = digest([rid for rid, _, _ in batch])
        sig = self.signer.sign(PbftPrePrepare.signed_payload(view, seq, bd))
        msg = PbftPrePrepare(view=view, seq=seq, batch=batch, sig=sig)
        self.host.run_ctrl_job(
            sign_cost(1),
            lambda: (
                self._reclaim(msg.batch)
                if msg.view != self.view
                else (self._multicast(msg), self._accept_preprepare(msg, local=True))
            ),
        )

    # ------------------------------------------------------------- phases
    def _on_preprepare(self, msg: PbftPrePrepare) -> None:
        if msg.view < self.view:
            self._reclaim(msg.batch)
            return
        if msg.view > self.view:
            return  # wait for the view-change quorum instead
        if msg.sender != self.group.leader_at(msg.view):
            return
        bd = digest([rid for rid, _, _ in msg.batch])
        if msg.sig is None or not self.registry.verify(
            PbftPrePrepare.signed_payload(msg.view, msg.seq, bd), msg.sig
        ):
            return
        self._accept_preprepare(msg, local=False)

    def _accept_preprepare(self, msg: PbftPrePrepare, local: bool) -> None:
        bd = digest([rid for rid, _, _ in msg.batch])
        slot = self._slots.get(msg.seq)
        if slot is not None and slot.committed:
            return
        if slot is not None and slot.view == msg.view and slot.batch_digest != bd:
            return  # equivocating leader: refuse the second proposal
        if slot is not None and slot.batch_digest != bd:
            self._reclaim(slot.batch)
        if self.validate is not None:
            kept = tuple(i for i in msg.batch if self.validate(i[1]))
        else:
            kept = msg.batch
        for rid, _, _ in msg.batch:
            self._pending.pop(rid, None)
            self._proposed_ids.add(rid)
        keep_votes = (
            slot is not None
            and slot.view == msg.view
            and slot.batch_digest == bd
        )
        self._slots[msg.seq] = _Slot(
            view=msg.view,
            batch=kept,
            batch_digest=bd,
            prepares=slot.prepares if keep_votes else set(),
            commits=slot.commits if keep_votes else set(),
        )
        cost = (0 if local else verify_cost(1)) + sign_cost(1)
        self.host.run_ctrl_job(cost, self._send_prepare, msg.view, msg.seq, bd)

    def _send_prepare(self, view: int, seq: int, bd: bytes) -> None:
        sig = self.signer.sign(PbftPrepare.signed_payload(view, seq, bd))
        self._multicast(PbftPrepare(view=view, seq=seq, batch_digest=bd, sig=sig))
        self._record_prepare(self.host.pid, view, seq, bd)

    def _on_prepare(self, msg: PbftPrepare) -> None:
        if msg.sender not in self.group.members:
            return
        if msg.sig is None or not self.registry.verify(
            PbftPrepare.signed_payload(msg.view, msg.seq, msg.batch_digest),
            msg.sig,
        ):
            return
        self._record_prepare(msg.sender, msg.view, msg.seq, msg.batch_digest)

    def _record_prepare(self, pid: str, view: int, seq: int, bd: bytes) -> None:
        slot = self._slots.get(seq)
        if slot is None or slot.committed or slot.prepared:
            return
        if slot.view != view or slot.batch_digest != bd:
            return
        slot.prepares.add(pid)
        if len(slot.prepares) >= self.prepare_quorum:
            slot.prepared = True
            sig = self.signer.sign(PbftCommit.signed_payload(view, seq, bd))
            self.host.run_ctrl_job(
                sign_cost(1),
                lambda: (
                    self._multicast(
                        PbftCommit(view=view, seq=seq, batch_digest=bd, sig=sig)
                    ),
                    self._record_commit(self.host.pid, view, seq, bd),
                ),
            )

    def _on_commit_msg(self, msg: PbftCommit) -> None:
        if msg.sender not in self.group.members:
            return
        if msg.sig is None or not self.registry.verify(
            PbftCommit.signed_payload(msg.view, msg.seq, msg.batch_digest),
            msg.sig,
        ):
            return
        self._record_commit(msg.sender, msg.view, msg.seq, msg.batch_digest)

    def _record_commit(self, pid: str, view: int, seq: int, bd: bytes) -> None:
        slot = self._slots.get(seq)
        if slot is None or slot.committed:
            return
        if slot.batch_digest != bd:
            return
        slot.commits.add(pid)
        self._try_commit()

    def _try_commit(self) -> None:
        while True:
            slot = self._slots.get(self.committed_seq + 1)
            if slot is None or slot.committed:
                return
            if len(slot.commits) < self.commit_quorum:
                return
            slot.committed = True
            self.committed_seq += 1
            self.commits += 1
            fresh = tuple(
                item for item in slot.batch if item[0] not in self._committed_ids
            )
            for rid, _, _ in slot.batch:
                self._committed_ids.add(rid)
                self._pending.pop(rid, None)
                self._proposed_ids.discard(rid)
            self._arm_progress_timer()
            if self.host.wants(CATEGORY_CONSENSUS):
                self.host.emit(
                    ConsensusCommit(
                        time=self.host.now,
                        pid=self.host.pid,
                        seq=self.committed_seq,
                        batch=len(slot.batch),
                    )
                )
            if fresh:
                self.on_commit(self.committed_seq, fresh)

    # --------------------------------------------------------- view change
    def _arm_progress_timer(self) -> None:
        if self._pending or any(
            not s.committed for s in self._slots.values()
        ):
            self.host.set_timer("pbft-progress", self._timeout(), self._on_stall)
        else:
            self.host.cancel_timer("pbft-progress")

    def _uncommitted_slots(self) -> tuple:
        # report *prepared* slots (could have committed somewhere) plus
        # pre-prepared ones; the new leader re-proposes them
        return tuple(
            (seq, s.view, s.batch, s.batch_digest)
            for seq, s in sorted(self._slots.items())
            if not s.committed
        )

    def _on_stall(self) -> None:
        if not self._pending and all(s.committed for s in self._slots.values()):
            return
        new_view = self.view + 1
        sig = self.signer.sign(
            CsViewChange.signed_payload(new_view, self.committed_seq)
        )
        msg = CsViewChange(
            new_view=new_view,
            committed_seq=self.committed_seq,
            slots=self._uncommitted_slots(),
            sig=sig,
        )
        self._multicast(msg)
        self._record_vc(self.host.pid, new_view, msg.slots)
        self.host.set_timer("pbft-progress", self._timeout(), self._on_stall)

    def _on_viewchange(self, msg: CsViewChange) -> None:
        if msg.sender not in self.group.members or msg.new_view <= self.view:
            return
        if msg.sig is None or not self.registry.verify(
            CsViewChange.signed_payload(msg.new_view, msg.committed_seq),
            msg.sig,
        ):
            return
        self._record_vc(msg.sender, msg.new_view, msg.slots)

    def _record_vc(self, pid: str, new_view: int, slots: tuple) -> None:
        votes = self._vc_votes.setdefault(new_view, {})
        votes[pid] = slots
        # 2f+1 votes guarantee intersection with any commit quorum in a
        # correct member — the classic PBFT bound
        if len(votes) >= self.commit_quorum and new_view > self.view:
            self._enter_view(new_view)

    def _enter_view(self, new_view: int) -> None:
        for slots in self._vc_votes.get(new_view, {}).values():
            for seq, view, batch, bd in slots:
                if seq <= self.committed_seq:
                    continue
                mine = self._slots.get(seq)
                if mine is not None and (mine.committed or mine.view >= view):
                    continue
                if mine is not None and mine.batch_digest != bd:
                    self._reclaim(mine.batch)
                self._slots[seq] = _Slot(view=view, batch=batch, batch_digest=bd)
        self.view = new_view
        if self.host.wants(CATEGORY_CONSENSUS):
            self.host.emit(
                ViewChange(
                    time=self.host.now, pid=self.host.pid, view=new_view
                )
            )
        self._vc_votes = {v: p for v, p in self._vc_votes.items() if v > new_view}
        if self.is_leader:
            self._next_seq = max(
                [self.committed_seq, self._next_seq - 1] + list(self._slots)
            ) + 1
            for seq in sorted(self._slots):
                slot = self._slots[seq]
                if slot.committed:
                    continue
                slot.view = self.view
                slot.prepares = set()
                slot.commits = set()
                slot.prepared = False
                self._propose(self.view, seq, slot.batch)
            for seq in range(self.committed_seq + 1, self._next_seq):
                if seq not in self._slots:
                    self._propose(self.view, seq, ())
            if self._pending:
                self._arm_flush()
        else:
            for slot in self._slots.values():
                if not slot.committed:
                    slot.prepares = set()
                    slot.commits = set()
                    slot.prepared = False
        self._arm_progress_timer()
