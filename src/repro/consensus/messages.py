"""Wire messages for the consensus module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.signatures import Signature
from repro.net.message import Message

__all__ = ["CsRequest", "CsPropose", "CsAck", "CsViewChange"]


@dataclass
class CsRequest(Message):
    """Client → members: submit a payload for linearization."""

    request_id: str = ""
    payload: Any = None
    payload_size: int = 0

    def payload_bytes(self) -> int:
        return self.payload_size + 64


@dataclass
class CsPropose(Message):
    """Leader → members (via non-equivocating multicast): ordered batch."""

    view: int = 0
    seq: int = 0
    batch: tuple = ()  # tuple of (request_id, payload, payload_size)
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return sum(size for _, _, size in self.batch) + 96

    @staticmethod
    def signed_payload(view: int, seq: int, batch_digest: bytes) -> list:
        return ["cs-propose", view, seq, batch_digest]


@dataclass
class CsAck(Message):
    """Member → members: endorse a proposal."""

    view: int = 0
    seq: int = 0
    batch_digest: bytes = b""
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return 96

    @staticmethod
    def signed_payload(view: int, seq: int, batch_digest: bytes) -> list:
        return ["cs-ack", view, seq, batch_digest]


@dataclass
class CsViewChange(Message):
    """Member → members: vote to depose the current leader.

    Carries the voter's uncommitted slots (state transfer): any slot
    that could have committed is reported by at least one correct voter,
    so the new leader re-proposes it at the same sequence number instead
    of clobbering it with fresh requests.
    """

    new_view: int = 0
    committed_seq: int = 0
    #: tuple of (seq, view, batch, batch_digest) for uncommitted slots
    slots: tuple = ()
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return 80 + sum(
            sum(size for _, _, size in batch) + 64
            for _, _, batch, _ in self.slots
        )

    @staticmethod
    def signed_payload(new_view: int, committed_seq: int) -> list:
        return ["cs-viewchange", new_view, committed_seq]
