"""BFT consensus for task linearization.

:class:`ConsensusMember` implements the 2f+1 Fast&Robust-style protocol
over non-equivocating multicast used by VP_CO (and by the RCP baseline's
coordinator).  Clients use :class:`ConsensusClient`.
"""

from repro.consensus.fast_robust import ConsensusClient, ConsensusMember
from repro.consensus.messages import CsAck, CsPropose, CsRequest, CsViewChange
from repro.consensus.pbft import PbftMember

__all__ = [
    "ConsensusClient",
    "ConsensusMember",
    "CsAck",
    "CsPropose",
    "CsRequest",
    "CsViewChange",
    "PbftMember",
]
