"""Leader-based 2f+1 BFT consensus over non-equivocating multicast.

This is the reproduction of the "Fast & Robust" algorithm of Aguilera et
al. [3] that the paper's VP_CO uses to linearize tasks (Sec 5.1.1,
Lemma 6.1).  The 2f+1 bound (instead of 3f+1) is achievable because
proposals travel over a non-equivocating multicast primitive (Sec 3):
conflicting proposals for the same slot simply cannot exist, so an f+1
acknowledgment quorum suffices.

Protocol sketch
---------------
* Clients send ``CsRequest`` to **all** members (robust to a faulty
  leader swallowing requests).
* The view's leader batches pending requests and emits
  ``CsPropose(view, seq, batch)`` via :meth:`Network.neq_multicast`.
  Members only accept proposals that arrived through the primitive.
* Members verify the leader signature and send a signed ``CsAck`` to
  every member.  Protocol work runs on the dedicated control core so it
  never queues behind application jobs.
* A member **commits** slot ``seq`` once it holds f+1 matching acks and
  every lower slot is committed; the commit callback then fires with the
  batch, in slot order — identically on every correct member.  Delivery
  is deduplicated per request id, so a request re-proposed across view
  changes is still delivered exactly once.
* Liveness: a member holding uncommitted work expects progress within a
  timeout (doubling per view); otherwise it votes ``CsViewChange``,
  attaching its uncommitted slots (state transfer).  f+1 votes move the
  group to the next view, whose leader merges the reported slots with
  its own, re-proposes them at their original sequence numbers, and
  resumes batching.  Any batch displaced by a stale-view drop or a slot
  overwrite is *reclaimed* into the pending pool rather than lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.crypto.digest import digest
from repro.crypto.signatures import KeyRegistry, Signer, sign_cost, verify_cost
from repro.errors import ConsensusError
from repro.net.topology import SubCluster
from repro.consensus.messages import CsAck, CsPropose, CsRequest, CsViewChange
from repro.obs.events import CATEGORY_CONSENSUS, ConsensusCommit, ViewChange
from repro.runtime.core import ProtocolCore

__all__ = ["ConsensusMember", "ConsensusClient"]


@dataclass
class _Slot:
    view: int
    batch: tuple
    batch_digest: bytes
    acks: set[str] = field(default_factory=set)
    committed: bool = False


class ConsensusMember:
    """One member's consensus state machine.

    Parameters
    ----------
    host:
        The protocol core embedding this member; handlers are registered
        on the host's dispatch table (``CsRequest`` etc.) and every
        effect the engine performs routes through the host's runtime.
    on_commit:
        ``on_commit(seq, batch)`` invoked in strict slot order; ``batch``
        is a tuple of ``(request_id, payload, payload_size)`` containing
        only requests not delivered before.
    validate:
        Optional request validator (the coordinator rejects invalid tasks
        at the door, Algorithm 3 line 3).  Items failing validation are
        dropped from batches; must be deterministic.
    """

    def __init__(
        self,
        host: ProtocolCore,
        registry: KeyRegistry,
        signer: Signer,
        group: SubCluster,
        on_commit: Callable[[int, tuple], None],
        validate: Optional[Callable[[Any], bool]] = None,
        batch_delay: float = 0.5e-3,
        base_view_timeout: float = 50e-3,
        max_batch: int = 512,
    ) -> None:
        if signer.pid != host.pid:
            raise ConsensusError("signer must belong to the hosting process")
        if host.pid not in group.members:
            raise ConsensusError(f"{host.pid} is not a member of the group")
        self.host = host
        self.registry = registry
        self.signer = signer
        self.group = group
        self.on_commit = on_commit
        self.validate = validate
        self.batch_delay = batch_delay
        self.base_view_timeout = base_view_timeout
        self.max_batch = max_batch

        self.view = 0
        self.committed_seq = 0
        self._next_seq = 1  # leader-only: next slot to propose
        self._slots: dict[int, _Slot] = {}
        self._pending: dict[str, tuple[Any, int]] = {}
        self._proposed_ids: set[str] = set()
        self._committed_ids: set[str] = set()
        self._vc_votes: dict[int, dict[str, tuple]] = {}
        self._flush_armed = False
        self.commits = 0

        for cls in (CsRequest, CsPropose, CsAck, CsViewChange):
            host.register_handler(
                cls.__name__, getattr(self, "_on_" + cls.__name__.lower())
            )

    # ------------------------------------------------------------ utilities
    @property
    def leader(self) -> str:
        """Leader pid of the current view."""
        return self.group.leader_at(self.view)

    @property
    def is_leader(self) -> bool:
        return self.leader == self.host.pid

    def _timeout(self) -> float:
        # exponential backoff across views so liveness holds once the
        # timeout exceeds post-GST latency
        return self.base_view_timeout * (2 ** min(self.view, 10))

    def _multicast(self, msg) -> None:
        for pid in self.group.members:
            if pid != self.host.pid:
                self.host.send(pid, msg)

    # -------------------------------------------------------------- requests
    def submit_local(self, request_id: str, payload: Any, size: int = 0) -> None:
        """Inject a request from the hosting process itself."""
        self._admit(request_id, payload, size)

    def _on_csrequest(self, msg: CsRequest) -> None:
        self._admit(msg.request_id, msg.payload, msg.payload_size)

    def _admit(self, request_id: str, payload: Any, size: int) -> None:
        if (
            request_id in self._pending
            or request_id in self._proposed_ids
            or request_id in self._committed_ids
        ):
            return
        if self.validate is not None and not self.validate(payload):
            return
        self._pending[request_id] = (payload, size)
        if self.is_leader:
            self._arm_flush()
        self._arm_progress_timer()

    def _reclaim(self, batch: tuple) -> None:
        """Return displaced batch items to the pending pool."""
        changed = False
        for rid, payload, size in batch:
            if rid in self._committed_ids or rid in self._pending:
                continue
            self._proposed_ids.discard(rid)
            self._pending[rid] = (payload, size)
            changed = True
        if changed:
            if self.is_leader:
                self._arm_flush()
            self._arm_progress_timer()

    def _arm_flush(self) -> None:
        if not self._flush_armed:
            self._flush_armed = True
            self.host.set_timer("cs-flush", self.batch_delay, self._flush)

    def _flush(self) -> None:
        self._flush_armed = False
        if not self.is_leader or not self._pending:
            return
        items = []
        for rid in list(self._pending)[: self.max_batch]:
            payload, size = self._pending[rid]
            items.append((rid, payload, size))
            self._proposed_ids.add(rid)
            del self._pending[rid]
        batch = tuple(items)
        seq = self._next_seq
        self._next_seq += 1
        self._propose(self.view, seq, batch)
        if self._pending:
            self._arm_flush()

    def _propose(self, view: int, seq: int, batch: tuple) -> None:
        bd = digest([rid for rid, _, _ in batch])
        sig = self.signer.sign(CsPropose.signed_payload(view, seq, bd))
        msg = CsPropose(view=view, seq=seq, batch=batch, sig=sig)
        self.host.run_ctrl_job(sign_cost(1), self._broadcast_propose, msg)

    def _broadcast_propose(self, msg: CsPropose) -> None:
        if msg.view != self.view:
            # deposed while the signing job was queued: reclaim the batch
            self._reclaim(msg.batch)
            return
        self.host.neq_multicast(self.group.members, msg)

    # -------------------------------------------------------------- proposal
    def _on_cspropose(self, msg: CsPropose) -> None:
        if not getattr(msg, "_neq", False):
            return  # equivocable channel: proposals must use the primitive
        if msg.view != self.view:
            if msg.view < self.view:
                # stale view: the batch still holds live client requests
                self._reclaim(msg.batch)
                return
            # a proposal from a newer view implies f+1 members moved on
            # (only the new leader proposes); adopt it.
            self._enter_view(msg.view)
        if msg.sender != self.group.leader_at(msg.view):
            return
        bd = digest([rid for rid, _, _ in msg.batch])
        if msg.sig is None or not self.registry.verify(
            CsPropose.signed_payload(msg.view, msg.seq, bd), msg.sig
        ):
            return
        slot = self._slots.get(msg.seq)
        if slot is not None and slot.committed:
            return  # re-proposal of a committed slot after view change
        if slot is not None and slot.batch_digest != bd:
            # overwritten by the new view's leader: keep the displaced
            # requests alive
            self._reclaim(slot.batch)
        for rid, _, _ in msg.batch:
            # the slot now owns these requests: stop counting them as
            # pending so a later leader doesn't double-propose them
            self._pending.pop(rid, None)
            self._proposed_ids.add(rid)
        if self.validate is not None:
            kept = tuple(item for item in msg.batch if self.validate(item[1]))
        else:
            kept = msg.batch
        self._slots[msg.seq] = _Slot(
            view=msg.view,
            batch=kept,
            batch_digest=bd,
            acks=(
                slot.acks
                if slot is not None
                and slot.view == msg.view
                and slot.batch_digest == bd
                else set()
            ),
        )
        self.host.run_ctrl_job(
            verify_cost(1) + sign_cost(1), self._send_ack, msg.view, msg.seq, bd
        )

    def _send_ack(self, view: int, seq: int, bd: bytes) -> None:
        sig = self.signer.sign(CsAck.signed_payload(view, seq, bd))
        ack = CsAck(view=view, seq=seq, batch_digest=bd, sig=sig)
        self._multicast(ack)
        self._record_ack(self.host.pid, view, seq, bd)

    def _on_csack(self, msg: CsAck) -> None:
        if msg.sender not in self.group.members:
            return
        if msg.sig is None or not self.registry.verify(
            CsAck.signed_payload(msg.view, msg.seq, msg.batch_digest), msg.sig
        ):
            return
        self._record_ack(msg.sender, msg.view, msg.seq, msg.batch_digest)

    def _record_ack(self, pid: str, view: int, seq: int, bd: bytes) -> None:
        slot = self._slots.get(seq)
        if slot is None or slot.committed:
            return
        if slot.batch_digest != bd or slot.view != view:
            return
        slot.acks.add(pid)
        self._try_commit()

    def _try_commit(self) -> None:
        while True:
            slot = self._slots.get(self.committed_seq + 1)
            if slot is None or slot.committed:
                return
            if len(slot.acks) < self.group.quorum:
                return
            slot.committed = True
            self.committed_seq += 1
            self.commits += 1
            fresh = tuple(
                item
                for item in slot.batch
                if item[0] not in self._committed_ids
            )
            for rid, _, _ in slot.batch:
                self._committed_ids.add(rid)
                self._pending.pop(rid, None)
                self._proposed_ids.discard(rid)
            self._arm_progress_timer()
            if self.host.wants(CATEGORY_CONSENSUS):
                self.host.emit(
                    ConsensusCommit(
                        time=self.host.now,
                        pid=self.host.pid,
                        seq=self.committed_seq,
                        batch=len(slot.batch),
                    )
                )
            if fresh:
                self.on_commit(self.committed_seq, fresh)

    # ------------------------------------------------------------ view change
    def _arm_progress_timer(self) -> None:
        if self._pending or self._has_uncommitted():
            self.host.set_timer("cs-progress", self._timeout(), self._on_stall)
        else:
            self.host.cancel_timer("cs-progress")

    def _has_uncommitted(self) -> bool:
        return any(not s.committed for s in self._slots.values())

    def _uncommitted_slots(self) -> tuple:
        return tuple(
            (seq, s.view, s.batch, s.batch_digest)
            for seq, s in sorted(self._slots.items())
            if not s.committed
        )

    def _on_stall(self) -> None:
        if not self._pending and not self._has_uncommitted():
            return
        new_view = self.view + 1
        sig = self.signer.sign(
            CsViewChange.signed_payload(new_view, self.committed_seq)
        )
        msg = CsViewChange(
            new_view=new_view,
            committed_seq=self.committed_seq,
            slots=self._uncommitted_slots(),
            sig=sig,
        )
        self._multicast(msg)
        self._record_vc(self.host.pid, new_view, msg.slots)
        # keep trying if this view change doesn't go through either
        self.host.set_timer("cs-progress", self._timeout(), self._on_stall)

    def _on_csviewchange(self, msg: CsViewChange) -> None:
        if msg.sender not in self.group.members or msg.new_view <= self.view:
            return
        if msg.sig is None or not self.registry.verify(
            CsViewChange.signed_payload(msg.new_view, msg.committed_seq),
            msg.sig,
        ):
            return
        self._record_vc(msg.sender, msg.new_view, msg.slots)

    def _record_vc(self, pid: str, new_view: int, slots: tuple) -> None:
        votes = self._vc_votes.setdefault(new_view, {})
        votes[pid] = slots
        if len(votes) >= self.group.quorum and new_view > self.view:
            self._enter_view(new_view)

    def _merge_reported_slots(self, new_view: int) -> None:
        """State transfer: adopt any uncommitted slot a view-change voter
        reported that we don't have (or have an older view of)."""
        for slots in self._vc_votes.get(new_view, {}).values():
            for seq, view, batch, bd in slots:
                if seq <= self.committed_seq:
                    continue
                mine = self._slots.get(seq)
                if mine is not None and (mine.committed or mine.view >= view):
                    continue
                if mine is not None and mine.batch_digest != bd:
                    self._reclaim(mine.batch)
                self._slots[seq] = _Slot(view=view, batch=batch, batch_digest=bd)

    def _enter_view(self, new_view: int) -> None:
        self._merge_reported_slots(new_view)
        self.view = new_view
        if self.host.wants(CATEGORY_CONSENSUS):
            self.host.emit(
                ViewChange(
                    time=self.host.now, pid=self.host.pid, view=new_view
                )
            )
        self._vc_votes = {v: p for v, p in self._vc_votes.items() if v > new_view}
        if self.is_leader:
            # re-propose the uncommitted suffix under the new view, then
            # resume normal batching at a fresh sequence number
            self._next_seq = max(
                [self.committed_seq, self._next_seq - 1] + list(self._slots)
            ) + 1
            for seq in sorted(self._slots):
                slot = self._slots[seq]
                if slot.committed:
                    continue
                slot.view = self.view
                slot.acks = set()
                self._propose(self.view, seq, slot.batch)
            # fill any gaps in the slot space with empty batches so
            # commit order stays contiguous
            for seq in range(self.committed_seq + 1, self._next_seq):
                if seq not in self._slots:
                    self._propose(self.view, seq, ())
            if self._pending:
                self._arm_flush()
        else:
            # drop uncommitted acks from the old view; the new leader will
            # re-propose
            for slot in self._slots.values():
                if not slot.committed:
                    slot.acks = set()
        self._arm_progress_timer()


class ConsensusClient:
    """Client-side stub: submit requests to every group member."""

    def __init__(self, host: ProtocolCore, group: SubCluster) -> None:
        self.host = host
        self.group = group
        self._counter = 0

    def submit(self, payload: Any, size: int = 0) -> str:
        """Send a request to all members; returns the request id."""
        self._counter += 1
        rid = f"{self.host.pid}#{self._counter}"
        for pid in self.group.members:
            self.host.send(
                pid,
                CsRequest(request_id=rid, payload=payload, payload_size=size),
            )
        return rid
