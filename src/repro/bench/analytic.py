"""Analytic models from the paper: Fig 2a and Table 1.

These are closed-form, directly from Sec 1-2: an RSM-based design can
run at most ⌊n/(2f+1)⌋ tasks in parallel (⌊n/(3f+1)⌋ without
non-equivocation), while OsirisBFT runs |WP| − O(f) and tolerates
failure of every executor on top of f per verifier sub-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError

__all__ = ["rsm_parallel_tasks", "osiris_parallel_tasks", "Table1Row", "table1"]


def rsm_parallel_tasks(n: int, f: int, non_equivocation: bool = True) -> int:
    """Fig 2a: parallel tasks achievable by RSM-style replication."""
    if n < 0 or f < 0:
        raise BenchmarkError("n and f must be non-negative")
    if f == 0:
        return n
    group = (2 if non_equivocation else 3) * f + 1
    return n // group


def osiris_parallel_tasks(n: int, f: int, k: int = 1, non_equivocation: bool = True) -> int:
    """OsirisBFT parallel executors: n minus k verifier sub-clusters."""
    if f == 0:
        return n
    group = (2 if non_equivocation else 3) * f + 1
    return max(0, n - k * group)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    system: str
    computation_replication: str
    computation_scalability: str
    communication_replication: str
    faults_tolerated: str


def table1(f: int = 1) -> list[Table1Row]:
    """Table 1, with the symbolic entries instantiated for a given f."""
    return [
        Table1Row(
            system="ZFT",
            computation_replication="1",
            computation_scalability="|WP|",
            communication_replication="1",
            faults_tolerated="0",
        ),
        Table1Row(
            system="RCP",
            computation_replication=f"2f+1 = {2 * f + 1}",
            computation_scalability=f"|WP|/O(f) = |WP|/{2 * f + 1}",
            communication_replication="1",
            faults_tolerated="Σ_WPi f  (f per sub-cluster)",
        ),
        Table1Row(
            system="OsirisBFT",
            computation_replication="1",
            computation_scalability=f"|WP| − O(f) = |WP| − k·{2 * f + 1}",
            communication_replication=f"2f+1 = {2 * f + 1}",
            faults_tolerated="|EP| + Σ_VPi f  (all executors + f per sub-cluster)",
        ),
    ]
