"""Scenario runners: one deployment + workload → one measured result.

Runners build a deployment (OsirisBFT / ZFT / RCP) on the DES, feed it a
:class:`~repro.bench.workloads.BenchWorkload`, run until the workload
drains (or a wall deadline in simulated seconds), and report the
quantities the paper's figures plot: records/sec throughput, task
latency, OP-link bandwidth, executor CPU utilization.

The harness scales the paper's testbed down uniformly: each worker has
one aggregate app core, tasks cost ~0.1-1.0 simulated seconds, and the
OP link ceiling (:data:`BENCH_BANDWIDTH`) sits where LH/MM saturate it
at n=32 — the same *relative* operating points as the paper's 8-core
nodes on a 100 Gbps fabric with its ~3.4 GB/s app-level ceiling
(Sec 7.2), at a size a Python DES can sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.baselines.rcp import build_rcp_cluster
from repro.baselines.zft import build_zft_cluster
from repro.bench.workloads import BenchWorkload
from repro.core.cluster import build_osiris_cluster
from repro.core.config import OsirisConfig
from repro.errors import BenchmarkError
from repro.obs.bus import Sink

__all__ = ["ScenarioResult", "run_osiris", "run_zft", "run_rcp", "BENCH_BANDWIDTH"]

#: Application-level OP link ceiling (bytes/sec).  Scaled with the rest
#: of the cost model: one aggregate app core per node and ~0.1-1.0 s
#: simulated tasks put the LH/MM saturation point here, mirroring where
#: the paper's 100 Gbps fabric saturates at app level (Sec 7.2).
BENCH_BANDWIDTH = 60e6


_JSON_SCALARS = (str, int, float, bool, type(None))


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario run."""

    system: str
    n: int
    f: int
    throughput: float          # records/sec over the active window
    records: int
    tasks_completed: int
    makespan: float            # last completion time (sim seconds)
    mean_latency: float
    p99_latency: float
    op_bandwidth: float        # bytes/sec into OP over the active window
    executor_utilization: float
    peak_throughput: float
    extra: dict = field(default_factory=dict)

    def row(self) -> str:
        """One printable table row (formatting lives in reporting)."""
        from repro.bench.reporting import format_result_row

        return format_result_row(self)

    def to_dict(self) -> dict:
        """JSON-safe form: live handles in ``extra`` (e.g. the cluster
        object scenario runners stash there) are dropped; only scalar
        telemetry survives serialization."""
        d = {
            "system": self.system,
            "n": self.n,
            "f": self.f,
            "throughput": self.throughput,
            "records": self.records,
            "tasks_completed": self.tasks_completed,
            "makespan": self.makespan,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "op_bandwidth": self.op_bandwidth,
            "executor_utilization": self.executor_utilization,
            "peak_throughput": self.peak_throughput,
            "extra": {
                k: v
                for k, v in self.extra.items()
                if isinstance(v, _JSON_SCALARS)
            },
        }
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioResult":
        return cls(
            system=d["system"],
            n=d["n"],
            f=d["f"],
            throughput=d["throughput"],
            records=d["records"],
            tasks_completed=d["tasks_completed"],
            makespan=d["makespan"],
            mean_latency=d["mean_latency"],
            p99_latency=d["p99_latency"],
            op_bandwidth=d["op_bandwidth"],
            executor_utilization=d["executor_utilization"],
            peak_throughput=d["peak_throughput"],
            extra=dict(d.get("extra", {})),
        )


def _finish(system, n, f, metrics, net, busy_fn, cores, extra=None):
    if metrics.completion_times:
        makespan = max(metrics.completion_times)
        # tail-insensitive: heavy-tailed task costs must not let one
        # straggler define a burst's capacity measurement
        throughput = metrics.p90_throughput()
        active = metrics.time_to_fraction(0.9)
        op_bw = (
            net.nic("op0").ingress_meter.mean_rate(0.0, active)
            if active > 0
            else 0.0
        )
    else:
        makespan = 0.0
        active = 0.0
        throughput = 0.0
        op_bw = 0.0
    busy, n_exec = busy_fn()
    window = active if active > 0 else makespan
    util = (
        busy / (window * cores * max(n_exec, 1)) if window > 0 else 0.0
    )
    return ScenarioResult(
        system=system,
        n=n,
        f=f,
        throughput=throughput,
        records=metrics.records_accepted,
        tasks_completed=metrics.tasks_completed,
        makespan=makespan,
        mean_latency=metrics.mean_latency(),
        p99_latency=metrics.latency_percentile(99),
        op_bandwidth=op_bw,
        executor_utilization=min(1.0, util),
        peak_throughput=metrics.peak_throughput(),
        extra=extra or {},
    )


def _attach_sanitizer(cluster):
    """Attach a substrate sanitizer to an already-built baseline cluster
    (the osiris builder wires its own via ``sanitize=True``).  No link
    or CPU events fire before ``cluster.start()``, so the shadows still
    observe the run from birth."""
    from repro.check.sanitizer import Sanitizer  # lazy: optional layer

    sanitizer = Sanitizer(cluster.net)
    sanitizer.attach(cluster.bus)
    return sanitizer


def _audit_sanitizer(sanitizer, extra: dict, cluster=None) -> None:
    """Run the post-run sanitizer audit and fold it into ``extra``.

    ``sanitizer_violations`` is a JSON scalar (survives ``to_dict``);
    the live report rides along for in-process consumers."""
    if sanitizer is None:
        return
    report = sanitizer.audit(cluster)
    extra["sanitizer_violations"] = len(report.violations)
    extra["sanitizer_report"] = report


def run_osiris(
    workload: BenchWorkload,
    n: int,
    f: int = 1,
    k: Optional[int] = None,
    seed: int = 0,
    deadline: float = 600.0,
    config: Optional[OsirisConfig] = None,
    bandwidth: float = BENCH_BANDWIDTH,
    sinks: Iterable[Sink] = (),
    sanitize: bool = False,
    **build_kwargs,
) -> ScenarioResult:
    """Run OsirisBFT on ``n`` workers; returns the measured result.

    ``sinks`` are extra trace sinks attached to the deployment's event
    bus before the workload starts (the MetricsHub is always attached).
    ``sanitize=True`` attaches the :mod:`repro.check` substrate
    sanitizer and reports ``sanitizer_violations`` (plus the live
    ``sanitizer_report``) in ``extra``.
    """
    config = config or OsirisConfig(
        f=f,
        chunk_bytes=workload.chunk_bytes,
        # long base timeout: burst workloads queue deeply at executors and
        # graceful runs must not pay reassignment churn (the paper
        # likewise calibrates timeouts up to 5 s against its task mix);
        # failure benches pass their own config
        suspect_timeout=60.0,
        cores_per_node=1,
    )
    cluster = build_osiris_cluster(
        workload.app,
        workload=workload.stream,
        n_workers=n,
        k=k,
        seed=seed,
        config=config,
        bandwidth=bandwidth,
        sanitize=sanitize,
        **build_kwargs,
    )
    for sink in sinks:
        cluster.bus.attach(sink)
    cluster.start()
    _run_to_completion(cluster.sim, cluster.metrics, workload, deadline)

    def busy():
        execs = [e for e in cluster.executors]
        verif = cluster.all_verifiers
        busy_total = sum(e.cpu.busy_seconds for e in execs)
        # role-switched verifiers execute too; count their engine work via
        # cpu time (approximation: all their busy time)
        switched = [v for v in verif if v.engine.tasks_executed > 0]
        busy_total += sum(v.cpu.busy_seconds for v in switched)
        return busy_total, len(execs) + len(switched)

    extra = {
        "reassignments": len(cluster.metrics.reassignments),
        "role_switches": len(cluster.metrics.role_switches),
        "faults_detected": len(cluster.metrics.faults_detected),
        "cluster": cluster,
    }
    _audit_sanitizer(cluster.sanitizer, extra, cluster)
    return _finish(
        "OsirisBFT", n, f, cluster.metrics, cluster.net, busy,
        config.cores_per_node, extra,
    )


def run_zft(
    workload: BenchWorkload,
    n: int,
    seed: int = 0,
    deadline: float = 600.0,
    bandwidth: float = BENCH_BANDWIDTH,
    cores_per_node: int = 1,
    sinks: Iterable[Sink] = (),
    sanitize: bool = False,
) -> ScenarioResult:
    """Run the ZFT baseline."""
    cluster = build_zft_cluster(
        workload.app,
        workload=workload.stream,
        n_workers=n,
        seed=seed,
        bandwidth=bandwidth,
        chunk_bytes=workload.chunk_bytes,
        cores_per_node=cores_per_node,
    )
    sanitizer = _attach_sanitizer(cluster) if sanitize else None
    for sink in sinks:
        cluster.bus.attach(sink)
    cluster.start()
    _run_to_completion(cluster.sim, cluster.metrics, workload, deadline)

    def busy():
        return sum(w.cpu.busy_seconds for w in cluster.workers), len(
            cluster.workers
        )

    extra = {"cluster": cluster}
    _audit_sanitizer(sanitizer, extra)
    return _finish(
        "ZFT", n, 0, cluster.metrics, cluster.net, busy, cores_per_node,
        extra,
    )


def run_rcp(
    workload: BenchWorkload,
    n: int,
    f: int = 1,
    seed: int = 0,
    deadline: float = 600.0,
    bandwidth: float = BENCH_BANDWIDTH,
    cores_per_node: int = 1,
    sinks: Iterable[Sink] = (),
    sanitize: bool = False,
) -> ScenarioResult:
    """Run the RCP baseline."""
    cluster = build_rcp_cluster(
        workload.app,
        workload=workload.stream,
        n_workers=n,
        f=f,
        seed=seed,
        bandwidth=bandwidth,
        chunk_bytes=workload.chunk_bytes,
        cores_per_node=cores_per_node,
    )
    sanitizer = _attach_sanitizer(cluster) if sanitize else None
    for sink in sinks:
        cluster.bus.attach(sink)
    cluster.start()
    _run_to_completion(cluster.sim, cluster.metrics, workload, deadline)

    def busy():
        return sum(w.cpu.busy_seconds for w in cluster.workers), len(
            cluster.workers
        )

    extra = {"cluster": cluster}
    _audit_sanitizer(sanitizer, extra)
    return _finish(
        "RCP", n, f, cluster.metrics, cluster.net, busy, cores_per_node,
        extra,
    )


def _run_to_completion(sim, metrics, workload: BenchWorkload, deadline: float):
    """Advance until every compute task completed (or the deadline)."""
    target = workload.n_compute_tasks
    step = 1.0
    while sim.now < deadline:
        sim.run(until=min(sim.now + step, deadline))
        if metrics.tasks_completed >= target and sim.drained():
            return
        if metrics.tasks_completed >= target:
            return
        if sim.drained():
            return
    if metrics.tasks_completed < target:
        raise BenchmarkError(
            f"scenario missed deadline: {metrics.tasks_completed}/{target} "
            f"tasks by t={deadline}"
        )
