"""Scenario result type plus deprecated per-system runner shims.

The measurement engine lives in :mod:`repro.api` now: build a
:class:`repro.api.DeploymentSpec` and call :func:`repro.api.run`.  The
``run_osiris`` / ``run_zft`` / ``run_rcp`` entry points remain for one
release as thin deprecation shims that translate their legacy kwargs
into a spec — results are bit-identical (the golden-trace tests pin
this).  :class:`ScenarioResult` and :data:`BENCH_BANDWIDTH` stay here.

The harness scales the paper's testbed down uniformly: each worker has
one aggregate app core, tasks cost ~0.1-1.0 simulated seconds, and the
OP link ceiling (:data:`BENCH_BANDWIDTH`) sits where LH/MM saturate it
at n=32 — the same *relative* operating points as the paper's 8-core
nodes on a 100 Gbps fabric with its ~3.4 GB/s app-level ceiling
(Sec 7.2), at a size a Python DES can sweep.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.bench.workloads import BenchWorkload
from repro.core.config import OsirisConfig
from repro.obs.bus import Sink

__all__ = ["ScenarioResult", "run_osiris", "run_zft", "run_rcp", "BENCH_BANDWIDTH"]

#: Application-level OP link ceiling (bytes/sec).  Scaled with the rest
#: of the cost model: one aggregate app core per node and ~0.1-1.0 s
#: simulated tasks put the LH/MM saturation point here, mirroring where
#: the paper's 100 Gbps fabric saturates at app level (Sec 7.2).
BENCH_BANDWIDTH = 60e6


_JSON_SCALARS = (str, int, float, bool, type(None))


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario run."""

    system: str
    n: int
    f: int
    throughput: float          # records/sec over the active window
    records: int
    tasks_completed: int
    makespan: float            # last completion time (sim seconds)
    mean_latency: float
    p99_latency: float
    op_bandwidth: float        # bytes/sec into OP over the active window
    executor_utilization: float
    peak_throughput: float
    extra: dict = field(default_factory=dict)
    # SLO fields (PR 8): defaulted so legacy dicts/shims round-trip
    p50_latency: float = 0.0
    p999_latency: float = 0.0
    #: accepted records/sec over the run horizon — unlike ``throughput``
    #: (capacity over the active window) this charges idle/shed time, so
    #: it is the figure of merit under open-loop offered load
    goodput: float = 0.0
    #: tenant -> {count, p50, p99, p999} latency summary (seconds)
    per_tenant: dict = field(default_factory=dict)
    #: output pid -> completed-task count (sharded runs)
    per_shard: dict = field(default_factory=dict)

    def row(self) -> str:
        """One printable table row (formatting lives in reporting)."""
        from repro.bench.reporting import format_result_row

        return format_result_row(self)

    def to_dict(self) -> dict:
        """JSON-safe form: live handles in ``extra`` (e.g. the cluster
        object scenario runners stash there) are dropped; only scalar
        telemetry survives serialization."""
        d = {
            "system": self.system,
            "n": self.n,
            "f": self.f,
            "throughput": self.throughput,
            "records": self.records,
            "tasks_completed": self.tasks_completed,
            "makespan": self.makespan,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "op_bandwidth": self.op_bandwidth,
            "executor_utilization": self.executor_utilization,
            "peak_throughput": self.peak_throughput,
            "p50_latency": self.p50_latency,
            "p999_latency": self.p999_latency,
            "goodput": self.goodput,
            "per_tenant": {
                t: dict(summary) for t, summary in self.per_tenant.items()
            },
            "per_shard": dict(self.per_shard),
            "extra": {
                k: v
                for k, v in self.extra.items()
                if isinstance(v, _JSON_SCALARS)
            },
        }
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioResult":
        return cls(
            system=d["system"],
            n=d["n"],
            f=d["f"],
            throughput=d["throughput"],
            records=d["records"],
            tasks_completed=d["tasks_completed"],
            makespan=d["makespan"],
            mean_latency=d["mean_latency"],
            p99_latency=d["p99_latency"],
            op_bandwidth=d["op_bandwidth"],
            executor_utilization=d["executor_utilization"],
            peak_throughput=d["peak_throughput"],
            p50_latency=d.get("p50_latency", 0.0),
            p999_latency=d.get("p999_latency", 0.0),
            goodput=d.get("goodput", 0.0),
            per_tenant=dict(d.get("per_tenant", {})),
            per_shard=dict(d.get("per_shard", {})),
            extra=dict(d.get("extra", {})),
        )


def _spec_kwargs(
    n, f, k, seed, deadline, config, bandwidth, sinks, sanitize,
    faults=None, build_kwargs=None,
):
    """Translate legacy runner kwargs into DeploymentSpec fields; returns
    (spec_kwargs, leftover builder overrides)."""
    from repro import api

    build_kwargs = dict(build_kwargs or {})
    faults = api.normalize_faults(
        faults,
        executors=build_kwargs.pop("executor_faults", None),
        verifiers=build_kwargs.pop("verifier_faults", None),
        outputs=build_kwargs.pop("output_faults", None),
    )
    spec = dict(
        n=n,
        f=f,
        k=k,
        seed=seed,
        deadline=deadline,
        bandwidth=bandwidth,
        config=api.config_overrides(config),
        faults=faults,
        sinks=tuple(sinks),
        capture=tuple(build_kwargs.pop("capture", ())),
        sanitize=sanitize,
    )
    return spec, build_kwargs


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; build a repro.api.DeploymentSpec and "
        f"call repro.api.run()",
        DeprecationWarning,
        stacklevel=3,
    )


def run_osiris(
    workload: BenchWorkload,
    n: int,
    f: int = 1,
    k: Optional[int] = None,
    seed: int = 0,
    deadline: float = 600.0,
    config: Optional[OsirisConfig] = None,
    bandwidth: float = BENCH_BANDWIDTH,
    sinks: Iterable[Sink] = (),
    sanitize: bool = False,
    faults=None,
    **build_kwargs,
) -> ScenarioResult:
    """Deprecated shim: run OsirisBFT on ``n`` workers via
    :func:`repro.api.run`.  ``faults`` accepts anything
    :func:`repro.api.normalize_faults` does (legacy pid→strategy
    mapping, a Campaign, campaign JSON); the per-role fault dicts keep
    working through the same normalization."""
    from repro import api

    _deprecated("run_osiris")
    spec_kwargs, build_extra = _spec_kwargs(
        n, f, k, seed, deadline, config, bandwidth, sinks, sanitize,
        faults, build_kwargs,
    )
    # config=None historically meant "scenario defaults" — which is what
    # an empty override tuple means to the spec, so both paths agree
    return api.run(
        api.DeploymentSpec(workload=workload, **spec_kwargs), **build_extra
    )


def run_zft(
    workload: BenchWorkload,
    n: int,
    seed: int = 0,
    deadline: float = 600.0,
    bandwidth: float = BENCH_BANDWIDTH,
    cores_per_node: int = 1,
    sinks: Iterable[Sink] = (),
    sanitize: bool = False,
) -> ScenarioResult:
    """Deprecated shim: run the ZFT baseline via :func:`repro.api.run`."""
    from repro import api

    _deprecated("run_zft")
    return api.run(
        api.DeploymentSpec(
            workload=workload,
            n=n,
            system="zft",
            seed=seed,
            deadline=deadline,
            bandwidth=bandwidth,
            config=(("cores_per_node", cores_per_node),),
            sinks=tuple(sinks),
            sanitize=sanitize,
        )
    )


def run_rcp(
    workload: BenchWorkload,
    n: int,
    f: int = 1,
    seed: int = 0,
    deadline: float = 600.0,
    bandwidth: float = BENCH_BANDWIDTH,
    cores_per_node: int = 1,
    sinks: Iterable[Sink] = (),
    sanitize: bool = False,
) -> ScenarioResult:
    """Deprecated shim: run the RCP baseline via :func:`repro.api.run`."""
    from repro import api

    _deprecated("run_rcp")
    return api.run(
        api.DeploymentSpec(
            workload=workload,
            n=n,
            system="rcp",
            f=f,
            seed=seed,
            deadline=deadline,
            bandwidth=bandwidth,
            config=(("cores_per_node", cores_per_node),),
            sinks=tuple(sinks),
            sanitize=sanitize,
        )
    )
