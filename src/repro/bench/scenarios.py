"""Scenario result type and the shared bandwidth operating point.

The measurement engine lives in :mod:`repro.api`: build a
:class:`repro.api.DeploymentSpec` and call :func:`repro.api.run` (or
:func:`repro.api.serve` to front a live deployment with the socket
gateway).  :class:`ScenarioResult` and :data:`BENCH_BANDWIDTH` live
here.

The harness scales the paper's testbed down uniformly: each worker has
one aggregate app core, tasks cost ~0.1-1.0 simulated seconds, and the
OP link ceiling (:data:`BENCH_BANDWIDTH`) sits where LH/MM saturate it
at n=32 — the same *relative* operating points as the paper's 8-core
nodes on a 100 Gbps fabric with its ~3.4 GB/s app-level ceiling
(Sec 7.2), at a size a Python DES can sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ScenarioResult", "BENCH_BANDWIDTH"]

#: Application-level OP link ceiling (bytes/sec).  Scaled with the rest
#: of the cost model: one aggregate app core per node and ~0.1-1.0 s
#: simulated tasks put the LH/MM saturation point here, mirroring where
#: the paper's 100 Gbps fabric saturates at app level (Sec 7.2).
BENCH_BANDWIDTH = 60e6


_JSON_SCALARS = (str, int, float, bool, type(None))


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario run."""

    system: str
    n: int
    f: int
    throughput: float          # records/sec over the active window
    records: int
    tasks_completed: int
    makespan: float            # last completion time (sim seconds)
    mean_latency: float
    p99_latency: float
    op_bandwidth: float        # bytes/sec into OP over the active window
    executor_utilization: float
    peak_throughput: float
    extra: dict = field(default_factory=dict)
    # SLO fields (PR 8): defaulted so legacy dicts/shims round-trip
    p50_latency: float = 0.0
    p999_latency: float = 0.0
    #: accepted records/sec over the run horizon — unlike ``throughput``
    #: (capacity over the active window) this charges idle/shed time, so
    #: it is the figure of merit under open-loop offered load
    goodput: float = 0.0
    #: tenant -> {count, p50, p99, p999} latency summary (seconds)
    per_tenant: dict = field(default_factory=dict)
    #: output pid -> completed-task count (sharded runs)
    per_shard: dict = field(default_factory=dict)
    #: substrate/conservation audit: violation count when the run was
    #: sanitized, ``None`` when it was not (the live report object stays
    #: in ``extra["sanitizer_report"]`` for in-process consumers)
    sanitizer_violations: Optional[int] = None
    #: campaign runs: the recovery report's scalar fields, keyed by the
    #: report's own field names; ``None`` when no campaign ran (the live
    #: report object stays in ``extra["recovery_report"]``)
    recovery: Optional[dict] = None
    #: client-observed SLO summary (serve-gateway runs): what the
    #: submitting clients measured on their own wall clocks —
    #: ``p50``/``p99`` latency, ``goodput``, admission verdict counts
    client_slo: dict = field(default_factory=dict)

    def row(self) -> str:
        """One printable table row (formatting lives in reporting)."""
        from repro.bench.reporting import format_result_row

        return format_result_row(self)

    def to_dict(self) -> dict:
        """JSON-safe form: live handles in ``extra`` (e.g. the cluster
        object scenario runners stash there) are dropped; only scalar
        telemetry survives serialization."""
        d = {
            "system": self.system,
            "n": self.n,
            "f": self.f,
            "throughput": self.throughput,
            "records": self.records,
            "tasks_completed": self.tasks_completed,
            "makespan": self.makespan,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "op_bandwidth": self.op_bandwidth,
            "executor_utilization": self.executor_utilization,
            "peak_throughput": self.peak_throughput,
            "p50_latency": self.p50_latency,
            "p999_latency": self.p999_latency,
            "goodput": self.goodput,
            "per_tenant": {
                t: dict(summary) for t, summary in self.per_tenant.items()
            },
            "per_shard": dict(self.per_shard),
            "sanitizer_violations": self.sanitizer_violations,
            "recovery": dict(self.recovery) if self.recovery is not None else None,
            "client_slo": dict(self.client_slo),
            "extra": {
                k: v
                for k, v in self.extra.items()
                if isinstance(v, _JSON_SCALARS)
            },
        }
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioResult":
        recovery = d.get("recovery")
        return cls(
            system=d["system"],
            n=d["n"],
            f=d["f"],
            throughput=d["throughput"],
            records=d["records"],
            tasks_completed=d["tasks_completed"],
            makespan=d["makespan"],
            mean_latency=d["mean_latency"],
            p99_latency=d["p99_latency"],
            op_bandwidth=d["op_bandwidth"],
            executor_utilization=d["executor_utilization"],
            peak_throughput=d["peak_throughput"],
            p50_latency=d.get("p50_latency", 0.0),
            p999_latency=d.get("p999_latency", 0.0),
            goodput=d.get("goodput", 0.0),
            per_tenant=dict(d.get("per_tenant", {})),
            per_shard=dict(d.get("per_shard", {})),
            sanitizer_violations=d.get("sanitizer_violations"),
            recovery=dict(recovery) if recovery is not None else None,
            client_slo=dict(d.get("client_slo", {})),
            extra=dict(d.get("extra", {})),
        )
