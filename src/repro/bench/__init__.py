"""Benchmark harness: workload factories, scenario runners, analytics.

One bench target per paper table/figure lives in ``benchmarks/``; this
package provides the machinery they share.
"""

from repro.baselines.store_models import (
    basil_updates_per_sec,
    kauri_updates_per_sec,
)
from repro.bench.analytic import (
    Table1Row,
    osiris_parallel_tasks,
    rsm_parallel_tasks,
    table1,
)
from repro.bench.reporting import print_figure, print_series, print_table, ratio
from repro.bench.scenarios import BENCH_BANDWIDTH, ScenarioResult
from repro.bench.workloads import (
    ANOMALY_PROFILES,
    ArrivalProcess,
    BenchWorkload,
    BurstSource,
    OpenLoopSource,
    TaskSource,
    TenantTaggedSource,
    anomaly_bench,
    open_loop_bench,
    planning_bench,
    synthetic_bench,
    update_only_bench,
    video_bench,
)

__all__ = [
    "ANOMALY_PROFILES",
    "BENCH_BANDWIDTH",
    "ArrivalProcess",
    "BenchWorkload",
    "BurstSource",
    "OpenLoopSource",
    "ScenarioResult",
    "Table1Row",
    "TaskSource",
    "TenantTaggedSource",
    "anomaly_bench",
    "open_loop_bench",
    "basil_updates_per_sec",
    "kauri_updates_per_sec",
    "osiris_parallel_tasks",
    "planning_bench",
    "print_figure",
    "print_series",
    "print_table",
    "ratio",
    "rsm_parallel_tasks",
    "synthetic_bench",
    "table1",
    "update_only_bench",
    "video_bench",
]
