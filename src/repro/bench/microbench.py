"""Kernel-layer microbenchmarks: the DES hot path in isolation.

The paper-figure sweeps measure the whole stack — protocol logic,
application compute, crypto — so substrate regressions drown in
application noise.  These microbenchmarks drive the three hot
substrate paths directly, with no protocol on top:

* **event churn** — same-timestamp batch dispatch, near-future-lane
  appends, handle cancellation and dead-entry purging in
  :class:`repro.sim.kernel.Simulator`;
* **multicast fan-out** — the flyweight :meth:`Network._fanout` send
  path, including vectorized latency draws and NIC serialization;
* **meter ingest** — :class:`ByteMeter` ingest plus the lazy binning
  flush on first read.

Wall-clock numbers are host-dependent; the CI perf-smoke job compares
them against a committed reference with a generous (2×) budget, so only
genuine hot-path regressions fail the build.  The simulated workload
itself is deterministic — only the wall time varies between hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.net.links import ByteMeter, Network
from repro.net.message import Message
from repro.sim.kernel import Simulator

__all__ = [
    "MicrobenchResult",
    "bench_event_churn",
    "bench_multicast_fanout",
    "bench_meter_ingest",
    "run_kernel_microbench",
]


@dataclass(frozen=True)
class MicrobenchResult:
    """One microbenchmark measurement."""

    name: str
    #: primitive operations performed (events fired, messages sent, …)
    ops: int
    wall_seconds: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ops": self.ops,
            "wall_seconds": self.wall_seconds,
            "ops_per_sec": self.ops_per_sec,
        }


def _noop() -> None:
    return None


def bench_event_churn(events: int = 200_000) -> MicrobenchResult:
    """Timer-wheel-shaped load on the kernel.

    64 periodic chains fire at identical timestamps (maximal same-time
    batches, pure lane traffic) while 8 churn chains additionally
    schedule a cancellable handle per round and cancel the previous one
    — steady-state dead-entry production for the bulk purge and the
    amortized compaction to chew on.
    """
    sim = Simulator(seed=1)
    chains = 64
    churners = 8
    rounds = max(1, events // (chains + churners))
    period = 1e-3
    victims: list = []

    def tick(r: int) -> None:
        if r < rounds:
            sim.post_at(sim.now + period, tick, r + 1)

    def churn(r: int) -> None:
        if victims:
            victims.pop().cancel()
        if r < rounds:
            victims.append(sim.schedule(3 * period, _noop))
            sim.post_at(sim.now + period, churn, r + 1)

    start = time.perf_counter()
    for _ in range(chains):
        sim.post_at(period, tick, 1)
    for _ in range(churners):
        sim.post_at(period, churn, 1)
    sim.run()
    wall = time.perf_counter() - start
    return MicrobenchResult("event-churn", sim.events_fired, wall)


def bench_multicast_fanout(
    n_nodes: int = 32, rounds: int = 1_000
) -> MicrobenchResult:
    """All-to-rest multicast blasts through the flyweight send path."""

    class _Endpoint:
        __slots__ = ("pid", "delivered")

        def __init__(self, pid: str) -> None:
            self.pid = pid
            self.delivered = 0

        def deliver(self, msg: Message) -> None:
            self.delivered += 1

    sim = Simulator(seed=2)
    net = Network(sim)
    endpoints = [_Endpoint(f"p{i}") for i in range(n_nodes)]
    for ep in endpoints:
        net.register(ep)
    dsts = tuple(ep.pid for ep in endpoints[1:])

    def blast(r: int) -> None:
        net.multicast("p0", dsts, Message())
        if r < rounds:
            sim.post_at(sim.now + 0.01, blast, r + 1)

    start = time.perf_counter()
    sim.post_at(0.01, blast, 1)
    sim.run()
    wall = time.perf_counter() - start
    assert net.messages_sent == rounds * (n_nodes - 1)
    return MicrobenchResult("multicast-fanout", net.messages_sent, wall)


def bench_meter_ingest(samples: int = 1_000_000) -> MicrobenchResult:
    """ByteMeter ingest at link speed, then one lazy binning flush."""
    meter = ByteMeter(bin_seconds=0.5)
    add = meter.add
    start = time.perf_counter()
    t = 0.0
    for _ in range(samples):
        add(t, 1500)
        t += 1e-5
    series = meter.rate_series()
    wall = time.perf_counter() - start
    assert meter.total == samples * 1500
    assert series, "binning flush produced no series"
    return MicrobenchResult("meter-ingest", samples, wall)


def run_kernel_microbench(
    events: int = 200_000,
    n_nodes: int = 32,
    rounds: int = 1_000,
    samples: int = 1_000_000,
) -> list[MicrobenchResult]:
    """Run the full kernel microbenchmark suite."""
    return [
        bench_event_churn(events=events),
        bench_multicast_fanout(n_nodes=n_nodes, rounds=rounds),
        bench_meter_ingest(samples=samples),
    ]
