"""Calibrated workload factories for the paper's experiments.

Each factory returns a :class:`BenchWorkload` — an app plus a lazy
:class:`TaskSource` — positioned on the CPU-cost × output-volume plane
of Sec 7.2.  Graph sizes are simulation-scale substitutes for Orkut /
Amazon-Products; the simulated per-step costs are calibrated so the
three anomaly workloads land in the paper's regimes at n=32 with the
harness's scaled-down OP link:

* **HL** — 6-cliques: executor CPU ≈ 95%, OP link far from saturated;
* **MM** — dense size-6: CPU ≈ 80%, OP link near saturation;
* **LH** — 3-hop paths: cheap CPU, OP link saturated.

Closed-loop workloads are *bursts* by default (tasks submitted far
faster than they complete) so throughput measures capacity — the
quantity whose scaling the paper's figures plot — without per-run rate
calibration.  The ``open_loop`` factory instead replaces burst submit
times with a deterministic arrival process (Poisson, diurnal,
burst-on-idle) so behaviour under *offered load* — admission, queueing,
tail latency — becomes measurable.

Task streams are lazy end to end: a source yields ``(time, Task)``
pairs on demand and never materializes the stream, matching
``InputProcess``'s contract that huge workloads never sit in memory.
"""

from __future__ import annotations

import inspect
import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.apps.anomaly import AnomalyApp, anomaly_workload, link_update_stream
from repro.apps.planning import PlanningApp, instance_suite, make_planning_task
from repro.apps.synthetic import SyntheticApp, make_compute_task, make_update_task
from repro.apps.video import VideoApp, frame_stream, make_cluster_task, make_frame_task
from repro.core.api import VerifiableApplication
from repro.core.tasks import Task
from repro.errors import BenchmarkError

__all__ = [
    "ArrivalProcess",
    "BenchWorkload",
    "BurstSource",
    "OpenLoopSource",
    "TaskSource",
    "TenantTaggedSource",
    "anomaly_bench",
    "open_loop_bench",
    "planning_bench",
    "video_bench",
    "synthetic_bench",
    "two_phase_bench",
    "update_only_bench",
    "ANOMALY_PROFILES",
    "ARRIVAL_KINDS",
    "WORKLOADS",
]


# ------------------------------------------------------------------ sources
class TaskSource:
    """A lazy, re-iterable stream of ``(submit_time, Task)`` pairs.

    Every iteration starts a fresh pass over the same deterministic
    sequence; nothing is materialized, so million-task sources cost the
    same memory as ten-task ones.
    """

    def __iter__(self) -> Iterator[tuple[float, Task]]:  # pragma: no cover
        raise NotImplementedError


class BurstSource(TaskSource):
    """The closed-loop burst shape: a generator factory called per pass.

    All the classic bench factories are this one implementation with a
    different ``make`` closure; ``make`` must return a fresh iterator
    (and re-seed any private RNG) each call so repeated passes are
    identical.
    """

    def __init__(self, make: Callable[[], Iterator[tuple[float, Task]]]):
        self._make = make

    def __iter__(self) -> Iterator[tuple[float, Task]]:
        return iter(self._make())


#: Arrival process kinds understood by :class:`ArrivalProcess`.
ARRIVAL_KINDS = ("poisson", "diurnal", "burst_idle")


@dataclass(frozen=True)
class ArrivalProcess:
    """Deterministic open-loop arrival-time generator.

    ``times()`` yields an unbounded, strictly reproducible sequence of
    arrival instants drawn from a private ``random.Random`` seeded by a
    stable string (so streams match across processes and platforms):

    * ``poisson`` — exponential inter-arrivals at ``rate``/s;
    * ``diurnal`` — inhomogeneous Poisson with intensity
      ``rate * (1 + amplitude * sin(2πt / period))`` via thinning;
    * ``burst_idle`` — ``burst_size`` simultaneous arrivals, then an
      exponential idle gap with mean ``burst_size / rate`` (long-run
      average rate stays ``rate``).
    """

    kind: str
    rate: float
    seed: int = 0
    period: float = 60.0
    amplitude: float = 0.8
    burst_size: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise BenchmarkError(
                f"unknown arrival process {self.kind!r}; "
                f"expected one of {ARRIVAL_KINDS}"
            )
        if self.rate <= 0:
            raise BenchmarkError(f"arrival rate must be positive, got {self.rate}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise BenchmarkError(
                f"diurnal amplitude must be in [0, 1], got {self.amplitude}"
            )
        if self.period <= 0:
            raise BenchmarkError(f"period must be positive, got {self.period}")
        if self.burst_size < 1:
            raise BenchmarkError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )

    def times(self) -> Iterator[float]:
        """Fresh, unbounded arrival-time stream (same seed → same times)."""
        # string seeds hash via SHA-512 in CPython — stable across
        # processes regardless of PYTHONHASHSEED
        rng = random.Random(f"arrivals:{self.kind}:{self.seed}")
        if self.kind == "poisson":
            t = 0.0
            while True:
                t += rng.expovariate(self.rate)
                yield t
        elif self.kind == "diurnal":
            peak = self.rate * (1.0 + self.amplitude)
            omega = 2.0 * math.pi / self.period
            t = 0.0
            while True:
                t += rng.expovariate(peak)
                intensity = self.rate * (
                    1.0 + self.amplitude * math.sin(omega * t)
                )
                if rng.random() * peak <= intensity:
                    yield t
        else:  # burst_idle
            t = 0.0
            while True:
                for _ in range(self.burst_size):
                    yield t
                t += rng.expovariate(self.rate / self.burst_size)


class OpenLoopSource(TaskSource):
    """Replace a base source's submit times with open-loop arrivals.

    The base stream's tasks keep their identity and order; only the
    submit instants change, so the same application work arrives under a
    controlled offered load.  Consumption stays lazy — one base task is
    pulled per arrival drawn.
    """

    def __init__(self, base: TaskSource, arrivals: ArrivalProcess):
        self.base = base
        self.arrivals = arrivals

    def __iter__(self) -> Iterator[tuple[float, Task]]:
        times = self.arrivals.times()
        for (_, task), when in zip(iter(self.base), times):
            yield (when, task)


class TenantTaggedSource(TaskSource):
    """Round-robin tenant tags (``t0``..``t{k-1}``) over a base source.

    Tasks that already carry a tenant keep it; only untagged tasks are
    assigned.  With ``tenants == 1`` everything lands on ``t0``.
    """

    def __init__(self, base: TaskSource, tenants: int):
        if tenants < 1:
            raise BenchmarkError(f"tenants must be >= 1, got {tenants}")
        self.base = base
        self.tenants = tenants

    def __iter__(self) -> Iterator[tuple[float, Task]]:
        for i, (when, task) in enumerate(iter(self.base)):
            if not task.tenant:
                task = replace(task, tenant=f"t{i % self.tenants}")
            yield (when, task)


@dataclass
class BenchWorkload:
    """An app plus its lazy task source, ready for a scenario runner."""

    app: VerifiableApplication
    source: TaskSource
    n_compute_tasks: int
    chunk_bytes: int = 1_000_000
    _tasks: list[tuple[float, Task]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def stream(self) -> Iterator[tuple[float, Task]]:
        """A fresh pass over the task source."""
        return iter(self.source)

    @property
    def tasks(self) -> list[tuple[float, Task]]:
        """Materialized view of the stream (cached; avoid for huge runs)."""
        if self._tasks is None:
            self._tasks = list(self.source)
        return self._tasks


#: Per-workload calibration: graph size, attachment, stream bias,
#: simulated step/verify costs, record size.  Calibrated so that with
#: one aggregate app core per node and the harness's 60 MB/s app-level
#: OP link, tasks cost ~0.15-1.0 simulated seconds and LH/MM saturate
#: the OP link at n=32 while HL stays CPU-bound (Sec 7.2's regimes).
ANOMALY_PROFILES = {
    "MM": dict(
        n_vertices=150, attach=6, dense_bias=0.95,
        step_cost=6e-3, record_bytes=262144, count_discount=0.05,
        verify_step_cost=1e-3, max_degree=40,
    ),
    "LH": dict(
        n_vertices=150, attach=3, dense_bias=0.7,
        step_cost=4.3e-4, record_bytes=2048, count_discount=0.05,
        verify_step_cost=3e-5, max_degree=None,
    ),
    "HL": dict(
        n_vertices=100, attach=12, dense_bias=0.95,
        step_cost=3.5e-2, record_bytes=600, count_discount=0.05,
        verify_step_cost=1e-3, max_degree=35,
    ),
    "fig5b": dict(
        n_vertices=150, attach=6, dense_bias=0.95,
        step_cost=6e-3, record_bytes=8192, count_discount=0.05,
        verify_step_cost=1e-3, max_degree=40,
    ),
}


def anomaly_bench(
    workload: str,
    n_tasks: int,
    rate: float = 2000.0,
    seed: int = 0,
) -> BenchWorkload:
    """Anomaly Detection bench workload (MM / LH / HL / fig5b)."""
    if workload not in ANOMALY_PROFILES:
        raise BenchmarkError(f"unknown anomaly workload {workload!r}")
    profile = ANOMALY_PROFILES[workload]
    base, pattern = anomaly_workload(
        workload,
        n_vertices=profile["n_vertices"],
        attach=profile["attach"],
        seed=seed,
    )
    app = AnomalyApp(
        base,
        pattern,
        step_cost=profile["step_cost"],
        count_discount=profile["count_discount"],
        record_bytes=profile["record_bytes"],
        verify_step_cost=profile["verify_step_cost"],
    )
    source = BurstSource(
        lambda: link_update_stream(
            base,
            n_tasks=n_tasks,
            rate=rate,
            seed=seed + 1,
            dense_bias=profile["dense_bias"],
            max_degree=profile["max_degree"],
        )
    )
    return BenchWorkload(app=app, source=source, n_compute_tasks=n_tasks)


def planning_bench(
    n_tasks: int,
    rate: float = 2000.0,
    seed: int = 0,
    node_cost: float = 2e-2,
) -> BenchWorkload:
    """Motion Planning bench: tasks cycle through the 107-instance suite."""
    suite = instance_suite(count=107, seed=seed)
    app = PlanningApp(instances=suite, node_cost=node_cost)

    def gen() -> Iterator[tuple[float, Task]]:
        for i in range(n_tasks):
            yield (i / rate, make_planning_task(i, i % len(suite)))

    return BenchWorkload(
        app=app,
        source=BurstSource(gen),
        n_compute_tasks=n_tasks,
        chunk_bytes=65536,
    )


def video_bench(
    n_compute: int,
    frames_per_compute: int = 4,
    rate: float = 500.0,
    seed: int = 0,
    k: int = 8,
    window: int = 4,
    points_per_frame: int = 400,
    eval_cost: float = 2.6e-6,
) -> BenchWorkload:
    """Video Analysis bench: frame updates interleaved with clustering
    tasks at the paper's update:compute ratio shape."""
    app = VideoApp(eval_cost=eval_cost)
    n_frames = n_compute * frames_per_compute + window

    def gen() -> Iterator[tuple[float, Task]]:
        frames = frame_stream(
            n_frames, points_per_frame=points_per_frame, seed=seed
        )
        t = 0.0
        made = 0
        for i, frame in enumerate(frames):
            yield (t, make_frame_task(i, frame))
            t += 1.0 / rate
            if (
                i >= window
                and (i - window) % frames_per_compute == 0
                and made < n_compute
            ):
                yield (t, make_cluster_task(made, k=k, window=window))
                t += 1.0 / rate
                made += 1

    # with n_frames = n_compute * frames_per_compute + window frames the
    # interleave loop emits exactly n_compute cluster tasks
    return BenchWorkload(
        app=app,
        source=BurstSource(gen),
        n_compute_tasks=n_compute,
        chunk_bytes=16384,
    )


def synthetic_bench(
    n_tasks: int,
    records_per_task: int = 10,
    compute_cost: float = 50e-3,
    record_bytes: int = 1024,
    rate: float = 2000.0,
    verify_cost_ratio: float = 0.1,
) -> BenchWorkload:
    """Protocol-level bench with exact knobs (used by ablations)."""
    app = SyntheticApp(
        records_per_task=records_per_task,
        compute_cost=compute_cost,
        record_bytes=record_bytes,
        verify_cost_ratio=verify_cost_ratio,
    )

    def gen() -> Iterator[tuple[float, Task]]:
        for i in range(n_tasks):
            yield (i / rate, make_compute_task(i))

    return BenchWorkload(
        app=app, source=BurstSource(gen), n_compute_tasks=n_tasks
    )


def two_phase_bench(
    n_tasks: int = 400,
    records_light: int = 2,
    records_heavy: int = 40,
    compute_cost: float = 120e-3,
    record_bytes: int = 2048,
    verify_cost_ratio: float = 0.4,
    rate: float = 2000.0,
    phase_gap: float = 10.0,
) -> BenchWorkload:
    """Two-phase synthetic workload for the role-switching bench (Fig 6d).

    Phase A tasks emit few records (verification-light), phase B tasks
    emit many (verification-heavy), with a quiet ``phase_gap`` between —
    no static verifier/executor split is right for both phases, which is
    the regime where dynamic role-switching earns its keep.
    """
    app = SyntheticApp(
        records_per_task=12,
        compute_cost=compute_cost,
        record_bytes=record_bytes,
        verify_cost_ratio=verify_cost_ratio,
    )
    half = n_tasks // 2

    def gen() -> Iterator[tuple[float, Task]]:
        for i in range(half):
            yield (i / rate, make_compute_task(i, n=records_light))
        for i in range(half, n_tasks):
            yield (
                phase_gap + (i - half) / rate,
                make_compute_task(i, n=records_heavy),
            )

    return BenchWorkload(
        app=app, source=BurstSource(gen), n_compute_tasks=n_tasks
    )


def update_only_bench(n_updates: int, rate: float = 20_000.0) -> BenchWorkload:
    """Write-only workload for the Fig 5a state-update comparison."""
    app = SyntheticApp()

    def gen() -> Iterator[tuple[float, Task]]:
        for i in range(n_updates):
            yield (i / rate, make_update_task(i, key=f"k{i % 64}", value=i))

    return BenchWorkload(app=app, source=BurstSource(gen), n_compute_tasks=0)


def open_loop_bench(
    n_tasks: int,
    rate: float = 200.0,
    process: str = "poisson",
    base: str = "synthetic",
    seed: int = 0,
    period: float = 60.0,
    amplitude: float = 0.8,
    burst_size: int = 8,
    **base_params,
) -> BenchWorkload:
    """Open-loop traffic over any base workload's task stream.

    The ``base`` factory supplies the application and the task sequence;
    its burst submit times are replaced with arrivals from an
    :class:`ArrivalProcess` (``process`` ∈ {poisson, diurnal,
    burst_idle}) at offered load ``rate`` tasks/s.  Remaining keyword
    params pass through to the base factory, whose own ``rate`` default
    is irrelevant (its times are discarded).
    """
    if base == "open_loop":
        raise BenchmarkError("open_loop cannot wrap itself")
    if base not in WORKLOADS:
        raise BenchmarkError(f"unknown base workload {base!r}")
    factory = WORKLOADS[base]
    sig = inspect.signature(factory)
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in sig.parameters.values()
    )
    names = set(sig.parameters)
    params = dict(base_params)
    # base factories name their task-count knob differently
    if "n_tasks" in names or accepts_any:
        params["n_tasks"] = n_tasks
    elif "n_compute" in names:
        params["n_compute"] = n_tasks
    elif "n_updates" in names:
        params["n_updates"] = n_tasks
    else:  # pragma: no cover - all registered factories match above
        raise BenchmarkError(f"cannot size base workload {base!r}")
    if ("seed" in names or accepts_any) and "seed" not in params:
        params["seed"] = seed
    base_wl = factory(**params)
    arrivals = ArrivalProcess(
        kind=process,
        rate=rate,
        seed=seed,
        period=period,
        amplitude=amplitude,
        burst_size=burst_size,
    )
    return BenchWorkload(
        app=base_wl.app,
        source=OpenLoopSource(base_wl.source, arrivals),
        n_compute_tasks=base_wl.n_compute_tasks,
        chunk_bytes=base_wl.chunk_bytes,
    )


def _anomaly_factory(profile: str, **params) -> BenchWorkload:
    return anomaly_bench(profile, **params)


#: Workload factories addressable by name — the registry behind
#: :class:`repro.api.DeploymentSpec` and :class:`repro.exp.Point`
#: (the anomaly factory takes the profile name under ``profile``).
WORKLOADS = {
    "anomaly": _anomaly_factory,
    "planning": planning_bench,
    "video": video_bench,
    "synthetic": synthetic_bench,
    "two_phase": two_phase_bench,
    "update_only": update_only_bench,
}
WORKLOADS["open_loop"] = open_loop_bench
