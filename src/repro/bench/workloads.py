"""Calibrated workload factories for the paper's experiments.

Each factory returns ``(app, workload_iterator, n_tasks)`` positioned on
the CPU-cost × output-volume plane of Sec 7.2.  Graph sizes are
simulation-scale substitutes for Orkut / Amazon-Products; the simulated
per-step costs are calibrated so the three anomaly workloads land in the
paper's regimes at n=32 with the harness's scaled-down OP link:

* **HL** — 6-cliques: executor CPU ≈ 95%, OP link far from saturated;
* **MM** — dense size-6: CPU ≈ 80%, OP link near saturation;
* **LH** — 3-hop paths: cheap CPU, OP link saturated.

Workloads are *bursts* by default (tasks submitted far faster than they
complete) so throughput measures capacity — the quantity whose scaling
the paper's figures plot — without per-run rate calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.apps.anomaly import AnomalyApp, anomaly_workload, link_update_stream
from repro.apps.planning import PlanningApp, instance_suite, make_planning_task
from repro.apps.synthetic import SyntheticApp, make_compute_task, make_update_task
from repro.apps.video import VideoApp, frame_stream, make_cluster_task, make_frame_task
from repro.core.api import VerifiableApplication
from repro.core.tasks import Task
from repro.errors import BenchmarkError

__all__ = [
    "BenchWorkload",
    "anomaly_bench",
    "planning_bench",
    "video_bench",
    "synthetic_bench",
    "two_phase_bench",
    "update_only_bench",
    "ANOMALY_PROFILES",
    "WORKLOADS",
]


@dataclass
class BenchWorkload:
    """An app plus its task stream, ready to hand to a scenario runner."""

    app: VerifiableApplication
    tasks: list[tuple[float, Task]]
    n_compute_tasks: int
    chunk_bytes: int = 1_000_000

    @property
    def stream(self) -> Iterator[tuple[float, Task]]:
        return iter(self.tasks)


#: Per-workload calibration: graph size, attachment, stream bias,
#: simulated step/verify costs, record size.  Calibrated so that with
#: one aggregate app core per node and the harness's 60 MB/s app-level
#: OP link, tasks cost ~0.15-1.0 simulated seconds and LH/MM saturate
#: the OP link at n=32 while HL stays CPU-bound (Sec 7.2's regimes).
ANOMALY_PROFILES = {
    "MM": dict(
        n_vertices=150, attach=6, dense_bias=0.95,
        step_cost=6e-3, record_bytes=262144, count_discount=0.05,
        verify_step_cost=1e-3, max_degree=40,
    ),
    "LH": dict(
        n_vertices=150, attach=3, dense_bias=0.7,
        step_cost=4.3e-4, record_bytes=2048, count_discount=0.05,
        verify_step_cost=3e-5, max_degree=None,
    ),
    "HL": dict(
        n_vertices=100, attach=12, dense_bias=0.95,
        step_cost=3.5e-2, record_bytes=600, count_discount=0.05,
        verify_step_cost=1e-3, max_degree=35,
    ),
    "fig5b": dict(
        n_vertices=150, attach=6, dense_bias=0.95,
        step_cost=6e-3, record_bytes=8192, count_discount=0.05,
        verify_step_cost=1e-3, max_degree=40,
    ),
}


def anomaly_bench(
    workload: str,
    n_tasks: int,
    rate: float = 2000.0,
    seed: int = 0,
) -> BenchWorkload:
    """Anomaly Detection bench workload (MM / LH / HL / fig5b)."""
    if workload not in ANOMALY_PROFILES:
        raise BenchmarkError(f"unknown anomaly workload {workload!r}")
    profile = ANOMALY_PROFILES[workload]
    base, pattern = anomaly_workload(
        workload,
        n_vertices=profile["n_vertices"],
        attach=profile["attach"],
        seed=seed,
    )
    app = AnomalyApp(
        base,
        pattern,
        step_cost=profile["step_cost"],
        count_discount=profile["count_discount"],
        record_bytes=profile["record_bytes"],
        verify_step_cost=profile["verify_step_cost"],
    )
    tasks = list(
        link_update_stream(
            base,
            n_tasks=n_tasks,
            rate=rate,
            seed=seed + 1,
            dense_bias=profile["dense_bias"],
            max_degree=profile["max_degree"],
        )
    )
    return BenchWorkload(app=app, tasks=tasks, n_compute_tasks=n_tasks)


def planning_bench(
    n_tasks: int,
    rate: float = 2000.0,
    seed: int = 0,
    node_cost: float = 2e-2,
) -> BenchWorkload:
    """Motion Planning bench: tasks cycle through the 107-instance suite."""
    suite = instance_suite(count=107, seed=seed)
    app = PlanningApp(instances=suite, node_cost=node_cost)
    tasks = [
        (i / rate, make_planning_task(i, i % len(suite)))
        for i in range(n_tasks)
    ]
    return BenchWorkload(
        app=app, tasks=tasks, n_compute_tasks=n_tasks, chunk_bytes=65536
    )


def video_bench(
    n_compute: int,
    frames_per_compute: int = 4,
    rate: float = 500.0,
    seed: int = 0,
    k: int = 8,
    window: int = 4,
    points_per_frame: int = 400,
    eval_cost: float = 2.6e-6,
) -> BenchWorkload:
    """Video Analysis bench: frame updates interleaved with clustering
    tasks at the paper's update:compute ratio shape."""
    app = VideoApp(eval_cost=eval_cost)
    frames = frame_stream(
        n_compute * frames_per_compute + window,
        points_per_frame=points_per_frame,
        seed=seed,
    )
    tasks: list[tuple[float, Task]] = []
    t = 0.0
    made = 0
    for i, frame in enumerate(frames):
        tasks.append((t, make_frame_task(i, frame)))
        t += 1.0 / rate
        if i >= window and (i - window) % frames_per_compute == 0 and made < n_compute:
            tasks.append((t, make_cluster_task(made, k=k, window=window)))
            t += 1.0 / rate
            made += 1
    return BenchWorkload(
        app=app, tasks=tasks, n_compute_tasks=made, chunk_bytes=16384
    )


def synthetic_bench(
    n_tasks: int,
    records_per_task: int = 10,
    compute_cost: float = 50e-3,
    record_bytes: int = 1024,
    rate: float = 2000.0,
    verify_cost_ratio: float = 0.1,
) -> BenchWorkload:
    """Protocol-level bench with exact knobs (used by ablations)."""
    app = SyntheticApp(
        records_per_task=records_per_task,
        compute_cost=compute_cost,
        record_bytes=record_bytes,
        verify_cost_ratio=verify_cost_ratio,
    )
    tasks = [(i / rate, make_compute_task(i)) for i in range(n_tasks)]
    return BenchWorkload(app=app, tasks=tasks, n_compute_tasks=n_tasks)


def two_phase_bench(
    n_tasks: int = 400,
    records_light: int = 2,
    records_heavy: int = 40,
    compute_cost: float = 120e-3,
    record_bytes: int = 2048,
    verify_cost_ratio: float = 0.4,
    rate: float = 2000.0,
    phase_gap: float = 10.0,
) -> BenchWorkload:
    """Two-phase synthetic workload for the role-switching bench (Fig 6d).

    Phase A tasks emit few records (verification-light), phase B tasks
    emit many (verification-heavy), with a quiet ``phase_gap`` between —
    no static verifier/executor split is right for both phases, which is
    the regime where dynamic role-switching earns its keep.
    """
    app = SyntheticApp(
        records_per_task=12,
        compute_cost=compute_cost,
        record_bytes=record_bytes,
        verify_cost_ratio=verify_cost_ratio,
    )
    tasks: list[tuple[float, Task]] = []
    half = n_tasks // 2
    for i in range(half):
        tasks.append((i / rate, make_compute_task(i, n=records_light)))
    for i in range(half, n_tasks):
        tasks.append(
            (phase_gap + (i - half) / rate, make_compute_task(i, n=records_heavy))
        )
    return BenchWorkload(app=app, tasks=tasks, n_compute_tasks=n_tasks)


def update_only_bench(n_updates: int, rate: float = 20_000.0) -> BenchWorkload:
    """Write-only workload for the Fig 5a state-update comparison."""
    app = SyntheticApp()
    tasks = [
        (i / rate, make_update_task(i, key=f"k{i % 64}", value=i))
        for i in range(n_updates)
    ]
    return BenchWorkload(app=app, tasks=tasks, n_compute_tasks=0)


def _anomaly_factory(profile: str, **params) -> BenchWorkload:
    return anomaly_bench(profile, **params)


#: Workload factories addressable by name — the registry behind
#: :class:`repro.api.DeploymentSpec` and :class:`repro.exp.Point`
#: (the anomaly factory takes the profile name under ``profile``).
WORKLOADS = {
    "anomaly": _anomaly_factory,
    "planning": planning_bench,
    "video": video_bench,
    "synthetic": synthetic_bench,
    "two_phase": two_phase_bench,
    "update_only": update_only_bench,
}
