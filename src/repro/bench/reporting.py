"""Benchmark output formatting: paper-style tables and series."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bench.scenarios import ScenarioResult

__all__ = ["print_figure", "print_series", "print_table", "ratio"]


#: Accumulated figure output for the session; the benchmarks' conftest
#: replays it in pytest's terminal summary (after capture has ended) so
#: ``pytest benchmarks/ --benchmark-only | tee`` logs contain every
#: reproduced table and series.
_BUFFER: list[str] = []


def get_buffer() -> list[str]:
    """All figure lines emitted so far in this process."""
    return _BUFFER


def _emit(line: str) -> None:
    """Print a figure line and remember it for the terminal summary."""
    _BUFFER.append(line)
    print(line)


def print_figure(title: str, results: Iterable[ScenarioResult]) -> None:
    """Print one figure's measurements as aligned rows."""
    _emit(f"\n=== {title} ===")
    for res in results:
        _emit("  " + res.row())


def print_series(
    title: str,
    series: Sequence[tuple[float, float]],
    unit: str = "",
    max_rows: int = 40,
) -> None:
    """Print a (time, value) trace, downsampled to ``max_rows``."""
    _emit(f"\n=== {title} ===")
    stride = max(1, len(series) // max_rows)
    for t, value in series[::stride]:
        _emit(f"  t={t:>8.2f}  {value:>14.1f} {unit}")


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a generic table with a header."""
    _emit(f"\n=== {title} ===")
    _emit("  " + " | ".join(str(h) for h in header))
    for row in rows:
        _emit("  " + " | ".join(str(c) for c in row))


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b (inf when b == 0)."""
    return a / b if b else float("inf")
