"""Benchmark output formatting: paper-style tables, series, artifacts.

Besides the human-readable tables, this module writes the machine-
readable sweep artifact (``BENCH_sweep.json``) produced by
``python -m repro.bench <figure> --json PATH``: the sweep spec, the
code version the results were computed under, per-point results with
wall-clock and cache provenance, and aggregate cache statistics.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.bench.scenarios import ScenarioResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exp -> bench)
    from repro.exp.runner import SweepOutcome

__all__ = [
    "format_result_row",
    "format_tenant_rows",
    "microbench_artifact",
    "print_figure",
    "print_series",
    "print_table",
    "ratio",
    "sweep_artifact",
    "write_sweep_json",
    "write_microbench_json",
]


#: Accumulated figure output for the session; the benchmarks' conftest
#: replays it in pytest's terminal summary (after capture has ended) so
#: ``pytest benchmarks/ --benchmark-only | tee`` logs contain every
#: reproduced table and series.
_BUFFER: list[str] = []


def get_buffer() -> list[str]:
    """All figure lines emitted so far in this process."""
    return _BUFFER


def _emit(line: str) -> None:
    """Print a figure line and remember it for the terminal summary."""
    _BUFFER.append(line)
    print(line)


def format_result_row(res: ScenarioResult) -> str:
    """One aligned, printable table row for a scenario result.

    Legacy (closed-loop) results render exactly as before; results
    carrying SLO measurements grow a latency-percentile/goodput segment.
    """
    row = (
        f"{res.system:<10} n={res.n:<3} f={res.f} "
        f"thr={res.throughput:>12.0f} rec/s  "
        f"lat={res.mean_latency * 1e3:>8.1f} ms  "
        f"opbw={res.op_bandwidth / 1e9:>6.2f} GB/s  "
        f"cpu={res.executor_utilization * 100:>5.1f}%"
    )
    if res.goodput or res.per_tenant:
        row += (
            f"  p50={res.p50_latency * 1e3:>7.1f} ms "
            f"p99={res.p99_latency * 1e3:>7.1f} ms "
            f"p999={res.p999_latency * 1e3:>7.1f} ms "
            f"goodput={res.goodput:>10.0f} rec/s"
        )
    return row


def format_tenant_rows(res: ScenarioResult) -> list[str]:
    """Per-tenant breakdown rows (empty for untenanted results)."""
    return [
        f"{tenant:<10} tasks={s.get('count', 0):<6} "
        f"p50={s.get('p50', 0.0) * 1e3:>7.1f} ms  "
        f"p99={s.get('p99', 0.0) * 1e3:>7.1f} ms  "
        f"p999={s.get('p999', 0.0) * 1e3:>7.1f} ms"
        for tenant, s in res.per_tenant.items()
    ]


def print_figure(title: str, results: Iterable[ScenarioResult]) -> None:
    """Print one figure's measurements as aligned rows (multi-tenant
    results additionally get an indented per-tenant breakdown)."""
    _emit(f"\n=== {title} ===")
    for res in results:
        _emit("  " + format_result_row(res))
        for line in format_tenant_rows(res):
            _emit("    " + line)


def print_series(
    title: str,
    series: Sequence[tuple[float, float]],
    unit: str = "",
    max_rows: int = 40,
) -> None:
    """Print a (time, value) trace, downsampled to ``max_rows``."""
    _emit(f"\n=== {title} ===")
    stride = max(1, len(series) // max_rows)
    for t, value in series[::stride]:
        _emit(f"  t={t:>8.2f}  {value:>14.1f} {unit}")


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a generic table with a header."""
    _emit(f"\n=== {title} ===")
    _emit("  " + " | ".join(str(h) for h in header))
    for row in rows:
        _emit("  " + " | ".join(str(c) for c in row))


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b (inf when b == 0)."""
    return a / b if b else float("inf")


# ------------------------------------------------------------------ artifacts
def sweep_artifact(outcome: "SweepOutcome") -> dict:
    """JSON-able artifact for one sweep run (the BENCH_sweep.json body)."""
    cached = sum(1 for o in outcome.outcomes if o.cached)
    return {
        "spec": outcome.spec.to_dict(),
        "code_version": outcome.code_version,
        "jobs": outcome.jobs,
        "wall_seconds": outcome.wall_seconds,
        "cache": {
            "hits": cached,
            "misses": len(outcome.outcomes) - cached,
        },
        "points": [
            {
                "point": o.point.to_dict(),
                "result": o.result.to_dict(),
                "wall_seconds": o.wall_seconds,
                "cached": o.cached,
            }
            for o in outcome.outcomes
        ],
    }


def write_sweep_json(path: str, outcome: "SweepOutcome") -> None:
    """Write the sweep artifact to ``path`` (pretty, sorted keys)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(sweep_artifact(outcome), fh, indent=2, sort_keys=True)
        fh.write("\n")


def microbench_artifact(
    results: Iterable, extras: dict | None = None
) -> dict:
    """JSON-able artifact for a kernel microbenchmark run
    (the BENCH_kernel.json body).

    ``results`` are :class:`repro.bench.microbench.MicrobenchResult`
    instances; ``extras`` merges additional top-level sections (e.g. an
    end-to-end sweep wall time measured in the same invocation).
    """
    body = {"microbench": [r.to_dict() for r in results]}
    if extras:
        body.update(extras)
    return body


def write_microbench_json(
    path: str, results: Iterable, extras: dict | None = None
) -> None:
    """Write the microbenchmark artifact to ``path`` (pretty, sorted)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            microbench_artifact(results, extras), fh, indent=2, sort_keys=True
        )
        fh.write("\n")
