"""Command-line figure runner: ``python -m repro.bench <figure> [...]``.

A thin convenience layer over the sweep engine for regenerating a
single paper figure without pytest, e.g.::

    python -m repro.bench fig5b --sizes 4 8 16 --tasks 120
    python -m repro.bench fig5b --sizes 4 8 --jobs 4 --json BENCH_sweep.json
    python -m repro.bench fig2a
    python -m repro.bench table1

Measured figures are declared as :class:`~repro.exp.SweepSpec` grids and
executed by :func:`repro.exp.run_sweep` — serial by default, fanned out
over a process pool with ``--jobs N`` (bit-identical results either
way), with finished points served from the content-addressed result
cache (disable with ``--no-cache``).  ``--json PATH`` writes the sweep
artifact (spec + per-point results + cache provenance).

The ``trace`` subcommand runs one scenario with trace sinks attached and
writes a JSONL event log plus a Chrome ``trace_event`` file loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``::

    python -m repro.bench trace --scenario anomaly-mm --n 8

The ``kernel`` subcommand times the DES hot paths in isolation (event
churn, multicast fan-out, meter ingest) and writes the artifact the CI
perf-smoke job compares against::

    python -m repro.bench kernel --fig5b --json BENCH_kernel.json

Benchmarks under ``benchmarks/`` remain the canonical reproduction (they
also assert the shapes); this runner trades assertions for speed and is
sized for interactive use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro import api
from repro.bench.analytic import rsm_parallel_tasks, table1
from repro.bench.microbench import run_kernel_microbench
from repro.bench.reporting import (
    print_figure,
    print_table,
    write_microbench_json,
    write_sweep_json,
)
from repro.baselines.store_models import (
    basil_updates_per_sec,
    kauri_updates_per_sec,
)
from repro.core.config import OsirisConfig
from repro.core.faults import CorruptRecordFault
from repro.exp import Point, ResultCache, SweepSpec, run_sweep
from repro.exp.spec import kv
from repro.obs.sinks import ChromeTraceSink, JsonlTraceSink

__all__ = ["main"]

#: Wall deadline (simulated seconds) for CLI figure runs.
DEADLINE = 3000.0


def _fig2a(args) -> None:
    rows = [
        (n,) + tuple(rsm_parallel_tasks(n, f) for f in (0, 1, 2))
        for n in (1, 25, 50, 75, 100, 125)
    ]
    print_table("Fig 2a: parallel tasks under RSM", ["n", "f=0", "f=1", "f=2"], rows)


def _table1(args) -> None:
    rows = [
        (
            r.system,
            r.computation_replication,
            r.computation_scalability,
            r.communication_replication,
            r.faults_tolerated,
        )
        for r in table1(f=args.f)
    ]
    print_table(
        f"Table 1 (f={args.f})",
        ["system", "comp repl", "scalability", "comm repl", "faults"],
        rows,
    )


def _fig5a(args) -> None:
    rows = [
        (
            n,
            f"{kauri_updates_per_sec(n):.0f}",
            f"{basil_updates_per_sec(n):.0f}",
        )
        for n in args.sizes
    ]
    print_table(
        "Fig 5a comparators (models); run the pytest bench for the "
        "measured OsirisBFT store",
        ["n", "Kauri", "Basil"],
        rows,
    )


def _anomaly_spec(profile: str):
    def build(args) -> SweepSpec:
        return SweepSpec.grid(
            args.figure,
            "anomaly",
            {"profile": profile, "n_tasks": args.tasks, "seed": args.seed},
            sizes=args.sizes,
            seed=args.seed,
            deadline=DEADLINE,
        )

    return build


def _fig5c_spec(args) -> SweepSpec:
    return SweepSpec.grid(
        "fig5c",
        "planning",
        {"n_tasks": args.tasks, "seed": args.seed},
        sizes=args.sizes,
        seed=args.seed,
        deadline=DEADLINE,
    )


def _fig5d_spec(args) -> SweepSpec:
    return SweepSpec.grid(
        "fig5d",
        "video",
        {"n_compute": args.tasks, "seed": args.seed},
        sizes=args.sizes,
        seed=args.seed,
        deadline=DEADLINE,
    )


def _slo_spec(args) -> SweepSpec:
    """Offered load × shard count over the open-loop generator: every
    point reports goodput and latency percentiles, sharded points add
    per-tenant/per-shard breakdowns.  Cluster size is the largest
    ``--sizes`` entry."""
    n = max(args.sizes)
    points = [
        Point(
            system="osiris",
            workload="open_loop",
            workload_params=kv(
                {
                    "n_tasks": args.tasks,
                    "rate": rate,
                    "process": "poisson",
                    "seed": args.seed,
                }
            ),
            n=n,
            seed=args.seed,
            deadline=DEADLINE,
            shards=shards,
            tenants=2 * shards,
            label=f"s{shards}-r{rate:g}",
        )
        for shards in (1, 2)
        for rate in (50.0, 100.0, 200.0)
    ]
    return SweepSpec.of("slo", points)


def _fig7b_spec(args) -> SweepSpec:
    wp = kv(
        {
            "n_tasks": args.tasks,
            "records_per_task": 10,
            "compute_cost": 300e-3,
            "record_bytes": 4096,
            "verify_cost_ratio": 0.05,
        }
    )
    points = [
        Point(
            system="osiris", workload="synthetic", workload_params=wp,
            n=32, f=f, seed=args.seed, deadline=DEADLINE,
            label=f"osiris-f{f}",
        )
        for f in (1, 2, 3, 4)
    ] + [
        Point(
            system="rcp", workload="synthetic", workload_params=wp,
            n=32, f=f, seed=args.seed, deadline=DEADLINE,
            label=f"rcp-f{f}",
        )
        for f in (1, 2)
    ]
    return SweepSpec.of("fig7b", points)


# --------------------------------------------------------------------- trace
def _trace_spec(args, sinks, workload: str, workload_params: dict, **kw):
    return api.run(
        api.DeploymentSpec(
            workload=workload,
            workload_params=workload_params,
            n=kw.pop("n", args.n),
            seed=args.seed,
            deadline=DEADLINE,
            sinks=sinks,
            **kw,
        )
    )


def _trace_anomaly(profile: str):
    def run(args, sinks):
        return _trace_spec(
            args, sinks, "anomaly",
            {"profile": profile, "n_tasks": args.tasks, "seed": args.seed},
        )

    return run


def _trace_synthetic(args, sinks):
    return _trace_spec(args, sinks, "synthetic", {"n_tasks": args.tasks})


def _trace_planning(args, sinks):
    return _trace_spec(
        args, sinks, "planning", {"n_tasks": args.tasks, "seed": args.seed}
    )


def _trace_video(args, sinks):
    return _trace_spec(
        args, sinks, "video", {"n_compute": args.tasks, "seed": args.seed}
    )


def _trace_sharded(args, sinks):
    """Two tenant-tagged Poisson streams routed by tenant-key hash over
    two IP→OP pipelines sharing one verifier fleet; the trace carries
    the per-tenant admission/outcome events."""
    return _trace_spec(
        args,
        sinks,
        "open_loop",
        {
            "n_tasks": args.tasks,
            "rate": 40.0,
            "process": "poisson",
            "seed": args.seed,
        },
        shards=2,
        tenants=2,
    )


def _trace_recovery(args, sinks):
    """Fig 7a shape: a streaming workload where half the executor pool
    starts corrupting records mid-run; the trace shows fault detection,
    reassignment and role-switch recovery on the timeline."""
    rate = 12.0
    config = OsirisConfig(
        f=1,
        chunk_bytes=1_000_000,
        suspect_timeout=2.0,
        cores_per_node=1,
        role_switching=True,
        role_switch_interval=0.5,
        switch_patience=2,
        switch_cooldown=3,
    )
    activate = 0.3 * (args.tasks / rate)
    faults = {
        f"e{i}": CorruptRecordFault(activate_at=activate) for i in range(5)
    }
    return _trace_spec(
        args,
        sinks,
        "synthetic",
        {
            "n_tasks": args.tasks,
            "records_per_task": 10,
            "compute_cost": 250e-3,
            "record_bytes": 4096,
            "rate": rate,
            "verify_cost_ratio": 0.15,
        },
        n=max(args.n, 14),
        k=3,
        config=api.config_overrides(config),
        faults=faults,
    )


TRACE_SCENARIOS: dict[str, Callable] = {
    "anomaly-mm": _trace_anomaly("MM"),
    "anomaly-lh": _trace_anomaly("LH"),
    "anomaly-hl": _trace_anomaly("HL"),
    "synthetic": _trace_synthetic,
    "planning": _trace_planning,
    "video": _trace_video,
    "recovery": _trace_recovery,
    "sharded": _trace_sharded,
}


def _trace_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Run one scenario with trace sinks attached; writes a "
        "JSONL event log and a Perfetto-loadable Chrome trace.",
    )
    parser.add_argument(
        "--scenario", choices=sorted(TRACE_SCENARIOS), default="anomaly-mm"
    )
    parser.add_argument("--n", type=int, default=8, help="cluster size")
    parser.add_argument("--tasks", type=int, default=40)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        default=None,
        help="output path prefix (default: trace-<scenario>)",
    )
    args = parser.parse_args(argv)
    prefix = args.out or f"trace-{args.scenario}"
    jsonl_path = f"{prefix}.jsonl"
    chrome_path = f"{prefix}.chrome.json"
    try:
        jsonl = JsonlTraceSink(jsonl_path)
    except OSError as exc:
        parser.error(f"cannot open trace output {jsonl_path!r}: {exc}")
    chrome = ChromeTraceSink(chrome_path)
    result = TRACE_SCENARIOS[args.scenario](args, [jsonl, chrome])
    jsonl.close()
    chrome.close()
    print(result.row())
    print(f"wrote {jsonl.event_count} events to {jsonl_path}")
    print(
        f"wrote Chrome trace to {chrome_path} "
        "(load in https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


# -------------------------------------------------------------------- kernel
def _kernel_main(argv) -> int:
    """``python -m repro.bench kernel``: kernel-layer microbenchmarks.

    Times the DES hot paths in isolation (event churn, multicast
    fan-out, ByteMeter ingest) and optionally the fig5b sweep end to
    end, writing the machine-readable artifact for the CI perf-smoke
    job with ``--json``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench kernel",
        description="Kernel hot-path microbenchmarks (wall-clock).",
    )
    parser.add_argument(
        "--events", type=int, default=200_000,
        help="events to dispatch in the churn bench (default 200000)",
    )
    parser.add_argument(
        "--nodes", type=int, default=32,
        help="cluster size for the multicast bench (default 32)",
    )
    parser.add_argument(
        "--rounds", type=int, default=1_000,
        help="multicast rounds (default 1000)",
    )
    parser.add_argument(
        "--samples", type=int, default=1_000_000,
        help="meter ingest samples (default 1000000)",
    )
    parser.add_argument(
        "--fig5b", action="store_true",
        help="also run the fig5b sweep (uncached, serial) and record "
        "its wall time in the artifact",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the microbenchmark artifact to PATH",
    )
    args = parser.parse_args(argv)
    results = run_kernel_microbench(
        events=args.events,
        n_nodes=args.nodes,
        rounds=args.rounds,
        samples=args.samples,
    )
    print_table(
        "Kernel microbenchmarks",
        ["bench", "ops", "wall (s)", "ops/sec"],
        [
            (r.name, r.ops, f"{r.wall_seconds:.3f}", f"{r.ops_per_sec:,.0f}")
            for r in results
        ],
    )
    extras = {}
    if args.fig5b:
        _, build_spec = SWEEPS["fig5b"]
        spec = build_spec(
            argparse.Namespace(
                figure="fig5b", sizes=[4, 8, 16], tasks=120, seed=1
            )
        )
        outcome = run_sweep(spec, jobs=1, cache=None)
        extras["fig5b_sweep"] = {
            "points": len(spec),
            "wall_seconds": outcome.wall_seconds,
        }
        print(f"\nfig5b sweep: {len(spec)} points, {outcome.wall_seconds:.2f}s")
    if args.json:
        write_microbench_json(args.json, results, extras)
        print(f"wrote microbenchmark artifact to {args.json}")
    return 0


#: Analytic figures: closed-form models, printed directly (no sweep).
ANALYTIC: dict[str, Callable] = {
    "fig2a": _fig2a,
    "table1": _table1,
    "fig5a": _fig5a,
}

#: Measured figures: (title, args -> SweepSpec).
SWEEPS: dict[str, tuple[str, Callable]] = {
    "fig5b": ("Fig 5b: Anomaly Detection", _anomaly_spec("fig5b")),
    "fig6a": ("Fig 6a: LH (low CPU, high output)", _anomaly_spec("LH")),
    "fig6b": ("Fig 6b: HL (high CPU, low output)", _anomaly_spec("HL")),
    "fig6c": ("Fig 6c: MM (medium CPU & output)", _anomaly_spec("MM")),
    "fig5c": ("Fig 5c: Motion Planning", _fig5c_spec),
    "fig5d": ("Fig 5d: Video Analysis", _fig5d_spec),
    "fig7b": ("Fig 7b: throughput vs fault level f (n=32)", _fig7b_spec),
    "slo": ("Multi-tenant SLO: offered load × shard count", _slo_spec),
}

FIGURES: tuple[str, ...] = tuple(sorted({**ANALYTIC, **SWEEPS}))


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "kernel":
        return _kernel_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a paper figure interactively "
        "(or 'trace' to capture an event trace).",
    )
    parser.add_argument("figure", choices=FIGURES)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[4, 8, 16],
        help="cluster sizes to sweep (default: 4 8 16)",
    )
    parser.add_argument(
        "--tasks", type=int, default=120, help="tasks per scenario"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--f", type=int, default=1, help="fault level (table1)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width for sweep points (default 1: serial; "
        "results are bit-identical at any width)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the sweep artifact (spec, per-point results, cache "
        "provenance) to PATH",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_EXP_CACHE_DIR or "
        "~/.cache/repro-exp)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point, bypassing the result cache",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.figure in ANALYTIC:
        ANALYTIC[args.figure](args)
        return 0
    title, build_spec = SWEEPS[args.figure]
    spec = build_spec(args)
    cache = (
        None
        if args.no_cache
        else ResultCache(Path(args.cache_dir) if args.cache_dir else None)
    )
    outcome = run_sweep(spec, jobs=args.jobs, cache=cache)
    print_figure(title, outcome.results)
    print(
        f"[{len(spec)} points, jobs={args.jobs}, "
        f"{outcome.cache_hits} cached, {outcome.wall_seconds:.2f}s]"
    )
    if args.json:
        write_sweep_json(args.json, outcome)
        print(f"wrote sweep artifact to {args.json}")
    return 0
