"""Command-line figure runner: ``python -m repro.bench <figure> [...]``.

A thin convenience layer over the scenario harness for regenerating a
single paper figure without pytest, e.g.::

    python -m repro.bench fig5b --sizes 4 8 16 --tasks 120
    python -m repro.bench fig2a
    python -m repro.bench table1

The ``trace`` subcommand runs one scenario with trace sinks attached and
writes a JSONL event log plus a Chrome ``trace_event`` file loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``::

    python -m repro.bench trace --scenario anomaly-mm --n 8

Benchmarks under ``benchmarks/`` remain the canonical reproduction (they
also assert the shapes); this runner trades assertions for speed and is
sized for interactive use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench.analytic import rsm_parallel_tasks, table1
from repro.bench.reporting import print_figure, print_table
from repro.bench.scenarios import run_osiris, run_rcp, run_zft
from repro.bench.workloads import (
    anomaly_bench,
    planning_bench,
    synthetic_bench,
    video_bench,
)
from repro.baselines.store_models import (
    basil_updates_per_sec,
    kauri_updates_per_sec,
)
from repro.core.config import OsirisConfig
from repro.core.faults import CorruptRecordFault
from repro.obs.sinks import ChromeTraceSink, JsonlTraceSink

__all__ = ["main"]


def _sweep(factory: Callable, sizes, n_tasks, seed, systems=("zft", "osiris", "rcp")):
    results = []
    for n in sizes:
        if "zft" in systems:
            results.append(run_zft(factory(n_tasks, seed), n=n, deadline=3000))
        if "osiris" in systems:
            results.append(
                run_osiris(factory(n_tasks, seed), n=n, seed=seed, deadline=3000)
            )
        if "rcp" in systems and n >= 3:
            results.append(run_rcp(factory(n_tasks, seed), n=n, deadline=3000))
    return results


def _fig2a(args) -> None:
    rows = [
        (n,) + tuple(rsm_parallel_tasks(n, f) for f in (0, 1, 2))
        for n in (1, 25, 50, 75, 100, 125)
    ]
    print_table("Fig 2a: parallel tasks under RSM", ["n", "f=0", "f=1", "f=2"], rows)


def _table1(args) -> None:
    rows = [
        (
            r.system,
            r.computation_replication,
            r.computation_scalability,
            r.communication_replication,
            r.faults_tolerated,
        )
        for r in table1(f=args.f)
    ]
    print_table(
        f"Table 1 (f={args.f})",
        ["system", "comp repl", "scalability", "comm repl", "faults"],
        rows,
    )


def _fig5a(args) -> None:
    rows = [
        (
            n,
            f"{kauri_updates_per_sec(n):.0f}",
            f"{basil_updates_per_sec(n):.0f}",
        )
        for n in args.sizes
    ]
    print_table(
        "Fig 5a comparators (models); run the pytest bench for the "
        "measured OsirisBFT store",
        ["n", "Kauri", "Basil"],
        rows,
    )


def _anomaly(profile: str, title: str):
    def run(args) -> None:
        factory = lambda n_tasks, seed: anomaly_bench(
            profile, n_tasks=n_tasks, seed=seed
        )
        print_figure(title, _sweep(factory, args.sizes, args.tasks, args.seed))

    return run


def _fig5c(args) -> None:
    factory = lambda n_tasks, seed: planning_bench(n_tasks=n_tasks, seed=seed)
    print_figure(
        "Fig 5c: Motion Planning", _sweep(factory, args.sizes, args.tasks, args.seed)
    )


def _fig5d(args) -> None:
    factory = lambda n_tasks, seed: video_bench(n_compute=n_tasks, seed=seed)
    print_figure(
        "Fig 5d: Video Analysis", _sweep(factory, args.sizes, args.tasks, args.seed)
    )


def _fig7b(args) -> None:
    results = []
    for f in (1, 2, 3, 4):
        wl = synthetic_bench(
            args.tasks,
            records_per_task=10,
            compute_cost=300e-3,
            record_bytes=4096,
            verify_cost_ratio=0.05,
        )
        results.append(run_osiris(wl, n=32, f=f, seed=args.seed, deadline=3000))
    for f in (1, 2):
        wl = synthetic_bench(
            args.tasks,
            records_per_task=10,
            compute_cost=300e-3,
            record_bytes=4096,
            verify_cost_ratio=0.05,
        )
        results.append(run_rcp(wl, n=32, f=f, deadline=3000))
    print_figure("Fig 7b: throughput vs fault level f (n=32)", results)


# --------------------------------------------------------------------- trace
def _trace_anomaly(profile: str):
    def run(args, sinks):
        wl = anomaly_bench(profile, n_tasks=args.tasks, seed=args.seed)
        return run_osiris(
            wl, n=args.n, seed=args.seed, deadline=3000, sinks=sinks
        )

    return run


def _trace_synthetic(args, sinks):
    wl = synthetic_bench(args.tasks)
    return run_osiris(wl, n=args.n, seed=args.seed, deadline=3000, sinks=sinks)


def _trace_planning(args, sinks):
    wl = planning_bench(n_tasks=args.tasks, seed=args.seed)
    return run_osiris(wl, n=args.n, seed=args.seed, deadline=3000, sinks=sinks)


def _trace_video(args, sinks):
    wl = video_bench(n_compute=args.tasks, seed=args.seed)
    return run_osiris(wl, n=args.n, seed=args.seed, deadline=3000, sinks=sinks)


def _trace_recovery(args, sinks):
    """Fig 7a shape: a streaming workload where half the executor pool
    starts corrupting records mid-run; the trace shows fault detection,
    reassignment and role-switch recovery on the timeline."""
    rate = 12.0
    wl = synthetic_bench(
        args.tasks,
        records_per_task=10,
        compute_cost=250e-3,
        record_bytes=4096,
        rate=rate,
        verify_cost_ratio=0.15,
    )
    config = OsirisConfig(
        f=1,
        chunk_bytes=1_000_000,
        suspect_timeout=2.0,
        cores_per_node=1,
        role_switching=True,
        role_switch_interval=0.5,
        switch_patience=2,
        switch_cooldown=3,
    )
    n = max(args.n, 14)
    activate = 0.3 * (args.tasks / rate)
    faults = {
        f"e{i}": CorruptRecordFault(activate_at=activate) for i in range(5)
    }
    return run_osiris(
        wl,
        n=n,
        k=3,
        seed=args.seed,
        deadline=3000,
        config=config,
        executor_faults=faults,
        sinks=sinks,
    )


TRACE_SCENARIOS: dict[str, Callable] = {
    "anomaly-mm": _trace_anomaly("MM"),
    "anomaly-lh": _trace_anomaly("LH"),
    "anomaly-hl": _trace_anomaly("HL"),
    "synthetic": _trace_synthetic,
    "planning": _trace_planning,
    "video": _trace_video,
    "recovery": _trace_recovery,
}


def _trace_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Run one scenario with trace sinks attached; writes a "
        "JSONL event log and a Perfetto-loadable Chrome trace.",
    )
    parser.add_argument(
        "--scenario", choices=sorted(TRACE_SCENARIOS), default="anomaly-mm"
    )
    parser.add_argument("--n", type=int, default=8, help="cluster size")
    parser.add_argument("--tasks", type=int, default=40)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        default=None,
        help="output path prefix (default: trace-<scenario>)",
    )
    args = parser.parse_args(argv)
    prefix = args.out or f"trace-{args.scenario}"
    jsonl_path = f"{prefix}.jsonl"
    chrome_path = f"{prefix}.chrome.json"
    try:
        jsonl = JsonlTraceSink(jsonl_path)
    except OSError as exc:
        parser.error(f"cannot open trace output {jsonl_path!r}: {exc}")
    chrome = ChromeTraceSink(chrome_path)
    result = TRACE_SCENARIOS[args.scenario](args, [jsonl, chrome])
    jsonl.close()
    chrome.close()
    print(result.row())
    print(f"wrote {jsonl.event_count} events to {jsonl_path}")
    print(
        f"wrote Chrome trace to {chrome_path} "
        "(load in https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


FIGURES: dict[str, Callable] = {
    "fig2a": _fig2a,
    "table1": _table1,
    "fig5a": _fig5a,
    "fig5b": _anomaly("fig5b", "Fig 5b: Anomaly Detection"),
    "fig6a": _anomaly("LH", "Fig 6a: LH (low CPU, high output)"),
    "fig6b": _anomaly("HL", "Fig 6b: HL (high CPU, low output)"),
    "fig6c": _anomaly("MM", "Fig 6c: MM (medium CPU & output)"),
    "fig5c": _fig5c,
    "fig5d": _fig5d,
    "fig7b": _fig7b,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a paper figure interactively "
        "(or 'trace' to capture an event trace).",
    )
    parser.add_argument("figure", choices=sorted(FIGURES))
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[4, 8, 16],
        help="cluster sizes to sweep (default: 4 8 16)",
    )
    parser.add_argument(
        "--tasks", type=int, default=120, help="tasks per scenario"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--f", type=int, default=1, help="fault level (table1)")
    args = parser.parse_args(argv)
    FIGURES[args.figure](args)
    return 0
