"""Command-line figure runner: ``python -m repro.bench <figure> [...]``.

A thin convenience layer over the scenario harness for regenerating a
single paper figure without pytest, e.g.::

    python -m repro.bench fig5b --sizes 4 8 16 --tasks 120
    python -m repro.bench fig2a
    python -m repro.bench table1

Benchmarks under ``benchmarks/`` remain the canonical reproduction (they
also assert the shapes); this runner trades assertions for speed and is
sized for interactive use.
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.bench.analytic import rsm_parallel_tasks, table1
from repro.bench.reporting import print_figure, print_table
from repro.bench.scenarios import run_osiris, run_rcp, run_zft
from repro.bench.workloads import (
    anomaly_bench,
    planning_bench,
    synthetic_bench,
    video_bench,
)
from repro.baselines.store_models import (
    basil_updates_per_sec,
    kauri_updates_per_sec,
)

__all__ = ["main"]


def _sweep(factory: Callable, sizes, n_tasks, seed, systems=("zft", "osiris", "rcp")):
    results = []
    for n in sizes:
        if "zft" in systems:
            results.append(run_zft(factory(n_tasks, seed), n=n, deadline=3000))
        if "osiris" in systems:
            results.append(
                run_osiris(factory(n_tasks, seed), n=n, seed=seed, deadline=3000)
            )
        if "rcp" in systems and n >= 3:
            results.append(run_rcp(factory(n_tasks, seed), n=n, deadline=3000))
    return results


def _fig2a(args) -> None:
    rows = [
        (n,) + tuple(rsm_parallel_tasks(n, f) for f in (0, 1, 2))
        for n in (1, 25, 50, 75, 100, 125)
    ]
    print_table("Fig 2a: parallel tasks under RSM", ["n", "f=0", "f=1", "f=2"], rows)


def _table1(args) -> None:
    rows = [
        (
            r.system,
            r.computation_replication,
            r.computation_scalability,
            r.communication_replication,
            r.faults_tolerated,
        )
        for r in table1(f=args.f)
    ]
    print_table(
        f"Table 1 (f={args.f})",
        ["system", "comp repl", "scalability", "comm repl", "faults"],
        rows,
    )


def _fig5a(args) -> None:
    rows = [
        (
            n,
            f"{kauri_updates_per_sec(n):.0f}",
            f"{basil_updates_per_sec(n):.0f}",
        )
        for n in args.sizes
    ]
    print_table(
        "Fig 5a comparators (models); run the pytest bench for the "
        "measured OsirisBFT store",
        ["n", "Kauri", "Basil"],
        rows,
    )


def _anomaly(profile: str, title: str):
    def run(args) -> None:
        factory = lambda n_tasks, seed: anomaly_bench(
            profile, n_tasks=n_tasks, seed=seed
        )
        print_figure(title, _sweep(factory, args.sizes, args.tasks, args.seed))

    return run


def _fig5c(args) -> None:
    factory = lambda n_tasks, seed: planning_bench(n_tasks=n_tasks, seed=seed)
    print_figure(
        "Fig 5c: Motion Planning", _sweep(factory, args.sizes, args.tasks, args.seed)
    )


def _fig5d(args) -> None:
    factory = lambda n_tasks, seed: video_bench(n_compute=n_tasks, seed=seed)
    print_figure(
        "Fig 5d: Video Analysis", _sweep(factory, args.sizes, args.tasks, args.seed)
    )


def _fig7b(args) -> None:
    results = []
    for f in (1, 2, 3, 4):
        wl = synthetic_bench(
            args.tasks,
            records_per_task=10,
            compute_cost=300e-3,
            record_bytes=4096,
            verify_cost_ratio=0.05,
        )
        results.append(run_osiris(wl, n=32, f=f, seed=args.seed, deadline=3000))
    for f in (1, 2):
        wl = synthetic_bench(
            args.tasks,
            records_per_task=10,
            compute_cost=300e-3,
            record_bytes=4096,
            verify_cost_ratio=0.05,
        )
        results.append(run_rcp(wl, n=32, f=f, deadline=3000))
    print_figure("Fig 7b: throughput vs fault level f (n=32)", results)


FIGURES: dict[str, Callable] = {
    "fig2a": _fig2a,
    "table1": _table1,
    "fig5a": _fig5a,
    "fig5b": _anomaly("fig5b", "Fig 5b: Anomaly Detection"),
    "fig6a": _anomaly("LH", "Fig 6a: LH (low CPU, high output)"),
    "fig6b": _anomaly("HL", "Fig 6b: HL (high CPU, low output)"),
    "fig6c": _anomaly("MM", "Fig 6c: MM (medium CPU & output)"),
    "fig5c": _fig5c,
    "fig5d": _fig5d,
    "fig7b": _fig7b,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a paper figure interactively.",
    )
    parser.add_argument("figure", choices=sorted(FIGURES))
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[4, 8, 16],
        help="cluster sizes to sweep (default: 4 8 16)",
    )
    parser.add_argument(
        "--tasks", type=int, default=120, help="tasks per scenario"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--f", type=int, default=1, help="fault level (table1)")
    args = parser.parse_args(argv)
    FIGURES[args.figure](args)
    return 0
